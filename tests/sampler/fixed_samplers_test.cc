#include <gtest/gtest.h>

#include <map>

#include "kg/kg_index.h"
#include "sampler/bernoulli_sampler.h"
#include "sampler/uniform_sampler.h"

namespace nsc {
namespace {

// r0 is strongly 1-N (head 0 fans out to many tails); r1 is its N-1 mirror.
TripleStore MakeSkewedStore() {
  TripleStore store(20, 2);
  for (EntityId t = 1; t <= 8; ++t) store.Add({0, 0, t});
  for (EntityId h = 1; h <= 8; ++h) store.Add({h, 1, 9});
  return store;
}

TEST(CorruptTest, ReplacesRequestedSide) {
  const Triple pos{1, 2, 3};
  EXPECT_EQ(Corrupt(pos, CorruptionSide::kHead, 7), (Triple{7, 2, 3}));
  EXPECT_EQ(Corrupt(pos, CorruptionSide::kTail, 7), (Triple{1, 2, 7}));
}

TEST(SideChooserTest, DefaultIsFairCoin) {
  SideChooser chooser;
  EXPECT_FALSE(chooser.is_bernoulli());
  Rng rng(1);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    heads += chooser.Choose({0, 0, 1}, &rng) == CorruptionSide::kHead;
  }
  EXPECT_NEAR(heads / double(n), 0.5, 0.02);
}

TEST(SideChooserTest, BernoulliFollowsRelationCardinality) {
  const TripleStore store = MakeSkewedStore();
  const KgIndex index(store);
  SideChooser chooser(&index);
  EXPECT_TRUE(chooser.is_bernoulli());
  Rng rng(2);
  int heads_r0 = 0, heads_r1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    heads_r0 += chooser.Choose({0, 0, 1}, &rng) == CorruptionSide::kHead;
    heads_r1 += chooser.Choose({1, 1, 9}, &rng) == CorruptionSide::kHead;
  }
  // r0 is 1-N: tph=8, hpt=1 -> p_head = 8/9.
  EXPECT_NEAR(heads_r0 / double(n), 8.0 / 9.0, 0.02);
  // r1 is N-1 -> p_head = 1/9.
  EXPECT_NEAR(heads_r1 / double(n), 1.0 / 9.0, 0.02);
}

TEST(UniformSamplerTest, ProducesValidCorruptions) {
  UniformSampler sampler(20);
  Rng rng(3);
  const Triple pos{0, 0, 5};
  for (int i = 0; i < 500; ++i) {
    const NegativeSample neg = sampler.Sample(pos, &rng);
    EXPECT_EQ(neg.triple.r, pos.r);
    if (neg.side == CorruptionSide::kHead) {
      EXPECT_EQ(neg.triple.t, pos.t);
      EXPECT_GE(neg.triple.h, 0);
      EXPECT_LT(neg.triple.h, 20);
    } else {
      EXPECT_EQ(neg.triple.h, pos.h);
      EXPECT_LT(neg.triple.t, 20);
    }
  }
}

TEST(UniformSamplerTest, CoversWholeEntitySpace) {
  UniformSampler sampler(10);
  Rng rng(4);
  std::map<EntityId, int> seen;
  for (int i = 0; i < 5000; ++i) {
    const NegativeSample neg = sampler.Sample({0, 0, 1}, &rng);
    seen[neg.side == CorruptionSide::kHead ? neg.triple.h : neg.triple.t]++;
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(UniformSamplerTest, FilterRejectsKnownTriples) {
  // Tiny universe where most corruptions are known: (0,0,t) for all t but
  // one. The filter should concentrate sampled tail corruptions on the
  // single unknown tail.
  TripleStore store(4, 1);
  store.Add({0, 0, 1});
  store.Add({0, 0, 2});
  store.Add({0, 0, 3});
  const KgIndex index(store);
  UniformSampler sampler(4, &index, /*max_retries=*/50);
  Rng rng(5);
  int known = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const NegativeSample neg = sampler.Sample({0, 0, 1}, &rng);
    if (neg.side != CorruptionSide::kTail) continue;
    ++total;
    known += index.Contains(neg.triple);
  }
  ASSERT_GT(total, 0);
  // With 50 retries the false-negative rate should be essentially zero.
  EXPECT_LT(known / double(total), 0.01);
}

TEST(BernoulliSamplerTest, SideDistributionTracksTphHpt) {
  const TripleStore store = MakeSkewedStore();
  const KgIndex index(store);
  BernoulliSampler sampler(20, &index);
  Rng rng(6);
  int head_corruptions = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    head_corruptions +=
        sampler.Sample({0, 0, 1}, &rng).side == CorruptionSide::kHead;
  }
  EXPECT_NEAR(head_corruptions / double(n), 8.0 / 9.0, 0.02);
}

TEST(BernoulliSamplerTest, NameIsStable) {
  const TripleStore store = MakeSkewedStore();
  const KgIndex index(store);
  BernoulliSampler sampler(20, &index);
  EXPECT_EQ(sampler.name(), "bernoulli");
  UniformSampler uniform(20);
  EXPECT_EQ(uniform.name(), "uniform");
}

TEST(BernoulliSamplerTest, DeterministicGivenRngSeed) {
  const TripleStore store = MakeSkewedStore();
  const KgIndex index(store);
  BernoulliSampler s1(20, &index), s2(20, &index);
  Rng r1(7), r2(7);
  for (int i = 0; i < 100; ++i) {
    const NegativeSample a = s1.Sample({0, 0, 1}, &r1);
    const NegativeSample b = s2.Sample({0, 0, 1}, &r2);
    EXPECT_EQ(a.triple, b.triple);
    EXPECT_EQ(a.side, b.side);
  }
}

}  // namespace
}  // namespace nsc
