// SampleBatch contract tests: the default batch draw must consume the RNG
// exactly like sequential Sample() calls (the batched trainer's
// bit-for-bit guarantee rides on this), and the stateless_sampling trait
// must be set for exactly the samplers whose draws are model- and
// state-free.
#include <gtest/gtest.h>

#include <vector>

#include "core/nscaching_sampler.h"
#include "kg/kg_index.h"
#include "kg/synthetic.h"
#include "sampler/bernoulli_sampler.h"
#include "sampler/kbgan_sampler.h"
#include "sampler/uniform_sampler.h"

namespace nsc {
namespace {

Dataset SmallDataset() {
  SyntheticKgConfig c;
  c.num_entities = 80;
  c.num_relations = 4;
  c.num_triples = 400;
  c.seed = 11;
  return GenerateSyntheticKg(c);
}

TEST(SampleBatchTest, DefaultBatchMatchesSequentialSample) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  BernoulliSampler sampler(data.num_entities(), &index);

  const size_t n = 64;
  std::vector<Triple> pos(data.train.begin(), data.train.begin() + n);

  Rng rng_batch(99);
  std::vector<NegativeSample> batch(n);
  sampler.SampleBatch(pos.data(), n, &rng_batch, batch.data());

  Rng rng_seq(99);
  for (size_t i = 0; i < n; ++i) {
    const NegativeSample single = sampler.Sample(pos[i], &rng_seq);
    EXPECT_EQ(batch[i].triple, single.triple) << "pair " << i;
    EXPECT_EQ(batch[i].side, single.side) << "pair " << i;
  }
  // Both styles must leave the generator in the same state.
  EXPECT_EQ(rng_batch.Next(), rng_seq.Next());
}

TEST(SampleBatchTest, KbganDeferredFeedbackUpdatesGeneratorForEveryDraw) {
  // The batched trainer draws a whole mini-batch before delivering the
  // in-order Feedback calls; KBGAN must keep per-draw REINFORCE state
  // for all of them (a single pending slot would drop all but the last).
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KbganConfig config;
  config.candidate_set_size = 8;
  config.generator_dim = 8;
  KbganSampler sampler(data.num_entities(), data.num_relations(), &index,
                       config);

  const size_t n = 8;
  std::vector<Triple> pos(data.train.begin(), data.train.begin() + n);
  Rng rng(5);
  std::vector<NegativeSample> negs(n);
  sampler.SampleBatch(pos.data(), n, &rng, negs.data());

  int updates = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<float> before =
        sampler.generator().entity_table().LogicalCopy();
    // Varying rewards so the advantage is nonzero after the first call
    // (which only initialises the moving-average baseline).
    sampler.Feedback(pos[i], negs[i], static_cast<double>(i) - 3.5);
    if (sampler.generator().entity_table().LogicalCopy() != before) ++updates;
  }
  // Every draw after the baseline-initialising first one must train the
  // generator.
  EXPECT_GE(updates, static_cast<int>(n) - 1);
}

TEST(SampleBatchTest, StatelessTraitCoversExactlyTheFixedSamplers) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 8,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);

  UniformSampler uniform(data.num_entities());
  BernoulliSampler bernoulli(data.num_entities(), &index);
  NSCachingSampler nscaching(&model, &index, NSCachingConfig{});
  KbganSampler kbgan(data.num_entities(), data.num_relations(), &index,
                     KbganConfig{});

  EXPECT_TRUE(uniform.stateless_sampling());
  EXPECT_TRUE(bernoulli.stateless_sampling());
  // Model-coupled samplers must not be pre-sampled or called concurrently.
  EXPECT_FALSE(nscaching.stateless_sampling());
  EXPECT_FALSE(kbgan.stateless_sampling());
}

}  // namespace
}  // namespace nsc
