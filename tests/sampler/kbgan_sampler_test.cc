#include "sampler/kbgan_sampler.h"

#include <gtest/gtest.h>

#include "kg/kg_index.h"

namespace nsc {
namespace {

TripleStore MakeStore() {
  TripleStore store(30, 2);
  for (EntityId h = 0; h < 10; ++h) {
    store.Add({h, 0, static_cast<EntityId>((h + 1) % 10)});
    store.Add({h, 1, static_cast<EntityId>(10 + h)});
  }
  return store;
}

KbganConfig SmallConfig() {
  KbganConfig c;
  c.candidate_set_size = 8;
  c.generator_dim = 6;
  c.generator_lr = 0.05;
  return c;
}

TEST(KbganSamplerTest, SamplesFromCandidateSet) {
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  KbganSampler sampler(30, 2, &index, SmallConfig());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const NegativeSample neg = sampler.Sample({0, 0, 1}, &rng);
    EXPECT_EQ(neg.triple.r, 0);
    const EntityId corrupted =
        neg.side == CorruptionSide::kHead ? neg.triple.h : neg.triple.t;
    EXPECT_GE(corrupted, 0);
    EXPECT_LT(corrupted, 30);
  }
}

TEST(KbganSamplerTest, ExtraParametersMatchTableI) {
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  KbganConfig config = SmallConfig();
  KbganSampler sampler(30, 2, &index, config);
  // Generator is a TransE model: (|E| + |R|) * d_generator floats.
  EXPECT_EQ(sampler.extra_parameters(), (30u + 2u) * 6u);
}

TEST(KbganSamplerTest, FeedbackMovesBaselineTowardReward) {
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  KbganSampler sampler(30, 2, &index, SmallConfig());
  Rng rng(2);
  const Triple pos{0, 0, 1};
  const NegativeSample neg = sampler.Sample(pos, &rng);
  sampler.Feedback(pos, neg, 5.0);
  // First reward initialises the baseline.
  EXPECT_NEAR(sampler.baseline(), 5.0, 1e-9);
  const NegativeSample neg2 = sampler.Sample(pos, &rng);
  sampler.Feedback(pos, neg2, 1.0);
  EXPECT_LT(sampler.baseline(), 5.0);
  EXPECT_GT(sampler.baseline(), 1.0);
}

TEST(KbganSamplerTest, FeedbackUpdatesGeneratorParameters) {
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  KbganSampler sampler(30, 2, &index, SmallConfig());
  Rng rng(3);
  const Triple pos{0, 0, 1};

  const std::vector<float> before =
      sampler.generator().entity_table().LogicalCopy();
  // Two feedbacks with different rewards guarantee a non-zero advantage on
  // the second one.
  NegativeSample neg = sampler.Sample(pos, &rng);
  sampler.Feedback(pos, neg, 0.0);
  neg = sampler.Sample(pos, &rng);
  sampler.Feedback(pos, neg, 10.0);
  const std::vector<float> after =
      sampler.generator().entity_table().LogicalCopy();
  EXPECT_NE(before, after);
}

TEST(KbganSamplerTest, FeedbackForMismatchedPositiveIgnored) {
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  KbganSampler sampler(30, 2, &index, SmallConfig());
  Rng rng(4);
  const NegativeSample neg = sampler.Sample({0, 0, 1}, &rng);
  sampler.Feedback({5, 1, 15}, neg, 100.0);  // Different positive: dropped.
  EXPECT_EQ(sampler.baseline(), 0.0);
}

TEST(KbganSamplerTest, GeneratorLearnsToPreferRewardedEntity) {
  // Reward the generator only when it picks entity 7; its softmax
  // probability of picking 7 should rise.
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  KbganConfig config = SmallConfig();
  config.candidate_set_size = 30;  // Every entity is always a candidate
                                   // (with duplicates; close enough).
  KbganSampler sampler(30, 2, &index, config);
  Rng rng(5);
  const Triple pos{0, 0, 1};

  int picked_7_late = 0;
  const int rounds = 3000;
  for (int i = 0; i < rounds; ++i) {
    const NegativeSample neg = sampler.Sample(pos, &rng);
    const EntityId e =
        neg.side == CorruptionSide::kHead ? neg.triple.h : neg.triple.t;
    const double reward = (e == 7) ? 4.0 : -4.0;
    sampler.Feedback(pos, neg, reward);
    if (i >= rounds / 2) picked_7_late += (e == 7);
  }
  // An untrained generator picks 7 with probability ~1/30 (entity 7 must
  // land in the candidate set and win the softmax) — roughly 3%. The
  // REINFORCE-trained generator must pick it far more often.
  EXPECT_GT(picked_7_late, rounds / 2 / 10);  // > 10% of late rounds.
}

TEST(KbganSamplerTest, WarmStartCopiesGenerator) {
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  KbganSampler sampler(30, 2, &index, SmallConfig());
  KgeModel pretrained(30, 2, 6, MakeScoringFunction("transe"));
  Rng rng(6);
  pretrained.InitXavier(&rng);
  sampler.WarmStartGenerator(pretrained);
  EXPECT_EQ(sampler.generator().entity_table().LogicalCopy(),
            pretrained.entity_table().LogicalCopy());
}

}  // namespace
}  // namespace nsc
