// Fused sweep→top-K parity fuzz suite (ISSUE 6). The retrieval contract
// of ScoringFunction::TopKCandidates is EXACT: the returned entries —
// scores, indices and their order — must be bit-identical to sorting a
// full ScoreAllCandidates buffer by (score desc, index asc) and keeping
// the first K. This suite pins that contract across every registered
// scorer (SIMD-fused and generic-fallback alike), K below / at / above
// the tile size, |E| equal to / far above K, padded and compact table
// layouts, and both dispatch paths (native and NSC_FORCE_SCALAR) — plus
// the degenerate corners: all-tied constant scores (zero tables), K
// exceeding |E|, and K == 0. CI runs it under ASan+UBSan on both paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "embedding/model.h"
#include "embedding/scoring_function.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/topk.h"

namespace nsc {
namespace {

constexpr int kDim = 13;  // Vector body + scalar tail lanes.
constexpr int32_t kRelations = 4;

KgeModel MakeModel(const std::string& name, int32_t num_entities, bool pad,
                   bool zero_tables, uint64_t seed) {
  KgeModel model(num_entities, kRelations, kDim, MakeScoringFunction(name),
                 pad ? TableLayout::kPadded : TableLayout::kCompact);
  if (!zero_tables) {
    Rng rng(seed);
    model.InitXavier(&rng);
  }
  return model;
}

// Reference retrieval: the full 1-vs-all sweep sorted by
// (score desc, index asc), truncated to k.
std::vector<TopKEntry> ReferenceTopK(const std::vector<double>& scores,
                                     size_t k) {
  std::vector<TopKEntry> all(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) all[i] = {scores[i], i};
  std::sort(all.begin(), all.end(), TopKBetter);
  all.resize(std::min(k, all.size()));
  return all;
}

void ExpectExactlyEqual(const std::vector<TopKEntry>& got,
                        const std::vector<TopKEntry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    // Bit-exact score equality — the fused kernels reuse the sweep's
    // per-candidate arithmetic, so nothing weaker is acceptable.
    EXPECT_EQ(got[i].score, want[i].score) << "entry " << i;
    EXPECT_EQ(got[i].index, want[i].index) << "entry " << i;
  }
}

void ExpectTopKParity(const KgeModel& model, size_t k) {
  const int32_t num_entities = model.num_entities();
  const EntityId fixed_e = num_entities / 2;
  const RelationId fixed_r = 1;
  std::vector<double> scores(static_cast<size_t>(num_entities));
  std::vector<TopKEntry> got;

  model.ScoreAllHeads(fixed_r, fixed_e, scores.data());
  TopKSweepStats stats;
  model.TopKHeads(fixed_r, fixed_e, k, &got, &stats);
  ExpectExactlyEqual(got, ReferenceTopK(scores, k));
  const size_t want_tiles =
      (static_cast<size_t>(num_entities) + TopKCollector::kTileSize - 1) /
      TopKCollector::kTileSize;
  EXPECT_EQ(stats.tiles, want_tiles);
  EXPECT_LE(stats.pruned_tiles, stats.tiles);

  model.ScoreAllTails(fixed_e, fixed_r, scores.data());
  model.TopKTails(fixed_e, fixed_r, k, &got, &stats);
  ExpectExactlyEqual(got, ReferenceTopK(scores, k));
  EXPECT_EQ(stats.tiles, want_tiles);
}

// The (K, |E|) fuzz matrix: K below/at/above one tile, |E| == K (the
// everything-survives corner) and |E| with tail tiles and many pruning
// opportunities.
struct Case {
  size_t k;
  int32_t num_entities;
};

std::vector<Case> Matrix() {
  std::vector<Case> cases;
  for (size_t k : {size_t{1}, size_t{10}, size_t{257}}) {
    for (int32_t e : {static_cast<int32_t>(k), 1000, 5003}) {
      cases.push_back({k, e});
    }
  }
  return cases;
}

void RunMatrix(bool force_scalar) {
  for (const std::string& name : ListScoringFunctions()) {
    for (const Case& c : Matrix()) {
      for (bool pad : {false, true}) {
        SCOPED_TRACE(name + " k=" + std::to_string(c.k) +
                     " E=" + std::to_string(c.num_entities) +
                     (pad ? " padded" : " compact") +
                     (force_scalar ? " scalar" : " native"));
        KgeModel model =
            MakeModel(name, c.num_entities, pad, /*zero_tables=*/false,
                      /*seed=*/c.k * 2654435761u + c.num_entities);
        if (force_scalar) {
          simd::ScopedForcePath force(simd::Path::kScalar);
          ExpectTopKParity(model, c.k);
        } else {
          ExpectTopKParity(model, c.k);
        }
      }
    }
  }
}

TEST(TopKParityTest, MatchesSortedFullSweepNativePath) {
  RunMatrix(/*force_scalar=*/false);
}

TEST(TopKParityTest, MatchesSortedFullSweepForcedScalar) {
  RunMatrix(/*force_scalar=*/true);
}

TEST(TopKParityTest, AllTiedScoresResolveIndexOrdered) {
  // Zero tables make every candidate score identical for every scorer
  // (all scores are sums of products/abs-differences of zeros), so the
  // retrieval must be exactly the first K indices — the tie contract's
  // worst case, where a single wrong comparison reorders everything.
  for (const std::string& name : ListScoringFunctions()) {
    for (bool force_scalar : {false, true}) {
      SCOPED_TRACE(name + (force_scalar ? " scalar" : " native"));
      KgeModel model = MakeModel(name, /*num_entities=*/1000, /*pad=*/true,
                                 /*zero_tables=*/true, /*seed=*/0);
      simd::ScopedForcePath force(force_scalar ? simd::Path::kScalar
                                               : simd::ActivePath());
      std::vector<TopKEntry> got;
      model.TopKHeads(/*r=*/0, /*t=*/3, /*k=*/10, &got);
      ASSERT_EQ(got.size(), 10u);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].index, i);
        EXPECT_EQ(got[i].score, got[0].score);
      }
    }
  }
}

TEST(TopKParityTest, KLargerThanEntityCountReturnsEverythingSorted) {
  for (const std::string& name : {std::string("transe"),
                                  std::string("complex"),
                                  std::string("transh")}) {
    SCOPED_TRACE(name);
    KgeModel model = MakeModel(name, /*num_entities=*/257, /*pad=*/true,
                               /*zero_tables=*/false, /*seed=*/11);
    std::vector<double> scores(257);
    model.ScoreAllHeads(/*r=*/2, /*t=*/0, scores.data());
    std::vector<TopKEntry> got;
    model.TopKHeads(/*r=*/2, /*t=*/0, /*k=*/300, &got);
    ExpectExactlyEqual(got, ReferenceTopK(scores, 300));
  }
}

TEST(TopKParityTest, KZeroReturnsEmpty) {
  KgeModel model = MakeModel("transe", /*num_entities=*/1000, /*pad=*/true,
                             /*zero_tables=*/false, /*seed=*/5);
  std::vector<TopKEntry> got(3);
  model.TopKHeads(/*r=*/0, /*t=*/0, /*k=*/0, &got);
  EXPECT_TRUE(got.empty());
}

TEST(TopKParityTest, BatchedRetrievalMatchesSingleQueryBitExact) {
  // TopK{Heads,Tails}Batch answers nq queries in one tile-outer /
  // query-inner slab pass; its contract is that each query's result is
  // bit-identical to its own single-query TopK{Heads,Tails} call. The
  // query set includes a duplicate query (both slots must return the
  // same entries) and runs on both dispatch paths, every scorer.
  const std::vector<std::pair<RelationId, EntityId>> head_queries = {
      {1, 7}, {0, 193}, {3, 42}, {1, 7}, {2, 0}};
  const std::vector<std::pair<EntityId, RelationId>> tail_queries = {
      {7, 1}, {193, 0}, {42, 3}, {7, 1}, {0, 2}};
  for (const std::string& name : ListScoringFunctions()) {
    for (bool force_scalar : {false, true}) {
      for (size_t k : {size_t{1}, size_t{10}, size_t{300}}) {
        SCOPED_TRACE(name + (force_scalar ? " scalar" : " native") +
                     " k=" + std::to_string(k));
        KgeModel model = MakeModel(name, /*num_entities=*/1201, /*pad=*/true,
                                   /*zero_tables=*/false, /*seed=*/k + 31);
        simd::ScopedForcePath force(force_scalar ? simd::Path::kScalar
                                                 : simd::ActivePath());
        std::vector<std::vector<TopKEntry>> batched;
        TopKSweepStats batch_stats;
        std::vector<TopKEntry> single;

        model.TopKHeadsBatch(head_queries, k, &batched, &batch_stats);
        ASSERT_EQ(batched.size(), head_queries.size());
        TopKSweepStats single_stats_sum;
        for (size_t q = 0; q < head_queries.size(); ++q) {
          TopKSweepStats s;
          model.TopKHeads(head_queries[q].first, head_queries[q].second, k,
                          &single, &s);
          ExpectExactlyEqual(batched[q], single);
          single_stats_sum.tiles += s.tiles;
        }
        // Every query still visits every tile — batching shares memory
        // traffic, not tile accounting.
        EXPECT_EQ(batch_stats.tiles, single_stats_sum.tiles);
        EXPECT_LE(batch_stats.pruned_tiles, batch_stats.tiles);

        model.TopKTailsBatch(tail_queries, k, &batched, &batch_stats);
        ASSERT_EQ(batched.size(), tail_queries.size());
        for (size_t q = 0; q < tail_queries.size(); ++q) {
          model.TopKTails(tail_queries[q].first, tail_queries[q].second, k,
                          &single);
          ExpectExactlyEqual(batched[q], single);
        }
      }
    }
  }
}

TEST(TopKParityTest, BatchedRetrievalEmptyQuerySet) {
  KgeModel model = MakeModel("transe", /*num_entities=*/100, /*pad=*/true,
                             /*zero_tables=*/false, /*seed=*/5);
  std::vector<std::vector<TopKEntry>> batched(3);
  TopKSweepStats stats;
  model.TopKHeadsBatch({}, /*k=*/10, &batched, &stats);
  EXPECT_TRUE(batched.empty());
  EXPECT_EQ(stats.tiles, 0u);
}

TEST(TopKParityTest, CandidateRetrievalMatchesScoredCandidateSort) {
  // TopK{Head,Tail}Candidates (the kTop cache-refresh primitive) must
  // select exactly what sorting Score{Head,Tail}Candidates' buffer
  // would — including duplicate candidates, which tie bit-exactly and
  // resolve to the earlier pool position.
  for (const std::string& name : ListScoringFunctions()) {
    for (bool force_scalar : {false, true}) {
      SCOPED_TRACE(name + (force_scalar ? " scalar" : " native"));
      KgeModel model = MakeModel(name, /*num_entities=*/200, /*pad=*/true,
                                 /*zero_tables=*/false, /*seed=*/77);
      Rng rng(123);
      std::vector<EntityId> candidates(64);
      for (EntityId& e : candidates) {
        e = static_cast<EntityId>(rng.UniformInt(200));
      }
      candidates[10] = candidates[3];  // Guaranteed duplicate.
      simd::ScopedForcePath force(force_scalar ? simd::Path::kScalar
                                               : simd::ActivePath());
      std::vector<double> scores;
      std::vector<TopKEntry> got;
      model.ScoreHeadCandidates(/*r=*/1, /*t=*/9, candidates, &scores);
      model.TopKHeadCandidates(/*r=*/1, /*t=*/9, candidates, /*k=*/7, &got);
      ExpectExactlyEqual(got, ReferenceTopK(scores, 7));
      model.ScoreTailCandidates(/*h=*/9, /*r=*/1, candidates, &scores);
      model.TopKTailCandidates(/*h=*/9, /*r=*/1, candidates, /*k=*/7, &got);
      ExpectExactlyEqual(got, ReferenceTopK(scores, 7));
    }
  }
}

}  // namespace
}  // namespace nsc
