// Parameterized correctness suite for every registered scoring function:
// the analytic Backward() of each scorer is validated against central
// finite differences of Score() over random embeddings, across several
// dimensions and random draws. Also checks hand-computed closed forms and
// the structural properties of Table III (symmetry of DistMult, asymmetry
// of ComplEx, translation identity of TransE).
#include "embedding/scoring_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "embedding/scorers/transe.h"
#include "util/rng.h"

namespace nsc {
namespace {

std::vector<float> RandomVec(int n, Rng* rng, double scale = 0.8) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng->Uniform(-scale, scale));
    // Keep away from the L1 kinks at h+r-t = 0 so the finite-difference
    // probe of |.| stays on one linear piece.
    if (std::fabs(x) < 0.05f) x += x >= 0 ? 0.07f : -0.07f;
  }
  return v;
}

// (scorer name, embedding dimension)
using ScorerParam = std::tuple<std::string, int>;

class ScoringFunctionTest : public ::testing::TestWithParam<ScorerParam> {
 protected:
  void SetUp() override {
    scorer_ = MakeScoringFunction(std::get<0>(GetParam()));
    ASSERT_NE(scorer_, nullptr);
    dim_ = std::get<1>(GetParam());
  }

  std::unique_ptr<ScoringFunction> scorer_;
  int dim_ = 0;
};

TEST_P(ScoringFunctionTest, NameMatchesRegistry) {
  EXPECT_EQ(scorer_->name(), std::get<0>(GetParam()));
}

TEST_P(ScoringFunctionTest, WidthsArePositiveMultiples) {
  EXPECT_GE(scorer_->entity_width(dim_), dim_);
  EXPECT_GE(scorer_->relation_width(dim_), dim_);
}

TEST_P(ScoringFunctionTest, ScoreIsDeterministic) {
  Rng rng(11);
  const auto h = RandomVec(scorer_->entity_width(dim_), &rng);
  const auto r = RandomVec(scorer_->relation_width(dim_), &rng);
  const auto t = RandomVec(scorer_->entity_width(dim_), &rng);
  const double s1 = scorer_->Score(h.data(), r.data(), t.data(), dim_);
  const double s2 = scorer_->Score(h.data(), r.data(), t.data(), dim_);
  EXPECT_EQ(s1, s2);
  EXPECT_TRUE(std::isfinite(s1));
}

// The core property test: analytic gradient == finite differences.
TEST_P(ScoringFunctionTest, BackwardMatchesFiniteDifferences) {
  const int ew = scorer_->entity_width(dim_);
  const int rw = scorer_->relation_width(dim_);
  Rng rng(101 + dim_);

  for (int trial = 0; trial < 5; ++trial) {
    auto h = RandomVec(ew, &rng);
    auto r = RandomVec(rw, &rng);
    auto t = RandomVec(ew, &rng);

    std::vector<float> gh(ew, 0.0f), gr(rw, 0.0f), gt(ew, 0.0f);
    const float coeff = 1.7f;
    scorer_->Backward(h.data(), r.data(), t.data(), dim_, coeff, gh.data(),
                      gr.data(), gt.data());

    const double eps = 2e-3;
    auto check = [&](std::vector<float>* vec, const std::vector<float>& grad,
                     const char* tag) {
      for (size_t i = 0; i < vec->size(); ++i) {
        const float saved = (*vec)[i];
        const double base = scorer_->Score(h.data(), r.data(), t.data(), dim_);
        (*vec)[i] = saved + static_cast<float>(eps);
        const double plus = scorer_->Score(h.data(), r.data(), t.data(), dim_);
        (*vec)[i] = saved - static_cast<float>(eps);
        const double minus = scorer_->Score(h.data(), r.data(), t.data(), dim_);
        (*vec)[i] = saved;
        // L1-based scorers are piecewise linear; when the probe straddles a
        // kink of |.| the one-sided slopes disagree and the central
        // difference is meaningless there — skip such coordinates.
        const double fwd = (plus - base) / eps;
        const double bwd = (base - minus) / eps;
        if (std::fabs(fwd - bwd) > 1e-2 * std::max(1.0, std::fabs(fwd))) {
          continue;
        }
        const double numeric = coeff * (plus - minus) / (2.0 * eps);
        EXPECT_NEAR(grad[i], numeric, 5e-2 * std::max(1.0, std::fabs(numeric)))
            << tag << "[" << i << "] trial " << trial;
      }
    };
    check(&h, gh, "dh");
    check(&r, gr, "dr");
    check(&t, gt, "dt");
  }
}

TEST_P(ScoringFunctionTest, BackwardAccumulatesIntoBuffers) {
  const int ew = scorer_->entity_width(dim_);
  const int rw = scorer_->relation_width(dim_);
  Rng rng(55);
  const auto h = RandomVec(ew, &rng);
  const auto r = RandomVec(rw, &rng);
  const auto t = RandomVec(ew, &rng);

  std::vector<float> gh1(ew, 0.0f), gr1(rw, 0.0f), gt1(ew, 0.0f);
  scorer_->Backward(h.data(), r.data(), t.data(), dim_, 1.0f, gh1.data(),
                    gr1.data(), gt1.data());
  // Calling twice with coeff 1 must equal calling once with coeff 2.
  std::vector<float> gh2(ew, 0.0f), gr2(rw, 0.0f), gt2(ew, 0.0f);
  scorer_->Backward(h.data(), r.data(), t.data(), dim_, 1.0f, gh2.data(),
                    gr2.data(), gt2.data());
  scorer_->Backward(h.data(), r.data(), t.data(), dim_, 1.0f, gh2.data(),
                    gr2.data(), gt2.data());
  for (int i = 0; i < ew; ++i) {
    EXPECT_NEAR(gh2[i], 2.0f * gh1[i], 1e-5);
    EXPECT_NEAR(gt2[i], 2.0f * gt1[i], 1e-5);
  }
  for (int i = 0; i < rw; ++i) EXPECT_NEAR(gr2[i], 2.0f * gr1[i], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    AllScorers, ScoringFunctionTest,
    ::testing::Combine(::testing::Values("transe", "transh", "transd",
                                         "transr", "distmult", "complex",
                                         "rescal", "hole"),
                       ::testing::Values(4, 8, 16)),
    [](const ::testing::TestParamInfo<ScorerParam>& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Closed-form and structural checks -----------------------------------

TEST(TransEClosedFormTest, PerfectTranslationScoresZero) {
  TransE transe;
  const std::vector<float> h = {0.1f, 0.2f}, r = {0.3f, -0.1f};
  std::vector<float> t(2);
  for (int i = 0; i < 2; ++i) t[i] = h[i] + r[i];
  EXPECT_NEAR(transe.Score(h.data(), r.data(), t.data(), 2), 0.0, 1e-7);
}

TEST(TransEClosedFormTest, ScoreIsNegativeL1Distance) {
  TransE transe;
  const std::vector<float> h = {1.0f, 0.0f}, r = {0.0f, 0.0f},
                           t = {0.0f, 2.0f};
  EXPECT_NEAR(transe.Score(h.data(), r.data(), t.data(), 2), -3.0, 1e-6);
}

TEST(TransEClosedFormTest, ProjectionKeepsUnitBall) {
  TransE transe;
  std::vector<float> e = {3.0f, 4.0f};
  transe.ProjectEntityRow(e.data(), 2);
  EXPECT_NEAR(std::hypot(e[0], e[1]), 1.0, 1e-6);
}

TEST(DistMultStructureTest, SymmetricInHeadAndTail) {
  auto dm = MakeScoringFunction("distmult");
  Rng rng(7);
  const auto h = RandomVec(8, &rng), r = RandomVec(8, &rng),
             t = RandomVec(8, &rng);
  EXPECT_NEAR(dm->Score(h.data(), r.data(), t.data(), 8),
              dm->Score(t.data(), r.data(), h.data(), 8), 1e-6);
}

TEST(ComplExStructureTest, AsymmetricInHeadAndTail) {
  auto cx = MakeScoringFunction("complex");
  Rng rng(7);
  const auto h = RandomVec(16, &rng), r = RandomVec(16, &rng),
             t = RandomVec(16, &rng);
  const double fwd = cx->Score(h.data(), r.data(), t.data(), 8);
  const double bwd = cx->Score(t.data(), r.data(), h.data(), 8);
  EXPECT_GT(std::fabs(fwd - bwd), 1e-4);
}

TEST(ComplExStructureTest, ZeroImaginaryReducesToDistMult) {
  auto cx = MakeScoringFunction("complex");
  auto dm = MakeScoringFunction("distmult");
  Rng rng(9);
  const int d = 6;
  auto mk = [&] {
    std::vector<float> v(2 * d, 0.0f);
    for (int i = 0; i < d; ++i) v[i] = static_cast<float>(rng.Uniform(-1, 1));
    return v;
  };
  const auto h = mk(), r = mk(), t = mk();
  EXPECT_NEAR(cx->Score(h.data(), r.data(), t.data(), d),
              dm->Score(h.data(), r.data(), t.data(), d), 1e-5);
}

TEST(RescalStructureTest, IdentityRelationGivesDotProduct) {
  auto rescal = MakeScoringFunction("rescal");
  const int d = 4;
  std::vector<float> m(d * d, 0.0f);
  for (int i = 0; i < d; ++i) m[i * d + i] = 1.0f;
  const std::vector<float> h = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> t = {0.5f, -1.0f, 2.0f, 0.0f};
  EXPECT_NEAR(rescal->Score(h.data(), m.data(), t.data(), d),
              1 * 0.5 - 2.0 + 6.0, 1e-5);
}

TEST(FamilyTest, TableIIIFamilies) {
  EXPECT_EQ(MakeScoringFunction("transe")->family(),
            ModelFamily::kTranslationalDistance);
  EXPECT_EQ(MakeScoringFunction("transh")->family(),
            ModelFamily::kTranslationalDistance);
  EXPECT_EQ(MakeScoringFunction("transd")->family(),
            ModelFamily::kTranslationalDistance);
  EXPECT_EQ(MakeScoringFunction("distmult")->family(),
            ModelFamily::kSemanticMatching);
  EXPECT_EQ(MakeScoringFunction("complex")->family(),
            ModelFamily::kSemanticMatching);
  EXPECT_EQ(MakeScoringFunction("rescal")->family(),
            ModelFamily::kSemanticMatching);
}

TEST(RegistryTest, UnknownNameGivesNull) {
  EXPECT_EQ(MakeScoringFunction("nope"), nullptr);
}

TEST(RegistryTest, ListCoversAllConstructible) {
  for (const std::string& name : ListScoringFunctions()) {
    EXPECT_NE(MakeScoringFunction(name), nullptr) << name;
  }
  EXPECT_EQ(ListScoringFunctions().size(), 8u);
}

TEST(TransRStructureTest, IdentityMatrixReducesToTransE) {
  auto transr = MakeScoringFunction("transr");
  auto transe = MakeScoringFunction("transe");
  const int d = 4;
  Rng rng(31);
  const auto h = RandomVec(d, &rng), t = RandomVec(d, &rng);
  const auto rv = RandomVec(d, &rng);
  std::vector<float> r_row(d + d * d, 0.0f);
  for (int i = 0; i < d; ++i) {
    r_row[i] = rv[i];
    r_row[d + i * d + i] = 1.0f;  // M_r = I.
  }
  EXPECT_NEAR(transr->Score(h.data(), r_row.data(), t.data(), d),
              transe->Score(h.data(), rv.data(), t.data(), d), 1e-5);
}

TEST(HolEStructureTest, AsymmetricInHeadAndTail) {
  auto hole = MakeScoringFunction("hole");
  Rng rng(33);
  const auto h = RandomVec(8, &rng), r = RandomVec(8, &rng),
             t = RandomVec(8, &rng);
  EXPECT_GT(std::fabs(hole->Score(h.data(), r.data(), t.data(), 8) -
                      hole->Score(t.data(), r.data(), h.data(), 8)),
            1e-4);
}

TEST(HolEStructureTest, CircularCorrelationClosedForm) {
  // d = 2: (h ⋆ t)_0 = h0 t0 + h1 t1; (h ⋆ t)_1 = h0 t1 + h1 t0.
  auto hole = MakeScoringFunction("hole");
  const std::vector<float> h = {2.0f, 3.0f}, t = {5.0f, 7.0f},
                           r = {1.0f, 10.0f};
  const double expected = 1.0 * (2 * 5 + 3 * 7) + 10.0 * (2 * 7 + 3 * 5);
  EXPECT_NEAR(hole->Score(h.data(), r.data(), t.data(), 2), expected, 1e-5);
}

}  // namespace
}  // namespace nsc
