// SIMD-vs-scalar parity fuzz suite — the lockdown for every kernel
// rewrite (ISSUE 3). Sweeps all registered scorers × dims {1, 7, 8, 15,
// 16, 100} × batch sizes {1, 3, 32, 100} × padded/compact table layouts
// and asserts that the active dispatch path and the forced-scalar path
// agree:
//
//   scores    — within 2^-40 relative per accumulated term. Kernels widen
//               float terms to double exactly as the scalar loops do, so
//               the only divergence is reduction order: |Δ| ≤
//               dim·terms·eps_double·Σ|term|, far below this bound.
//   gradients — within 8 float ULPs per element. Backward kernels mirror
//               the scalar float operation order without FMA, so the only
//               tolerated drift is compiler contraction of the scalar
//               reference.
//
// The dims deliberately include non-multiples of every lane width so the
// scalar tail lanes are exercised, and the padded/compact sweep pins that
// kernels never read padding. On hosts without AVX2/NEON both paths are
// scalar and the suite degenerates to an exact self-comparison (it still
// validates dispatch plumbing); CI additionally runs it under
// NSC_FORCE_SCALAR=1 and under ASan+UBSan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "embedding/embedding_table.h"
#include "embedding/initializer.h"
#include "embedding/scoring_function.h"
#include "util/rng.h"
#include "util/simd.h"

namespace nsc {
namespace {

constexpr int kDims[] = {1, 7, 8, 15, 16, 100};
constexpr size_t kBatchSizes[] = {1, 3, 32, 100};

// ULP distance between two floats of the same sign regime; large value
// for mismatched signs/specials so the comparison fails loudly.
int64_t UlpDiff(float a, float b) {
  if (a == b) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) return INT64_MAX;
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude float ordering onto a monotone integer line.
  if (ia < 0) ia = std::numeric_limits<int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<int32_t>::min() - ib;
  const int64_t d = static_cast<int64_t>(ia) - ib;
  return d < 0 ? -d : d;
}

struct Workbench {
  std::unique_ptr<ScoringFunction> scorer;
  int dim;
  EmbeddingTable entities;
  EmbeddingTable relations;
  std::vector<const float*> h, r, t;

  Workbench(const std::string& name, int dim_in, size_t batch, bool pad,
            uint64_t seed)
      : scorer(MakeScoringFunction(name)),
        dim(dim_in),
        entities(/*rows=*/41, scorer->entity_width(dim_in),
                 pad ? simd::kPadLanes : 1),
        relations(/*rows=*/7, scorer->relation_width(dim_in),
                  pad ? simd::kPadLanes : 1) {
    Rng rng(seed);
    UniformInit(&entities, -1.0, 1.0, &rng);
    UniformInit(&relations, -1.0, 1.0, &rng);
    h.resize(batch);
    r.resize(batch);
    t.resize(batch);
    for (size_t i = 0; i < batch; ++i) {
      // Repeats are intentional: the cache-refresh hot path broadcasts
      // one (r, t) against many heads.
      h[i] = entities.Row(static_cast<int32_t>(rng.UniformInt(41)));
      r[i] = relations.Row(static_cast<int32_t>(rng.UniformInt(7)));
      t[i] = entities.Row(static_cast<int32_t>(rng.UniformInt(41)));
    }
  }
};

double ScoreTolerance(const Workbench& wb, double reference) {
  // 2^-40 relative per accumulated term (see file comment); at least a
  // tiny absolute floor for scores that cancel to ~0.
  const double scale = std::max(1.0, std::fabs(reference));
  return scale * wb.dim * 9.094947e-13 + 1e-12;
}

void ExpectScoreParity(const std::string& name, int dim, size_t batch,
                       bool pad) {
  SCOPED_TRACE(name + " dim=" + std::to_string(dim) +
               " batch=" + std::to_string(batch) + (pad ? " padded" : " compact"));
  Workbench wb(name, dim, batch, pad, /*seed=*/dim * 1000003 + batch);
  std::vector<double> active(batch), scalar(batch);
  wb.scorer->ScoreBatch(wb.h.data(), wb.r.data(), wb.t.data(), dim, batch,
                        active.data());
  {
    simd::ScopedForcePath force(simd::Path::kScalar);
    wb.scorer->ScoreBatch(wb.h.data(), wb.r.data(), wb.t.data(), dim, batch,
                          scalar.data());
  }
  for (size_t i = 0; i < batch; ++i) {
    EXPECT_NEAR(active[i], scalar[i], ScoreTolerance(wb, scalar[i]))
        << "triple " << i;
  }
}

void ExpectBackwardParity(const std::string& name, int dim, size_t batch,
                          bool pad) {
  SCOPED_TRACE(name + " dim=" + std::to_string(dim) +
               " batch=" + std::to_string(batch) + (pad ? " padded" : " compact"));
  Workbench wb(name, dim, batch, pad, /*seed=*/dim * 7777 + batch * 13);
  const int ew = wb.entities.width();
  const int rw = wb.relations.width();

  // Random coefficients including zero and negatives (loss gradients are
  // signed, and a zero coeff must leave gradients untouched).
  Rng rng(99);
  std::vector<float> coeff(batch);
  for (size_t i = 0; i < batch; ++i) {
    coeff[i] = (i % 5 == 0) ? 0.0f
                            : static_cast<float>(rng.Uniform(-2.0, 2.0));
  }

  // Gradient buffers pre-filled with random garbage: kernels accumulate
  // +=, so existing content must be preserved, not overwritten.
  auto make_grads = [&](int width, uint64_t seed) {
    std::vector<std::vector<float>> g(batch);
    Rng grng(seed);
    for (auto& v : g) {
      v.resize(width);
      for (float& x : v) x = static_cast<float>(grng.Uniform(-0.5, 0.5));
    }
    return g;
  };
  const auto gh0 = make_grads(ew, 1);
  const auto gr0 = make_grads(rw, 2);
  const auto gt0 = make_grads(ew, 3);

  auto run = [&](bool force_scalar) {
    auto gh = gh0;
    auto gr = gr0;
    auto gt = gt0;
    std::vector<float*> ph(batch), pr(batch), pt(batch);
    for (size_t i = 0; i < batch; ++i) {
      ph[i] = gh[i].data();
      pr[i] = gr[i].data();
      pt[i] = gt[i].data();
    }
    if (force_scalar) {
      simd::ScopedForcePath force(simd::Path::kScalar);
      wb.scorer->BackwardBatch(wb.h.data(), wb.r.data(), wb.t.data(), dim,
                               batch, coeff.data(), ph.data(), pr.data(),
                               pt.data());
    } else {
      wb.scorer->BackwardBatch(wb.h.data(), wb.r.data(), wb.t.data(), dim,
                               batch, coeff.data(), ph.data(), pr.data(),
                               pt.data());
    }
    return std::make_tuple(gh, gr, gt);
  };

  const auto [gh_a, gr_a, gt_a] = run(/*force_scalar=*/false);
  const auto [gh_s, gr_s, gt_s] = run(/*force_scalar=*/true);

  constexpr int64_t kMaxUlps = 8;
  auto compare = [&](const std::vector<std::vector<float>>& a,
                     const std::vector<std::vector<float>>& b,
                     const char* which) {
    for (size_t i = 0; i < batch; ++i) {
      for (size_t k = 0; k < a[i].size(); ++k) {
        EXPECT_LE(UlpDiff(a[i][k], b[i][k]), kMaxUlps)
            << which << " triple " << i << " elem " << k << ": "
            << a[i][k] << " vs " << b[i][k];
      }
    }
  };
  compare(gh_a, gh_s, "gh");
  compare(gr_a, gr_s, "gr");
  compare(gt_a, gt_s, "gt");
}

TEST(SimdParityTest, ScoreBatchMatchesForcedScalarForAllScorers) {
  for (const std::string& name : ListScoringFunctions()) {
    for (int dim : kDims) {
      for (size_t batch : kBatchSizes) {
        for (bool pad : {false, true}) {
          ExpectScoreParity(name, dim, batch, pad);
        }
      }
    }
  }
}

TEST(SimdParityTest, BackwardBatchMatchesForcedScalarForAllScorers) {
  for (const std::string& name : ListScoringFunctions()) {
    for (int dim : kDims) {
      for (size_t batch : kBatchSizes) {
        for (bool pad : {false, true}) {
          ExpectBackwardParity(name, dim, batch, pad);
        }
      }
    }
  }
}

TEST(SimdParityTest, PaddedAndCompactTablesScoreBitIdentically) {
  // Kernels must never read padding: the same logical contents in a
  // padded and a compact table must give bit-identical scores (the
  // row-aware initializers guarantee identical logical contents for the
  // same seed).
  for (const std::string& name : ListScoringFunctions()) {
    for (int dim : {7, 15, 100}) {
      for (size_t batch : {size_t{32}}) {
        SCOPED_TRACE(name + " dim=" + std::to_string(dim));
        Workbench padded(name, dim, batch, /*pad=*/true, /*seed=*/42);
        Workbench compact(name, dim, batch, /*pad=*/false, /*seed=*/42);
        std::vector<double> out_p(batch), out_c(batch);
        padded.scorer->ScoreBatch(padded.h.data(), padded.r.data(),
                                  padded.t.data(), dim, batch, out_p.data());
        compact.scorer->ScoreBatch(compact.h.data(), compact.r.data(),
                                   compact.t.data(), dim, batch,
                                   out_c.data());
        EXPECT_EQ(out_p, out_c);
      }
    }
  }
}

TEST(SimdParityTest, BackwardAliasedGradientSlotsMatchScalarOrder) {
  // The BackwardBatch contract allows gradient pointers to alias across
  // (and within) triples — callers fold a shared entity's gradient into
  // one slot. SIMD kernels must preserve the per-slot accumulation order.
  for (const std::string& name : {std::string("transe"),
                                  std::string("distmult"),
                                  std::string("complex")}) {
    const int dim = 23;  // Vector body + tail.
    const size_t batch = 16;
    SCOPED_TRACE(name);
    Workbench wb(name, dim, batch, /*pad=*/true, /*seed=*/7);
    const int ew = wb.entities.width();
    const int rw = wb.relations.width();
    std::vector<float> coeff(batch, 0.75f);

    auto run = [&](bool force_scalar) {
      // One shared entity-gradient slot and one shared relation slot for
      // ALL triples and both sides — maximal aliasing.
      std::vector<float> shared_e(ew, 0.125f);
      std::vector<float> shared_r(rw, -0.25f);
      std::vector<float*> pe(batch, shared_e.data());
      std::vector<float*> pr(batch, shared_r.data());
      if (force_scalar) {
        simd::ScopedForcePath force(simd::Path::kScalar);
        wb.scorer->BackwardBatch(wb.h.data(), wb.r.data(), wb.t.data(), dim,
                                 batch, coeff.data(), pe.data(), pr.data(),
                                 pe.data());
      } else {
        wb.scorer->BackwardBatch(wb.h.data(), wb.r.data(), wb.t.data(), dim,
                                 batch, coeff.data(), pe.data(), pr.data(),
                                 pe.data());
      }
      return std::make_pair(shared_e, shared_r);
    };

    const auto [e_active, r_active] = run(false);
    const auto [e_scalar, r_scalar] = run(true);
    for (int k = 0; k < ew; ++k) {
      EXPECT_LE(UlpDiff(e_active[k], e_scalar[k]), 64)
          << "entity slot elem " << k;
    }
    for (int k = 0; k < rw; ++k) {
      EXPECT_LE(UlpDiff(r_active[k], r_scalar[k]), 64)
          << "relation slot elem " << k;
    }
  }
}

TEST(SimdParityTest, ForcePathOverridesDispatch) {
  const simd::Path original = simd::ActivePath();
  {
    simd::ScopedForcePath force(simd::Path::kScalar);
    EXPECT_EQ(simd::ActivePath(), simd::Path::kScalar);
    EXPECT_STREQ(simd::ActivePathName(), "scalar");
  }
  EXPECT_EQ(simd::ActivePath(), original);
  // The active path is always one the host can actually run.
  EXPECT_TRUE(simd::PathAvailable(simd::ActivePath()));
}

TEST(SimdParityTest, PaddedWidthRoundsUpToLaneMultiple) {
  EXPECT_EQ(simd::PaddedWidth(1), simd::kPadLanes);
  EXPECT_EQ(simd::PaddedWidth(simd::kPadLanes), simd::kPadLanes);
  EXPECT_EQ(simd::PaddedWidth(simd::kPadLanes + 1), 2 * simd::kPadLanes);
  EXPECT_EQ(simd::PaddedWidth(100), ((100 + simd::kPadLanes - 1) /
                                     simd::kPadLanes) * simd::kPadLanes);
}

}  // namespace
}  // namespace nsc
