// CheckpointSet: the crash-recovery contract. A corruption MATRIX
// (truncation at every section boundary, single-bit flips, bad magic)
// proves LoadModel rejects every torn/corrupt shape a crash can leave,
// and the recovery tests prove LoadLatestValid walks past them to the
// newest valid step. The fault-injected cases reproduce actual
// killed-writer states (torn file on disk) rather than hand-crafted ones.
#include "embedding/checkpoint_set.h"

#include <dirent.h>
#include <sys/stat.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "embedding/checkpoint.h"
#include "util/fault.h"

namespace nsc {
namespace {

KgeModel MakeModel(uint64_t seed) {
  KgeModel model(17, 4, 6, MakeScoringFunction("transe"));
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fresh empty scratch directory under the test tmpdir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/ckptset_" + name;
  DIR* existing = ::opendir(dir.c_str());
  if (existing != nullptr) {
    for (const dirent* e = ::readdir(existing); e != nullptr;
         e = ::readdir(existing)) {
      const std::string entry = e->d_name;
      if (entry != "." && entry != "..") {
        std::remove((dir + "/" + entry).c_str());
      }
    }
    ::closedir(existing);
  } else {
    ::mkdir(dir.c_str(), 0777);
  }
  return dir;
}

TEST(CheckpointSetTest, WriteThenLoadLatestValid) {
  const std::string dir = ScratchDir("roundtrip");
  CheckpointSet set(dir);
  const KgeModel model = MakeModel(3);
  ASSERT_TRUE(set.Write(model, 42).ok());

  auto loaded = set.LoadLatestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().step, 42);
  EXPECT_TRUE(loaded.value().skipped.empty());
  EXPECT_EQ(loaded.value().model.entity_table().LogicalCopy(),
            model.entity_table().LogicalCopy());
}

TEST(CheckpointSetTest, RetentionPrunesOldestBeyondKeep) {
  const std::string dir = ScratchDir("retention");
  CheckpointSetOptions options;
  options.keep = 3;
  CheckpointSet set(dir, options);
  for (int64_t step = 1; step <= 5; ++step) {
    ASSERT_TRUE(set.Write(MakeModel(static_cast<uint64_t>(step)), step).ok());
  }
  auto steps = set.ListSteps();
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(steps.value(), (std::vector<int64_t>{3, 4, 5}));
}

TEST(CheckpointSetTest, EmptyDirectoryIsNotFound) {
  const std::string dir = ScratchDir("empty");
  CheckpointSet set(dir);
  ASSERT_TRUE(set.Init().ok());
  auto loaded = set.LoadLatestValid();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointSetTest, UnlistableDirectoryIsIOError) {
  CheckpointSet set("/nonexistent/checkpoints");
  auto loaded = set.LoadLatestValid();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// The corruption matrix: a v2 checkpoint truncated at EVERY section
// boundary (and a few interior points) must be rejected. Boundaries for
// the 17x4x6 transe model: magic 8, name_len 4, name 6, shape 12, entity
// table 17*6*4, relation table 4*6*4, CRC trailer 4.
TEST(CheckpointSetTest, TruncationAtEverySectionBoundaryRejected) {
  const std::string dir = ScratchDir("trunc_matrix");
  CheckpointSet set(dir);
  ASSERT_TRUE(set.Write(MakeModel(7), 1).ok());
  const std::string path = set.CheckpointPath(1);
  const std::string bytes = ReadFile(path);

  const std::size_t magic = 8;
  const std::size_t name_len_end = magic + 4;
  const std::size_t name_end = name_len_end + 6;  // "transe"
  const std::size_t shape_end = name_end + 12;
  const std::size_t entities_end = shape_end + 17 * 6 * sizeof(float);
  const std::size_t relations_end = entities_end + 4 * 6 * sizeof(float);
  ASSERT_EQ(bytes.size(), relations_end + 4);  // + CRC trailer.

  const std::vector<std::size_t> cuts = {
      0,                  // Empty file.
      magic / 2,          // Mid-magic.
      magic,              // Magic only.
      name_len_end,       // Through the name length.
      name_end - 3,       // Mid-name.
      name_end,           // Through the name.
      shape_end - 4,      // Mid-shape.
      shape_end,          // Through the shape.
      shape_end + 10,     // Mid-entity-table (not row-aligned).
      entities_end,       // Through the entity table.
      relations_end - 2,  // Mid-relation-table.
      relations_end,      // Everything but the CRC.
      bytes.size() - 1,   // One byte short of complete.
  };
  for (const std::size_t cut : cuts) {
    WriteFile(path, bytes.substr(0, cut));
    auto loaded = LoadModel(path);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut << " was accepted";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "cut at " << cut;
    // And recovery refuses to resurrect it.
    auto recovered = set.LoadLatestValid();
    ASSERT_FALSE(recovered.ok()) << "cut at " << cut;
    EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
  }
}

// Single-bit flips anywhere in the file must be rejected — in the body
// via CRC mismatch, in the magic via unknown-format, in the trailer via
// CRC mismatch. "Improbable to load garbage" became "detected".
TEST(CheckpointSetTest, SingleBitFlipsRejected) {
  const std::string dir = ScratchDir("bitflip");
  CheckpointSet set(dir);
  ASSERT_TRUE(set.Write(MakeModel(11), 1).ok());
  const std::string path = set.CheckpointPath(1);
  const std::string bytes = ReadFile(path);

  const std::vector<std::size_t> offsets = {
      0,                 // Magic.
      7,                 // Last magic byte (version digit).
      9,                 // Name length.
      14,                // Scorer name.
      21,                // Shape.
      40,                // Entity table.
      bytes.size() / 2,  // Deep in the tables.
      bytes.size() - 3,  // CRC trailer.
  };
  for (const std::size_t offset : offsets) {
    for (const int bit : {0, 7}) {
      std::string corrupt = bytes;
      corrupt[offset] = static_cast<char>(corrupt[offset] ^ (1 << bit));
      WriteFile(path, corrupt);
      auto loaded = LoadModel(path);
      ASSERT_FALSE(loaded.ok())
          << "bit " << bit << " at offset " << offset << " was accepted";
      EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(CheckpointSetTest, WrongAndShortMagicRejected) {
  const std::string dir = ScratchDir("magic");
  CheckpointSet set(dir);
  ASSERT_TRUE(set.Write(MakeModel(13), 1).ok());
  const std::string path = set.CheckpointPath(1);
  const std::string bytes = ReadFile(path);

  std::string wrong = bytes;
  wrong.replace(0, 8, "NSCKPT99");
  WriteFile(path, wrong);
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kInvalidArgument);

  WriteFile(path, "NSCK");  // Shorter than any magic.
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointSetTest, RecoverySkipsCorruptNewestFiles) {
  const std::string dir = ScratchDir("recovery_order");
  CheckpointSet set(dir);
  const KgeModel step2_model = MakeModel(2);
  ASSERT_TRUE(set.Write(MakeModel(1), 1).ok());
  ASSERT_TRUE(set.Write(step2_model, 2).ok());
  ASSERT_TRUE(set.Write(MakeModel(3), 3).ok());
  ASSERT_TRUE(set.Write(MakeModel(4), 4).ok());

  // Tear the two newest; recovery must land on step 2, reporting both
  // skipped files.
  const std::string newest = ReadFile(set.CheckpointPath(4));
  WriteFile(set.CheckpointPath(4), newest.substr(0, newest.size() / 3));
  WriteFile(set.CheckpointPath(3), "NSCKPT02 torn beyond recognition");

  auto loaded = set.LoadLatestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().step, 2);
  EXPECT_EQ(loaded.value().skipped.size(), 2u);
  EXPECT_EQ(loaded.value().model.entity_table().LogicalCopy(),
            step2_model.entity_table().LogicalCopy());
}

TEST(CheckpointSetTest, ManifestIsAdvisoryOnly) {
  const std::string dir = ScratchDir("manifest");
  CheckpointSet set(dir);
  ASSERT_TRUE(set.Write(MakeModel(5), 7).ok());

  // A lying manifest (crash between data file and manifest, or plain
  // corruption) must not affect recovery: it rescans real files.
  WriteFile(dir + "/MANIFEST", "9999 ckpt-9999.nsc\n");
  auto loaded = set.LoadLatestValid();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().step, 7);

  std::remove((dir + "/MANIFEST").c_str());
  loaded = set.LoadLatestValid();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().step, 7);
}

#if NSC_FAULTS

// A fault-injected torn write: the writer "crashes" mid-file (kTruncate
// leaves the torn prefix on disk exactly as a killed process would), the
// Write reports the failure, and recovery returns the previous step.
TEST(CheckpointSetTest, InjectedTornWriteIsSkippedByRecovery) {
  const std::string dir = ScratchDir("torn_fault");
  CheckpointSet set(dir);
  const KgeModel good = MakeModel(21);
  ASSERT_TRUE(set.Write(good, 1).ok());

  {
    FaultSpec spec;
    spec.action = FaultAction::kTruncate;
    spec.trigger = FaultTrigger::kNthHit;
    spec.n = 6;  // Tear in the middle of the entity table rows.
    spec.truncate_at = 3;
    ScopedFault fault("ckpt.write", spec);
    const Status status = set.Write(MakeModel(22), 2);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIOError);
  }

  // The torn file is ON DISK (crash semantics: no cleanup)...
  EXPECT_FALSE(LoadModel(set.CheckpointPath(2)).ok());
  // ...and recovery walks past it to the last valid step.
  auto loaded = set.LoadLatestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().step, 1);
  EXPECT_EQ(loaded.value().skipped.size(), 1u);
  EXPECT_EQ(loaded.value().model.entity_table().LogicalCopy(),
            good.entity_table().LogicalCopy());
}

TEST(CheckpointSetTest, InjectedOpenFailureFailsCleanly) {
  const std::string dir = ScratchDir("open_fault");
  CheckpointSet set(dir);
  FaultSpec spec;
  spec.action = FaultAction::kError;
  ScopedFault fault("ckpt.open", spec);
  const Status status = set.Write(MakeModel(31), 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// The crash-restart test: the process REALLY dies (kAbort) mid-write,
// and a fresh "restarted" CheckpointSet recovers to the newest valid
// step. gtest death tests fork, so the abort kills only the child — the
// parent observes the exact on-disk state the crash left.
TEST(CheckpointSetDeathTest, CrashMidWriteRecoversAfterRestart) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = ScratchDir("crash_restart");
  {
    CheckpointSet set(dir);
    ASSERT_TRUE(set.Write(MakeModel(41), 10).ok());
  }

  EXPECT_DEATH(
      {
        FaultSpec spec;
        spec.action = FaultAction::kAbort;
        spec.trigger = FaultTrigger::kNthHit;
        spec.n = 8;  // Mid-entity-table.
        FaultRegistry::Global().Arm("ckpt.write", spec);
        CheckpointSet dying(dir);
        (void)dying.Write(MakeModel(42), 11);
      },
      "injected abort at point 'ckpt.write'");

  // "Restart": a new CheckpointSet over the same directory. The torn
  // ckpt-11 from the killed child must be skipped.
  CheckpointSet restarted(dir);
  auto steps = restarted.ListSteps();
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(steps.value(), (std::vector<int64_t>{10, 11}));
  auto loaded = restarted.LoadLatestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().step, 10);
  EXPECT_EQ(loaded.value().skipped.size(), 1u);
}

#endif  // NSC_FAULTS

}  // namespace
}  // namespace nsc
