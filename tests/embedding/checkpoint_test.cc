#include "embedding/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace nsc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

KgeModel MakeModel(const std::string& scorer, uint64_t seed = 5) {
  KgeModel model(17, 4, 6, MakeScoringFunction(scorer));
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

TEST(CheckpointTest, RoundTripPreservesEverything) {
  const std::string path = TempPath("roundtrip.nsckpt");
  const KgeModel model = MakeModel("transd");
  ASSERT_TRUE(SaveModel(model, path).ok());

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const KgeModel& copy = loaded.value();
  EXPECT_EQ(copy.scorer().name(), "transd");
  EXPECT_EQ(copy.num_entities(), 17);
  EXPECT_EQ(copy.num_relations(), 4);
  EXPECT_EQ(copy.dim(), 6);
  EXPECT_EQ(copy.entity_table().LogicalCopy(),
            model.entity_table().LogicalCopy());
  EXPECT_EQ(copy.relation_table().LogicalCopy(),
            model.relation_table().LogicalCopy());
  // Scores identical on a few probes.
  for (EntityId h = 0; h < 5; ++h) {
    EXPECT_DOUBLE_EQ(copy.Score(h, 1, 16 - h), model.Score(h, 1, 16 - h));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundTripEveryScorer) {
  for (const std::string& scorer : ListScoringFunctions()) {
    const std::string path = TempPath("rt_" + scorer + ".nsckpt");
    const KgeModel model = MakeModel(scorer);
    ASSERT_TRUE(SaveModel(model, path).ok()) << scorer;
    auto loaded = LoadModel(path);
    ASSERT_TRUE(loaded.ok()) << scorer << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value().scorer().name(), scorer);
    EXPECT_EQ(loaded.value().entity_table().LogicalCopy(),
              model.entity_table().LogicalCopy());
    std::remove(path.c_str());
  }
}

TEST(CheckpointTest, MissingFileIsIOError) {
  auto loaded = LoadModel("/nonexistent/x.nsckpt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(CheckpointTest, GarbageFileIsInvalidArgument) {
  const std::string path = TempPath("garbage.nsckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint at all";
  }
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileIsInvalidArgument) {
  const std::string path = TempPath("trunc.nsckpt");
  const KgeModel model = MakeModel("transe");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Chop the file short.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LegacyV1FilesStillLoad) {
  // A v1 file is a v2 file with the old magic and no CRC trailer. Build
  // one from fresh v2 bytes so the body layout is provably shared.
  const std::string path = TempPath("legacy_v1.nsckpt");
  const KgeModel model = MakeModel("transh");
  ASSERT_TRUE(SaveModel(model, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.replace(0, 8, "NSCKPT01");
  bytes.resize(bytes.size() - 4);  // Drop the CRC trailer.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().scorer().name(), "transh");
  EXPECT_EQ(loaded.value().entity_table().LogicalCopy(),
            model.entity_table().LogicalCopy());
  EXPECT_EQ(loaded.value().relation_table().LogicalCopy(),
            model.relation_table().LogicalCopy());
  std::remove(path.c_str());
}

TEST(CheckpointTest, SingleBitFlipIsInvalidArgument) {
  // The CRC trailer turns silent body corruption into a load error.
  const std::string path = TempPath("bitflip.nsckpt");
  const KgeModel model = MakeModel("transe");
  ASSERT_TRUE(SaveModel(model, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit deep in the float tables — a spot v1 could not detect.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TrailingBytesRejected) {
  const std::string path = TempPath("trailing.nsckpt");
  const KgeModel model = MakeModel("transe");
  ASSERT_TRUE(SaveModel(model, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsc
