// Shard-count-invariance property suite for ShardedEmbeddingTable.
//
// Sharding is pure layout: the contract of this PR is that NOTHING the
// library computes — training trajectories (serial AND Hogwild),
// link-prediction metrics, 1-vs-all sweeps, fused top-K retrieval,
// candidate gathers, RNG init streams, checkpoint bytes — changes by one
// bit when the entity table is split into shards. Every test here pins
// that property across shard targets {1, 2, 7, 16} and, where SIMD
// kernels are involved, across padded/compact layouts × native /
// forced-scalar dispatch.
//
// The file is also the regression home of the latent-assumption audit:
// every converted `data() + row * stride` base-pointer site (the model's
// Row(0) sweep bases, the range sweeps, the candidate gather, the
// optimizer moment rows) has a test that straddles shard boundaries.
#include "embedding/sharded_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "embedding/checkpoint.h"
#include "embedding/initializer.h"
#include "embedding/model.h"
#include "core/nscaching_sampler.h"
#include "kg/kg_index.h"
#include "kg/synthetic.h"
#include "sampler/bernoulli_sampler.h"
#include "train/link_prediction.h"
#include "train/trainer.h"
#include "util/rng.h"
#include "util/simd.h"

namespace nsc {
namespace {

constexpr int kShardTargets[] = {1, 2, 7, 16};

// Deterministic per-cell fill so layout bugs (wrong shard, wrong local
// row, padding bleed) show up as value mismatches, not just crashes.
float Cell(int32_t row, int col) {
  return static_cast<float>(row) * 131.0f + static_cast<float>(col) * 0.25f;
}

void FillPattern(ShardedEmbeddingTable* table) {
  for (int32_t r = 0; r < table->rows(); ++r) {
    float* row = table->Row(r);
    for (int c = 0; c < table->width(); ++c) row[c] = Cell(r, c);
  }
}

// ---------------------------------------------------------------------------
// Geometry & boundary cases
// ---------------------------------------------------------------------------

TEST(ShardedTableGeometryTest, RowsResolveIdenticallyToSingleSlab) {
  for (const int32_t rows : {1, 5, 64, 100, 129}) {
    for (const int target : kShardTargets) {
      ShardOptions opts;
      opts.target_shards = target;
      ShardedEmbeddingTable sharded(rows, 12, simd::kPadLanes, opts);
      ShardedEmbeddingTable flat(rows, 12, simd::kPadLanes);
      FillPattern(&sharded);
      FillPattern(&flat);
      EXPECT_EQ(sharded.LogicalCopy(), flat.LogicalCopy())
          << "rows=" << rows << " target=" << target;
      // The realized shard count never exceeds the target, shards tile
      // the row space exactly, and the block is a power of two.
      EXPECT_LE(sharded.num_shards(), target);
      EXPECT_EQ(sharded.rows_per_shard() & (sharded.rows_per_shard() - 1), 0);
      int32_t covered = 0;
      for (int s = 0; s < sharded.num_shards(); ++s) {
        EXPECT_EQ(sharded.shard_first_row(s), covered);
        covered += sharded.shard(s).rows();
      }
      EXPECT_EQ(covered, rows);
    }
  }
}

TEST(ShardedTableGeometryTest, EveryShardRowIs64ByteAligned) {
  ShardOptions opts;
  opts.target_shards = 7;
  const ShardedEmbeddingTable table(100, 12, simd::kPadLanes, opts);
  for (int s = 0; s < table.num_shards(); ++s) {
    for (int32_t r = 0; r < table.shard(s).rows(); ++r) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(table.shard(s).Row(r)) %
                    simd::kRowAlignment,
                0u)
          << "shard " << s << " row " << r;
    }
  }
}

TEST(ShardedTableGeometryTest, ShardCountGreaterThanRows) {
  // target 16 over 5 rows degenerates to one row per shard — never an
  // empty shard, never an out-of-range resolve.
  ShardOptions opts;
  opts.target_shards = 16;
  ShardedEmbeddingTable table(5, 4);
  ShardedEmbeddingTable degenerate(5, 4, 1, opts);
  FillPattern(&table);
  FillPattern(&degenerate);
  EXPECT_EQ(degenerate.num_shards(), 5);
  EXPECT_EQ(degenerate.rows_per_shard(), 1);
  EXPECT_EQ(degenerate.LogicalCopy(), table.LogicalCopy());
}

TEST(ShardedTableGeometryTest, RowsNotDivisibleByBlockLeaveShortLastShard) {
  ShardOptions opts;
  opts.target_shards = 7;
  const ShardedEmbeddingTable table(100, 6);
  const ShardedEmbeddingTable sharded(100, 6, 1, opts);
  // ceil(100 / 7) = 15 → block 16 → 7 shards, the last holding 4 rows.
  EXPECT_EQ(sharded.rows_per_shard(), 16);
  EXPECT_EQ(sharded.num_shards(), 7);
  EXPECT_EQ(sharded.shard(6).rows(), 4);
  EXPECT_EQ(sharded.rows(), table.rows());
}

TEST(ShardedTableGeometryTest, AdoptedSlabIsZeroCopySingleShard) {
  EmbeddingTable slab(10, 6, simd::kPadLanes);
  for (int32_t r = 0; r < slab.rows(); ++r) {
    for (int c = 0; c < slab.width(); ++c) slab.Row(r)[c] = Cell(r, c);
  }
  const float* base = slab.Row(0);
  const int stride = slab.stride();
  const ShardedEmbeddingTable adopted(std::move(slab));
  EXPECT_EQ(adopted.num_shards(), 1);
  for (int32_t r = 0; r < adopted.rows(); ++r) {
    EXPECT_EQ(adopted.Row(r), base + static_cast<size_t>(r) * stride);
  }
}

TEST(ShardedTableGeometryTest, ZerosLikeMirrorsGeometry) {
  ShardOptions opts;
  opts.target_shards = 7;
  ShardedEmbeddingTable table(100, 12, simd::kPadLanes, opts);
  FillPattern(&table);
  const ShardedEmbeddingTable zeros = ShardedEmbeddingTable::ZerosLike(table);
  EXPECT_EQ(zeros.rows(), table.rows());
  EXPECT_EQ(zeros.width(), table.width());
  EXPECT_EQ(zeros.stride(), table.stride());
  EXPECT_EQ(zeros.num_shards(), table.num_shards());
  for (int s = 0; s < table.num_shards(); ++s) {
    EXPECT_EQ(zeros.shard(s).rows(), table.shard(s).rows());
    EXPECT_EQ(zeros.shard(s).stride(), table.shard(s).stride());
  }
  for (const float v : zeros.LogicalCopy()) EXPECT_EQ(v, 0.0f);
}

TEST(ShardedTableGeometryTest, CopyLogicalFromAcrossLayoutsAndShardings) {
  ShardOptions seven;
  seven.target_shards = 7;
  ShardOptions two;
  two.target_shards = 2;
  ShardedEmbeddingTable src(100, 12, 1, two);  // compact, 2 shards
  FillPattern(&src);
  ShardedEmbeddingTable dst(100, 12, simd::kPadLanes, seven);
  dst.CopyLogicalFrom(src);
  EXPECT_EQ(dst.LogicalCopy(), src.LogicalCopy());
}

TEST(ShardedTableFuzzTest, RandomRowIdsStraddlingShardEdges) {
  Rng rng(17);
  for (int it = 0; it < 50; ++it) {
    const int32_t rows = 1 + static_cast<int32_t>(rng.UniformInt(260));
    const int target = 1 + static_cast<int>(rng.UniformInt(24));
    ShardOptions opts;
    opts.target_shards = target;
    ShardedEmbeddingTable table(rows, 5, simd::kPadLanes, opts);
    FillPattern(&table);
    // Every shard-boundary row (first/last of each shard) resolves to
    // the same memory through the global and the shard-local accessors.
    for (int s = 0; s < table.num_shards(); ++s) {
      const int32_t first = table.shard_first_row(s);
      const int32_t last = first + table.shard(s).rows() - 1;
      EXPECT_EQ(table.Row(first), table.shard(s).Row(0));
      EXPECT_EQ(table.Row(last),
                table.shard(s).Row(table.shard(s).rows() - 1));
    }
    // Random global rows carry the expected pattern.
    for (int probe = 0; probe < 20; ++probe) {
      const int32_t r = static_cast<int32_t>(rng.UniformInt(rows));
      for (int c = 0; c < table.width(); ++c) {
        EXPECT_EQ(table.Row(r)[c], Cell(r, c));
      }
    }
    // ForEachSlab tiles any sub-range exactly once, in increasing row
    // order (the precondition of the merged top-K collector).
    const auto first =
        static_cast<std::size_t>(rng.UniformInt(static_cast<uint64_t>(rows)));
    const std::size_t count = static_cast<std::size_t>(
        rng.UniformInt(static_cast<uint64_t>(rows) - first + 1));
    std::size_t next = first;
    table.ForEachSlab(first, count,
                      [&](int s, const float* base, std::size_t global_first,
                          std::size_t n) {
                        EXPECT_EQ(global_first, next);
                        EXPECT_GT(n, 0u);
                        EXPECT_EQ(base,
                                  table.Row(static_cast<int32_t>(global_first)));
                        EXPECT_EQ(s, static_cast<int>(global_first /
                                                      static_cast<std::size_t>(
                                                          table.rows_per_shard())));
                        next = global_first + n;
                      });
    EXPECT_EQ(next, first + count);
  }
}

TEST(ShardedTableDeathTest, MismatchedShardAndScorerWidthsAbort) {
  // Mirrors the PR 3 adopting-ctor CHECK: a scorer must never interpret
  // rows of the wrong shape, sharded or not.
  ShardOptions opts;
  opts.target_shards = 7;
  EXPECT_DEATH(
      {
        ShardedEmbeddingTable entities(50, 7, simd::kPadLanes, opts);
        ShardedEmbeddingTable relations(4, 6, simd::kPadLanes);
        KgeModel model(6, MakeScoringFunction("transe"), std::move(entities),
                       std::move(relations));
      },
      "width does not match");
}

// ---------------------------------------------------------------------------
// Shard-count invariance: sweeps, retrieval, eval, training
// ---------------------------------------------------------------------------

KgeModel ShardedModel(const std::string& scorer, int32_t num_entities,
                      int32_t num_relations, int dim, int target_shards,
                      TableLayout layout, uint64_t seed) {
  ShardOptions opts;
  opts.target_shards = target_shards;
  KgeModel model(num_entities, num_relations, dim, MakeScoringFunction(scorer),
                 layout, opts);
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

TEST(ShardInvarianceTest, XavierInitStreamIndependentOfShardCount) {
  for (const TableLayout layout : {TableLayout::kPadded, TableLayout::kCompact}) {
    const KgeModel reference =
        ShardedModel("complex", 100, 5, 8, 1, layout, 11);
    for (const int target : kShardTargets) {
      const KgeModel model = ShardedModel("complex", 100, 5, 8, target, layout, 11);
      EXPECT_EQ(model.entity_table().LogicalCopy(),
                reference.entity_table().LogicalCopy())
          << "target=" << target;
      EXPECT_EQ(model.relation_table().LogicalCopy(),
                reference.relation_table().LogicalCopy());
    }
  }
}

// Runs `body` once on the native dispatch path and once forced-scalar.
template <typename Fn>
void ForEachDispatchPath(Fn&& body) {
  body("native");
  {
    simd::ScopedForcePath force(simd::Path::kScalar);
    body("scalar");
  }
}

TEST(ShardInvarianceTest, SweepsAndRangesBitIdentical) {
  // Regression for the converted ScoreAllHeads/Tails + Score*Range
  // Row(0)-base sites: per-shard sweeps must reproduce the single-slab
  // sweep bit-for-bit, including ranges straddling shard edges.
  const int32_t kEntities = 150;
  for (const std::string& scorer : {std::string("transe"), std::string("complex")}) {
    for (const TableLayout layout :
         {TableLayout::kPadded, TableLayout::kCompact}) {
      ForEachDispatchPath([&](const char* path) {
        const KgeModel reference =
            ShardedModel(scorer, kEntities, 6, 10, 1, layout, 23);
        std::vector<double> want(kEntities);
        reference.ScoreAllHeads(2, 7, want.data());
        std::vector<double> want_tails(kEntities);
        reference.ScoreAllTails(3, 4, want_tails.data());
        for (const int target : kShardTargets) {
          const KgeModel model =
              ShardedModel(scorer, kEntities, 6, 10, target, layout, 23);
          std::vector<double> got(kEntities);
          model.ScoreAllHeads(2, 7, got.data());
          EXPECT_EQ(got, want) << scorer << " target=" << target << " " << path;
          model.ScoreAllTails(3, 4, got.data());
          EXPECT_EQ(got, want_tails) << scorer << " target=" << target;
          // Sub-ranges chosen to straddle the 7-target shard edges
          // (block 32 → edges at 32, 64, ...), plus fuzzed ones.
          Rng rng(29);
          for (int probe = 0; probe < 12; ++probe) {
            const std::size_t first =
                probe < 2 ? 30 + probe
                          : static_cast<std::size_t>(rng.UniformInt(kEntities));
            const std::size_t count = static_cast<std::size_t>(
                rng.UniformInt(kEntities - static_cast<uint64_t>(first) + 1));
            std::vector<double> range(count, -1.0);
            model.ScoreHeadRange(2, 7, first, count, range.data());
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(range[i], want[first + i])
                  << scorer << " target=" << target << " first=" << first;
            }
            model.ScoreTailRange(3, 4, first, count, range.data());
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(range[i], want_tails[first + i]);
            }
          }
        }
      });
    }
  }
}

void ExpectSameEntries(const std::vector<TopKEntry>& got,
                       const std::vector<TopKEntry>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << label << " entry " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " entry " << i;
  }
}

TEST(ShardInvarianceTest, TopKRetrievalBitIdentical) {
  // Regression for the merged-collector design: per-shard fused sweeps
  // with an index base must retrieve exactly the single-slab result —
  // same EntityIds, same score bits, same tie resolution — for every
  // k regime (tiny, mid, == |E|, > |E|).
  const int32_t kEntities = 150;
  const std::vector<std::pair<RelationId, EntityId>> head_queries = {
      {0, 3}, {2, 77}, {5, 149}};
  const std::vector<std::pair<EntityId, RelationId>> tail_queries = {
      {0, 0}, {96, 1}, {31, 4}};
  for (const std::string& scorer : {std::string("transe"), std::string("distmult")}) {
    for (const TableLayout layout :
         {TableLayout::kPadded, TableLayout::kCompact}) {
      ForEachDispatchPath([&](const char* path) {
        const KgeModel reference =
            ShardedModel(scorer, kEntities, 6, 10, 1, layout, 31);
        for (const int target : kShardTargets) {
          const KgeModel model =
              ShardedModel(scorer, kEntities, 6, 10, target, layout, 31);
          for (const std::size_t k : {std::size_t{1}, std::size_t{10},
                                      std::size_t{150}, std::size_t{200}}) {
            const std::string label = scorer + " target=" +
                                      std::to_string(target) + " k=" +
                                      std::to_string(k) + " " + path;
            std::vector<TopKEntry> want;
            std::vector<TopKEntry> got;
            reference.TopKHeads(2, 7, k, &want);
            model.TopKHeads(2, 7, k, &got);
            ExpectSameEntries(got, want, "heads " + label);
            reference.TopKTails(3, 4, k, &want);
            model.TopKTails(3, 4, k, &got);
            ExpectSameEntries(got, want, "tails " + label);

            std::vector<std::vector<TopKEntry>> want_batch;
            std::vector<std::vector<TopKEntry>> got_batch;
            reference.TopKHeadsBatch(head_queries, k, &want_batch);
            model.TopKHeadsBatch(head_queries, k, &got_batch);
            ASSERT_EQ(got_batch.size(), want_batch.size());
            for (std::size_t q = 0; q < got_batch.size(); ++q) {
              ExpectSameEntries(got_batch[q], want_batch[q],
                                "headsbatch q" + std::to_string(q) + " " + label);
            }
            reference.TopKTailsBatch(tail_queries, k, &want_batch);
            model.TopKTailsBatch(tail_queries, k, &got_batch);
            for (std::size_t q = 0; q < got_batch.size(); ++q) {
              ExpectSameEntries(got_batch[q], want_batch[q],
                                "tailsbatch q" + std::to_string(q) + " " + label);
            }
          }
        }
      });
    }
  }
}

TEST(ShardInvarianceTest, CandidateGatherPathsBitIdentical) {
  // Regression for the converted GatherCandidateRows site (NSCaching's
  // cache-refresh primitive): candidates drawn across shard boundaries
  // gather into the same slab contents regardless of shard count.
  const int32_t kEntities = 150;
  Rng rng(37);
  std::vector<EntityId> candidates;
  candidates.reserve(40);
  for (int i = 0; i < 40; ++i) {
    candidates.push_back(static_cast<EntityId>(rng.UniformInt(kEntities)));
  }
  ForEachDispatchPath([&](const char* path) {
    const KgeModel reference =
        ShardedModel("transe", kEntities, 6, 10, 1, TableLayout::kPadded, 41);
    std::vector<double> want;
    reference.ScoreHeadCandidates(1, 9, candidates, &want);
    std::vector<TopKEntry> want_topk;
    reference.TopKHeadCandidates(1, 9, candidates, 7, &want_topk);
    for (const int target : kShardTargets) {
      const KgeModel model = ShardedModel("transe", kEntities, 6, 10, target,
                                          TableLayout::kPadded, 41);
      std::vector<double> got;
      model.ScoreHeadCandidates(1, 9, candidates, &got);
      EXPECT_EQ(got, want) << "target=" << target << " " << path;
      std::vector<TopKEntry> got_topk;
      model.TopKHeadCandidates(1, 9, candidates, 7, &got_topk);
      ExpectSameEntries(got_topk, want_topk,
                        std::string("candidates target=") +
                            std::to_string(target) + " " + path);
    }
  });
}

// ---------------------------------------------------------------------------
// Training invariance (serial + Hogwild) and evaluation invariance
// ---------------------------------------------------------------------------

Dataset InvarianceDataset() {
  SyntheticKgConfig c;
  c.num_entities = 120;
  c.num_relations = 5;
  c.num_triples = 900;
  c.seed = 7;
  return GenerateSyntheticKg(c);
}

struct TrainOutcome {
  std::vector<double> losses;
  std::vector<float> entities;
  std::vector<float> relations;
};

TrainOutcome TrainSharded(const Dataset& data, const KgIndex& index,
                          const std::string& scorer,
                          const std::string& sampler_name,
                          const TrainConfig& config, int target_shards,
                          TableLayout layout, int epochs) {
  ShardOptions opts;
  opts.target_shards = target_shards;
  KgeModel model(data.num_entities(), data.num_relations(), config.dim,
                 MakeScoringFunction(scorer), layout, opts);
  Rng rng(1);
  model.InitXavier(&rng);
  std::unique_ptr<NegativeSampler> sampler;
  if (sampler_name == "nscaching") {
    NSCachingConfig nsc_config;
    nsc_config.n1 = 10;
    nsc_config.n2 = 10;
    sampler = std::make_unique<NSCachingSampler>(&model, &index, nsc_config);
  } else {
    sampler = std::make_unique<BernoulliSampler>(data.num_entities(), &index);
  }
  Trainer trainer(&model, &data.train, sampler.get(), config);
  TrainOutcome out;
  for (int e = 0; e < epochs; ++e) {
    out.losses.push_back(trainer.RunEpoch().mean_loss);
  }
  out.entities = model.entity_table().LogicalCopy();
  out.relations = model.relation_table().LogicalCopy();
  return out;
}

TEST(ShardInvarianceTest, SerialTrainingBitIdentical) {
  // The fused trainer hot path (ScoreBatch→Loss→BackwardBatch→ApplyBatch)
  // and the NSCaching cache refresh both consume the sharded table; with
  // num_threads == 1 the whole trajectory must be bit-for-bit
  // shard-count-invariant, across layouts and dispatch paths.
  const Dataset data = InvarianceDataset();
  const KgIndex index(data.train);
  TrainConfig config;
  config.dim = 12;
  config.learning_rate = 0.05;
  config.batch_size = 64;
  config.num_threads = 1;
  config.seed = 3;
  for (const std::string& sampler : {std::string("bernoulli"), std::string("nscaching")}) {
    for (const TableLayout layout :
         {TableLayout::kPadded, TableLayout::kCompact}) {
      ForEachDispatchPath([&](const char* path) {
        const TrainOutcome reference =
            TrainSharded(data, index, "transe", sampler, config, 1, layout, 2);
        for (const int target : {2, 7, 16}) {
          const TrainOutcome got = TrainSharded(data, index, "transe", sampler,
                                                config, target, layout, 2);
          EXPECT_EQ(got.losses, reference.losses)
              << sampler << " target=" << target << " " << path;
          EXPECT_EQ(got.entities, reference.entities)
              << sampler << " target=" << target << " " << path;
          EXPECT_EQ(got.relations, reference.relations)
              << sampler << " target=" << target << " " << path;
        }
      });
    }
  }
}

TEST(ShardInvarianceTest, EveryOptimizerTrainsShardInvariantly) {
  // Regression for the converted optimizer moment sites (accum_/m_/v_
  // were `data() + row * stride` over one flat buffer; they are now
  // shard-mirrored tables): sgd has no moments, adagrad one, adam two +
  // the global step — all must stay bit-identical across shard counts.
  const Dataset data = InvarianceDataset();
  const KgIndex index(data.train);
  TrainConfig config;
  config.dim = 10;
  config.learning_rate = 0.05;
  config.batch_size = 64;
  config.num_threads = 1;
  config.seed = 5;
  for (const std::string& opt : {std::string("sgd"), std::string("adagrad"), std::string("adam")}) {
    config.optimizer = opt;
    const TrainOutcome reference = TrainSharded(
        data, index, "transe", "bernoulli", config, 1, TableLayout::kPadded, 2);
    for (const int target : {7, 16}) {
      const TrainOutcome got =
          TrainSharded(data, index, "transe", "bernoulli", config, target,
                       TableLayout::kPadded, 2);
      EXPECT_EQ(got.entities, reference.entities) << opt << " target=" << target;
      EXPECT_EQ(got.relations, reference.relations) << opt;
      EXPECT_EQ(got.losses, reference.losses) << opt;
    }
  }
}

// Sampler whose negatives live in the positive triple's private row
// group: triple i is (3i, i, 3i+1) and its negative tail is 3i+2, so
// every (positive, negative) pair touches rows no other pair touches.
// That makes Hogwild execution order-independent — the one regime where
// multi-threaded training can be compared bit-for-bit.
class PrivateRowsSampler : public NegativeSampler {
 public:
  std::string name() const override { return "private_rows"; }
  NegativeSample Sample(const Triple& pos, Rng* /*rng*/) override {
    NegativeSample out;
    out.triple = {pos.h, pos.r, pos.h + 2};
    out.side = CorruptionSide::kTail;
    return out;
  }
  bool stateless_sampling() const override { return true; }
};

TEST(ShardInvarianceTest, HogwildTrainingBitIdenticalOnDisjointRows) {
  // With disjoint row groups per pair, Hogwild (3 workers) has no write
  // conflicts and must be deterministic AND shard-count-invariant: the
  // per-worker sub-ranges and per-shard allocations may carve the work
  // and memory differently, but every row sees the same update sequence.
  const int32_t kPairs = 48;
  TripleStore train(3 * kPairs, kPairs);
  for (int32_t i = 0; i < kPairs; ++i) {
    train.Add({3 * i, i, 3 * i + 1});
  }
  TrainConfig config;
  config.dim = 12;
  config.learning_rate = 0.05;
  config.optimizer = "adagrad";
  config.batch_size = 16;
  config.num_threads = 3;
  config.seed = 9;
  auto run = [&](int target_shards) {
    ShardOptions opts;
    opts.target_shards = target_shards;
    KgeModel model(train.num_entities(), train.num_relations(), config.dim,
                   MakeScoringFunction("transe"), TableLayout::kPadded, opts);
    Rng rng(1);
    model.InitXavier(&rng);
    PrivateRowsSampler sampler;
    Trainer trainer(&model, &train, &sampler, config);
    TrainOutcome out;
    for (int e = 0; e < 2; ++e) {
      out.losses.push_back(trainer.RunEpoch().mean_loss);
    }
    out.entities = model.entity_table().LogicalCopy();
    out.relations = model.relation_table().LogicalCopy();
    return out;
  };
  const TrainOutcome reference = run(1);
  // Determinism sanity check first: same sharding, same result.
  const TrainOutcome repeat = run(1);
  ASSERT_EQ(repeat.entities, reference.entities);
  for (const int target : {2, 7, 16}) {
    const TrainOutcome got = run(target);
    EXPECT_EQ(got.losses, reference.losses) << "target=" << target;
    EXPECT_EQ(got.entities, reference.entities) << "target=" << target;
    EXPECT_EQ(got.relations, reference.relations) << "target=" << target;
  }
}

TEST(ShardInvarianceTest, LinkPredictionMetricsBitIdentical) {
  // EvaluateLinkPrediction consumes the table only through the sweeps,
  // so metrics must be exactly equal across shard counts — full-MRR and
  // Hits@K-only modes, serial and threaded.
  const Dataset data = InvarianceDataset();
  const KgIndex index(data.train);
  ForEachDispatchPath([&](const char* path) {
    const KgeModel reference = ShardedModel(
        "transe", data.num_entities(), data.num_relations(), 12, 1,
        TableLayout::kPadded, 13);
    for (const int target : kShardTargets) {
      const KgeModel model = ShardedModel(
          "transe", data.num_entities(), data.num_relations(), 12, target,
          TableLayout::kPadded, 13);
      for (const int threads : {1, 3}) {
        LinkPredictionOptions options;
        options.num_threads = threads;
        const RankingMetrics want =
            EvaluateLinkPrediction(reference, data.test, index, options);
        const RankingMetrics got =
            EvaluateLinkPrediction(model, data.test, index, options);
        EXPECT_EQ(got.count(), want.count());
        EXPECT_EQ(got.mrr(), want.mrr())
            << "target=" << target << " threads=" << threads << " " << path;
        EXPECT_EQ(got.mr(), want.mr());
        EXPECT_EQ(got.hits_at(1), want.hits_at(1));
        EXPECT_EQ(got.hits_at(10), want.hits_at(10));

        LinkPredictionOptions hits_only = options;
        hits_only.hits_only = true;
        hits_only.hits_k = 10;
        const RankingMetrics want_hits =
            EvaluateLinkPrediction(reference, data.test, index, hits_only);
        const RankingMetrics got_hits =
            EvaluateLinkPrediction(model, data.test, index, hits_only);
        EXPECT_EQ(got_hits.hits_at(10), want_hits.hits_at(10))
            << "target=" << target << " threads=" << threads;
        EXPECT_EQ(got_hits.hits_at(3), want_hits.hits_at(3));
      }
    }
  });
}

TEST(ShardInvarianceTest, CheckpointReloadsIntoAnyShardCount) {
  // The on-disk format is layout-independent; a model saved from any
  // shard count must produce the identical byte stream and reload into
  // any other shard count with identical logical contents.
  const std::string path = testing::TempDir() + "/sharded_roundtrip.nsckpt";
  const KgeModel one = ShardedModel("transd", 60, 4, 6, 1, TableLayout::kPadded, 43);
  const KgeModel seven =
      ShardedModel("transd", 60, 4, 6, 7, TableLayout::kPadded, 43);
  ASSERT_TRUE(SaveModel(one, path).ok());
  std::string bytes_one;
  {
    std::ifstream in(path, std::ios::binary);
    bytes_one.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  }
  ASSERT_TRUE(SaveModel(seven, path).ok());
  std::string bytes_seven;
  {
    std::ifstream in(path, std::ios::binary);
    bytes_seven.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  EXPECT_EQ(bytes_one, bytes_seven);
  for (const int target : kShardTargets) {
    ShardOptions opts;
    opts.target_shards = target;
    auto loaded = LoadModel(path, opts);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().entity_table().LogicalCopy(),
              one.entity_table().LogicalCopy())
        << "target=" << target;
    EXPECT_EQ(loaded.value().entity_table().num_shards() <= target, true);
  }
  std::remove(path.c_str());
}

TEST(ShardInvarianceTest, ClonePreservesShardLayoutAndContents) {
  const KgeModel model =
      ShardedModel("transe", 100, 5, 8, 7, TableLayout::kPadded, 47);
  const KgeModel clone = model.Clone();
  EXPECT_EQ(clone.entity_table().num_shards(),
            model.entity_table().num_shards());
  EXPECT_EQ(clone.entity_table().LogicalCopy(),
            model.entity_table().LogicalCopy());
  EXPECT_EQ(clone.relation_table().LogicalCopy(),
            model.relation_table().LogicalCopy());
}

}  // namespace
}  // namespace nsc
