#include "embedding/model.h"

#include <gtest/gtest.h>

#include <vector>

namespace nsc {
namespace {

KgeModel MakeModel(const std::string& scorer_name, int entities = 10,
                   int relations = 3, int dim = 8, uint64_t seed = 1) {
  KgeModel model(entities, relations, dim, MakeScoringFunction(scorer_name));
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

TEST(KgeModelTest, TableShapesFollowScorerWidths) {
  const KgeModel transe = MakeModel("transe");
  EXPECT_EQ(transe.entity_table().width(), 8);
  EXPECT_EQ(transe.relation_table().width(), 8);

  const KgeModel transd = MakeModel("transd");
  EXPECT_EQ(transd.entity_table().width(), 16);
  EXPECT_EQ(transd.relation_table().width(), 16);

  const KgeModel transh = MakeModel("transh");
  EXPECT_EQ(transh.entity_table().width(), 8);
  EXPECT_EQ(transh.relation_table().width(), 16);

  const KgeModel rescal = MakeModel("rescal");
  EXPECT_EQ(rescal.relation_table().width(), 64);
}

TEST(KgeModelTest, ParameterCountMatchesTableI) {
  // TransE: (|E| + |R|) * d floats.
  const KgeModel model = MakeModel("transe", 100, 7, 16);
  EXPECT_EQ(model.num_parameters(), (100u + 7u) * 16u);
}

TEST(KgeModelTest, ScoreConsistentWithScorer) {
  const KgeModel model = MakeModel("distmult");
  const Triple x{2, 1, 5};
  const double direct = model.scorer().Score(model.entity_table().Row(2),
                                             model.relation_table().Row(1),
                                             model.entity_table().Row(5), 8);
  EXPECT_DOUBLE_EQ(model.Score(x), direct);
  EXPECT_DOUBLE_EQ(model.Score(2, 1, 5), direct);
}

TEST(KgeModelTest, CandidateScoringMatchesPointwise) {
  const KgeModel model = MakeModel("complex");
  const std::vector<EntityId> candidates = {0, 3, 7, 9};
  std::vector<double> head_scores, tail_scores;
  model.ScoreHeadCandidates(2, 4, candidates, &head_scores);
  model.ScoreTailCandidates(1, 0, candidates, &tail_scores);
  ASSERT_EQ(head_scores.size(), 4u);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(head_scores[i], model.Score(candidates[i], 2, 4));
    EXPECT_DOUBLE_EQ(tail_scores[i], model.Score(1, 0, candidates[i]));
  }
}

TEST(KgeModelTest, CloneIsDeepCopy) {
  KgeModel model = MakeModel("transe");
  KgeModel copy = model.Clone();
  EXPECT_DOUBLE_EQ(copy.Score(0, 0, 1), model.Score(0, 0, 1));
  model.entity_table().Row(0)[0] += 1.0f;
  EXPECT_NE(copy.Score(0, 0, 1), model.Score(0, 0, 1));
}

TEST(KgeModelTest, ProjectEntityEnforcesConstraint) {
  KgeModel model = MakeModel("transe");
  float* row = model.entity_table().Row(3);
  for (int i = 0; i < 8; ++i) row[i] = 10.0f;
  model.ProjectEntity(3);
  EXPECT_LE(model.entity_table().RowNorm(3, 8), 1.0f + 1e-5);
}

TEST(KgeModelTest, SemanticMatchingHasNoEntityConstraint) {
  KgeModel model = MakeModel("distmult");
  float* row = model.entity_table().Row(3);
  row[0] = 10.0f;
  model.ProjectEntity(3);
  EXPECT_FLOAT_EQ(row[0], 10.0f);  // Unconstrained family.
}

}  // namespace
}  // namespace nsc
