// Property tests for the batched scorer API: for every registered scoring
// function, ScoreBatch/BackwardBatch must match the per-triple
// Score/Backward reference within 1e-6 over random embeddings — including
// the broadcast shape used by the cache refresh (one (r, t) against many
// candidate heads) and aliased gradient buffers (shared entities folded
// into one slot).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "embedding/model.h"
#include "embedding/scoring_function.h"
#include "util/rng.h"

namespace nsc {
namespace {

std::vector<float> RandomVec(int n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Uniform(-0.8, 0.8));
  return v;
}

using ScorerParam = std::tuple<std::string, int>;

class ScorerBatchTest : public ::testing::TestWithParam<ScorerParam> {
 protected:
  void SetUp() override {
    scorer_ = MakeScoringFunction(std::get<0>(GetParam()));
    ASSERT_NE(scorer_, nullptr);
    dim_ = std::get<1>(GetParam());
    ew_ = scorer_->entity_width(dim_);
    rw_ = scorer_->relation_width(dim_);
  }

  std::unique_ptr<ScoringFunction> scorer_;
  int dim_ = 0;
  int ew_ = 0;
  int rw_ = 0;
};

TEST_P(ScorerBatchTest, ScoreBatchMatchesPerTripleScore) {
  const size_t n = 33;
  Rng rng(17 + dim_);
  std::vector<std::vector<float>> hs, rs, ts;
  std::vector<const float*> hp(n), rp(n), tp(n);
  for (size_t i = 0; i < n; ++i) {
    hs.push_back(RandomVec(ew_, &rng));
    rs.push_back(RandomVec(rw_, &rng));
    ts.push_back(RandomVec(ew_, &rng));
  }
  for (size_t i = 0; i < n; ++i) {
    hp[i] = hs[i].data();
    rp[i] = rs[i].data();
    tp[i] = ts[i].data();
  }
  std::vector<double> batch(n);
  scorer_->ScoreBatch(hp.data(), rp.data(), tp.data(), dim_, n, batch.data());
  for (size_t i = 0; i < n; ++i) {
    const double single = scorer_->Score(hp[i], rp[i], tp[i], dim_);
    EXPECT_NEAR(batch[i], single, 1e-6) << "triple " << i;
  }
}

TEST_P(ScorerBatchTest, ScoreBatchHandlesBroadcastPointers) {
  // The cache-refresh shape: many candidate heads against one (r, t).
  const size_t n = 21;
  Rng rng(29 + dim_);
  const auto r = RandomVec(rw_, &rng);
  const auto t = RandomVec(ew_, &rng);
  std::vector<std::vector<float>> hs;
  std::vector<const float*> hp(n), rp(n, r.data()), tp(n, t.data());
  for (size_t i = 0; i < n; ++i) hs.push_back(RandomVec(ew_, &rng));
  for (size_t i = 0; i < n; ++i) hp[i] = hs[i].data();
  std::vector<double> batch(n);
  scorer_->ScoreBatch(hp.data(), rp.data(), tp.data(), dim_, n, batch.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(batch[i], scorer_->Score(hp[i], r.data(), t.data(), dim_),
                1e-6);
  }
}

TEST_P(ScorerBatchTest, BackwardBatchMatchesPerTripleBackward) {
  const size_t n = 13;
  Rng rng(41 + dim_);
  std::vector<std::vector<float>> hs, rs, ts;
  std::vector<const float*> hp(n), rp(n), tp(n);
  std::vector<float> coeff(n);
  for (size_t i = 0; i < n; ++i) {
    hs.push_back(RandomVec(ew_, &rng));
    rs.push_back(RandomVec(rw_, &rng));
    ts.push_back(RandomVec(ew_, &rng));
    coeff[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
  }
  for (size_t i = 0; i < n; ++i) {
    hp[i] = hs[i].data();
    rp[i] = rs[i].data();
    tp[i] = ts[i].data();
  }

  // Batched gradients.
  std::vector<std::vector<float>> bgh(n, std::vector<float>(ew_, 0.0f));
  std::vector<std::vector<float>> bgr(n, std::vector<float>(rw_, 0.0f));
  std::vector<std::vector<float>> bgt(n, std::vector<float>(ew_, 0.0f));
  std::vector<float*> ghp(n), grp(n), gtp(n);
  for (size_t i = 0; i < n; ++i) {
    ghp[i] = bgh[i].data();
    grp[i] = bgr[i].data();
    gtp[i] = bgt[i].data();
  }
  scorer_->BackwardBatch(hp.data(), rp.data(), tp.data(), dim_, n,
                         coeff.data(), ghp.data(), grp.data(), gtp.data());

  // Per-triple reference.
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> gh(ew_, 0.0f), gr(rw_, 0.0f), gt(ew_, 0.0f);
    scorer_->Backward(hp[i], rp[i], tp[i], dim_, coeff[i], gh.data(),
                      gr.data(), gt.data());
    for (int k = 0; k < ew_; ++k) {
      EXPECT_NEAR(bgh[i][k], gh[k], 1e-6) << "gh[" << i << "][" << k << "]";
      EXPECT_NEAR(bgt[i][k], gt[k], 1e-6) << "gt[" << i << "][" << k << "]";
    }
    for (int k = 0; k < rw_; ++k) {
      EXPECT_NEAR(bgr[i][k], gr[k], 1e-6) << "gr[" << i << "][" << k << "]";
    }
  }
}

TEST_P(ScorerBatchTest, BackwardBatchAccumulatesThroughAliasedBuffers) {
  // Two triples share gradient buffers (the trainer folds a shared
  // entity's gradient into one slot); the batch kernel must process
  // triples in order and accumulate, matching sequential Backward calls.
  const size_t n = 2;
  Rng rng(53 + dim_);
  const auto h = RandomVec(ew_, &rng);
  const auto r0 = RandomVec(rw_, &rng);
  const auto r1 = RandomVec(rw_, &rng);
  const auto t0 = RandomVec(ew_, &rng);
  const auto t1 = RandomVec(ew_, &rng);
  const float coeff[2] = {1.3f, -0.7f};

  // Both triples share the head row h, so gh aliases; gr is shared too.
  std::vector<float> gh(ew_, 0.0f), gr(rw_, 0.0f);
  std::vector<float> gt0(ew_, 0.0f), gt1(ew_, 0.0f);
  const float* hp[2] = {h.data(), h.data()};
  const float* rp[2] = {r0.data(), r1.data()};
  const float* tp[2] = {t0.data(), t1.data()};
  float* ghp[2] = {gh.data(), gh.data()};
  float* grp[2] = {gr.data(), gr.data()};
  float* gtp[2] = {gt0.data(), gt1.data()};
  scorer_->BackwardBatch(hp, rp, tp, dim_, n, coeff, ghp, grp, gtp);

  std::vector<float> eh(ew_, 0.0f), er(rw_, 0.0f);
  std::vector<float> et0(ew_, 0.0f), et1(ew_, 0.0f);
  scorer_->Backward(h.data(), r0.data(), t0.data(), dim_, coeff[0], eh.data(),
                    er.data(), et0.data());
  scorer_->Backward(h.data(), r1.data(), t1.data(), dim_, coeff[1], eh.data(),
                    er.data(), et1.data());
  for (int k = 0; k < ew_; ++k) {
    EXPECT_NEAR(gh[k], eh[k], 1e-6);
    EXPECT_NEAR(gt0[k], et0[k], 1e-6);
    EXPECT_NEAR(gt1[k], et1[k], 1e-6);
  }
  for (int k = 0; k < rw_; ++k) EXPECT_NEAR(gr[k], er[k], 1e-6);
}

std::vector<ScorerParam> AllScorerParams() {
  std::vector<ScorerParam> params;
  for (const std::string& name : ListScoringFunctions()) {
    params.emplace_back(name, 4);
    params.emplace_back(name, 8);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllScorers, ScorerBatchTest, ::testing::ValuesIn(AllScorerParams()),
    [](const ::testing::TestParamInfo<ScorerParam>& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Model-level batch scoring -------------------------------------------

TEST(KgeModelBatchTest, ScoreBatchMatchesScore) {
  for (const std::string& name : ListScoringFunctions()) {
    KgeModel model(40, 6, 8, MakeScoringFunction(name));
    Rng rng(7);
    model.InitXavier(&rng);
    std::vector<Triple> triples;
    for (int i = 0; i < 50; ++i) {
      triples.push_back({static_cast<EntityId>(rng.UniformInt(uint64_t{40})),
                         static_cast<RelationId>(rng.UniformInt(uint64_t{6})),
                         static_cast<EntityId>(rng.UniformInt(uint64_t{40}))});
    }
    std::vector<double> batch;
    model.ScoreBatch(triples, &batch);
    ASSERT_EQ(batch.size(), triples.size());
    for (size_t i = 0; i < triples.size(); ++i) {
      EXPECT_NEAR(batch[i], model.Score(triples[i]), 1e-6)
          << name << " triple " << i;
    }
  }
}

TEST(KgeModelBatchTest, CandidateScoringMatchesPerTripleScores) {
  // ScoreHead/TailCandidates is routed through the batched kernel — the
  // NSCaching cache-refresh hot path must stay exact.
  KgeModel model(40, 6, 8, MakeScoringFunction("complex"));
  Rng rng(13);
  model.InitXavier(&rng);
  std::vector<EntityId> candidates;
  for (int i = 0; i < 25; ++i) {
    candidates.push_back(static_cast<EntityId>(rng.UniformInt(uint64_t{40})));
  }
  std::vector<double> head_scores, tail_scores;
  model.ScoreHeadCandidates(3, 9, candidates, &head_scores);
  model.ScoreTailCandidates(9, 3, candidates, &tail_scores);
  ASSERT_EQ(head_scores.size(), candidates.size());
  ASSERT_EQ(tail_scores.size(), candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_NEAR(head_scores[i], model.Score(candidates[i], 3, 9), 1e-6);
    EXPECT_NEAR(tail_scores[i], model.Score(9, 3, candidates[i]), 1e-6);
  }
}

}  // namespace
}  // namespace nsc
