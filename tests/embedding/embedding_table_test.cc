#include "embedding/embedding_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "embedding/initializer.h"
#include "embedding/model.h"
#include "util/rng.h"
#include "util/simd.h"

namespace nsc {
namespace {

TEST(EmbeddingTableTest, ShapeAndZeroInit) {
  EmbeddingTable table(5, 3);
  EXPECT_EQ(table.rows(), 5);
  EXPECT_EQ(table.width(), 3);
  EXPECT_EQ(table.stride(), 3);
  EXPECT_FALSE(table.padded());
  EXPECT_EQ(table.size(), 15u);
  EXPECT_EQ(table.logical_size(), 15u);
  for (float v : table.data()) EXPECT_EQ(v, 0.0f);
}

TEST(EmbeddingTableTest, PaddedStrideRoundsUpToLaneMultiple) {
  EmbeddingTable table(5, 3, simd::kPadLanes);
  EXPECT_EQ(table.width(), 3);
  EXPECT_EQ(table.stride(), simd::kPadLanes);
  EXPECT_TRUE(table.padded());
  EXPECT_EQ(table.size(), 5u * simd::kPadLanes);
  EXPECT_EQ(table.logical_size(), 15u);
  // A width already on the multiple gets no padding.
  EmbeddingTable exact(5, 2 * simd::kPadLanes, simd::kPadLanes);
  EXPECT_EQ(exact.stride(), exact.width());
  EXPECT_FALSE(exact.padded());
}

TEST(EmbeddingTableTest, PaddedRowsAreAlignedAndDisjoint) {
  EmbeddingTable table(7, 3, simd::kPadLanes);
  for (int32_t r = 0; r < 7; ++r) {
    // Every row of a padded table starts on the SIMD/cache alignment
    // boundary (stride is a lane multiple and the base is aligned).
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(table.Row(r)) %
                  (simd::kPadLanes * sizeof(float)),
              0u)
        << "row " << r;
    for (int i = 0; i < 3; ++i) table.Row(r)[i] = r * 10.0f + i;
  }
  // Writes through one row never leak into the next row's logical floats.
  EXPECT_EQ(table.Row(3)[0], 30.0f);
  EXPECT_EQ(table.Row(4)[0], 40.0f);
  EXPECT_EQ(table.Row(3) + table.stride(), table.Row(4));
}

TEST(EmbeddingTableTest, InitializersAreLayoutInvariantAndLeavePaddingZero) {
  EmbeddingTable padded(6, 5, simd::kPadLanes);
  EmbeddingTable compact(6, 5);
  Rng rng_a(77), rng_b(77);
  UniformInit(&padded, -1.0, 1.0, &rng_a);
  UniformInit(&compact, -1.0, 1.0, &rng_b);
  for (int32_t r = 0; r < 6; ++r) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(padded.Row(r)[i], compact.Row(r)[i]) << r << "," << i;
    }
    for (int i = 5; i < padded.stride(); ++i) {
      EXPECT_EQ(padded.Row(r)[i], 0.0f) << "padding touched at " << r;
    }
  }
}

TEST(EmbeddingTableTest, RowViewsAreContiguousAndWritable) {
  EmbeddingTable table(3, 4);
  for (int r = 0; r < 3; ++r) {
    float* row = table.Row(r);
    for (int i = 0; i < 4; ++i) row[i] = r * 10.0f + i;
  }
  EXPECT_EQ(table.Row(1)[2], 12.0f);
  EXPECT_EQ(table.data()[1 * 4 + 2], 12.0f);
  // Rows are adjacent in memory.
  EXPECT_EQ(table.Row(0) + 4, table.Row(1));
}

TEST(EmbeddingTableTest, RowNormPrefix) {
  EmbeddingTable table(1, 4);
  float* row = table.Row(0);
  row[0] = 3.0f;
  row[1] = 4.0f;
  row[2] = 100.0f;  // Outside the prefix.
  EXPECT_FLOAT_EQ(table.RowNorm(0, 2), 5.0f);
}

TEST(EmbeddingTableTest, ProjectScalesOnlyWhenOutside) {
  EmbeddingTable table(2, 2);
  float* a = table.Row(0);
  a[0] = 3.0f;
  a[1] = 4.0f;  // Norm 5 > 1.
  table.ProjectRowToL2Ball(0, 2, 1.0f);
  EXPECT_NEAR(table.RowNorm(0, 2), 1.0f, 1e-6);
  EXPECT_NEAR(a[0] / a[1], 0.75f, 1e-6);  // Direction preserved.

  float* b = table.Row(1);
  b[0] = 0.3f;
  b[1] = 0.4f;  // Norm 0.5 <= 1: untouched.
  table.ProjectRowToL2Ball(1, 2, 1.0f);
  EXPECT_FLOAT_EQ(b[0], 0.3f);
  EXPECT_FLOAT_EQ(b[1], 0.4f);
}

TEST(EmbeddingTableTest, ProjectPrefixLeavesSuffixAlone) {
  EmbeddingTable table(1, 4);
  float* row = table.Row(0);
  row[0] = 10.0f;
  row[3] = 7.0f;
  table.ProjectRowToL2Ball(0, 2, 1.0f);
  EXPECT_NEAR(row[0], 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(row[3], 7.0f);
}

TEST(EmbeddingTableTest, CopyLogicalFromCrossesLayouts) {
  EmbeddingTable src(4, 5);  // Compact.
  Rng rng(3);
  UniformInit(&src, -1.0, 1.0, &rng);
  EmbeddingTable dst(4, 5, simd::kPadLanes);  // Padded.
  dst.CopyLogicalFrom(src);
  for (int32_t r = 0; r < 4; ++r) {
    for (int i = 0; i < 5; ++i) EXPECT_EQ(dst.Row(r)[i], src.Row(r)[i]);
    for (int i = 5; i < dst.stride(); ++i) EXPECT_EQ(dst.Row(r)[i], 0.0f);
  }
  // And back: padded → compact round-trips the logical contents.
  EmbeddingTable back(4, 5);
  back.CopyLogicalFrom(dst);
  for (int32_t r = 0; r < 4; ++r) {
    for (int i = 0; i < 5; ++i) EXPECT_EQ(back.Row(r)[i], src.Row(r)[i]);
  }
}

TEST(EmbeddingTableDeathTest, CopyLogicalFromRejectsShapeMismatch) {
  EmbeddingTable a(4, 5);
  EmbeddingTable fewer_rows(3, 5);
  EmbeddingTable wider(4, 6);
  EXPECT_DEATH(a.CopyLogicalFrom(fewer_rows), "CHECK");
  EXPECT_DEATH(a.CopyLogicalFrom(wider), "CHECK");
}

TEST(EmbeddingTableDeathTest, OutOfRangeRowAborts) {
  EmbeddingTable table(2, 2);
  EXPECT_DEATH(table.Row(2), "CHECK");
  EXPECT_DEATH(table.Row(-1), "CHECK");
}

TEST(EmbeddingTableDeathTest, ScorerRejectsTableOfWrongLogicalWidth) {
  // A scorer declared for dim d must refuse to adopt tables whose logical
  // width disagrees with what it declares — interpreting mis-shaped rows
  // would silently read the wrong floats. Padding does NOT change the
  // logical width, so a padded table of the right width is accepted.
  const int dim = 8;
  EXPECT_DEATH(
      {
        // TransE declares entity_width(8) == 8; build a width-10 table.
        KgeModel model(dim, MakeScoringFunction("transe"),
                       EmbeddingTable(20, 10), EmbeddingTable(4, dim));
      },
      "entity table width");
  EXPECT_DEATH(
      {
        // ComplEx declares relation_width(8) == 16, not 8.
        KgeModel model(dim, MakeScoringFunction("complex"),
                       EmbeddingTable(20, 16), EmbeddingTable(4, 8));
      },
      "relation table width");
}

TEST(EmbeddingTableTest, ModelAdoptsWidthMatchedTablesOfAnyLayout) {
  const int dim = 8;
  KgeModel compact(dim, MakeScoringFunction("transe"),
                   EmbeddingTable(20, dim), EmbeddingTable(4, dim));
  KgeModel padded(dim, MakeScoringFunction("complex"),
                  EmbeddingTable(20, 2 * dim, simd::kPadLanes),
                  EmbeddingTable(4, 2 * dim, simd::kPadLanes));
  EXPECT_EQ(compact.entity_table().width(), dim);
  EXPECT_EQ(padded.entity_table().width(), 2 * dim);
  EXPECT_EQ(padded.num_parameters(), 20u * 16 + 4u * 16);
}

}  // namespace
}  // namespace nsc
