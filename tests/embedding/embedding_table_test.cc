#include "embedding/embedding_table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nsc {
namespace {

TEST(EmbeddingTableTest, ShapeAndZeroInit) {
  EmbeddingTable table(5, 3);
  EXPECT_EQ(table.rows(), 5);
  EXPECT_EQ(table.width(), 3);
  EXPECT_EQ(table.size(), 15u);
  for (float v : table.data()) EXPECT_EQ(v, 0.0f);
}

TEST(EmbeddingTableTest, RowViewsAreContiguousAndWritable) {
  EmbeddingTable table(3, 4);
  for (int r = 0; r < 3; ++r) {
    float* row = table.Row(r);
    for (int i = 0; i < 4; ++i) row[i] = r * 10.0f + i;
  }
  EXPECT_EQ(table.Row(1)[2], 12.0f);
  EXPECT_EQ(table.data()[1 * 4 + 2], 12.0f);
  // Rows are adjacent in memory.
  EXPECT_EQ(table.Row(0) + 4, table.Row(1));
}

TEST(EmbeddingTableTest, RowNormPrefix) {
  EmbeddingTable table(1, 4);
  float* row = table.Row(0);
  row[0] = 3.0f;
  row[1] = 4.0f;
  row[2] = 100.0f;  // Outside the prefix.
  EXPECT_FLOAT_EQ(table.RowNorm(0, 2), 5.0f);
}

TEST(EmbeddingTableTest, ProjectScalesOnlyWhenOutside) {
  EmbeddingTable table(2, 2);
  float* a = table.Row(0);
  a[0] = 3.0f;
  a[1] = 4.0f;  // Norm 5 > 1.
  table.ProjectRowToL2Ball(0, 2, 1.0f);
  EXPECT_NEAR(table.RowNorm(0, 2), 1.0f, 1e-6);
  EXPECT_NEAR(a[0] / a[1], 0.75f, 1e-6);  // Direction preserved.

  float* b = table.Row(1);
  b[0] = 0.3f;
  b[1] = 0.4f;  // Norm 0.5 <= 1: untouched.
  table.ProjectRowToL2Ball(1, 2, 1.0f);
  EXPECT_FLOAT_EQ(b[0], 0.3f);
  EXPECT_FLOAT_EQ(b[1], 0.4f);
}

TEST(EmbeddingTableTest, ProjectPrefixLeavesSuffixAlone) {
  EmbeddingTable table(1, 4);
  float* row = table.Row(0);
  row[0] = 10.0f;
  row[3] = 7.0f;
  table.ProjectRowToL2Ball(0, 2, 1.0f);
  EXPECT_NEAR(row[0], 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(row[3], 7.0f);
}

TEST(EmbeddingTableDeathTest, OutOfRangeRowAborts) {
  EmbeddingTable table(2, 2);
  EXPECT_DEATH(table.Row(2), "CHECK");
  EXPECT_DEATH(table.Row(-1), "CHECK");
}

}  // namespace
}  // namespace nsc
