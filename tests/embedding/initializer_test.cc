#include "embedding/initializer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nsc {
namespace {

TEST(InitializerTest, XavierBoundsRespected) {
  EmbeddingTable table(100, 50);
  Rng rng(1);
  XavierUniformInit(&table, &rng);
  const double bound = std::sqrt(6.0 / 100.0);
  for (float v : table.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(InitializerTest, XavierNotAllZero) {
  EmbeddingTable table(10, 10);
  Rng rng(2);
  XavierUniformInit(&table, &rng);
  double sq = 0.0;
  for (float v : table.data()) sq += double(v) * v;
  EXPECT_GT(sq, 0.0);
}

TEST(InitializerTest, XavierDeterministicInSeed) {
  EmbeddingTable a(5, 5), b(5, 5);
  Rng ra(3), rb(3);
  XavierUniformInit(&a, &ra);
  XavierUniformInit(&b, &rb);
  EXPECT_EQ(a.data(), b.data());
}

TEST(InitializerTest, GaussianMoments) {
  EmbeddingTable table(200, 100);
  Rng rng(4);
  GaussianInit(&table, 0.5, &rng);
  double sum = 0.0, sq = 0.0;
  for (float v : table.data()) {
    sum += v;
    sq += double(v) * v;
  }
  const double n = static_cast<double>(table.size());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 0.25, 0.01);
}

TEST(InitializerTest, UniformRange) {
  EmbeddingTable table(20, 20);
  Rng rng(5);
  UniformInit(&table, 2.0, 3.0, &rng);
  for (float v : table.data()) {
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

}  // namespace
}  // namespace nsc
