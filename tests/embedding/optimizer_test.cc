#include "embedding/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nsc {
namespace {

// Minimises f(p) = 0.5 * ||p - target||^2 on one row; every optimizer must
// converge on this convex quadratic.
void DriveToTarget(Optimizer* opt, ShardedEmbeddingTable* table,
                   const std::vector<float>& target, int steps) {
  std::vector<float> grad(table->width());
  for (int s = 0; s < steps; ++s) {
    opt->BeginStep();
    float* p = table->Row(0);
    for (int i = 0; i < table->width(); ++i) grad[i] = p[i] - target[i];
    opt->Apply(table, 0, grad.data());
  }
}

TEST(SgdOptimizerTest, SingleStepIsExact) {
  ShardedEmbeddingTable table(1, 2);
  table.Row(0)[0] = 1.0f;
  table.Row(0)[1] = -2.0f;
  SgdOptimizer opt(0.1);
  const float grad[] = {0.5f, -1.0f};
  opt.Apply(&table, 0, grad);
  EXPECT_FLOAT_EQ(table.Row(0)[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(table.Row(0)[1], -2.0f + 0.1f * 1.0f);
}

TEST(SgdOptimizerTest, ConvergesOnQuadratic) {
  ShardedEmbeddingTable table(1, 3);
  SgdOptimizer opt(0.2);
  DriveToTarget(&opt, &table, {1.0f, -1.0f, 0.5f}, 200);
  EXPECT_NEAR(table.Row(0)[0], 1.0f, 1e-4);
  EXPECT_NEAR(table.Row(0)[1], -1.0f, 1e-4);
  EXPECT_NEAR(table.Row(0)[2], 0.5f, 1e-4);
}

TEST(AdagradOptimizerTest, ConvergesOnQuadratic) {
  ShardedEmbeddingTable table(1, 3);
  AdagradOptimizer opt(0.5, table);
  DriveToTarget(&opt, &table, {1.0f, -1.0f, 0.5f}, 2000);
  EXPECT_NEAR(table.Row(0)[0], 1.0f, 1e-2);
  EXPECT_NEAR(table.Row(0)[1], -1.0f, 1e-2);
}

TEST(AdagradOptimizerTest, StepSizesShrink) {
  ShardedEmbeddingTable table(1, 1);
  AdagradOptimizer opt(1.0, table);
  const float grad[] = {1.0f};
  opt.Apply(&table, 0, grad);
  const float first_step = -table.Row(0)[0];
  const float before = table.Row(0)[0];
  opt.Apply(&table, 0, grad);
  const float second_step = before - table.Row(0)[0];
  EXPECT_LT(second_step, first_step);
}

TEST(AdamOptimizerTest, FirstStepApproxLearningRate) {
  // With bias correction, Adam's first update is ~lr * sign(grad).
  ShardedEmbeddingTable table(1, 2);
  AdamOptimizer opt(0.01, table);
  opt.BeginStep();
  const float grad[] = {0.3f, -4.0f};
  opt.Apply(&table, 0, grad);
  EXPECT_NEAR(table.Row(0)[0], -0.01f, 1e-4);
  EXPECT_NEAR(table.Row(0)[1], 0.01f, 1e-4);
}

TEST(AdamOptimizerTest, ConvergesOnQuadratic) {
  ShardedEmbeddingTable table(1, 3);
  AdamOptimizer opt(0.05, table);
  DriveToTarget(&opt, &table, {1.0f, -1.0f, 0.5f}, 2000);
  EXPECT_NEAR(table.Row(0)[0], 1.0f, 2e-2);
  EXPECT_NEAR(table.Row(0)[1], -1.0f, 2e-2);
  EXPECT_NEAR(table.Row(0)[2], 0.5f, 2e-2);
}

TEST(AdamOptimizerTest, SparseRowsIndependent) {
  ShardedEmbeddingTable table(3, 2);
  AdamOptimizer opt(0.1, table);
  opt.BeginStep();
  const float grad[] = {1.0f, 1.0f};
  opt.Apply(&table, 1, grad);
  // Untouched rows remain exactly zero.
  EXPECT_EQ(table.Row(0)[0], 0.0f);
  EXPECT_EQ(table.Row(2)[1], 0.0f);
  EXPECT_NE(table.Row(1)[0], 0.0f);
}

TEST(AdamOptimizerDeathTest, ApplyBeforeBeginStepAborts) {
  ShardedEmbeddingTable table(1, 1);
  AdamOptimizer opt(0.1, table);
  const float grad[] = {1.0f};
  EXPECT_DEATH(opt.Apply(&table, 0, grad), "BeginStep");
}

TEST(OptimizerFactoryTest, KnownAndUnknownNames) {
  ShardedEmbeddingTable shape(2, 2);
  EXPECT_NE(MakeOptimizer("sgd", 0.1, shape), nullptr);
  EXPECT_NE(MakeOptimizer("adagrad", 0.1, shape), nullptr);
  EXPECT_NE(MakeOptimizer("adam", 0.1, shape), nullptr);
  EXPECT_EQ(MakeOptimizer("momentum", 0.1, shape), nullptr);
  EXPECT_EQ(MakeOptimizer("adam", 0.1, shape)->name(), "adam");
}

}  // namespace
}  // namespace nsc
