// Multi-thread stress tests for ShardedEmbeddingTable.
//
// Sharding must introduce ZERO new unsynchronized shared state: the only
// intentional races in the whole library remain the Hogwild float races
// already named in tsan.supp (trainer steps, optimizer Apply, norm
// projection, the sampler's reader side). This binary is registered in
// the ThreadSanitizer CI job with exactly that pre-existing suppression
// file — if a per-shard allocation, the shard resolve arithmetic, the
// placement log, or the shard-mirrored optimizer moments added any new
// race, TSan fails here with no suppression to hide behind.
//
// Also pins the satellite contract that checkpointing is sharding-blind:
// the byte stream saved from an N-shard model equals the unsharded one,
// and round-trips losslessly through any other shard count.
#include "embedding/sharded_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "embedding/checkpoint.h"
#include "embedding/model.h"
#include "core/nscaching_sampler.h"
#include "kg/kg_index.h"
#include "kg/synthetic.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace nsc {
namespace {

TEST(ShardedStressTest, HogwildTrainingWithConcurrentCacheRefresh) {
  // The real end-to-end workload this PR reroutes: Hogwild workers drive
  // the fused trainer hot path over a 7-shard entity table while the
  // thread-safe NSCaching sampler concurrently scores the same table
  // (cache select + refresh) from inside every worker. All embedding-row
  // races here are the pre-existing Hogwild design; everything sharding
  // added (per-shard slabs, shift/mask resolve, shard-mirrored Adagrad
  // moments) must be invisible to TSan.
  SyntheticKgConfig kg;
  kg.num_entities = 200;
  kg.num_relations = 6;
  kg.num_triples = 2400;
  kg.seed = 11;
  const Dataset data = GenerateSyntheticKg(kg);
  const KgIndex index(data.train);

  ShardOptions opts;
  opts.target_shards = 7;
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"), TableLayout::kPadded, opts);
  ASSERT_EQ(model.entity_table().num_shards(), 7);
  Rng rng(3);
  model.InitXavier(&rng);

  NSCachingConfig nsc_config;
  nsc_config.n1 = 8;
  nsc_config.n2 = 8;
  NSCachingSampler sampler(&model, &index, nsc_config);
  ASSERT_TRUE(sampler.thread_safe_sampling());

  TrainConfig config;
  config.dim = 12;
  config.learning_rate = 0.05;
  config.optimizer = "adagrad";
  config.batch_size = 64;
  config.num_threads = 4;
  config.seed = 17;
  Trainer trainer(&model, &data.train, &sampler, config);
  for (int epoch = 0; epoch < 2; ++epoch) {
    const EpochStats stats = trainer.RunEpoch();
    EXPECT_TRUE(std::isfinite(stats.mean_loss)) << "epoch " << epoch;
  }
  // Every row in every shard stays finite — a resolve bug that aliased
  // two rows or wrote past a short last shard would corrupt values long
  // before it faulted.
  for (const float v : model.entity_table().LogicalCopy()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  const CacheStats cache_stats = sampler.stats();
  EXPECT_GT(cache_stats.selections, 0);
  EXPECT_GT(cache_stats.updates, 0);
}

TEST(ShardedStressTest, ConcurrentReadersNeedNoSuppressions) {
  // With no writer, every sharded access path — global Row resolve,
  // per-shard slab sweeps, fused top-K across shard boundaries — must be
  // genuinely race-free (const reads of immutable slabs). None of the
  // tsan.supp frames appear on these stacks, so a stray write anywhere
  // in the resolve path would be reported.
  ShardOptions opts;
  opts.target_shards = 7;
  const KgeModel model = [&] {
    KgeModel m(150, 5, 10, MakeScoringFunction("distmult"),
               TableLayout::kPadded, opts);
    Rng rng(7);
    m.InitXavier(&rng);
    return m;
  }();

  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      std::vector<double> sweep(model.num_entities());
      std::vector<TopKEntry> topk;
      for (int i = 0; i < 200; ++i) {
        const auto r = static_cast<RelationId>((t + i) % 5);
        const auto e = static_cast<EntityId>((7 * t + i) % 150);
        model.ScoreAllHeads(r, e, sweep.data());
        model.TopKTails(e, r, 10, &topk);
        if (topk.size() != 10 || !std::isfinite(sweep[0])) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ShardedStressTest, PlacementLogIsThreadSafe) {
  // The one piece of genuinely NEW shared state this PR introduces is
  // the mutex-guarded ShardPlacementLog (NSC_GUARDED_BY-annotated; the
  // static-analysis job proves the lock protocol at compile time, this
  // proves it dynamically): concurrent table construction and snapshots
  // must never tear.
  ShardPlacementLog::Instance().Clear();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < 25; ++i) {
        ShardOptions opts;
        opts.target_shards = 1 + (t + i) % 9;
        opts.numa_interleave = true;  // Records one log entry per shard.
        const ShardedEmbeddingTable table(64 + t, 8, 1, opts);
        const auto snapshot = ShardPlacementLog::Instance().Snapshot();
        for (const auto& entry : snapshot) {
          ASSERT_GE(entry.shard, 0);
          ASSERT_GT(entry.bytes, 0u);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Placement was requested for every constructed shard, whether the
  // build has libnuma (node >= 0) or the recorded no-op stub (node -1).
  EXPECT_FALSE(ShardPlacementLog::Instance().Snapshot().empty());
  ShardPlacementLog::Instance().Clear();
}

TEST(ShardedStressTest, CheckpointByteStreamMatchesUnshardedAndRoundTrips) {
  auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  auto make_model = [](int target_shards) {
    ShardOptions opts;
    opts.target_shards = target_shards;
    KgeModel model(90, 4, 8, MakeScoringFunction("complex"),
                   TableLayout::kPadded, opts);
    Rng rng(29);
    model.InitXavier(&rng);
    return model;
  };
  const std::string flat_path = testing::TempDir() + "/stress_flat.nsckpt";
  const std::string sharded_path =
      testing::TempDir() + "/stress_sharded.nsckpt";

  const KgeModel flat = make_model(1);
  ASSERT_TRUE(SaveModel(flat, flat_path).ok());
  const std::string flat_bytes = read_bytes(flat_path);
  ASSERT_FALSE(flat_bytes.empty());

  for (const int target : {2, 7, 16}) {
    const KgeModel sharded = make_model(target);
    ASSERT_TRUE(SaveModel(sharded, sharded_path).ok());
    EXPECT_EQ(read_bytes(sharded_path), flat_bytes) << "target=" << target;

    // Round-trip through a *different* shard count: logical contents and
    // a re-save's bytes both survive unchanged.
    ShardOptions reload_opts;
    reload_opts.target_shards = 5;
    auto loaded = LoadModel(sharded_path, reload_opts);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().entity_table().LogicalCopy(),
              flat.entity_table().LogicalCopy());
    EXPECT_EQ(loaded.value().relation_table().LogicalCopy(),
              flat.relation_table().LogicalCopy());
    ASSERT_TRUE(SaveModel(loaded.value(), sharded_path).ok());
    EXPECT_EQ(read_bytes(sharded_path), flat_bytes)
        << "re-save after reload, target=" << target;
  }
  std::remove(flat_path.c_str());
  std::remove(sharded_path.c_str());
}

}  // namespace
}  // namespace nsc
