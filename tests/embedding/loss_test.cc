#include "embedding/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/math.h"
#include "util/rng.h"

namespace nsc {
namespace {

TEST(MarginLossTest, ActivePairValueAndGrads) {
  MarginRankingLoss loss(2.0);
  // pos=1, neg=0.5 -> 2 - 1 + 0.5 = 1.5 > 0: active.
  const LossGrad g = loss.Compute(1.0, 0.5);
  EXPECT_NEAR(g.loss, 1.5, 1e-12);
  EXPECT_EQ(g.d_pos, -1.0);
  EXPECT_EQ(g.d_neg, 1.0);
}

TEST(MarginLossTest, SeparatedPairVanishes) {
  MarginRankingLoss loss(1.0);
  // pos=5, neg=0 -> 1 - 5 + 0 = -4 <= 0: the vanishing-gradient regime.
  const LossGrad g = loss.Compute(5.0, 0.0);
  EXPECT_EQ(g.loss, 0.0);
  EXPECT_EQ(g.d_pos, 0.0);
  EXPECT_EQ(g.d_neg, 0.0);
}

TEST(MarginLossTest, BoundaryIsInactive) {
  MarginRankingLoss loss(1.0);
  const LossGrad g = loss.Compute(1.0, 0.0);  // Exactly at the margin.
  EXPECT_EQ(g.loss, 0.0);
}

TEST(MarginLossTest, HarderNegativeGivesLargerLoss) {
  MarginRankingLoss loss(2.0);
  EXPECT_GT(loss.Compute(1.0, 0.9).loss, loss.Compute(1.0, 0.1).loss);
}

TEST(LogisticLossTest, ValueMatchesDefinition) {
  LogisticLoss loss;
  const double pos = 0.7, neg = -0.3;
  const LossGrad g = loss.Compute(pos, neg);
  EXPECT_NEAR(g.loss, std::log1p(std::exp(-pos)) + std::log1p(std::exp(neg)),
              1e-12);
}

TEST(LogisticLossTest, GradsMatchFiniteDifferences) {
  LogisticLoss loss;
  const double eps = 1e-6;
  for (double pos : {-2.0, 0.0, 1.5}) {
    for (double neg : {-1.0, 0.3, 3.0}) {
      const LossGrad g = loss.Compute(pos, neg);
      const double dpos_num =
          (loss.Compute(pos + eps, neg).loss - loss.Compute(pos - eps, neg).loss) /
          (2 * eps);
      const double dneg_num =
          (loss.Compute(pos, neg + eps).loss - loss.Compute(pos, neg - eps).loss) /
          (2 * eps);
      EXPECT_NEAR(g.d_pos, dpos_num, 1e-6);
      EXPECT_NEAR(g.d_neg, dneg_num, 1e-6);
    }
  }
}

TEST(LogisticLossTest, GradientNeverFullyVanishes) {
  LogisticLoss loss;
  const LossGrad g = loss.Compute(10.0, -10.0);
  EXPECT_LT(g.d_pos, 0.0);
  EXPECT_GT(g.d_neg, 0.0);
}

TEST(LogisticLossTest, StableForExtremeScores) {
  LogisticLoss loss;
  const LossGrad g = loss.Compute(1000.0, -1000.0);
  EXPECT_TRUE(std::isfinite(g.loss));
  EXPECT_NEAR(g.loss, 0.0, 1e-9);
}

// ---- Batch API -----------------------------------------------------------

// ComputeBatch must agree with the per-pair scalar adapter element-wise
// (the implementations share the arithmetic, so the agreement is exact).
void ExpectBatchMatchesPerPair(const Loss& loss,
                               const std::vector<double>& pos,
                               const std::vector<double>& neg) {
  LossBatchGrad batch;
  loss.ComputeBatch(pos, neg, &batch);
  ASSERT_EQ(batch.size(), pos.size());
  ASSERT_EQ(batch.d_pos.size(), pos.size());
  ASSERT_EQ(batch.d_neg.size(), pos.size());
  for (size_t i = 0; i < pos.size(); ++i) {
    const LossGrad g = loss.Compute(pos[i], neg[i]);
    EXPECT_EQ(batch.loss[i], g.loss) << "pair " << i;
    EXPECT_EQ(batch.d_pos[i], g.d_pos) << "pair " << i;
    EXPECT_EQ(batch.d_neg[i], g.d_neg) << "pair " << i;
  }
}

TEST(LossBatchTest, ComputeBatchMatchesPerPairOnRandomScores) {
  Rng rng(42);
  MarginRankingLoss margin(2.0);
  LogisticLoss logistic;
  for (size_t n : {size_t{1}, size_t{3}, size_t{32}, size_t{257}}) {
    std::vector<double> pos(n), neg(n);
    for (size_t i = 0; i < n; ++i) {
      pos[i] = rng.Uniform(-5.0, 5.0);
      neg[i] = rng.Uniform(-5.0, 5.0);
    }
    SCOPED_TRACE(n);
    ExpectBatchMatchesPerPair(margin, pos, neg);
    ExpectBatchMatchesPerPair(logistic, pos, neg);
  }
}

TEST(LossBatchTest, ComputeBatchZeroGradientRegime) {
  // Pairs separated by more than the margin must produce exactly zero
  // loss AND zero gradients in the batch output — the vanishing-gradient
  // regime the NZL measure counts.
  MarginRankingLoss margin(1.0);
  const std::vector<double> pos = {5.0, 1.0, 0.0};
  const std::vector<double> neg = {0.0, 0.5, 2.0};  // sep, active, active
  LossBatchGrad out;
  margin.ComputeBatch(pos, neg, &out);
  EXPECT_EQ(out.loss[0], 0.0);
  EXPECT_EQ(out.d_pos[0], 0.0);
  EXPECT_EQ(out.d_neg[0], 0.0);
  EXPECT_GT(out.loss[1], 0.0);
  EXPECT_EQ(out.d_pos[1], -1.0);
  EXPECT_EQ(out.d_neg[1], 1.0);
  EXPECT_GT(out.loss[2], 0.0);
  // Mixed batch: the separated pair must not bleed into its neighbours.
  ExpectBatchMatchesPerPair(margin, pos, neg);
}

TEST(LossBatchTest, OutputBufferIsReusedAndResized) {
  MarginRankingLoss margin(2.0);
  LossBatchGrad out;
  std::vector<double> pos(8, 1.0), neg(8, 0.5);
  margin.ComputeBatch(pos, neg, &out);
  EXPECT_EQ(out.size(), 8u);
  // Shrinking reuse: stale tail values must not survive into size().
  pos.assign(2, 0.0);
  neg.assign(2, 5.0);
  margin.ComputeBatch(pos, neg, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.loss[1], 7.0);  // 2 - 0 + 5.
}

TEST(LossBatchTest, SpanOverlaysRawArrays) {
  // The batch API takes spans, so callers can point straight into scratch
  // buffers without copying.
  LogisticLoss logistic;
  const double pos[3] = {0.7, -0.2, 3.0};
  const double neg[3] = {-0.3, 0.1, -4.0};
  LossBatchGrad out;
  logistic.ComputeBatch(Span<const double>(pos, 3), Span<const double>(neg, 3),
                        &out);
  ASSERT_EQ(out.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const LossGrad g = logistic.Compute(pos[i], neg[i]);
    EXPECT_EQ(out.loss[i], g.loss);
    EXPECT_EQ(out.d_pos[i], g.d_pos);
    EXPECT_EQ(out.d_neg[i], g.d_neg);
  }
}

TEST(DefaultLossTest, FamilySelectsLoss) {
  auto transe = MakeScoringFunction("transe");
  auto complex = MakeScoringFunction("complex");
  EXPECT_EQ(MakeDefaultLoss(*transe, 2.0)->name(), "margin");
  EXPECT_EQ(MakeDefaultLoss(*complex, 2.0)->name(), "logistic");
}

TEST(DefaultLossTest, MarginParameterPropagates) {
  auto transe = MakeScoringFunction("transe");
  auto loss = MakeDefaultLoss(*transe, 3.5);
  auto* margin = dynamic_cast<MarginRankingLoss*>(loss.get());
  ASSERT_NE(margin, nullptr);
  EXPECT_EQ(margin->margin(), 3.5);
}

}  // namespace
}  // namespace nsc
