#include "embedding/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.h"

namespace nsc {
namespace {

TEST(MarginLossTest, ActivePairValueAndGrads) {
  MarginRankingLoss loss(2.0);
  // pos=1, neg=0.5 -> 2 - 1 + 0.5 = 1.5 > 0: active.
  const LossGrad g = loss.Compute(1.0, 0.5);
  EXPECT_NEAR(g.loss, 1.5, 1e-12);
  EXPECT_EQ(g.d_pos, -1.0);
  EXPECT_EQ(g.d_neg, 1.0);
}

TEST(MarginLossTest, SeparatedPairVanishes) {
  MarginRankingLoss loss(1.0);
  // pos=5, neg=0 -> 1 - 5 + 0 = -4 <= 0: the vanishing-gradient regime.
  const LossGrad g = loss.Compute(5.0, 0.0);
  EXPECT_EQ(g.loss, 0.0);
  EXPECT_EQ(g.d_pos, 0.0);
  EXPECT_EQ(g.d_neg, 0.0);
}

TEST(MarginLossTest, BoundaryIsInactive) {
  MarginRankingLoss loss(1.0);
  const LossGrad g = loss.Compute(1.0, 0.0);  // Exactly at the margin.
  EXPECT_EQ(g.loss, 0.0);
}

TEST(MarginLossTest, HarderNegativeGivesLargerLoss) {
  MarginRankingLoss loss(2.0);
  EXPECT_GT(loss.Compute(1.0, 0.9).loss, loss.Compute(1.0, 0.1).loss);
}

TEST(LogisticLossTest, ValueMatchesDefinition) {
  LogisticLoss loss;
  const double pos = 0.7, neg = -0.3;
  const LossGrad g = loss.Compute(pos, neg);
  EXPECT_NEAR(g.loss, std::log1p(std::exp(-pos)) + std::log1p(std::exp(neg)),
              1e-12);
}

TEST(LogisticLossTest, GradsMatchFiniteDifferences) {
  LogisticLoss loss;
  const double eps = 1e-6;
  for (double pos : {-2.0, 0.0, 1.5}) {
    for (double neg : {-1.0, 0.3, 3.0}) {
      const LossGrad g = loss.Compute(pos, neg);
      const double dpos_num =
          (loss.Compute(pos + eps, neg).loss - loss.Compute(pos - eps, neg).loss) /
          (2 * eps);
      const double dneg_num =
          (loss.Compute(pos, neg + eps).loss - loss.Compute(pos, neg - eps).loss) /
          (2 * eps);
      EXPECT_NEAR(g.d_pos, dpos_num, 1e-6);
      EXPECT_NEAR(g.d_neg, dneg_num, 1e-6);
    }
  }
}

TEST(LogisticLossTest, GradientNeverFullyVanishes) {
  LogisticLoss loss;
  const LossGrad g = loss.Compute(10.0, -10.0);
  EXPECT_LT(g.d_pos, 0.0);
  EXPECT_GT(g.d_neg, 0.0);
}

TEST(LogisticLossTest, StableForExtremeScores) {
  LogisticLoss loss;
  const LossGrad g = loss.Compute(1000.0, -1000.0);
  EXPECT_TRUE(std::isfinite(g.loss));
  EXPECT_NEAR(g.loss, 0.0, 1e-9);
}

TEST(DefaultLossTest, FamilySelectsLoss) {
  auto transe = MakeScoringFunction("transe");
  auto complex = MakeScoringFunction("complex");
  EXPECT_EQ(MakeDefaultLoss(*transe, 2.0)->name(), "margin");
  EXPECT_EQ(MakeDefaultLoss(*complex, 2.0)->name(), "logistic");
}

TEST(DefaultLossTest, MarginParameterPropagates) {
  auto transe = MakeScoringFunction("transe");
  auto loss = MakeDefaultLoss(*transe, 3.5);
  auto* margin = dynamic_cast<MarginRankingLoss*>(loss.get());
  ASSERT_NE(margin, nullptr);
  EXPECT_EQ(margin->margin(), 3.5);
}

}  // namespace
}  // namespace nsc
