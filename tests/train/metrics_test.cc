#include "train/metrics.h"

#include <gtest/gtest.h>

namespace nsc {
namespace {

TEST(RankingMetricsTest, SingleRank) {
  RankingMetrics m;
  m.AddRank(4);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mrr(), 0.25);
  EXPECT_DOUBLE_EQ(m.mr(), 4.0);
  EXPECT_DOUBLE_EQ(m.hits_at(10), 100.0);
  EXPECT_DOUBLE_EQ(m.hits_at(3), 0.0);
}

TEST(RankingMetricsTest, AggregatesCorrectly) {
  RankingMetrics m;
  m.AddRank(1);
  m.AddRank(2);
  m.AddRank(100);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_NEAR(m.mrr(), (1.0 + 0.5 + 0.01) / 3.0, 1e-12);
  EXPECT_NEAR(m.mr(), 103.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.hits_at(10), 200.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.hits_at(1), 100.0 / 3.0, 1e-9);
}

TEST(RankingMetricsTest, EmptyIsZero) {
  RankingMetrics m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mrr(), 0.0);
  EXPECT_EQ(m.mr(), 0.0);
  EXPECT_EQ(m.hits_at(10), 0.0);
}

TEST(RankingMetricsTest, MergeEqualsCombinedStream) {
  RankingMetrics a, b, combined;
  for (int64_t r : {1, 5, 9}) {
    a.AddRank(r);
    combined.AddRank(r);
  }
  for (int64_t r : {2, 50}) {
    b.AddRank(r);
    combined.AddRank(r);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mrr(), combined.mrr());
  EXPECT_DOUBLE_EQ(a.mr(), combined.mr());
  EXPECT_DOUBLE_EQ(a.hits_at(10), combined.hits_at(10));
  EXPECT_DOUBLE_EQ(a.hits_at(1), combined.hits_at(1));
}

TEST(RankingMetricsTest, HitsBoundaryAtK) {
  RankingMetrics m;
  m.AddRank(10);
  m.AddRank(11);
  EXPECT_DOUBLE_EQ(m.hits_at(10), 50.0);  // rank <= 10 counts.
}

TEST(RankingMetricsTest, ToStringContainsMetrics) {
  RankingMetrics m;
  m.AddRank(2);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("MRR"), std::string::npos);
  EXPECT_NE(s.find("Hit@10"), std::string::npos);
}

TEST(RankingMetricsTest, FractionalRanksFromTieAveraging) {
  // The kMean tie policy produces half-integer ranks; rank <= k decides
  // hits, so rank 2.5 misses Hit@2 but lands Hit@3.
  RankingMetrics m;
  m.AddRank(2.5);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mrr(), 0.4);
  EXPECT_DOUBLE_EQ(m.mr(), 2.5);
  EXPECT_DOUBLE_EQ(m.hits_at(2), 0.0);
  EXPECT_DOUBLE_EQ(m.hits_at(3), 100.0);
}

TEST(RankingMetricsTest, FractionalRankAtExactBoundary) {
  RankingMetrics m;
  m.AddRank(10.5);
  EXPECT_DOUBLE_EQ(m.hits_at(10), 0.0);
  m.AddRank(10.0);
  EXPECT_DOUBLE_EQ(m.hits_at(10), 50.0);
}

TEST(RankingMetricsDeathTest, RankMustBePositive) {
  RankingMetrics m;
  EXPECT_DEATH(m.AddRank(0), "CHECK");
}

}  // namespace
}  // namespace nsc
