// Batched-engine parity and parallel-execution tests.
//
// Contracts under test:
//   * RunEpoch() with num_threads == 1 and fused_scoring = false
//     reproduces the legacy serial loop (RunEpochSerial) bit-for-bit —
//     same losses, same embedding tables — for both stateless (Bernoulli)
//     and model-coupled (NSCaching) samplers and any batch size;
//   * the fused engine (fused_scoring = true) coincides with the pair
//     path at batch_size == 1 on the forced-scalar dispatch path
//     (ULP-bounded), and still trains at real batch sizes and under
//     Hogwild threads;
//   * with num_threads > 1 both engines keep training (loss decreases,
//     observer sees every pair) even though float races make runs
//     nondeterministic.
#include "train/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "core/nscaching_sampler.h"
#include "kg/kg_index.h"
#include "kg/synthetic.h"
#include "sampler/bernoulli_sampler.h"
#include "sampler/kbgan_sampler.h"
#include "sampler/uniform_sampler.h"
#include "train/grad_accumulator.h"
#include "util/simd.h"

namespace nsc {
namespace {

Dataset SmallDataset(uint64_t seed = 5) {
  SyntheticKgConfig c;
  c.num_entities = 120;
  c.num_relations = 4;
  c.num_triples = 900;
  c.seed = seed;
  return GenerateSyntheticKg(c);
}

TrainConfig SmallTrainConfig() {
  TrainConfig c;
  c.dim = 12;
  c.learning_rate = 0.05;
  c.epochs = 5;
  c.margin = 2.0;
  c.seed = 3;
  // The bit-for-bit parity contract is the legacy pair path's; fused
  // cases opt back in explicitly.
  c.fused_scoring = false;
  return c;
}

// Maps a float's bit pattern onto a monotone integer line, so the ULP
// distance between two floats is the difference of their keys.
int64_t UlpKey(float x) {
  int32_t i;
  std::memcpy(&i, &x, sizeof(i));
  return i >= 0 ? static_cast<int64_t>(i)
                : std::numeric_limits<int32_t>::min() - static_cast<int64_t>(i);
}

int64_t UlpDistance(float a, float b) {
  const int64_t d = UlpKey(a) - UlpKey(b);
  return d < 0 ? -d : d;
}

struct RunResult {
  std::vector<double> losses;
  std::vector<float> entities;
  std::vector<float> relations;
};

// Runs `epochs` epochs with a fresh model/sampler; `serial` picks the
// legacy reference loop over the batched engine.
RunResult RunTraining(const Dataset& data, const KgIndex& index,
              const std::string& scorer, const std::string& sampler_name,
              TrainConfig config, int epochs, bool serial) {
  KgeModel model(data.num_entities(), data.num_relations(), config.dim,
                 MakeScoringFunction(scorer));
  Rng rng(1);
  model.InitXavier(&rng);
  std::unique_ptr<NegativeSampler> sampler;
  if (sampler_name == "bernoulli") {
    sampler =
        std::make_unique<BernoulliSampler>(data.num_entities(), &index);
  } else if (sampler_name == "uniform") {
    sampler = std::make_unique<UniformSampler>(data.num_entities());
  } else if (sampler_name == "kbgan") {
    KbganConfig kbgan_config;
    kbgan_config.candidate_set_size = 8;
    kbgan_config.generator_dim = config.dim;
    sampler = std::make_unique<KbganSampler>(
        data.num_entities(), data.num_relations(), &index, kbgan_config);
  } else {
    NSCachingConfig nsc_config;
    nsc_config.n1 = 10;
    nsc_config.n2 = 10;
    sampler = std::make_unique<NSCachingSampler>(&model, &index, nsc_config);
  }
  Trainer trainer(&model, &data.train, sampler.get(), config);
  RunResult result;
  for (int e = 0; e < epochs; ++e) {
    const EpochStats stats =
        serial ? trainer.RunEpochSerial() : trainer.RunEpoch();
    result.losses.push_back(stats.mean_loss);
  }
  result.entities = model.entity_table().LogicalCopy();
  result.relations = model.relation_table().LogicalCopy();
  return result;
}

TEST(TrainerParityTest, BatchedOneThreadMatchesSerialForStatelessSampler) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 32;
  config.num_threads = 1;
  const RunResult serial =
      RunTraining(data, index, "transe", "bernoulli", config, 3, /*serial=*/true);
  const RunResult batched =
      RunTraining(data, index, "transe", "bernoulli", config, 3, /*serial=*/false);
  EXPECT_EQ(serial.losses, batched.losses);
  EXPECT_EQ(serial.entities, batched.entities);
  EXPECT_EQ(serial.relations, batched.relations);
}

TEST(TrainerParityTest, BatchedOneThreadMatchesSerialForNSCaching) {
  // NSCaching samples against the live model, so the engine must keep the
  // sample/update interleaving; this pins that behaviour bit-for-bit.
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 64;
  config.num_threads = 1;
  const RunResult serial =
      RunTraining(data, index, "transe", "nscaching", config, 2, /*serial=*/true);
  const RunResult batched =
      RunTraining(data, index, "transe", "nscaching", config, 2, /*serial=*/false);
  EXPECT_EQ(serial.losses, batched.losses);
  EXPECT_EQ(serial.entities, batched.entities);
  EXPECT_EQ(serial.relations, batched.relations);
}

TEST(TrainerParityTest, BatchedOneThreadMatchesSerialForKbgan) {
  // KBGAN's Sample/Feedback state is a FIFO queue; the 1-thread engine
  // interleaves per pair (queue depth 1), which must equal the legacy
  // loop exactly — including the generator's REINFORCE updates.
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 64;
  config.num_threads = 1;
  const RunResult serial =
      RunTraining(data, index, "transe", "kbgan", config, 2, /*serial=*/true);
  const RunResult batched =
      RunTraining(data, index, "transe", "kbgan", config, 2, /*serial=*/false);
  EXPECT_EQ(serial.losses, batched.losses);
  EXPECT_EQ(serial.entities, batched.entities);
  EXPECT_EQ(serial.relations, batched.relations);
}

TEST(TrainerParityTest, BatchSizeDoesNotChangeOneThreadResults) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  TrainConfig small = SmallTrainConfig();
  small.batch_size = 1;
  TrainConfig large = SmallTrainConfig();
  large.batch_size = 512;
  const RunResult a =
      RunTraining(data, index, "complex", "bernoulli", small, 2, /*serial=*/false);
  const RunResult b =
      RunTraining(data, index, "complex", "bernoulli", large, 2, /*serial=*/false);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_EQ(a.entities, b.entities);
}

TEST(TrainerParityTest, SemanticFamilyParityWithL2) {
  // Exercises the L2-penalty and logistic-loss paths through the slot map.
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 32;
  config.l2_lambda = 0.01;
  config.track_grad_norm = true;
  const RunResult serial =
      RunTraining(data, index, "complex", "bernoulli", config, 2, /*serial=*/true);
  const RunResult batched =
      RunTraining(data, index, "complex", "bernoulli", config, 2, /*serial=*/false);
  EXPECT_EQ(serial.losses, batched.losses);
  EXPECT_EQ(serial.entities, batched.entities);
}

// ---- Fused-engine tests --------------------------------------------------

TEST(TrainerFusedTest, FusedMatchesPairPathAtBatchOneUlpBounded) {
  // At batch_size == 1 the fused step and the pair path perform the same
  // per-pair arithmetic — the only difference is batched vs single-triple
  // kernel entry points, which on the forced-scalar dispatch path agree
  // bit-for-bit (simd_parity_test's contract). Pin fused-vs-pair parity
  // ULP-bounded there, for both loss families (margin, and logistic with
  // the L2 penalty through the relation accumulator).
  simd::ScopedForcePath force(simd::Path::kScalar);
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  for (const char* scorer : {"transe", "complex"}) {
    SCOPED_TRACE(scorer);
    TrainConfig config = SmallTrainConfig();
    config.batch_size = 1;
    config.num_threads = 1;
    if (std::string(scorer) == "complex") config.l2_lambda = 0.01;
    TrainConfig fused_config = config;
    fused_config.fused_scoring = true;
    const RunResult pair =
        RunTraining(data, index, scorer, "bernoulli", config, 3,
                    /*serial=*/false);
    const RunResult fused =
        RunTraining(data, index, scorer, "bernoulli", fused_config, 3,
                    /*serial=*/false);
    ASSERT_EQ(pair.losses.size(), fused.losses.size());
    for (size_t e = 0; e < pair.losses.size(); ++e) {
      EXPECT_NEAR(fused.losses[e], pair.losses[e],
                  1e-12 * (1.0 + std::abs(pair.losses[e])))
          << "epoch " << e;
    }
    ASSERT_EQ(pair.entities.size(), fused.entities.size());
    constexpr int64_t kMaxUlps = 4;
    for (size_t i = 0; i < pair.entities.size(); ++i) {
      ASSERT_LE(UlpDistance(pair.entities[i], fused.entities[i]), kMaxUlps)
          << "entity float " << i;
    }
    ASSERT_EQ(pair.relations.size(), fused.relations.size());
    for (size_t i = 0; i < pair.relations.size(); ++i) {
      ASSERT_LE(UlpDistance(pair.relations[i], fused.relations[i]), kMaxUlps)
          << "relation float " << i;
    }
  }
}

TEST(TrainerFusedTest, FusedTrainsToLowerLossAtRealBatchSizes) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  for (const std::string sampler : {"bernoulli", "nscaching"}) {
    SCOPED_TRACE(sampler);
    TrainConfig config = SmallTrainConfig();
    config.batch_size = 256;
    config.num_threads = 1;
    config.fused_scoring = true;
    const RunResult fused =
        RunTraining(data, index, "transe", sampler, config, 5,
                    /*serial=*/false);
    EXPECT_LT(fused.losses.back(), fused.losses.front());
  }
}

TEST(TrainerFusedTest, FusedTracksPairPathConvergence) {
  // Not a bit-wise contract (fused scores are up to fused_block pairs
  // stale), but the trajectories must stay close: same data, same seed,
  // final mean loss within a small absolute + relative band.
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 256;
  config.num_threads = 1;
  TrainConfig fused_config = config;
  fused_config.fused_scoring = true;
  const RunResult pair = RunTraining(data, index, "transe", "bernoulli",
                                     config, 5, /*serial=*/false);
  const RunResult fused = RunTraining(data, index, "transe", "bernoulli",
                                      fused_config, 5, /*serial=*/false);
  EXPECT_NEAR(fused.losses.back(), pair.losses.back(),
              0.05 + 0.2 * pair.losses.back());
  EXPECT_LT(fused.losses.back(), 0.5 * fused.losses.front());
}

TEST(TrainerFusedTest, FusedHogwildTrainsWithThreadSafeSamplers) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  for (const std::string sampler : {"bernoulli", "nscaching"}) {
    SCOPED_TRACE(sampler);
    TrainConfig config = SmallTrainConfig();
    config.batch_size = 128;
    config.num_threads = 4;
    config.fused_scoring = true;
    const RunResult fused =
        RunTraining(data, index, "transe", sampler, config, 6,
                    /*serial=*/false);
    EXPECT_LT(fused.losses.back(), fused.losses.front());
  }
}

TEST(TrainerFusedTest, FusedSerialSamplingFallbackTrains) {
  // The fused parallel engine's serial pre-sampling branch: KBGAN is
  // thread-hostile (its generator state forces the pre-pass), and
  // force_serial_sampling pins even a thread-safe sampler onto it — the
  // "serial refresh" fused rows of bench_throughput run exactly this
  // path.
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  {
    TrainConfig config = SmallTrainConfig();
    config.batch_size = 64;
    config.num_threads = 3;
    config.fused_scoring = true;
    const RunResult kbgan = RunTraining(data, index, "transe", "kbgan",
                                        config, 6, /*serial=*/false);
    EXPECT_LT(kbgan.losses.back(), kbgan.losses.front());
  }
  {
    KgeModel model(data.num_entities(), data.num_relations(), 12,
                   MakeScoringFunction("transe"));
    Rng rng(1);
    model.InitXavier(&rng);
    NSCachingConfig nsc_config;
    nsc_config.n1 = 10;
    nsc_config.n2 = 10;
    NSCachingSampler sampler(&model, &index, nsc_config);
    TrainConfig config = SmallTrainConfig();
    config.batch_size = 64;
    config.num_threads = 3;
    config.fused_scoring = true;
    config.force_serial_sampling = true;
    Trainer trainer(&model, &data.train, &sampler, config);
    const EpochStats first = trainer.RunEpoch();
    EpochStats last = first;
    for (int e = 1; e < 6; ++e) last = trainer.RunEpoch();
    EXPECT_LT(last.mean_loss, first.mean_loss);
    // The pre-pass still draws both cache sides for every positive.
    EXPECT_EQ(sampler.stats().selections,
              2 * static_cast<int64_t>(data.train.size()) * 6);
  }
}

TEST(TrainerFusedTest, FusedObserverAndAccountingSeeEveryPair) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  NSCachingConfig nsc_config;
  nsc_config.n1 = 10;
  nsc_config.n2 = 10;
  NSCachingSampler sampler(&model, &index, nsc_config);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 64;
  config.num_threads = 3;
  config.fused_scoring = true;
  Trainer trainer(&model, &data.train, &sampler, config);
  size_t observed = 0;
  trainer.set_negative_observer(
      [&](const Triple&, const NegativeSample&, double) { ++observed; });
  trainer.RunEpoch();
  const int64_t n = static_cast<int64_t>(data.train.size());
  EXPECT_EQ(observed, data.train.size());
  // Two cache draws and two refreshes per positive, sampled inside the
  // fused workers.
  EXPECT_EQ(sampler.stats().selections, 2 * n);
  EXPECT_EQ(sampler.stats().updates, 2 * n);
}

TEST(TrainerParallelTest, HogwildTrainsToLowerLoss) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 64;
  config.num_threads = 4;
  Trainer trainer(&model, &data.train, &sampler, config);
  EXPECT_EQ(trainer.num_threads(), 4);
  const EpochStats first = trainer.RunEpoch();
  EpochStats last = first;
  for (int e = 1; e < 8; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last.mean_loss, first.mean_loss);
  EXPECT_EQ(trainer.epoch(), 8);
}

TEST(TrainerParallelTest, HogwildWithStatefulSamplerTrains) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  NSCachingConfig nsc_config;
  nsc_config.n1 = 10;
  nsc_config.n2 = 10;
  NSCachingSampler sampler(&model, &index, nsc_config);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 64;
  config.num_threads = 3;
  Trainer trainer(&model, &data.train, &sampler, config);
  const EpochStats first = trainer.RunEpoch();
  EpochStats last = first;
  for (int e = 1; e < 8; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last.mean_loss, first.mean_loss);
}

TEST(TrainerParallelTest, HogwildNSCachingSamplesInsideWorkers) {
  // With thread_safe_sampling(), NSCaching's select/refresh runs inside
  // the Hogwild workers. The atomic stats pin the accounting: exactly two
  // cache draws and two refreshes per positive, with nothing lost to
  // concurrent increments.
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  NSCachingConfig nsc_config;
  nsc_config.n1 = 10;
  nsc_config.n2 = 10;
  NSCachingSampler sampler(&model, &index, nsc_config);
  ASSERT_TRUE(sampler.thread_safe_sampling());
  ASSERT_FALSE(sampler.stateless_sampling());
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 64;
  config.num_threads = 4;
  Trainer trainer(&model, &data.train, &sampler, config);
  trainer.RunEpoch();
  const int64_t n = static_cast<int64_t>(data.train.size());
  EXPECT_EQ(sampler.stats().selections, 2 * n);
  EXPECT_EQ(sampler.stats().updates, 2 * n);
}

TEST(TrainerParallelTest, ForceSerialSamplingStillTrains) {
  // The benchmarking knob that pins sampling to the serial pre-pass must
  // keep working under threads (it is the "serial refresh" baseline of
  // bench_throughput's NSCaching mode).
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  NSCachingConfig nsc_config;
  nsc_config.n1 = 10;
  nsc_config.n2 = 10;
  NSCachingSampler sampler(&model, &index, nsc_config);
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 64;
  config.num_threads = 3;
  config.force_serial_sampling = true;
  Trainer trainer(&model, &data.train, &sampler, config);
  const EpochStats first = trainer.RunEpoch();
  EpochStats last = first;
  for (int e = 1; e < 8; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last.mean_loss, first.mean_loss);
  EXPECT_EQ(sampler.stats().selections,
            2 * static_cast<int64_t>(data.train.size()) * 8);
}

TEST(TrainerParallelTest, ObserverSeesEveryPairSeriallyUnderThreads) {
  const Dataset data = SmallDataset();
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  UniformSampler sampler(data.num_entities());
  TrainConfig config = SmallTrainConfig();
  config.batch_size = 32;
  config.num_threads = 4;
  Trainer trainer(&model, &data.train, &sampler, config);
  size_t observed = 0;
  trainer.set_negative_observer(
      [&](const Triple&, const NegativeSample&, double) { ++observed; });
  trainer.RunEpoch();
  EXPECT_EQ(observed, data.train.size());
}

TEST(TrainerParallelTest, HardwareDefaultThreadResolution) {
  const Dataset data = SmallDataset();
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  UniformSampler sampler(data.num_entities());
  TrainConfig config = SmallTrainConfig();
  config.num_threads = 0;  // <= 0 resolves to the hardware default.
  Trainer trainer(&model, &data.train, &sampler, config);
  EXPECT_GE(trainer.num_threads(), 1);
}

// ---- GradAccumulator unit tests ------------------------------------------

TEST(GradAccumulatorTest, AccumulatesAndClears) {
  GradAccumulator acc;
  acc.Configure(3);
  float* g7 = acc.GradFor(7);
  g7[0] = 1.0f;
  // Repeated lookup returns the same slot without growing.
  EXPECT_EQ(acc.GradFor(7), g7);
  EXPECT_EQ(acc.size(), 1u);
  acc.GradFor(9)[1] = 2.0f;
  EXPECT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc.id(0), 7);
  EXPECT_EQ(acc.id(1), 9);
  EXPECT_FLOAT_EQ(acc.grad(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(acc.grad(1)[1], 2.0f);

  acc.Clear();
  EXPECT_EQ(acc.size(), 0u);
  // Reused slots come back zeroed.
  const float* fresh = acc.GradFor(9);
  for (int k = 0; k < 3; ++k) EXPECT_FLOAT_EQ(fresh[k], 0.0f);
}

TEST(GradAccumulatorTest, ManyEntitiesStayDistinct) {
  GradAccumulator acc;
  acc.Configure(2);
  for (EntityId e = 0; e < 500; ++e) acc.GradFor(e);
  // Writing through freshly resolved pointers (resolve-then-write, as the
  // trainer does) keeps every slot addressable.
  for (EntityId e = 0; e < 500; ++e) acc.GradFor(e)[0] = float(e);
  EXPECT_EQ(acc.size(), 500u);
  for (size_t s = 0; s < acc.size(); ++s) {
    EXPECT_FLOAT_EQ(acc.grad(s)[0], float(acc.id(s)));
  }
}

TEST(GradAccumulatorTest, ReconfigureToNarrowerWidth) {
  GradAccumulator acc;
  acc.Configure(8);
  for (EntityId e = 0; e < 10; ++e) acc.GradFor(e)[7] = 1.0f;
  acc.Configure(2);
  for (EntityId e = 0; e < 300; ++e) {
    const float* g = acc.GradFor(e);
    EXPECT_FLOAT_EQ(g[0], 0.0f);
    EXPECT_FLOAT_EQ(g[1], 0.0f);
  }
  EXPECT_EQ(acc.size(), 300u);
}

TEST(GradAccumulatorTest, ReconfigureToWiderWidth) {
  // Widening must not leak stale floats from the previous layout into
  // the tail of reused rows.
  GradAccumulator acc;
  acc.Configure(2);
  for (EntityId e = 0; e < 3; ++e) {
    float* g = acc.GradFor(e);
    g[0] = 5.0f;
    g[1] = 6.0f;
  }
  acc.Configure(8);
  for (EntityId e = 0; e < 3; ++e) {
    const float* g = acc.GradFor(e);
    for (int k = 0; k < 8; ++k) EXPECT_FLOAT_EQ(g[k], 0.0f) << k;
  }
}

}  // namespace
}  // namespace nsc
