#include "train/trainer.h"

#include <gtest/gtest.h>

#include "kg/kg_index.h"
#include "kg/synthetic.h"
#include "sampler/bernoulli_sampler.h"
#include "sampler/uniform_sampler.h"

namespace nsc {
namespace {

Dataset SmallDataset(uint64_t seed = 5) {
  SyntheticKgConfig c;
  c.num_entities = 120;
  c.num_relations = 4;
  c.num_triples = 900;
  c.seed = seed;
  return GenerateSyntheticKg(c);
}

TrainConfig SmallTrainConfig() {
  TrainConfig c;
  c.dim = 12;
  c.learning_rate = 0.05;
  c.epochs = 5;
  c.margin = 2.0;
  c.seed = 3;
  return c;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  Trainer trainer(&model, &data.train, &sampler, SmallTrainConfig());

  const EpochStats first = trainer.RunEpoch();
  EpochStats last = first;
  for (int e = 1; e < 8; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last.mean_loss, first.mean_loss);
  EXPECT_EQ(trainer.epoch(), 8);
}

TEST(TrainerTest, PositiveScoresRiseAboveCorruptions) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  Trainer trainer(&model, &data.train, &sampler, SmallTrainConfig());
  for (int e = 0; e < 10; ++e) trainer.RunEpoch();

  // After training, a positive triple should on average outscore a random
  // corruption of itself.
  Rng probe(9);
  int wins = 0, total = 0;
  for (size_t i = 0; i < 200 && i < data.train.size(); ++i) {
    const Triple& pos = data.train[i];
    Triple neg = pos;
    neg.t = static_cast<EntityId>(
        probe.UniformInt(static_cast<uint64_t>(data.num_entities())));
    if (neg.t == pos.t) continue;
    wins += model.Score(pos) > model.Score(neg);
    ++total;
  }
  EXPECT_GT(wins, total * 7 / 10);
}

TEST(TrainerTest, EntityConstraintsEnforcedForTransE) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  TrainConfig config = SmallTrainConfig();
  config.apply_entity_constraints = true;
  Trainer trainer(&model, &data.train, &sampler, config);
  for (int e = 0; e < 3; ++e) trainer.RunEpoch();
  // The projection runs on touched rows; every entity appearing in a
  // training triple is touched every epoch.
  for (const Triple& x : data.train) {
    EXPECT_LE(model.entity_table().RowNorm(x.h, 12), 1.0f + 1e-4);
    EXPECT_LE(model.entity_table().RowNorm(x.t, 12), 1.0f + 1e-4);
  }
}

TEST(TrainerTest, GradNormTrackingPopulatesStats) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  TrainConfig config = SmallTrainConfig();
  config.track_grad_norm = true;
  Trainer trainer(&model, &data.train, &sampler, config);
  const EpochStats stats = trainer.RunEpoch();
  EXPECT_GT(stats.mean_grad_norm, 0.0);
}

TEST(TrainerTest, ObserverSeesEveryPair) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  UniformSampler sampler(data.num_entities());
  Trainer trainer(&model, &data.train, &sampler, SmallTrainConfig());
  size_t observed = 0;
  trainer.set_negative_observer(
      [&](const Triple&, const NegativeSample&, double) { ++observed; });
  trainer.RunEpoch();
  EXPECT_EQ(observed, data.train.size());
}

TEST(TrainerTest, DeterministicForFixedSeed) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  auto run = [&] {
    KgeModel model(data.num_entities(), data.num_relations(), 12,
                   MakeScoringFunction("transe"));
    Rng rng(1);
    model.InitXavier(&rng);
    BernoulliSampler sampler(data.num_entities(), &index);
    Trainer trainer(&model, &data.train, &sampler, SmallTrainConfig());
    trainer.RunEpoch();
    trainer.RunEpoch();
    return model.entity_table().LogicalCopy();
  };
  EXPECT_EQ(run(), run());
}

TEST(TrainerTest, LogisticFamilyTrainsToo) {
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("complex"));
  Rng rng(1);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  TrainConfig config = SmallTrainConfig();
  config.l2_lambda = 0.01;
  Trainer trainer(&model, &data.train, &sampler, config);
  EXPECT_EQ(trainer.loss().name(), "logistic");
  const EpochStats first = trainer.RunEpoch();
  EpochStats last = first;
  for (int e = 1; e < 6; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last.mean_loss, first.mean_loss);
}

TEST(TrainerTest, NonzeroLossRatioFallsAsModelSeparates) {
  // With a margin loss, NZL should decay from ~1 toward smaller values as
  // most uniform negatives become easy — the vanishing-gradient effect of
  // §IV-E that motivates NSCaching.
  const Dataset data = SmallDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(1);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  TrainConfig config = SmallTrainConfig();
  config.epochs = 15;
  Trainer trainer(&model, &data.train, &sampler, config);
  const EpochStats first = trainer.RunEpoch();
  EpochStats last = first;
  for (int e = 1; e < 15; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last.nonzero_loss_ratio, first.nonzero_loss_ratio);
}

}  // namespace
}  // namespace nsc
