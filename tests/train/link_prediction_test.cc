#include "train/link_prediction.h"

#include <gtest/gtest.h>

#include "embedding/scoring_function.h"

namespace nsc {
namespace {

// A hand-built DistMult world where scores are fully controlled:
// entity e = (v_e, 0, ...), relation = (1, 0, ...) -> f(h, r, t) = v_h*v_t.
KgeModel MakeControlledModel(const std::vector<float>& values) {
  KgeModel model(static_cast<int32_t>(values.size()), 1, 4,
                 MakeScoringFunction("distmult"));
  for (size_t e = 0; e < values.size(); ++e) {
    model.entity_table().Row(static_cast<int32_t>(e))[0] = values[e];
  }
  model.relation_table().Row(0)[0] = 1.0f;
  return model;
}

TEST(LinkPredictionTest, PerfectModelRanksFirst) {
  // Entities 0 and 1 have value 2; everyone else value -1. Test triple
  // (0, 0, 1) scores 4; corrupting either side scores -2 or 1 -> rank 1
  // on both sides (entity with value -1*-1=1 < 4... careful: corrupting
  // tail with entity of value -1 gives 2*-1 = -2 < 4; corrupting with the
  // *other* high entity (0,0,0) is skipped as self? No: head corruption
  // replaces h, candidate h=1 gives v_1*v_1=4 = score, not greater.)
  std::vector<float> values = {2.0f, 2.0f, -1.0f, -1.0f, -1.0f};
  KgeModel model = MakeControlledModel(values);
  TripleStore eval(5, 1);
  eval.Add({0, 0, 1});
  const KgIndex filter(eval);
  LinkPredictionOptions opts;
  opts.num_threads = 2;
  const RankingMetrics m = EvaluateLinkPrediction(model, eval, filter, opts);
  EXPECT_EQ(m.count(), 2u);  // Head + tail side.
  EXPECT_DOUBLE_EQ(m.mrr(), 1.0);
  EXPECT_DOUBLE_EQ(m.mr(), 1.0);
  EXPECT_DOUBLE_EQ(m.hits_at(1), 100.0);
}

TEST(LinkPredictionTest, RankCountsStrictlyGreaterScores) {
  // v = [1, 2, 3, 4]; test triple (0, 0, 1): score 1*2 = 2.
  // Tail corruptions (e != 1): t=0 -> 1, t=2 -> 3, t=3 -> 4; two greater
  // -> tail rank 3. Head corruptions (e != 0): h=1 -> 4, h=2 -> 6,
  // h=3 -> 8; three greater -> head rank 4. MR = 3.5.
  KgeModel model = MakeControlledModel({1.0f, 2.0f, 3.0f, 4.0f});
  TripleStore eval(4, 1);
  eval.Add({0, 0, 1});
  const KgIndex filter(eval);
  const RankingMetrics m = EvaluateLinkPrediction(model, eval, filter);
  EXPECT_DOUBLE_EQ(m.mr(), 3.5);
}

TEST(LinkPredictionTest, FilteredSettingSkipsKnownTriples) {
  // Same setup, but (0, 0, 3) and (0, 0, 2) are known true triples: in the
  // filtered setting the tail rank of (0, 0, 1) improves to 1.
  KgeModel model = MakeControlledModel({1.0f, 2.0f, 3.0f, 4.0f});
  TripleStore eval(4, 1);
  eval.Add({0, 0, 1});
  TripleStore known(4, 1);
  known.Add({0, 0, 1});
  known.Add({0, 0, 2});
  known.Add({0, 0, 3});
  const KgIndex filter(known);

  LinkPredictionOptions filtered;
  filtered.filtered = true;
  const RankingMetrics mf = EvaluateLinkPrediction(model, eval, filter, filtered);

  LinkPredictionOptions raw;
  raw.filtered = false;
  const RankingMetrics mr_ = EvaluateLinkPrediction(model, eval, filter, raw);

  // Tail side: raw rank 3 (t=2 scores 3, t=3 scores 4 beat 2; t=0 scores 1
  // does not); filtered rank 1 (both beaters are known triples). Head side
  // in both settings: h=1 -> 4, h=2 -> 6, h=3 -> 8 all beat 2 -> rank 4.
  EXPECT_LT(mf.mr(), mr_.mr());
  EXPECT_DOUBLE_EQ(mf.mr(), 2.5);   // (1 + 4) / 2.
  EXPECT_DOUBLE_EQ(mr_.mr(), 3.5);  // (3 + 4) / 2.
}

TEST(LinkPredictionTest, MaxTriplesSubsamples) {
  KgeModel model = MakeControlledModel({1.0f, 2.0f, 3.0f, 4.0f});
  TripleStore eval(4, 1);
  eval.Add({0, 0, 1});
  eval.Add({1, 0, 2});
  eval.Add({2, 0, 3});
  const KgIndex filter(eval);
  LinkPredictionOptions opts;
  opts.max_triples = 2;
  const RankingMetrics m = EvaluateLinkPrediction(model, eval, filter, opts);
  EXPECT_EQ(m.count(), 4u);  // 2 triples × 2 sides.
}

TEST(LinkPredictionTest, LegacyEvaluatorMatchesControlledRanks) {
  // The pre-batched reference path must stay available and correct
  // behind use_batched = false (same setup as
  // RankCountsStrictlyGreaterScores).
  KgeModel model = MakeControlledModel({1.0f, 2.0f, 3.0f, 4.0f});
  TripleStore eval(4, 1);
  eval.Add({0, 0, 1});
  const KgIndex filter(eval);
  LinkPredictionOptions opts;
  opts.use_batched = false;
  const RankingMetrics m = EvaluateLinkPrediction(model, eval, filter, opts);
  EXPECT_DOUBLE_EQ(m.mr(), 3.5);
}

TEST(LinkPredictionTest, TieBreakOnConstantScorer) {
  // Every entity has the same value, so every candidate score ties with
  // the true score: the optimistic convention reports a (degenerate)
  // perfect MRR of 1.0, while kMean counts each tie as half a rank.
  // Head side: 4 candidates (e != h), all tied -> rank 1 + 4/2 = 3; the
  // tail side is symmetric. Both evaluators must agree in both modes.
  KgeModel model = MakeControlledModel({2.0f, 2.0f, 2.0f, 2.0f, 2.0f});
  TripleStore eval(5, 1);
  eval.Add({0, 0, 1});
  const KgIndex filter(eval);
  for (bool batched : {true, false}) {
    LinkPredictionOptions optimistic;
    optimistic.use_batched = batched;
    optimistic.tie_break = TieBreak::kOptimistic;
    const RankingMetrics mo = EvaluateLinkPrediction(model, eval, filter,
                                                     optimistic);
    EXPECT_DOUBLE_EQ(mo.mrr(), 1.0) << "batched=" << batched;
    EXPECT_DOUBLE_EQ(mo.mr(), 1.0) << "batched=" << batched;

    LinkPredictionOptions mean;
    mean.use_batched = batched;
    mean.tie_break = TieBreak::kMean;
    const RankingMetrics mm = EvaluateLinkPrediction(model, eval, filter,
                                                     mean);
    EXPECT_DOUBLE_EQ(mm.mr(), 3.0) << "batched=" << batched;
    EXPECT_DOUBLE_EQ(mm.mrr(), 1.0 / 3.0) << "batched=" << batched;
    EXPECT_DOUBLE_EQ(mm.hits_at(3), 100.0) << "batched=" << batched;
    EXPECT_DOUBLE_EQ(mm.hits_at(2), 0.0) << "batched=" << batched;
  }
}

TEST(LinkPredictionTest, MeanTieBreakStillRanksDistinctScores) {
  // No ties anywhere -> kMean must be identical to kOptimistic.
  KgeModel model = MakeControlledModel({1.0f, 2.0f, 3.0f, 4.0f});
  TripleStore eval(4, 1);
  eval.Add({0, 0, 1});
  const KgIndex filter(eval);
  LinkPredictionOptions mean;
  mean.tie_break = TieBreak::kMean;
  const RankingMetrics m = EvaluateLinkPrediction(model, eval, filter, mean);
  EXPECT_DOUBLE_EQ(m.mr(), 3.5);
}

TEST(LinkPredictionTest, DeterministicAcrossThreadCounts) {
  // The metric is an exact computation; thread count must not change it.
  std::vector<float> values(30);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>((i * 37 % 13)) * 0.25f;
  }
  KgeModel model = MakeControlledModel(values);
  TripleStore eval(30, 1);
  for (EntityId h = 0; h < 10; ++h) {
    eval.Add({h, 0, static_cast<EntityId>(29 - h)});
  }
  const KgIndex filter(eval);
  LinkPredictionOptions one;
  one.num_threads = 1;
  LinkPredictionOptions many;
  many.num_threads = 8;
  const RankingMetrics m1 = EvaluateLinkPrediction(model, eval, filter, one);
  const RankingMetrics m8 = EvaluateLinkPrediction(model, eval, filter, many);
  EXPECT_DOUBLE_EQ(m1.mrr(), m8.mrr());
  EXPECT_DOUBLE_EQ(m1.mr(), m8.mr());
  EXPECT_DOUBLE_EQ(m1.hits_at(10), m8.hits_at(10));
}

}  // namespace
}  // namespace nsc
