#include "train/classification.h"

#include <gtest/gtest.h>

#include "embedding/scoring_function.h"

namespace nsc {
namespace {

// Controlled DistMult world: f(h, r, t) = v_h * v_t (see link_prediction_test).
KgeModel MakeControlledModel(const std::vector<float>& values) {
  KgeModel model(static_cast<int32_t>(values.size()), 2, 4,
                 MakeScoringFunction("distmult"));
  for (size_t e = 0; e < values.size(); ++e) {
    model.entity_table().Row(static_cast<int32_t>(e))[0] = values[e];
  }
  model.relation_table().Row(0)[0] = 1.0f;
  model.relation_table().Row(1)[0] = 1.0f;
  return model;
}

TEST(ClassificationTest, NegativesAreUnknownCorruptions) {
  TripleStore pos(20, 2);
  for (EntityId h = 0; h < 10; ++h) pos.Add({h, 0, static_cast<EntityId>(h + 10)});
  const KgIndex index(pos);
  const TripleStore neg = GenerateClassificationNegatives(pos, index, 7);
  ASSERT_EQ(neg.size(), pos.size());
  for (const Triple& x : neg) {
    EXPECT_FALSE(index.Contains(x)) << "negative is a known positive";
    EXPECT_EQ(x.r, 0);
  }
}

TEST(ClassificationTest, NegativeKeepsOneSideOfPositive) {
  TripleStore pos(20, 2);
  pos.Add({3, 1, 15});
  const KgIndex index(pos);
  const TripleStore neg = GenerateClassificationNegatives(pos, index, 8);
  const Triple& n = neg[0];
  EXPECT_TRUE(n.h == 3 || n.t == 15);
}

TEST(ClassificationTest, PerfectlySeparableScoresGive100Accuracy) {
  // Positives pair high-value entities (score 4); negatives pair a
  // high-value with a low-value entity (score -2): separable by σ.
  std::vector<float> values(10, -1.0f);
  values[0] = values[1] = values[2] = values[3] = 2.0f;
  KgeModel model = MakeControlledModel(values);

  TripleStore valid_pos(10, 2), valid_neg(10, 2), test_pos(10, 2),
      test_neg(10, 2);
  valid_pos.Add({0, 0, 1});
  valid_pos.Add({2, 0, 3});
  valid_neg.Add({0, 0, 5});
  valid_neg.Add({2, 0, 6});
  test_pos.Add({1, 0, 2});
  test_neg.Add({3, 0, 7});

  const ClassificationThresholds thresholds =
      FitThresholds(model, valid_pos, valid_neg);
  EXPECT_DOUBLE_EQ(
      ClassificationAccuracy(model, thresholds, valid_pos, valid_neg), 100.0);
  EXPECT_DOUBLE_EQ(
      ClassificationAccuracy(model, thresholds, test_pos, test_neg), 100.0);
}

TEST(ClassificationTest, ThresholdIsPerRelation) {
  // Relation 0 separates at score ~4 vs -2; relation 1 needs a different
  // threshold because its positives score lower than relation 0's
  // *negatives* would. Per-relation thresholds handle both.
  std::vector<float> values = {2.0f, 2.0f, -1.0f, -1.0f,
                               0.1f, 0.1f, -3.0f, -3.0f};
  KgeModel model = MakeControlledModel(values);
  TripleStore valid_pos(8, 2), valid_neg(8, 2);
  valid_pos.Add({0, 0, 1});   // Score 4.
  valid_neg.Add({0, 0, 2});   // Score -2.
  valid_pos.Add({4, 1, 5});   // Score 0.01.
  valid_neg.Add({4, 1, 6});   // Score -0.3.
  const ClassificationThresholds thresholds =
      FitThresholds(model, valid_pos, valid_neg);
  EXPECT_TRUE(thresholds.seen[0]);
  EXPECT_TRUE(thresholds.seen[1]);
  EXPECT_NE(thresholds.per_relation[0], thresholds.per_relation[1]);
  EXPECT_DOUBLE_EQ(
      ClassificationAccuracy(model, thresholds, valid_pos, valid_neg), 100.0);
}

TEST(ClassificationTest, UnseenRelationFallsBackToGlobalThreshold) {
  std::vector<float> values = {2.0f, 2.0f, -1.0f, -1.0f};
  KgeModel model = MakeControlledModel(values);
  TripleStore valid_pos(4, 2), valid_neg(4, 2);
  valid_pos.Add({0, 0, 1});
  valid_neg.Add({0, 0, 2});
  const ClassificationThresholds thresholds =
      FitThresholds(model, valid_pos, valid_neg);
  EXPECT_FALSE(thresholds.seen[1]);
  // Relation 1 triples are judged by the global threshold without crashing.
  TripleStore test_pos(4, 2), test_neg(4, 2);
  test_pos.Add({0, 1, 1});
  test_neg.Add({0, 1, 3});
  const double acc =
      ClassificationAccuracy(model, thresholds, test_pos, test_neg);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 100.0);
}

TEST(ClassificationTest, RandomScoresGiveNearChanceAccuracy) {
  KgeModel model(50, 2, 4, MakeScoringFunction("distmult"));
  Rng rng(11);
  model.InitXavier(&rng);
  TripleStore pos(50, 2);
  Rng gen(12);
  for (int i = 0; i < 200; ++i) {
    pos.Add({static_cast<EntityId>(gen.UniformInt(uint64_t{50})), 0,
             static_cast<EntityId>(gen.UniformInt(uint64_t{50}))});
  }
  const KgIndex index(pos);
  const double acc = EvaluateTripleClassification(model, pos, pos, index, 13);
  // Untrained tiny embeddings: accuracy should be far from perfect. The
  // threshold fit gives >= 50% by construction on valid, test near chance.
  EXPECT_GE(acc, 40.0);
  EXPECT_LE(acc, 85.0);
}

}  // namespace
}  // namespace nsc
