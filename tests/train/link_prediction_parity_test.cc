// Pins the batched 1-vs-all evaluator to the legacy per-candidate
// reference: identical ranks (hence bit-identical MRR/MR/Hits@k) across
// every registered scorer, filtered and raw settings, padded and compact
// table layouts, serial and threaded evaluation, both tie policies, and
// both SIMD dispatch paths. Also pins the ScoreAllHeads/ScoreAllTails
// sweep itself against per-candidate Score() — exact under forced
// scalar, reduction-order-tolerant under the native path.
#include "train/link_prediction.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "embedding/scoring_function.h"
#include "kg/kg_index.h"
#include "kg/triple_store.h"
#include "util/rng.h"
#include "util/simd.h"

namespace nsc {
namespace {

constexpr int32_t kEntities = 48;
constexpr int32_t kRelations = 4;
constexpr int kDim = 11;  // Full SIMD lanes plus a tail on every ISA.
constexpr size_t kEvalTriples = 16;

KgeModel MakeRandomModel(const std::string& scorer, TableLayout layout,
                         uint64_t seed) {
  KgeModel model(kEntities, kRelations, kDim, MakeScoringFunction(scorer),
                 layout);
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

/// A small random KG whose eval subset overlaps shared (h, r) / (r, t)
/// keys, so the filtered setting has non-trivial candidate lists to mask.
TripleStore MakeTrainStore() {
  TripleStore store(kEntities, kRelations);
  Rng rng(77);
  for (int i = 0; i < 120; ++i) {
    const EntityId h = static_cast<EntityId>(rng.UniformInt(kEntities));
    const RelationId r = static_cast<RelationId>(rng.UniformInt(kRelations));
    const EntityId t = static_cast<EntityId>(rng.UniformInt(kEntities));
    store.Add({h, r, t});
  }
  return store;
}

TripleStore MakeEvalStore(const TripleStore& train) {
  TripleStore eval(kEntities, kRelations);
  for (size_t i = 0; i < kEvalTriples; ++i) eval.Add(train[i * 3]);
  return eval;
}

void ExpectMetricsIdentical(const RankingMetrics& batched,
                            const RankingMetrics& legacy) {
  EXPECT_EQ(batched.count(), legacy.count());
  EXPECT_EQ(batched.mrr(), legacy.mrr());
  EXPECT_EQ(batched.mr(), legacy.mr());
  for (int k : {1, 3, 10}) {
    EXPECT_EQ(batched.hits_at(k), legacy.hits_at(k)) << "k=" << k;
  }
}

std::vector<simd::Path> DispatchPaths() {
  std::vector<simd::Path> paths = {simd::Path::kScalar};
  if (simd::BestAvailablePath() != simd::Path::kScalar) {
    paths.push_back(simd::BestAvailablePath());
  }
  return paths;
}

TEST(LinkPredictionParityTest, BatchedMatchesLegacyAcrossMatrix) {
  const TripleStore train = MakeTrainStore();
  const TripleStore eval = MakeEvalStore(train);
  const KgIndex filter(train);

  for (simd::Path path : DispatchPaths()) {
    simd::ScopedForcePath force(path);
    for (const std::string& scorer : ListScoringFunctions()) {
      for (TableLayout layout : {TableLayout::kPadded, TableLayout::kCompact}) {
        const KgeModel model = MakeRandomModel(scorer, layout, 19);
        for (bool filtered : {true, false}) {
          for (TieBreak tie : {TieBreak::kOptimistic, TieBreak::kMean}) {
            for (int threads : {1, 3}) {
              SCOPED_TRACE(std::string(simd::PathName(path)) + "/" + scorer +
                           (layout == TableLayout::kPadded ? "/padded"
                                                           : "/compact") +
                           (filtered ? "/filtered" : "/raw") +
                           (tie == TieBreak::kMean ? "/mean" : "/optimistic") +
                           "/t=" + std::to_string(threads));
              LinkPredictionOptions legacy_opts;
              legacy_opts.use_batched = false;
              legacy_opts.filtered = filtered;
              legacy_opts.tie_break = tie;
              legacy_opts.num_threads = threads;
              LinkPredictionOptions batched_opts = legacy_opts;
              batched_opts.use_batched = true;
              ExpectMetricsIdentical(
                  EvaluateLinkPrediction(model, eval, filter, batched_opts),
                  EvaluateLinkPrediction(model, eval, filter, legacy_opts));
            }
          }
        }
      }
    }
  }
}

TEST(LinkPredictionParityTest, BatchedIsLayoutInvariant) {
  // The sweep must produce the same metrics whether the entity rows are
  // SIMD-padded or compact (the row-aware initializers make the logical
  // contents identical across layouts).
  const TripleStore train = MakeTrainStore();
  const TripleStore eval = MakeEvalStore(train);
  const KgIndex filter(train);
  for (simd::Path path : DispatchPaths()) {
    simd::ScopedForcePath force(path);
    for (const std::string& scorer : ListScoringFunctions()) {
      SCOPED_TRACE(std::string(simd::PathName(path)) + "/" + scorer);
      const KgeModel padded =
          MakeRandomModel(scorer, TableLayout::kPadded, 23);
      const KgeModel compact =
          MakeRandomModel(scorer, TableLayout::kCompact, 23);
      ExpectMetricsIdentical(EvaluateLinkPrediction(padded, eval, filter),
                             EvaluateLinkPrediction(compact, eval, filter));
    }
  }
}

TEST(LinkPredictionParityTest, HitsOnlyMatchesFullEvaluatorHitsCounters) {
  // The Hits@K-only early-exit mode promises: count() and hits_at(j) for
  // j <= hits_k are bit-identical to the full batched evaluator's, under
  // both tie policies and on both dispatch paths. (MRR/MR are junk by
  // contract — early-exited queries record rank hits_k + 1 — so they are
  // deliberately NOT compared.) kEntities spans only a fraction of one
  // 256-candidate tile, so a second model with far more entities
  // exercises multi-tile queries and real early exits below.
  const TripleStore train = MakeTrainStore();
  const TripleStore eval = MakeEvalStore(train);
  const KgIndex filter(train);
  for (simd::Path path : DispatchPaths()) {
    simd::ScopedForcePath force(path);
    for (const std::string& scorer : ListScoringFunctions()) {
      for (bool filtered : {true, false}) {
        for (TieBreak tie : {TieBreak::kOptimistic, TieBreak::kMean}) {
          for (int hits_k : {1, 3, 10}) {
            for (int threads : {1, 3}) {
              SCOPED_TRACE(std::string(simd::PathName(path)) + "/" + scorer +
                           (filtered ? "/filtered" : "/raw") +
                           (tie == TieBreak::kMean ? "/mean" : "/optimistic") +
                           "/hits_k=" + std::to_string(hits_k) +
                           "/t=" + std::to_string(threads));
              const KgeModel model =
                  MakeRandomModel(scorer, TableLayout::kPadded, 19);
              LinkPredictionOptions full_opts;
              full_opts.filtered = filtered;
              full_opts.tie_break = tie;
              full_opts.num_threads = threads;
              LinkPredictionOptions hits_opts = full_opts;
              hits_opts.hits_only = true;
              hits_opts.hits_k = hits_k;
              const RankingMetrics full =
                  EvaluateLinkPrediction(model, eval, filter, full_opts);
              const RankingMetrics hits =
                  EvaluateLinkPrediction(model, eval, filter, hits_opts);
              EXPECT_EQ(hits.count(), full.count());
              for (int j = 1; j <= hits_k; ++j) {
                EXPECT_EQ(hits.hits_at(j), full.hits_at(j)) << "j=" << j;
              }
            }
          }
        }
      }
    }
  }
}

TEST(LinkPredictionParityTest, HitsOnlyExactAcrossTileBoundaries) {
  // 1000 entities = 3 full tiles + a 232-entity tail per query side:
  // early exits fire mid-range for most queries, the true entity lands in
  // different tiles, and filtered corrections straddle tile boundaries.
  constexpr int32_t kBigEntities = 1000;
  TripleStore train(kBigEntities, kRelations);
  Rng rng(501);
  for (int i = 0; i < 400; ++i) {
    train.Add({static_cast<EntityId>(rng.UniformInt(kBigEntities)),
               static_cast<RelationId>(rng.UniformInt(kRelations)),
               static_cast<EntityId>(rng.UniformInt(kBigEntities))});
  }
  TripleStore eval(kBigEntities, kRelations);
  for (size_t i = 0; i < kEvalTriples; ++i) eval.Add(train[i * 7]);
  const KgIndex filter(train);
  KgeModel model(kBigEntities, kRelations, kDim,
                 MakeScoringFunction("transe"), TableLayout::kPadded);
  Rng init_rng(41);
  model.InitXavier(&init_rng);
  for (simd::Path path : DispatchPaths()) {
    simd::ScopedForcePath force(path);
    for (TieBreak tie : {TieBreak::kOptimistic, TieBreak::kMean}) {
      SCOPED_TRACE(std::string(simd::PathName(path)) +
                   (tie == TieBreak::kMean ? "/mean" : "/optimistic"));
      LinkPredictionOptions full_opts;
      full_opts.tie_break = tie;
      full_opts.num_threads = 2;
      LinkPredictionOptions hits_opts = full_opts;
      hits_opts.hits_only = true;
      hits_opts.hits_k = 10;
      const RankingMetrics full =
          EvaluateLinkPrediction(model, eval, filter, full_opts);
      const RankingMetrics hits =
          EvaluateLinkPrediction(model, eval, filter, hits_opts);
      EXPECT_EQ(hits.count(), full.count());
      for (int j = 1; j <= 10; ++j) {
        EXPECT_EQ(hits.hits_at(j), full.hits_at(j)) << "j=" << j;
      }
    }
  }
}

TEST(LinkPredictionParityTest, SweepMatchesPerCandidateScores) {
  // ScoreAllHeads/ScoreAllTails against one scalar Score() per entity:
  // bit-identical on the forced-scalar path, reduction-order tolerant
  // (relative 1e-12) on the native path.
  for (simd::Path path : DispatchPaths()) {
    simd::ScopedForcePath force(path);
    const bool exact = path == simd::Path::kScalar;
    for (const std::string& scorer : ListScoringFunctions()) {
      SCOPED_TRACE(std::string(simd::PathName(path)) + "/" + scorer);
      const KgeModel model =
          MakeRandomModel(scorer, TableLayout::kPadded, 31);
      std::vector<double> sweep(kEntities);
      model.ScoreAllHeads(2, 7, sweep.data());
      for (EntityId e = 0; e < kEntities; ++e) {
        const double ref = model.Score(e, 2, 7);
        if (exact) {
          EXPECT_EQ(sweep[e], ref) << "head sweep, e=" << e;
        } else {
          EXPECT_NEAR(sweep[e], ref, 1e-12 * (1.0 + std::fabs(ref)))
              << "head sweep, e=" << e;
        }
      }
      model.ScoreAllTails(5, 3, sweep.data());
      for (EntityId e = 0; e < kEntities; ++e) {
        const double ref = model.Score(5, 3, e);
        if (exact) {
          EXPECT_EQ(sweep[e], ref) << "tail sweep, e=" << e;
        } else {
          EXPECT_NEAR(sweep[e], ref, 1e-12 * (1.0 + std::fabs(ref)))
              << "tail sweep, e=" << e;
        }
      }
    }
  }
}

}  // namespace
}  // namespace nsc
