#include "train/experiment.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace nsc {
namespace {

Dataset SmallDataset() {
  SyntheticKgConfig c;
  c.num_entities = 100;
  c.num_relations = 4;
  c.num_triples = 700;
  c.valid_fraction = 0.06;
  c.test_fraction = 0.06;
  c.seed = 77;
  return GenerateSyntheticKg(c);
}

PipelineConfig SmallPipeline(SamplerKind kind) {
  PipelineConfig c;
  c.scorer = "transe";
  c.sampler = kind;
  c.train.dim = 10;
  c.train.epochs = 6;
  c.train.learning_rate = 0.05;
  c.train.seed = 5;
  c.nscaching.n1 = 8;
  c.nscaching.n2 = 8;
  c.kbgan.candidate_set_size = 8;
  c.kbgan.generator_dim = 10;
  c.eval_threads = 2;
  return c;
}

TEST(ExperimentTest, SamplerKindNames) {
  EXPECT_EQ(SamplerKindName(SamplerKind::kUniform), "uniform");
  EXPECT_EQ(SamplerKindName(SamplerKind::kBernoulli), "bernoulli");
  EXPECT_EQ(SamplerKindName(SamplerKind::kKbgan), "kbgan");
  EXPECT_EQ(SamplerKindName(SamplerKind::kNSCaching), "nscaching");
}

TEST(ExperimentTest, RunsEverySamplerKind) {
  const Dataset data = SmallDataset();
  for (SamplerKind kind : {SamplerKind::kUniform, SamplerKind::kBernoulli,
                           SamplerKind::kKbgan, SamplerKind::kNSCaching}) {
    const PipelineResult result = RunPipeline(data, SmallPipeline(kind));
    EXPECT_EQ(result.test_metrics.count(), 2 * data.test.size())
        << SamplerKindName(kind);
    EXPECT_GT(result.test_metrics.mrr(), 0.0) << SamplerKindName(kind);
    EXPECT_EQ(result.epoch_stats.size(), 6u) << SamplerKindName(kind);
    ASSERT_NE(result.model, nullptr);
  }
}

TEST(ExperimentTest, TestSeriesRecordedAtRequestedCadence) {
  const Dataset data = SmallDataset();
  PipelineConfig config = SmallPipeline(SamplerKind::kBernoulli);
  config.eval_test_every = 2;
  const PipelineResult result = RunPipeline(data, config);
  ASSERT_EQ(result.test_series.size(), 3u);  // Epochs 2, 4, 6.
  EXPECT_EQ(result.test_series[0].epoch, 2);
  EXPECT_EQ(result.test_series[2].epoch, 6);
  // Cumulative seconds must be non-decreasing.
  EXPECT_LE(result.test_series[0].seconds, result.test_series[1].seconds);
  EXPECT_LE(result.test_series[1].seconds, result.test_series[2].seconds);
}

TEST(ExperimentTest, ValidationSelectsBestEpoch) {
  const Dataset data = SmallDataset();
  PipelineConfig config = SmallPipeline(SamplerKind::kBernoulli);
  config.eval_valid_every = 2;
  const PipelineResult result = RunPipeline(data, config);
  EXPECT_GE(result.best_epoch, 2);
  EXPECT_LE(result.best_epoch, 6);
}

TEST(ExperimentTest, NSCachingRecordsCacheCe) {
  const Dataset data = SmallDataset();
  const PipelineResult result =
      RunPipeline(data, SmallPipeline(SamplerKind::kNSCaching));
  ASSERT_EQ(result.cache_ce.size(), 6u);
  for (double ce : result.cache_ce) {
    EXPECT_GE(ce, 0.0);
    EXPECT_LE(ce, 8.0);  // Can never exceed N1.
  }
}

TEST(ExperimentTest, PretrainRegimeRuns) {
  const Dataset data = SmallDataset();
  PipelineConfig config = SmallPipeline(SamplerKind::kKbgan);
  config.pretrain_epochs = 2;
  const PipelineResult result = RunPipeline(data, config);
  EXPECT_GT(result.test_metrics.mrr(), 0.0);
}

TEST(ExperimentTest, DeterministicForSeed) {
  const Dataset data = SmallDataset();
  const PipelineConfig config = SmallPipeline(SamplerKind::kNSCaching);
  const PipelineResult a = RunPipeline(data, config);
  const PipelineResult b = RunPipeline(data, config);
  EXPECT_DOUBLE_EQ(a.test_metrics.mrr(), b.test_metrics.mrr());
  EXPECT_DOUBLE_EQ(a.test_metrics.mr(), b.test_metrics.mr());
}

TEST(ExperimentTest, TrainingBeatsRandomRanking) {
  const Dataset data = SmallDataset();
  PipelineConfig config = SmallPipeline(SamplerKind::kBernoulli);
  config.train.epochs = 15;
  const PipelineResult result = RunPipeline(data, config);
  // Random ranking over ~100 entities would give MRR around 0.05.
  EXPECT_GT(result.test_metrics.mrr(), 0.15);
}

}  // namespace
}  // namespace nsc
