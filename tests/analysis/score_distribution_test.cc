#include "analysis/score_distribution.h"

#include <gtest/gtest.h>

#include "embedding/scoring_function.h"

namespace nsc {
namespace {

KgeModel MakeControlledModel(const std::vector<float>& values) {
  KgeModel model(static_cast<int32_t>(values.size()), 1, 4,
                 MakeScoringFunction("distmult"));
  for (size_t e = 0; e < values.size(); ++e) {
    model.entity_table().Row(static_cast<int32_t>(e))[0] = values[e];
  }
  model.relation_table().Row(0)[0] = 1.0f;
  return model;
}

TEST(ScoreDistributionTest, OneSamplePerCorruptedTail) {
  KgeModel model = MakeControlledModel({1.0f, 2.0f, 3.0f, 4.0f, 5.0f});
  const auto d = NegativeDistanceSamples(model, {0, 0, 1});
  EXPECT_EQ(d.size(), 4u);  // All entities except the true tail.
}

TEST(ScoreDistributionTest, ValuesMatchDefinition) {
  // pos = (0, 0, 1): score 1*2 = 2. Corrupting tail with e=2 (v=3) scores
  // 3 -> D = 2 - 3 = -1; with e=3 (v=4) -> D = -2.
  KgeModel model = MakeControlledModel({1.0f, 2.0f, 3.0f, 4.0f});
  const auto d = NegativeDistanceSamples(model, {0, 0, 1});
  ASSERT_EQ(d.size(), 3u);
  // Order: e = 0, 2, 3.
  EXPECT_NEAR(d[0], 2.0 - 1.0, 1e-6);
  EXPECT_NEAR(d[1], 2.0 - 3.0, 1e-6);
  EXPECT_NEAR(d[2], 2.0 - 4.0, 1e-6);
}

TEST(ScoreDistributionTest, CcdfIsMonotoneFromOneToZero) {
  std::vector<float> values(40);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i % 7) * 0.3f;
  }
  KgeModel model = MakeControlledModel(values);
  const CcdfCurve curve = NegativeScoreCcdf(model, {0, 0, 1}, 21);
  ASSERT_EQ(curve.thresholds.size(), 21u);
  ASSERT_EQ(curve.ccdf.size(), 21u);
  EXPECT_NEAR(curve.ccdf.front(), 1.0, 1e-12);  // Everything >= min.
  for (size_t i = 1; i < curve.ccdf.size(); ++i) {
    EXPECT_LE(curve.ccdf[i], curve.ccdf[i - 1]);
  }
}

TEST(ScoreDistributionTest, SkewedModelHasSkewedCcdf) {
  // One very hard negative (high-scoring tail), the rest easy: the CCDF
  // near the top of the D range should be small — the paper's key
  // observation that large-score negatives are rare.
  std::vector<float> values(100, 5.0f);  // Easy: D = pos - low score, large.
  values[99] = 100.0f;                   // One hard negative.
  values[0] = 1.0f;                      // Head of the positive.
  values[1] = 5.0f;                      // True tail.
  KgeModel model = MakeControlledModel(values);
  const auto d = NegativeDistanceSamples(model, {0, 0, 1});
  // Fraction of negatives with D below the 10% quantile of the range:
  int hard = 0;
  for (double v : d) hard += v < -50.0;  // Only the e=99 corruption.
  EXPECT_EQ(hard, 1);
}

}  // namespace
}  // namespace nsc
