#include "analysis/dynamics.h"

#include <gtest/gtest.h>

#include "analysis/grad_norm.h"

namespace nsc {
namespace {

NegativeSample MakeNeg(EntityId h, RelationId r, EntityId t) {
  NegativeSample neg;
  neg.triple = {h, r, t};
  neg.side = CorruptionSide::kHead;
  return neg;
}

TEST(DynamicsTrackerTest, NoRepeatsInFreshEpoch) {
  DynamicsTracker tracker(20);
  const Triple pos{0, 0, 1};
  tracker.Observe(pos, MakeNeg(1, 0, 1), 0.5);
  tracker.Observe(pos, MakeNeg(2, 0, 1), 0.5);
  tracker.EndEpoch();
  ASSERT_EQ(tracker.repeat_ratio().size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.repeat_ratio()[0], 0.0);
}

TEST(DynamicsTrackerTest, RepeatDetectedWithinWindow) {
  DynamicsTracker tracker(20);
  const Triple pos{0, 0, 1};
  tracker.Observe(pos, MakeNeg(5, 0, 1), 0.5);
  tracker.EndEpoch();
  tracker.Observe(pos, MakeNeg(5, 0, 1), 0.5);  // Same negative, epoch 1.
  tracker.Observe(pos, MakeNeg(6, 0, 1), 0.5);
  tracker.EndEpoch();
  ASSERT_EQ(tracker.repeat_ratio().size(), 2u);
  EXPECT_DOUBLE_EQ(tracker.repeat_ratio()[1], 0.5);
}

TEST(DynamicsTrackerTest, RepeatOutsideWindowForgotten) {
  DynamicsTracker tracker(/*window=*/2);
  const Triple pos{0, 0, 1};
  tracker.Observe(pos, MakeNeg(5, 0, 1), 0.5);
  tracker.EndEpoch();  // Epoch 0 done.
  for (int e = 0; e < 3; ++e) {
    tracker.Observe(pos, MakeNeg(9, 0, 1), 0.5);  // Keeps 9 fresh, not 5.
    tracker.EndEpoch();
  }
  tracker.Observe(pos, MakeNeg(5, 0, 1), 0.5);  // 4 epochs later: no repeat.
  tracker.EndEpoch();
  EXPECT_DOUBLE_EQ(tracker.repeat_ratio().back(), 0.0);
}

TEST(DynamicsTrackerTest, RepeatWithinSameEpochCounts) {
  DynamicsTracker tracker(20);
  const Triple pos{0, 0, 1};
  tracker.Observe(pos, MakeNeg(3, 0, 1), 0.5);
  tracker.Observe(pos, MakeNeg(3, 0, 1), 0.5);
  tracker.EndEpoch();
  EXPECT_DOUBLE_EQ(tracker.repeat_ratio()[0], 0.5);
}

TEST(DynamicsTrackerTest, NzlCountsNonzeroLosses) {
  DynamicsTracker tracker(20);
  const Triple pos{0, 0, 1};
  tracker.Observe(pos, MakeNeg(1, 0, 1), 0.7);
  tracker.Observe(pos, MakeNeg(2, 0, 1), 0.0);
  tracker.Observe(pos, MakeNeg(3, 0, 1), 0.0);
  tracker.Observe(pos, MakeNeg(4, 0, 1), 1.2);
  tracker.EndEpoch();
  EXPECT_DOUBLE_EQ(tracker.nonzero_loss_ratio()[0], 0.5);
}

TEST(DynamicsTrackerTest, EmptyEpochGivesZeroes) {
  DynamicsTracker tracker(20);
  tracker.EndEpoch();
  EXPECT_DOUBLE_EQ(tracker.repeat_ratio()[0], 0.0);
  EXPECT_DOUBLE_EQ(tracker.nonzero_loss_ratio()[0], 0.0);
}

TEST(GradNormRecorderTest, SeriesAndTail) {
  GradNormRecorder recorder;
  EpochStats stats;
  for (double g : {1.0, 2.0, 3.0, 4.0}) {
    stats.mean_grad_norm = g;
    recorder.Add(stats);
  }
  EXPECT_EQ(recorder.series().size(), 4u);
  EXPECT_DOUBLE_EQ(recorder.Tail(2), 3.5);
  EXPECT_DOUBLE_EQ(recorder.Tail(0), 2.5);
  EXPECT_DOUBLE_EQ(recorder.Tail(100), 2.5);
}

TEST(GradNormRecorderTest, EmptyTailIsZero) {
  GradNormRecorder recorder;
  EXPECT_EQ(recorder.Tail(), 0.0);
}

}  // namespace
}  // namespace nsc
