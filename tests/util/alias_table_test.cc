#include "util/alias_table.h"

#include <gtest/gtest.h>

#include <vector>

namespace nsc {
namespace {

TEST(AliasTableTest, NormalizedProbabilities) {
  AliasTable table({2.0, 3.0, 5.0});
  EXPECT_NEAR(table.Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(table.Probability(1), 0.3, 1e-12);
  EXPECT_NEAR(table.Probability(2), 0.5, 1e-12);
}

TEST(AliasTableTest, SampleFrequenciesMatchWeights) {
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  Rng rng(42);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / double(n), table.Probability(i), 0.005);
  }
}

TEST(AliasTableTest, SingleBucket) {
  AliasTable table({7.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const size_t s = table.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, UniformWeights) {
  AliasTable table(std::vector<double>(16, 1.0));
  Rng rng(3);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c / double(n), 1.0 / 16, 0.005);
}

TEST(AliasTableTest, HighlySkewedWeights) {
  std::vector<double> w(100, 1e-6);
  w[37] = 1.0;
  AliasTable table(w);
  Rng rng(4);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += (table.Sample(&rng) == 37);
  EXPECT_GT(hits, n * 0.99);
}

}  // namespace
}  // namespace nsc
