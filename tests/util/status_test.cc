#include "util/status.h"

#include <gtest/gtest.h>

namespace nsc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, MessagePreserved) {
  Status st = Status::NotFound("missing entity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "missing entity");
  EXPECT_EQ(st.ToString(), "NotFound: missing entity");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner_fail = [] { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    NSC_RETURN_IF_ERROR(inner_fail());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto inner_ok = [] { return Status::OK(); };
  auto outer = [&]() -> Status {
    NSC_RETURN_IF_ERROR(inner_ok());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kAlreadyExists);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace nsc
