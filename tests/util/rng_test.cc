#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace nsc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(uint64_t{10}));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(uint64_t{8})];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

TEST(RngTest, SignedUniformIntInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(int64_t{-2}, int64_t{2}));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalZeroWeightNeverSampled) {
  Rng rng(21);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.Categorical(w), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  rng.Shuffle(&v);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // Overwhelmingly likely.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, GumbelIsFinite) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(std::isfinite(rng.Gumbel()));
  }
}

TEST(RngTest, WorksWithStdAlgorithms) {
  Rng rng(41);
  std::vector<int> v(10);
  std::iota(v.begin(), v.end(), 0);
  std::shuffle(v.begin(), v.end(), rng);  // UniformRandomBitGenerator.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[9], 9);
}

}  // namespace
}  // namespace nsc
