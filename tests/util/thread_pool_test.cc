#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace nsc {
namespace {

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter](int) { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WorkerIndexInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&](int worker) {
      if (worker < 0 || worker >= 3) bad = true;
    });
  }
  pool.Wait();
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i, int) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPartialRange) {
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i, int) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, 5, [&](size_t, int) { ++counter; });
  pool.ParallelFor(7, 3, [&](size_t, int) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Schedule([&order, i](int) { order.push_back(i); });
  }
  pool.Wait();
  // With one worker, tasks run in FIFO order.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&](int) { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&](int) { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace nsc
