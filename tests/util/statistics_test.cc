#include "util/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nsc {
namespace {

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_NEAR(stat.mean(), 5.0, 1e-12);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
  EXPECT_NEAR(stat.sum(), 40.0, 1e-12);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  stat.Add(3.5);
  EXPECT_EQ(stat.mean(), 3.5);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.min(), 3.5);
  EXPECT_EQ(stat.max(), 3.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(Quantile(v, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 1.0), 5.0, 1e-12);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_NEAR(Quantile(v, 0.25), 2.5, 1e-12);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(CcdfTest, StepFunctionValues) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  auto ccdf = Ccdf(values, {0.0, 1.0, 2.5, 4.0, 5.0});
  EXPECT_NEAR(ccdf[0], 1.0, 1e-12);   // All >= 0.
  EXPECT_NEAR(ccdf[1], 1.0, 1e-12);   // All >= 1.
  EXPECT_NEAR(ccdf[2], 0.5, 1e-12);   // {3,4} >= 2.5.
  EXPECT_NEAR(ccdf[3], 0.25, 1e-12);  // {4} >= 4.
  EXPECT_NEAR(ccdf[4], 0.0, 1e-12);
}

TEST(CcdfTest, MonotoneNonIncreasing) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(std::sin(i * 0.7) * 10);
  auto grid = LinSpace(-10, 10, 21);
  auto ccdf = Ccdf(values, grid);
  for (size_t i = 1; i < ccdf.size(); ++i) EXPECT_LE(ccdf[i], ccdf[i - 1]);
}

TEST(CcdfTest, EmptyValuesGiveZeros) {
  auto ccdf = Ccdf({}, {0.0, 1.0});
  EXPECT_EQ(ccdf, (std::vector<double>{0.0, 0.0}));
}

TEST(LinSpaceTest, EndpointsAndSpacing) {
  auto grid = LinSpace(0.0, 1.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_EQ(grid.front(), 0.0);
  EXPECT_EQ(grid.back(), 1.0);
  EXPECT_NEAR(grid[1] - grid[0], 0.25, 1e-12);
}

TEST(LinSpaceTest, NegativeRange) {
  auto grid = LinSpace(-2.0, 2.0, 3);
  EXPECT_NEAR(grid[1], 0.0, 1e-12);
}

}  // namespace
}  // namespace nsc
