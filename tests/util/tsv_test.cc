#include "util/tsv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace nsc {
namespace {

class TsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(TsvTest, SplitBasic) {
  auto fields = SplitTsvLine("a\tb\tc");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST_F(TsvTest, SplitPreservesEmptyFields) {
  auto fields = SplitTsvLine("a\t\tc\t");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST_F(TsvTest, SplitSingleField) {
  auto fields = SplitTsvLine("only");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "only");
}

TEST_F(TsvTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.tsv");
  std::vector<std::vector<std::string>> rows = {
      {"h1", "r1", "t1"}, {"h2", "r2", "t2"}, {"x", "y", "z"}};
  ASSERT_TRUE(WriteTsvFile(path, rows).ok());
  auto read = ReadTsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST_F(TsvTest, ReadSkipsEmptyLinesAndHandlesCrLf) {
  const std::string path = TempPath("crlf.tsv");
  {
    std::ofstream out(path);
    out << "a\tb\r\n\r\nc\td\n\n";
  }
  auto read = ReadTsvFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_EQ(read.value()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(read.value()[1], (std::vector<std::string>{"c", "d"}));
  std::remove(path.c_str());
}

TEST_F(TsvTest, MissingFileIsIOError) {
  auto read = ReadTsvFile("/nonexistent/dir/file.tsv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(TsvTest, WriteToBadPathIsIOError) {
  Status st = WriteTsvFile("/nonexistent/dir/file.tsv", {{"a"}});
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace nsc
