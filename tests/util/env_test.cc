#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace nsc {
namespace {

TEST(EnvTest, IntParsingAndFallback) {
  ::setenv("NSC_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("NSC_TEST_INT", 7), 42);
  ::unsetenv("NSC_TEST_INT");
  EXPECT_EQ(GetEnvInt("NSC_TEST_INT", 7), 7);
  ::setenv("NSC_TEST_INT", "notanumber", 1);
  EXPECT_EQ(GetEnvInt("NSC_TEST_INT", 7), 7);
  ::setenv("NSC_TEST_INT", "-13", 1);
  EXPECT_EQ(GetEnvInt("NSC_TEST_INT", 7), -13);
  ::unsetenv("NSC_TEST_INT");
}

TEST(EnvTest, DoubleParsing) {
  ::setenv("NSC_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("NSC_TEST_DBL", 1.0), 2.5);
  ::setenv("NSC_TEST_DBL", "bad", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("NSC_TEST_DBL", 1.0), 1.0);
  ::unsetenv("NSC_TEST_DBL");
}

TEST(EnvTest, BoolParsing) {
  for (const char* v : {"1", "true", "on", "yes"}) {
    ::setenv("NSC_TEST_BOOL", v, 1);
    EXPECT_TRUE(GetEnvBool("NSC_TEST_BOOL", false)) << v;
  }
  for (const char* v : {"0", "false", "off", "no"}) {
    ::setenv("NSC_TEST_BOOL", v, 1);
    EXPECT_FALSE(GetEnvBool("NSC_TEST_BOOL", true)) << v;
  }
  ::setenv("NSC_TEST_BOOL", "maybe", 1);
  EXPECT_TRUE(GetEnvBool("NSC_TEST_BOOL", true));
  ::unsetenv("NSC_TEST_BOOL");
  EXPECT_FALSE(GetEnvBool("NSC_TEST_BOOL", false));
}

TEST(EnvTest, StringFallback) {
  ::setenv("NSC_TEST_STR", "hello", 1);
  EXPECT_EQ(GetEnvString("NSC_TEST_STR", "d"), "hello");
  ::unsetenv("NSC_TEST_STR");
  EXPECT_EQ(GetEnvString("NSC_TEST_STR", "d"), "d");
}

}  // namespace
}  // namespace nsc
