#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>

namespace nsc {
namespace {

TEST(LogSumExpTest, MatchesDirectComputation) {
  std::vector<double> x = {0.5, -1.0, 2.0};
  double direct = std::log(std::exp(0.5) + std::exp(-1.0) + std::exp(2.0));
  EXPECT_NEAR(LogSumExp(x), direct, 1e-12);
}

TEST(LogSumExpTest, StableForLargeValues) {
  std::vector<double> x = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(x), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, EmptyIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(LogSumExp({})));
  EXPECT_LT(LogSumExp({}), 0.0);
}

TEST(SoftmaxTest, SumsToOneAndOrders) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&x);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0, 1e-12);
  EXPECT_LT(x[0], x[1]);
  EXPECT_LT(x[1], x[2]);
}

TEST(SoftmaxTest, StableForHugeLogits) {
  std::vector<double> x = {1e6, 1e6 - 1.0};
  SoftmaxInPlace(&x);
  EXPECT_NEAR(x[0] + x[1], 1.0, 1e-12);
  EXPECT_GT(x[0], x[1]);
}

TEST(SigmoidTest, SymmetryAndRange) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
}

TEST(Log1pExpTest, MatchesReferenceAndIsStable) {
  EXPECT_NEAR(Log1pExp(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(Log1pExp(1.5), std::log1p(std::exp(1.5)), 1e-12);
  EXPECT_NEAR(Log1pExp(100.0), 100.0, 1e-9);
  EXPECT_NEAR(Log1pExp(-100.0), std::exp(-100.0), 1e-12);
}

TEST(VectorOpsTest, DotAndNorms) {
  const float a[] = {1.0f, -2.0f, 3.0f};
  const float b[] = {4.0f, 5.0f, -6.0f};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 4.0f - 10.0f - 18.0f);
  EXPECT_FLOAT_EQ(L2Norm(a, 3), std::sqrt(14.0f));
  EXPECT_FLOAT_EQ(L1Norm(a, 3), 6.0f);
}

TEST(VectorOpsTest, AxpyAndScale) {
  const float x[] = {1.0f, 2.0f};
  float y[] = {10.0f, 20.0f};
  Axpy(2.0f, x, y, 2);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
  Scale(0.5f, y, 2);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 12.0f);
}

TEST(GumbelTopKTest, ReturnsDistinctIndices) {
  Rng rng(3);
  std::vector<double> logits(20, 0.0);
  for (int trial = 0; trial < 50; ++trial) {
    auto picked = GumbelTopK(logits, 5, &rng);
    std::set<int> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), 5u);
    for (int i : picked) {
      EXPECT_GE(i, 0);
      EXPECT_LT(i, 20);
    }
  }
}

TEST(GumbelTopKTest, KEqualsNReturnsAll) {
  Rng rng(4);
  std::vector<double> logits = {0.1, 5.0, -2.0};
  auto picked = GumbelTopK(logits, 3, &rng);
  std::set<int> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique, (std::set<int>{0, 1, 2}));
}

// Property: Gumbel-top-1 equals categorical sampling under softmax(logits).
TEST(GumbelTopKTest, Top1MatchesSoftmaxFrequencies) {
  Rng rng(5);
  std::vector<double> logits = {0.0, 1.0, 2.0};
  std::vector<double> probs = logits;
  SoftmaxInPlace(&probs);
  std::map<int, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[GumbelTopK(logits, 1, &rng)[0]];
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(counts[i] / double(n), probs[i], 0.01) << "index " << i;
  }
}

// Property: high-logit entries are selected (exploitation) but low-logit
// entries still enter occasionally (exploration) — the balance Algorithm 3
// relies on.
TEST(GumbelTopKTest, HighLogitsDominateButDoNotMonopolize) {
  Rng rng(6);
  std::vector<double> logits = {5.0, 5.0, 5.0, 0.0, 0.0, 0.0};
  int high_picked = 0, low_picked = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    for (int idx : GumbelTopK(logits, 3, &rng)) {
      (idx < 3 ? high_picked : low_picked)++;
    }
  }
  EXPECT_GT(high_picked, low_picked * 5);
  EXPECT_GT(low_picked, 0);
}

TEST(TopKTest, DeterministicLargest) {
  std::vector<double> v = {0.5, 3.0, -1.0, 3.0, 2.0};
  auto top = TopK(v, 3);
  ASSERT_EQ(top.size(), 3u);
  // Ties broken by lower index: 1 (3.0), 3 (3.0), 4 (2.0).
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 4);
}

TEST(TopKTest, FullSelectionIsPermutation) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  auto top = TopK(v, 4);
  EXPECT_EQ(top, (std::vector<int>{0, 2, 3, 1}));
}

}  // namespace
}  // namespace nsc
