#include "util/backoff.h"

#include <gtest/gtest.h>

#include <vector>

namespace nsc {
namespace {

TEST(BackoffTest, DelaysGrowExponentiallyWithoutJitter) {
  BackoffOptions options;
  options.initial_backoff_us = 100;
  options.multiplier = 2.0;
  options.max_backoff_us = 100000;
  options.jitter = 0.0;
  EXPECT_EQ(BackoffDelayUs(options, 0, nullptr), 100);
  EXPECT_EQ(BackoffDelayUs(options, 1, nullptr), 200);
  EXPECT_EQ(BackoffDelayUs(options, 2, nullptr), 400);
  EXPECT_EQ(BackoffDelayUs(options, 3, nullptr), 800);
}

TEST(BackoffTest, DelayIsCapped) {
  BackoffOptions options;
  options.initial_backoff_us = 100;
  options.multiplier = 10.0;
  options.max_backoff_us = 500;
  options.jitter = 0.0;
  EXPECT_EQ(BackoffDelayUs(options, 0, nullptr), 100);
  EXPECT_EQ(BackoffDelayUs(options, 1, nullptr), 500);
  EXPECT_EQ(BackoffDelayUs(options, 5, nullptr), 500);
}

TEST(BackoffTest, JitterIsDeterministicAndBounded) {
  BackoffOptions options;
  options.initial_backoff_us = 1000;
  options.multiplier = 1.0;
  options.max_backoff_us = 10000;
  options.jitter = 0.2;
  Rng a(options.seed);
  Rng b(options.seed);
  for (int retry = 0; retry < 10; ++retry) {
    const int64_t first = BackoffDelayUs(options, retry, &a);
    const int64_t second = BackoffDelayUs(options, retry, &b);
    EXPECT_EQ(first, second) << retry;
    EXPECT_GE(first, 800) << retry;   // 1000 * (1 - 0.2)
    EXPECT_LE(first, 1200) << retry;  // 1000 * (1 + 0.2)
  }
}

TEST(BackoffTest, RetryableCodes) {
  EXPECT_TRUE(IsRetryableCode(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kIOError));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kOk));
}

TEST(BackoffTest, SucceedsFirstTryWithoutSleeping) {
  BackoffOptions options;
  int calls = 0;
  int sleeps = 0;
  const Status status = RetryWithBackoff(
      options,
      [&] {
        ++calls;
        return Status::OK();
      },
      [&](int64_t) {
        ++sleeps;
        return true;
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sleeps, 0);
}

TEST(BackoffTest, RetriesTransientFailuresUntilSuccess) {
  BackoffOptions options;
  options.max_attempts = 5;
  int calls = 0;
  std::vector<int64_t> sleeps;
  std::vector<int> observed_attempts;
  const Status status = RetryWithBackoff(
      options,
      [&] {
        ++calls;
        return calls < 3 ? Status::IOError("disk hiccup") : Status::OK();
      },
      [&](int64_t us) {
        sleeps.push_back(us);
        return true;
      },
      [&](const Status& failure, int attempt) {
        EXPECT_EQ(failure.code(), StatusCode::kIOError);
        observed_attempts.push_back(attempt);
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(observed_attempts, (std::vector<int>{0, 1}));
}

TEST(BackoffTest, NonRetryableFailsFast) {
  BackoffOptions options;
  options.max_attempts = 5;
  int calls = 0;
  int sleeps = 0;
  const Status status = RetryWithBackoff(
      options,
      [&] {
        ++calls;
        return Status::InvalidArgument("permanently wrong");
      },
      [&](int64_t) {
        ++sleeps;
        return true;
      });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sleeps, 0);
}

TEST(BackoffTest, ExhaustsMaxAttempts) {
  BackoffOptions options;
  options.max_attempts = 3;
  int calls = 0;
  int failures = 0;
  const Status status = RetryWithBackoff(
      options,
      [&] {
        ++calls;
        return Status::Unavailable("still down");
      },
      [](int64_t) { return true; },
      [&](const Status&, int) { ++failures; });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  // The observer sees every failed attempt, the final one included.
  EXPECT_EQ(failures, 3);
}

TEST(BackoffTest, SleepCancellationStopsRetrying) {
  BackoffOptions options;
  options.max_attempts = 10;
  int calls = 0;
  const Status status = RetryWithBackoff(
      options,
      [&] {
        ++calls;
        return Status::IOError("down");
      },
      [](int64_t) { return false; });  // Shutdown observed mid-sleep.
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace nsc
