#include "util/text_table.h"

#include <gtest/gtest.h>

namespace nsc {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table;
  table.SetHeader({"name", "mrr"});
  table.AddRow({"bernoulli", "0.50"});
  table.AddRow({"nscaching", "0.78"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("bernoulli"), std::string::npos);
  EXPECT_NE(out.find("0.78"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable table;
  table.SetHeader({"a", "b"});
  table.AddRow({"longvalue", "x"});
  table.AddRow({"s", "y"});
  const std::string out = table.Render();
  // Both data rows start their second column at the same offset.
  const size_t line1 = out.find("longvalue");
  const size_t x_pos = out.find("x", line1);
  const size_t line2 = out.find("\ns", x_pos) + 1;
  const size_t y_pos = out.find("y", line2);
  EXPECT_EQ(x_pos - line1, y_pos - line2);
}

TEST(TextTableTest, SeparatorLineDrawn) {
  TextTable table;
  table.SetHeader({"c1"});
  table.AddRow({"v"});
  table.AddSeparator();
  table.AddRow({"w"});
  const std::string out = table.Render();
  // Header separator plus explicit one -> at least two dash runs.
  size_t first = out.find("---");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find("---", first + 3), std::string::npos);
}

TEST(TextTableTest, RowsShorterThanHeaderPad) {
  TextTable table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.Render().find("only"), std::string::npos);
}

TEST(TextTableTest, NumericHelpers) {
  EXPECT_EQ(TextTable::Fixed(0.56789, 4), "0.5679");
  EXPECT_EQ(TextTable::Fixed(-1.5, 1), "-1.5");
  EXPECT_EQ(TextTable::Int(1234567), "1234567");
  EXPECT_EQ(TextTable::Int(-42), "-42");
}

}  // namespace
}  // namespace nsc
