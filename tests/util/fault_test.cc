#include "util/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace nsc {
namespace {

// Every test arms through ScopedFault (or calls DisarmAll in a guard), so
// an assertion failure cannot leak an armed fault into later tests — the
// registry is process-global.

#if NSC_FAULTS

TEST(FaultTest, UnarmedPointNeverFires) {
  const FaultHit hit = NSC_FAULT_POINT("fault_test.unarmed");
  EXPECT_FALSE(hit.fired);
  EXPECT_FALSE(hit.error());
  EXPECT_FALSE(hit.truncated());
}

TEST(FaultTest, AlwaysTriggerFiresEveryEvaluation) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  ScopedFault fault("fault_test.always", spec);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(NSC_FAULT_POINT("fault_test.always").error()) << i;
  }
  const FaultPointStats stats =
      FaultRegistry::Global().stats("fault_test.always");
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.triggers, 5u);
}

TEST(FaultTest, NthHitFiresExactlyOnce) {
  FaultSpec spec;
  spec.trigger = FaultTrigger::kNthHit;
  spec.n = 3;
  ScopedFault fault("fault_test.nth", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(NSC_FAULT_POINT("fault_test.nth").error());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
}

TEST(FaultTest, EveryKthFiresPeriodically) {
  FaultSpec spec;
  spec.trigger = FaultTrigger::kEveryKth;
  spec.n = 2;
  ScopedFault fault("fault_test.kth", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(NSC_FAULT_POINT("fault_test.kth").error());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false,
                                      true}));
}

TEST(FaultTest, ProbabilityIsDeterministicPerSeed) {
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 0.5;
  spec.seed = 1234;
  std::vector<bool> first;
  {
    ScopedFault fault("fault_test.prob", spec);
    for (int i = 0; i < 64; ++i) {
      first.push_back(NSC_FAULT_POINT("fault_test.prob").error());
    }
  }
  // Re-arming with the same seed replays the identical firing sequence.
  std::vector<bool> second;
  {
    ScopedFault fault("fault_test.prob", spec);
    for (int i = 0; i < 64; ++i) {
      second.push_back(NSC_FAULT_POINT("fault_test.prob").error());
    }
  }
  EXPECT_EQ(first, second);
  // And p = 0.5 over 64 draws fires at least once each way.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultTest, MaxTriggersStopsFiring) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.max_triggers = 2;
  ScopedFault fault("fault_test.capped", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (NSC_FAULT_POINT("fault_test.capped").error()) ++fired;
  }
  EXPECT_EQ(fired, 2);
}

TEST(FaultTest, TruncateCarriesByteCount) {
  FaultSpec spec;
  spec.action = FaultAction::kTruncate;
  spec.truncate_at = 7;
  ScopedFault fault("fault_test.trunc", spec);
  const FaultHit hit = NSC_FAULT_POINT("fault_test.trunc");
  EXPECT_TRUE(hit.truncated());
  EXPECT_FALSE(hit.error());
  EXPECT_EQ(hit.truncate_at, 7u);
}

TEST(FaultTest, DisarmRestoresFastPath) {
  FaultSpec spec;
  FaultRegistry::Global().Arm("fault_test.disarm", spec);
  EXPECT_TRUE(NSC_FAULT_POINT("fault_test.disarm").error());
  FaultRegistry::Global().Disarm("fault_test.disarm");
  EXPECT_FALSE(NSC_FAULT_POINT("fault_test.disarm").error());
  // Counters are gone with the arm.
  EXPECT_EQ(FaultRegistry::Global().stats("fault_test.disarm").hits, 0u);
}

TEST(FaultTest, ArmedPointDoesNotAffectOtherPoints) {
  FaultSpec spec;
  ScopedFault fault("fault_test.one", spec);
  EXPECT_FALSE(NSC_FAULT_POINT("fault_test.other").error());
  EXPECT_TRUE(NSC_FAULT_POINT("fault_test.one").error());
}

TEST(FaultTest, ConcurrentEvaluationIsSafe) {
  FaultSpec spec;
  spec.trigger = FaultTrigger::kEveryKth;
  spec.n = 2;
  ScopedFault fault("fault_test.mt", spec);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (NSC_FAULT_POINT("fault_test.mt").error()) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Exactly every 2nd of the 4000 total hits fires, whatever the
  // interleaving: the hit counter is serialized under the registry lock.
  EXPECT_EQ(fired.load(), kThreads * kPerThread / 2);
  const FaultPointStats stats = FaultRegistry::Global().stats("fault_test.mt");
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.triggers, static_cast<uint64_t>(kThreads * kPerThread / 2));
}

#else  // !NSC_FAULTS

TEST(FaultTest, CompiledOutPointsNeverFire) {
  // Arm aggressively; the macro still expands to an empty FaultHit.
  FaultSpec spec;
  ScopedFault fault("fault_test.compiled_out", spec);
  EXPECT_FALSE(NSC_FAULT_POINT("fault_test.compiled_out").fired);
}

#endif  // NSC_FAULTS

}  // namespace
}  // namespace nsc
