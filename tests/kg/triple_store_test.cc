#include "kg/triple_store.h"

#include <gtest/gtest.h>

namespace nsc {
namespace {

TEST(TripleStoreTest, AddAndAccess) {
  TripleStore store(10, 3);
  store.Add({0, 1, 2});
  store.Add({3, 0, 4});
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store[0], (Triple{0, 1, 2}));
  EXPECT_EQ(store[1], (Triple{3, 0, 4}));
  EXPECT_FALSE(store.empty());
}

TEST(TripleStoreTest, EmptyStore) {
  TripleStore store(5, 5);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
}

TEST(TripleStoreTest, UniverseAccessors) {
  TripleStore store(42, 7);
  EXPECT_EQ(store.num_entities(), 42);
  EXPECT_EQ(store.num_relations(), 7);
  store.SetUniverse(100, 8);
  EXPECT_EQ(store.num_entities(), 100);
  EXPECT_EQ(store.num_relations(), 8);
}

TEST(TripleStoreTest, RangeForIteration) {
  TripleStore store(10, 2);
  store.Add({1, 0, 2});
  store.Add({2, 1, 3});
  int count = 0;
  for (const Triple& x : store) {
    EXPECT_LT(x.h, 10);
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(TripleStoreDeathTest, RejectsOutOfUniverseIds) {
  TripleStore store(3, 2);
  EXPECT_DEATH(store.Add({3, 0, 0}), "CHECK");
  EXPECT_DEATH(store.Add({0, 2, 0}), "CHECK");
  EXPECT_DEATH(store.Add({0, 0, -1}), "CHECK");
}

}  // namespace
}  // namespace nsc
