#include "kg/vocab.h"

#include <gtest/gtest.h>

namespace nsc {
namespace {

TEST(VocabTest, AssignsDenseIdsInOrder) {
  Vocab v;
  EXPECT_EQ(v.GetOrAdd("alpha"), 0);
  EXPECT_EQ(v.GetOrAdd("beta"), 1);
  EXPECT_EQ(v.GetOrAdd("gamma"), 2);
  EXPECT_EQ(v.size(), 3);
}

TEST(VocabTest, GetOrAddIsIdempotent) {
  Vocab v;
  const int32_t id = v.GetOrAdd("x");
  EXPECT_EQ(v.GetOrAdd("x"), id);
  EXPECT_EQ(v.size(), 1);
}

TEST(VocabTest, FindReturnsMinusOneForUnknown) {
  Vocab v;
  v.GetOrAdd("known");
  EXPECT_EQ(v.Find("known"), 0);
  EXPECT_EQ(v.Find("unknown"), -1);
}

TEST(VocabTest, NameLookupInverse) {
  Vocab v;
  v.GetOrAdd("a");
  v.GetOrAdd("b");
  EXPECT_EQ(v.Name(0), "a");
  EXPECT_EQ(v.Name(1), "b");
}

TEST(VocabTest, NamesVectorMatchesInsertOrder) {
  Vocab v;
  v.GetOrAdd("z");
  v.GetOrAdd("a");
  EXPECT_EQ(v.names(), (std::vector<std::string>{"z", "a"}));
}

TEST(VocabTest, EmptyStringIsAValidName) {
  Vocab v;
  EXPECT_EQ(v.GetOrAdd(""), 0);
  EXPECT_EQ(v.Find(""), 0);
}

}  // namespace
}  // namespace nsc
