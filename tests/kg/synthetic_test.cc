#include "kg/synthetic.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "kg/kg_index.h"

namespace nsc {
namespace {

SyntheticKgConfig SmallConfig() {
  SyntheticKgConfig c;
  c.name = "small";
  c.num_entities = 300;
  c.num_relations = 6;
  c.num_triples = 2000;
  c.seed = 99;
  return c;
}

TEST(SyntheticTest, RespectsUniverseSizes) {
  const Dataset d = GenerateSyntheticKg(SmallConfig());
  EXPECT_EQ(d.num_entities(), 300);
  EXPECT_EQ(d.num_relations(), 6);
  for (const Triple& x : d.train) {
    EXPECT_GE(x.h, 0);
    EXPECT_LT(x.h, 300);
    EXPECT_GE(x.t, 0);
    EXPECT_LT(x.t, 300);
    EXPECT_GE(x.r, 0);
    EXPECT_LT(x.r, 6);
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  const Dataset a = GenerateSyntheticKg(SmallConfig());
  const Dataset b = GenerateSyntheticKg(SmallConfig());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) EXPECT_EQ(a.train[i], b.train[i]);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticKgConfig c = SmallConfig();
  const Dataset a = GenerateSyntheticKg(c);
  c.seed = 100;
  const Dataset b = GenerateSyntheticKg(c);
  bool differs = a.train.size() != b.train.size();
  if (!differs) {
    for (size_t i = 0; i < a.train.size(); ++i) {
      if (!(a.train[i] == b.train[i])) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, NoDuplicateTriplesAcrossSplits) {
  const Dataset d = GenerateSyntheticKg(SmallConfig());
  std::unordered_set<uint64_t> seen;
  for (const auto* split : {&d.train, &d.valid, &d.test}) {
    for (const Triple& x : *split) {
      EXPECT_TRUE(seen.insert(PackTriple(x)).second)
          << "duplicate triple across splits";
    }
  }
}

TEST(SyntheticTest, NoSelfLoops) {
  const Dataset d = GenerateSyntheticKg(SmallConfig());
  for (const Triple& x : d.train) EXPECT_NE(x.h, x.t);
}

TEST(SyntheticTest, EvalIdsCoveredByTrain) {
  const Dataset d = GenerateSyntheticKg(SmallConfig());
  std::unordered_set<int32_t> entities, relations;
  for (const Triple& x : d.train) {
    entities.insert(x.h);
    entities.insert(x.t);
    relations.insert(x.r);
  }
  for (const auto* split : {&d.valid, &d.test}) {
    for (const Triple& x : *split) {
      EXPECT_TRUE(entities.count(x.h) > 0);
      EXPECT_TRUE(entities.count(x.t) > 0);
      EXPECT_TRUE(relations.count(x.r) > 0);
    }
  }
}

TEST(SyntheticTest, SplitFractionsApproximatelyHonored) {
  SyntheticKgConfig c = SmallConfig();
  c.valid_fraction = 0.05;
  c.test_fraction = 0.05;
  const Dataset d = GenerateSyntheticKg(c);
  const double total = static_cast<double>(d.train.size() + d.valid.size() +
                                           d.test.size());
  EXPECT_NEAR(d.valid.size() / total, 0.05, 0.02);
  EXPECT_NEAR(d.test.size() / total, 0.05, 0.02);
}

TEST(SyntheticTest, InverseTwinsCreateReversedFacts) {
  SyntheticKgConfig c = SmallConfig();
  c.num_relations = 8;
  c.inverse_twin_fraction = 1.0;  // Twin every base relation.
  const Dataset d = GenerateSyntheticKg(c);
  // Some relation names must be marked as inverses.
  bool has_inverse_name = false;
  for (const std::string& name : d.relations.names()) {
    if (name.find("_inv") != std::string::npos) has_inverse_name = true;
  }
  EXPECT_TRUE(has_inverse_name);

  // And reversed duplicates must actually exist in the data.
  const KgIndex index(std::vector<const TripleStore*>{&d.train, &d.valid,
                                                      &d.test});
  int reversed = 0, base_facts = 0;
  for (const Triple& x : d.train) {
    const std::string& name = d.relations.Name(x.r);
    if (name.find("_inv") != std::string::npos) continue;
    ++base_facts;
    // The twin has id r+1 when it exists.
    if (x.r + 1 < d.num_relations() &&
        d.relations.Name(x.r + 1).find("_inv") != std::string::npos &&
        index.Contains({x.t, x.r + 1, x.h})) {
      ++reversed;
    }
  }
  ASSERT_GT(base_facts, 0);
  EXPECT_GT(reversed, base_facts / 2);  // ~90% are mirrored.
}

TEST(SyntheticTest, PresetsMatchTableIIShape) {
  const Dataset wn = GenerateSyntheticKg(SynthWn18Config(0.3));
  EXPECT_EQ(wn.num_relations(), 18);
  EXPECT_EQ(wn.name, "synth-WN18");
  const Dataset wnrr = GenerateSyntheticKg(SynthWn18RrConfig(0.3));
  EXPECT_EQ(wnrr.num_relations(), 11);
  // WN18RR must be smaller than WN18 in training triples (as in Table II).
  EXPECT_LT(wnrr.train.size(), wn.train.size());
  const Dataset fb = GenerateSyntheticKg(SynthFb15kConfig(0.3));
  const Dataset fb237 = GenerateSyntheticKg(SynthFb15k237Config(0.3));
  // FB15K has more relations and triples than FB15K237.
  EXPECT_GT(fb.num_relations(), fb237.num_relations());
  EXPECT_GT(fb.train.size(), fb237.train.size());
}

TEST(SyntheticTest, RelationCardinalityMixPresent) {
  SyntheticKgConfig c = SmallConfig();
  c.num_triples = 4000;
  const Dataset d = GenerateSyntheticKg(c);
  const KgIndex index(d.train);
  // At least one relation should be clearly 1-N or N-1 (tph or hpt >> 1).
  bool has_high_cardinality = false;
  for (RelationId r = 0; r < d.num_relations(); ++r) {
    if (index.TailsPerHead(r) > 1.5 || index.HeadsPerTail(r) > 1.5) {
      has_high_cardinality = true;
    }
  }
  EXPECT_TRUE(has_high_cardinality);
}

TEST(SyntheticTest, CompleteNeighborhoodsAreDeterministicPerHead) {
  // With complete_neighborhoods (the default) the tails of a given (h, r)
  // are a prefix of the deterministic nearest-neighbour ranking, so two
  // generations with the same seed emit identical tail sets, and a
  // non-emitted near-miss is genuinely false in the world model.
  SyntheticKgConfig c = SmallConfig();
  c.complete_neighborhoods = true;
  const Dataset a = GenerateSyntheticKg(c);
  c.complete_neighborhoods = false;
  const Dataset b = GenerateSyntheticKg(c);
  // Same world model, different emission rule -> different triple sets.
  bool differs = a.train.size() != b.train.size();
  if (!differs) {
    for (size_t i = 0; i < a.train.size(); ++i) {
      if (!(a.train[i] == b.train[i])) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ProfessionsKgTest, NamedEntitiesAndSplits) {
  const Dataset d = GenerateProfessionsKg(200, 20, 3);
  EXPECT_GT(d.train.size(), 200u);
  EXPECT_FALSE(d.valid.empty());
  EXPECT_FALSE(d.test.empty());
  EXPECT_GE(d.entities.Find("actor"), 0);
  EXPECT_GE(d.entities.Find("physician"), 0);
  EXPECT_GE(d.entities.Find("ostrava"), 0);
  EXPECT_GE(d.relations.Find("profession"), 0);
}

TEST(ProfessionsKgTest, ProfessionTriplesPointAtProfessionEntities) {
  const Dataset d = GenerateProfessionsKg(150, 15, 4);
  const RelationId r_prof = d.relations.Find("profession");
  ASSERT_GE(r_prof, 0);
  // The 24 profession entities were added first, so their ids are < 24.
  for (const Triple& x : d.train) {
    if (x.r == r_prof) {
      EXPECT_LT(x.t, 24);
    }
  }
}

}  // namespace
}  // namespace nsc
