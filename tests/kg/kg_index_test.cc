#include "kg/kg_index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nsc {
namespace {

// A small graph with a clear 1-N relation (r0: head 0 -> tails 1,2,3) and a
// clear N-1 relation (r1: heads 1,2,3 -> tail 4).
TripleStore MakeStore() {
  TripleStore store(6, 2);
  store.Add({0, 0, 1});
  store.Add({0, 0, 2});
  store.Add({0, 0, 3});
  store.Add({1, 1, 4});
  store.Add({2, 1, 4});
  store.Add({3, 1, 4});
  return store;
}

TEST(KgIndexTest, ContainsExactlyAddedTriples) {
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  EXPECT_TRUE(index.Contains({0, 0, 1}));
  EXPECT_TRUE(index.Contains({3, 1, 4}));
  EXPECT_FALSE(index.Contains({1, 0, 0}));   // Reversed.
  EXPECT_FALSE(index.Contains({0, 1, 1}));   // Wrong relation.
  EXPECT_FALSE(index.Contains({5, 0, 5}));
  EXPECT_EQ(index.num_triples(), 6u);
}

TEST(KgIndexTest, AdjacencyLists) {
  const KgIndex index(MakeStore());
  auto tails = index.TailsOf(0, 0);
  std::sort(tails.begin(), tails.end());
  EXPECT_EQ(tails, (std::vector<EntityId>{1, 2, 3}));
  auto heads = index.HeadsOf(1, 4);
  std::sort(heads.begin(), heads.end());
  EXPECT_EQ(heads, (std::vector<EntityId>{1, 2, 3}));
  EXPECT_TRUE(index.TailsOf(5, 0).empty());
  EXPECT_TRUE(index.HeadsOf(0, 5).empty());
}

TEST(KgIndexTest, CardinalityStatistics) {
  const KgIndex index(MakeStore());
  // r0: one (h,r) pair with 3 triples -> tph = 3; three (r,t) pairs -> hpt = 1.
  EXPECT_DOUBLE_EQ(index.TailsPerHead(0), 3.0);
  EXPECT_DOUBLE_EQ(index.HeadsPerTail(0), 1.0);
  // r1 is the mirror image.
  EXPECT_DOUBLE_EQ(index.TailsPerHead(1), 1.0);
  EXPECT_DOUBLE_EQ(index.HeadsPerTail(1), 3.0);
}

TEST(KgIndexTest, BernoulliHeadReplaceProbability) {
  const KgIndex index(MakeStore());
  // 1-N relation (r0): corrupting the head is safer -> p_head = 3/4.
  EXPECT_DOUBLE_EQ(index.HeadReplaceProbability(0), 0.75);
  // N-1 relation (r1): corrupting the tail is safer -> p_head = 1/4.
  EXPECT_DOUBLE_EQ(index.HeadReplaceProbability(1), 0.25);
}

TEST(KgIndexTest, UnseenRelationFallsBackToHalf) {
  TripleStore store(4, 3);
  store.Add({0, 0, 1});
  const KgIndex index(store);
  EXPECT_DOUBLE_EQ(index.HeadReplaceProbability(2), 0.5);
}

TEST(KgIndexTest, EntityDegrees) {
  const KgIndex index(MakeStore());
  const auto& deg = index.entity_degrees();
  EXPECT_EQ(deg[0], 3);  // Head of three r0 triples.
  EXPECT_EQ(deg[4], 3);  // Tail of three r1 triples.
  EXPECT_EQ(deg[1], 2);  // Tail of one r0, head of one r1.
  EXPECT_EQ(deg[5], 0);
}

TEST(KgIndexTest, MultipleStoresMergedWithDedup) {
  TripleStore a(4, 1), b(4, 1);
  a.Add({0, 0, 1});
  a.Add({1, 0, 2});
  b.Add({1, 0, 2});  // Duplicate across stores.
  b.Add({2, 0, 3});
  const KgIndex index(std::vector<const TripleStore*>{&a, &b});
  EXPECT_EQ(index.num_triples(), 3u);
  EXPECT_TRUE(index.Contains({2, 0, 3}));
}

TEST(KgIndexTest, DuplicateTriplesWithinStoreCountedOnce) {
  TripleStore store(3, 1);
  store.Add({0, 0, 1});
  store.Add({0, 0, 1});
  const KgIndex index(store);
  EXPECT_EQ(index.num_triples(), 1u);
  EXPECT_EQ(index.TailsOf(0, 0).size(), 1u);
}

}  // namespace
}  // namespace nsc
