#include "kg/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace nsc {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/nsc_dataset_test";
    std::remove((dir_ + "/train.txt").c_str());
    ::system(("mkdir -p " + dir_).c_str());
  }

  void WriteSplit(const std::string& split, const std::string& content) {
    std::ofstream out(dir_ + "/" + split + ".txt");
    out << content;
  }

  std::string dir_;
};

TEST_F(DatasetTest, LoadBuildsSharedVocab) {
  WriteSplit("train", "paris\tcapital_of\tfrance\nberlin\tcapital_of\tgermany\n");
  WriteSplit("valid", "paris\tcapital_of\tfrance\n");
  WriteSplit("test", "berlin\tcapital_of\tgermany\n");
  auto ds = LoadDataset(dir_, "toy");
  ASSERT_TRUE(ds.ok());
  const Dataset& d = ds.value();
  EXPECT_EQ(d.num_entities(), 4);
  EXPECT_EQ(d.num_relations(), 1);
  EXPECT_EQ(d.train.size(), 2u);
  EXPECT_EQ(d.valid.size(), 1u);
  EXPECT_EQ(d.test.size(), 1u);
  EXPECT_EQ(d.entities.Find("paris"), 0);
}

TEST_F(DatasetTest, DropsEvalTriplesWithUnseenIds) {
  WriteSplit("train", "a\tr\tb\n");
  WriteSplit("valid", "a\tr\tb\nunseen\tr\tb\n");
  WriteSplit("test", "a\tr2\tb\n");  // Relation unseen in train.
  auto ds = LoadDataset(dir_, "toy");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().valid.size(), 1u);
  EXPECT_EQ(ds.value().test.size(), 0u);
}

TEST_F(DatasetTest, MalformedLineIsInvalidArgument) {
  WriteSplit("train", "only_two\tfields\n");
  WriteSplit("valid", "");
  WriteSplit("test", "");
  auto ds = LoadDataset(dir_, "toy");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetTest, MissingFileIsIOError) {
  auto ds = LoadDataset(dir_ + "/does_not_exist", "toy");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIOError);
}

TEST_F(DatasetTest, SaveLoadRoundTrip) {
  WriteSplit("train", "a\tr\tb\nb\tr\tc\nc\tr\ta\n");
  WriteSplit("valid", "a\tr\tc\n");
  WriteSplit("test", "b\tr\ta\n");
  auto ds = LoadDataset(dir_, "toy");
  ASSERT_TRUE(ds.ok());

  const std::string out_dir = dir_ + "/out";
  ::system(("mkdir -p " + out_dir).c_str());
  ASSERT_TRUE(SaveDataset(ds.value(), out_dir).ok());
  auto reloaded = LoadDataset(out_dir, "toy2");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().train.size(), ds.value().train.size());
  EXPECT_EQ(reloaded.value().valid.size(), ds.value().valid.size());
  EXPECT_EQ(reloaded.value().test.size(), ds.value().test.size());
  EXPECT_EQ(reloaded.value().num_entities(), ds.value().num_entities());
}

TEST_F(DatasetTest, StatsMatchTableIIShape) {
  WriteSplit("train", "a\tr\tb\nb\tr\tc\n");
  WriteSplit("valid", "a\tr\tc\n");
  WriteSplit("test", "b\tr\ta\n");
  auto ds = LoadDataset(dir_, "toy");
  ASSERT_TRUE(ds.ok());
  const DatasetStats stats = ComputeStats(ds.value());
  EXPECT_EQ(stats.name, "toy");
  EXPECT_EQ(stats.num_entities, 3);
  EXPECT_EQ(stats.num_relations, 1);
  EXPECT_EQ(stats.num_train, 2u);
  EXPECT_EQ(stats.num_valid, 1u);
  EXPECT_EQ(stats.num_test, 1u);
}

}  // namespace
}  // namespace nsc
