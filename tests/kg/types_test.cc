#include "kg/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace nsc {
namespace {

TEST(TypesTest, PackUnpackRoundTrip) {
  const Triple x{12345, 678, 2000000};
  EXPECT_EQ(UnpackTriple(PackTriple(x)), x);
}

TEST(TypesTest, PackUnpackBoundaries) {
  const Triple zero{0, 0, 0};
  EXPECT_EQ(UnpackTriple(PackTriple(zero)), zero);
  const Triple maxed{static_cast<EntityId>(kMaxId),
                     static_cast<RelationId>(kMaxId),
                     static_cast<EntityId>(kMaxId)};
  EXPECT_EQ(UnpackTriple(PackTriple(maxed)), maxed);
}

TEST(TypesTest, PackIsInjectiveOnSamples) {
  std::unordered_set<uint64_t> keys;
  for (EntityId h = 0; h < 10; ++h) {
    for (RelationId r = 0; r < 10; ++r) {
      for (EntityId t = 0; t < 10; ++t) {
        EXPECT_TRUE(keys.insert(PackTriple({h, r, t})).second);
      }
    }
  }
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(TypesTest, PairKeysDistinguishOrderAndKind) {
  // (h=1, r=2) vs (r=1, t=2): same ints, different packing functions must
  // be used against *different* caches, but each is injective on its own.
  EXPECT_NE(PackHr(1, 2), PackHr(2, 1));
  EXPECT_NE(PackRt(1, 2), PackRt(2, 1));
}

TEST(TypesTest, TripleComparison) {
  const Triple a{1, 2, 3}, b{1, 2, 4}, c{1, 2, 3};
  EXPECT_TRUE(a == c);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(TypesTest, TripleHashUsableInSet) {
  std::unordered_set<Triple, TripleHash> set;
  set.insert({1, 2, 3});
  set.insert({1, 2, 3});
  set.insert({3, 2, 1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count({1, 2, 3}) > 0);
  EXPECT_TRUE(set.count({9, 9, 9}) == 0);
}

TEST(TypesTest, CorruptionSideValues) {
  EXPECT_NE(static_cast<int>(CorruptionSide::kHead),
            static_cast<int>(CorruptionSide::kTail));
}

}  // namespace
}  // namespace nsc
