// NEGATIVE compile-time test for the thread-safety annotations.
//
// This TU deliberately violates the annotated lock protocols and MUST
// FAIL to compile under clang with -Wthread-safety -Werror. CI builds it
// with the build expected to fail:
//
//   cmake --build build --target thread_safety_negative   # must fail
//
// If it ever compiles under clang, the annotations have rotted (macros
// expanding to nothing under clang, an attribute dropped, the analysis
// disabled) — the positive build alone cannot detect that, because a
// no-op analysis also produces zero warnings there.
//
// Under GCC the NSC_* macros expand to nothing and this file compiles;
// that is fine — the target is EXCLUDE_FROM_ALL and only the clang CI
// job builds it. Nothing here is ever executed.
#include "core/triplet_cache.h"
#include "serve/server.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace nsc {
namespace {

// Violation 1: reading a LockedEntry's candidates() without the analysis
// knowing the capability is held. Acquire() returns the handle across its
// no-analysis boundary, so the caller must AssertHeld() first; skipping
// it must be a compile error, or the scoped-capability design is dead.
size_t UseEntryWithoutAssert(TripletCache* cache, Rng* rng) {
  TripletCache::LockedEntry entry = cache->Acquire(7, rng);
  // Missing: entry.AssertHeld();
  return entry.candidates().size();  // error: requires holding 'entry'
}

// Violation 2: a helper that assumes the lock without declaring it. The
// annotated equivalent (NSCachingSampler::SelectAndRefreshHead) carries
// NSC_REQUIRES(entry); without it the call must not check.
size_t HelperWithoutRequires(TripletCache::LockedEntry& entry) {
  return entry.candidates().size();  // error: requires holding 'entry'
}

// Violation 3: touching a guarded field with no lock held.
struct Counter {
  Mutex mu;
  int value NSC_GUARDED_BY(mu) = 0;
};

void WriteGuardedFieldUnlocked(Counter* c) {
  c->value = 1;  // error: writing variable 'value' requires holding 'mu'
}

// Violation 4: double acquisition of the same mutex (self-deadlock).
void DoubleLock(Counter* c) {
  MutexLock outer(&c->mu);
  MutexLock inner(&c->mu);  // error: acquiring mutex 'mu' already held
  c->value = 2;
}

// Violation 5: leaking a lock — acquired but never released on a path.
void LockWithoutUnlock(Counter* c) {
  c->mu.Lock();
  c->value = 3;
}  // error: mutex 'mu' is still held at the end of function

// Violation 6: waiting on a condition variable without holding the mutex
// it is declared to require — CondVar::WaitFor carries NSC_REQUIRES(mu),
// so a lock-less wait (which is UB on the underlying condition_variable)
// must not check.
void WaitWithoutLock(Counter* c) {
  CondVar cv;
  cv.WaitFor(&c->mu, 100);  // error: requires holding 'mu'
}

// Violation 7: the serving layer's one lock protocol — writing a
// connection's output buffer without Connection::mu. This is exactly the
// bug the reorder/flush design prevents (a worker racing the event
// loop's flush); it must never compile.
void WriteConnectionOutUnlocked(ServeServer::Connection* conn) {
  conn->out += "SCORE 0 0\n";  // error: writing 'out' requires holding 'mu'
  conn->close_after_flush = true;  // error: requires holding 'mu'
}

// Anchors every violation as odr-used so -Wunused-function noise cannot
// mask (or mimic) the thread-safety diagnostics. Never called.
const void* const kAnchors[] = {
    reinterpret_cast<const void*>(&UseEntryWithoutAssert),
    reinterpret_cast<const void*>(&HelperWithoutRequires),
    reinterpret_cast<const void*>(&WriteGuardedFieldUnlocked),
    reinterpret_cast<const void*>(&DoubleLock),
    reinterpret_cast<const void*>(&LockWithoutUnlock),
    reinterpret_cast<const void*>(&WaitWithoutLock),
    reinterpret_cast<const void*>(&WriteConnectionOutUnlocked),
};

}  // namespace
}  // namespace nsc

int main() { return nsc::kAnchors[0] == nullptr; }
