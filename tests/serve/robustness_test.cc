// The serving acceptance contract under injected faults: with fault
// points armed, a client observes ONLY bit-identical-correct answers or
// explicit errors ("ERR overloaded ...", "ERR deadline ...") — never a
// hang, a crash, or a silently wrong/partial response. Also pins the
// robustness wire-protocol extensions (DEADLINE prefix, stale=1, INFO
// checkpoint extras), the publisher's retry/give-up counters, and the
// TCP front-end's idle-connection reaper.
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "embedding/checkpoint_set.h"
#include "embedding/scoring_function.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/fault.h"
#include "util/rng.h"

namespace nsc {
namespace {

constexpr int32_t kEntities = 48;
constexpr int32_t kRelations = 4;

KgeModel MakeModel() {
  KgeModel model(kEntities, kRelations, 8, MakeScoringFunction("transe"));
  Rng rng(77);
  model.InitXavier(&rng);
  return model;
}

/// Fresh empty scratch directory under the test tmpdir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/robust_" + name;
  DIR* existing = ::opendir(dir.c_str());
  if (existing != nullptr) {
    for (const dirent* e = ::readdir(existing); e != nullptr;
         e = ::readdir(existing)) {
      const std::string entry = e->d_name;
      if (entry != "." && entry != "..") {
        std::remove((dir + "/" + entry).c_str());
      }
    }
    ::closedir(existing);
  } else {
    ::mkdir(dir.c_str(), 0777);
  }
  return dir;
}

/// Submits one query and blocks for its result.
QueryResult SubmitAndWait(QueryEngine* engine, const Query& query) {
  std::atomic<bool> ready{false};
  QueryResult out;
  engine->Submit(query, [&](QueryResult result) {
    out = std::move(result);
    ready.store(true, std::memory_order_release);
  });
  while (!ready.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return out;
}

/// Minimal blocking loopback client (mirrors server_test.cc).
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& bytes) {
    return ::write(fd_, bytes.data(), bytes.size()) ==
           static_cast<ssize_t>(bytes.size());
  }

  std::vector<std::string> Lines(std::size_t n) {
    while (CountLines() < n) {
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t newline = buffer_.find('\n');
      lines.push_back(buffer_.substr(0, newline));
      buffer_.erase(0, newline + 1);
    }
    return lines;
  }

  bool ReadEof() {
    char chunk[256];
    for (;;) {
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got == 0) return true;
      if (got < 0) return false;
    }
  }

 private:
  std::size_t CountLines() const {
    std::size_t count = 0;
    for (const char c : buffer_) {
      if (c == '\n') ++count;
    }
    return count;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Wire-protocol extensions (no faults needed).

TEST(RobustProtocolTest, DeadlinePrefixParses) {
  auto query = ParseRequestLine("DEADLINE 5000 SCORE 1 0 2");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.value().kind, QueryKind::kScore);
  EXPECT_EQ(query.value().h, 1);
  EXPECT_EQ(query.value().r, 0);
  EXPECT_EQ(query.value().t, 2);
  EXPECT_EQ(query.value().deadline_us, 5000);
}

TEST(RobustProtocolTest, DeadlinePrefixComposesWithEveryKind) {
  auto topk = ParseRequestLine("DEADLINE 250 TOPK TAILS 3 1 5");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk.value().kind, QueryKind::kTopKTails);
  EXPECT_EQ(topk.value().deadline_us, 250);
  auto rank = ParseRequestLine("DEADLINE 99 RANK HEAD 1 0 2");
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank.value().deadline_us, 99);
}

TEST(RobustProtocolTest, MalformedDeadlineRejected) {
  EXPECT_FALSE(ParseRequestLine("DEADLINE 0 SCORE 1 0 2").ok());
  EXPECT_FALSE(ParseRequestLine("DEADLINE -5 SCORE 1 0 2").ok());
  EXPECT_FALSE(ParseRequestLine("DEADLINE abc SCORE 1 0 2").ok());
  EXPECT_FALSE(ParseRequestLine("DEADLINE 5000").ok());
  EXPECT_FALSE(ParseRequestLine("DEADLINE").ok());
}

TEST(RobustProtocolTest, PlainRequestHasNoDeadline) {
  auto query = ParseRequestLine("SCORE 1 0 2");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().deadline_us, 0);
}

TEST(RobustProtocolTest, StaleFlagAppendedToResponses) {
  QueryResult result;
  result.status = Status::OK();
  result.kind = QueryKind::kScore;
  result.step = 7;
  result.score = 1.5;
  EXPECT_EQ(FormatResponse(result).find(" stale=1"), std::string::npos);
  result.stale = true;
  const std::string line = FormatResponse(result);
  ASSERT_GE(line.size(), 9u);
  EXPECT_EQ(line.substr(line.size() - 9), " stale=1\n");
}

TEST(RobustProtocolTest, InfoExtrasAppendedOnlyWhenConfigured) {
  const KgeModel model = MakeModel();
  const EmbeddingSnapshot snapshot(model, 12);
  // Default extras: the bare protocol-v1 line, byte for byte.
  EXPECT_EQ(FormatInfoResponse(&snapshot), "INFO 12 48 4 8 transe\n");

  InfoExtras extras;
  extras.show_checkpoint = true;
  extras.ckpt_ok = 3;
  extras.ckpt_fail = 1;
  extras.ckpt_retries = 2;
  extras.ckpt_step = 10;
  extras.stale = true;
  EXPECT_EQ(FormatInfoResponse(&snapshot, extras),
            "INFO 12 48 4 8 transe ckpt_ok=3 ckpt_fail=1 ckpt_retries=2 "
            "ckpt_step=10 stale=1\n");
}

// ---------------------------------------------------------------------------
// Staleness without faults: age-based.

TEST(RobustnessTest, StaleAfterUsAgesThePublishedSnapshot) {
  SnapshotPublisherOptions options;
  options.stale_after_us = 1000;  // 1ms.
  SnapshotPublisher publisher(options);
  const KgeModel model = MakeModel();
  publisher.Publish(model, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(publisher.IsStale());
  // A fresh publish resets the clock.
  publisher.Publish(model, 2);
  EXPECT_FALSE(publisher.IsStale());
}

TEST(RobustnessTest, StalenessDisabledByDefault) {
  SnapshotPublisher publisher;
  const KgeModel model = MakeModel();
  publisher.Publish(model, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(publisher.IsStale());
}

// ---------------------------------------------------------------------------
// Idle-connection reaping (no faults needed).

TEST(RobustnessTest, IdleConnectionsAreReaped) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 12);
  ServeServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 100;
  ServeServer server(&publisher, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("INFO\n"));
  ASSERT_EQ(client.Lines(1).size(), 1u);
  // Now go silent; the server must close us, and count it.
  EXPECT_TRUE(client.ReadEof());
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_GE(stats.idle_closed, 1u);
  EXPECT_GE(stats.closed, stats.idle_closed);
  server.Shutdown();
}

TEST(RobustnessTest, ActiveConnectionOutlivesIdleTimeout) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 12);
  ServeServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 150;
  ServeServer server(&publisher, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Traffic at half the timeout keeps the connection alive well past
  // several timeout windows.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.Send("SCORE 1 0 2\n")) << i;
    const std::vector<std::string> lines = client.Lines(1);
    ASSERT_EQ(lines.size(), 1u) << i;
    EXPECT_TRUE(StartsWith(lines[0], "SCORE ")) << lines[0];
    std::this_thread::sleep_for(std::chrono::milliseconds(75));
  }
  EXPECT_EQ(server.stats().idle_closed, 0u);
  server.Shutdown();
}

#if NSC_FAULTS

// ---------------------------------------------------------------------------
// Engine-level fault injection.

TEST(RobustnessTest, OverloadFaultRejectsWithUnavailable) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  QueryEngine engine(&publisher);

  FaultSpec spec;
  spec.action = FaultAction::kError;
  ScopedFault fault("serve.overload", spec);

  Query query;
  query.kind = QueryKind::kScore;
  query.h = 1;
  query.t = 2;
  const QueryResult result = SubmitAndWait(&engine, query);
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(result.status.message().find("overloaded") !=
              std::string::npos)
      << result.status.ToString();
  EXPECT_GE(engine.batch_stats().overload_rejected, 1u);
}

TEST(RobustnessTest, QueueBoundRejectsWhenFull) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  QueryEngineOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  QueryEngine engine(&publisher, options);

  // Pin the single worker in a 100ms injected stall so queue depth is
  // fully under test control.
  FaultSpec slow;
  slow.action = FaultAction::kLatency;
  slow.latency_us = 100000;
  ScopedFault fault("serve.execute", slow);

  Query query;
  query.kind = QueryKind::kScore;
  query.h = 1;
  query.t = 2;

  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  auto count = [&](QueryResult result) {
    if (result.status.code() == StatusCode::kUnavailable) {
      ++rejected;
    } else {
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      ++completed;
    }
  };
  engine.Submit(query, count);  // Taken by the worker (stalled 100ms).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.Submit(query, count);  // Queued: depth 1 == max_queue.
  engine.Submit(query, count);  // Over the bound: rejected NOW.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(rejected.load(), 1);
  // Draining destructor answers the accepted two.
  while (completed.load() + rejected.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(engine.batch_stats().overload_rejected, 1u);
}

TEST(RobustnessTest, ExpiredQueuedRequestsAreShedNotExecuted) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  QueryEngineOptions options;
  options.num_workers = 1;
  QueryEngine engine(&publisher, options);

  FaultSpec slow;
  slow.action = FaultAction::kLatency;
  slow.latency_us = 30000;
  ScopedFault fault("serve.execute", slow);

  Query blocker;
  blocker.kind = QueryKind::kScore;
  blocker.h = 1;
  blocker.t = 2;
  std::atomic<bool> blocker_done{false};
  engine.Submit(blocker, [&](QueryResult result) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    blocker_done = true;
  });

  // Queued behind a 30ms stall with a 1ms budget: must be shed.
  Query doomed = blocker;
  doomed.deadline_us = 1000;
  const QueryResult shed = SubmitAndWait(&engine, doomed);
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(shed.status.message().find("deadline") != std::string::npos)
      << shed.status.ToString();
  EXPECT_GE(engine.batch_stats().deadline_shed, 1u);
  while (!blocker_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(RobustnessTest, TopKBatchMembersShedIndividually) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  QueryEngineOptions options;
  options.num_workers = 1;
  QueryEngine engine(&publisher, options);

  FaultSpec slow;
  slow.action = FaultAction::kLatency;
  slow.latency_us = 30000;
  ScopedFault fault("serve.execute", slow);

  Query topk;
  topk.kind = QueryKind::kTopKTails;
  topk.h = 1;
  topk.r = 2;
  topk.k = 4;
  std::atomic<bool> first_done{false};
  engine.Submit(topk, [&](QueryResult result) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    first_done = true;
  });
  Query doomed = topk;
  doomed.deadline_us = 500;
  const QueryResult shed = SubmitAndWait(&engine, doomed);
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  while (!first_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(RobustnessTest, GenerousDeadlineStillAnswersExactly) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  QueryEngine engine(&publisher);

  Query query;
  query.kind = QueryKind::kScore;
  query.h = 3;
  query.r = 1;
  query.t = 7;
  query.deadline_us = 10000000;  // 10s: never expires in a test run.
  const QueryResult result = SubmitAndWait(&engine, query);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_NE(result.snapshot, nullptr);
  EXPECT_EQ(result.score, result.snapshot->model().Score(3, 1, 7));
}

TEST(RobustnessTest, StallFaultFlagsAnswersStale) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  QueryEngine engine(&publisher);

  Query query;
  query.kind = QueryKind::kScore;
  query.h = 1;
  query.t = 2;
  {
    FaultSpec spec;
    spec.action = FaultAction::kError;
    ScopedFault fault("publisher.stall", spec);
    EXPECT_TRUE(publisher.IsStale());
    const QueryResult result = SubmitAndWait(&engine, query);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.stale);
    // Stale degrades freshness, NEVER correctness: the answer is still
    // exact against its pinned snapshot.
    ASSERT_NE(result.snapshot, nullptr);
    EXPECT_EQ(result.score, result.snapshot->model().Score(1, 0, 2));
  }
  // Disarmed: back to fresh.
  EXPECT_FALSE(publisher.IsStale());
  EXPECT_FALSE(SubmitAndWait(&engine, query).stale);
}

// The acceptance property: under randomized overload + latency faults,
// EVERY submitted request resolves (no hangs), and every resolution is
// either a bit-identical-correct answer or an explicit
// kUnavailable/kDeadlineExceeded. Nothing else is acceptable.
TEST(RobustnessTest, EveryAnswerExactOrExplicitlyRejected) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  QueryEngineOptions options;
  options.num_workers = 2;
  options.max_queue = 8;
  QueryEngine engine(&publisher, options);

  FaultSpec jitter;
  jitter.action = FaultAction::kLatency;
  jitter.trigger = FaultTrigger::kProbability;
  jitter.probability = 0.5;
  jitter.latency_us = 2000;
  jitter.seed = 42;
  ScopedFault latency_fault("serve.execute", jitter);
  FaultSpec refuse;
  refuse.action = FaultAction::kError;
  refuse.trigger = FaultTrigger::kProbability;
  refuse.probability = 0.2;
  refuse.seed = 43;
  ScopedFault overload_fault("serve.overload", refuse);

  constexpr int kRequests = 200;
  std::atomic<int> resolved{0};
  std::atomic<int> ok{0};
  std::atomic<int> explicit_errors{0};
  std::atomic<int> wrong{0};
  for (int i = 0; i < kRequests; ++i) {
    Query query;
    query.kind = QueryKind::kScore;
    query.h = i % kEntities;
    query.r = i % kRelations;
    query.t = (i * 7 + 3) % kEntities;
    query.deadline_us = 4000;
    engine.Submit(query, [&, query](QueryResult result) {
      if (result.status.ok()) {
        const double expected = result.snapshot->model().Score(
            query.h, query.r, query.t);
        if (result.score == expected) {
          ++ok;
        } else {
          ++wrong;
        }
      } else if (result.status.code() == StatusCode::kUnavailable ||
                 result.status.code() == StatusCode::kDeadlineExceeded) {
        ++explicit_errors;
      } else {
        ++wrong;
      }
      ++resolved;
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (resolved.load() < kRequests &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(resolved.load(), kRequests) << "requests hung";
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(explicit_errors.load(), 0);
  EXPECT_EQ(ok.load() + explicit_errors.load(), kRequests);
}

// ---------------------------------------------------------------------------
// Publisher checkpoint-writer retries, give-ups and counters.

TEST(RobustnessTest, WriterGivesUpAfterExhaustedRetriesThenRecovers) {
  const std::string dir = ScratchDir("giveup");
  SnapshotPublisherOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_backoff.max_attempts = 3;
  options.checkpoint_backoff.initial_backoff_us = 200;
  options.checkpoint_backoff.jitter = 0.0;
  SnapshotPublisher publisher(options);
  const KgeModel model = MakeModel();

  {
    FaultSpec spec;
    spec.action = FaultAction::kError;
    ScopedFault fault("ckpt.open", spec);
    publisher.Publish(model, 5);
    ASSERT_TRUE(publisher.WaitForCheckpointOutcomes(1, 10000000));
    const CheckpointWriterStats stats = publisher.checkpoint_stats();
    EXPECT_EQ(stats.attempts, 3);
    EXPECT_EQ(stats.failures, 3);
    EXPECT_EQ(stats.retries, 2);
    EXPECT_EQ(stats.give_ups, 1);
    EXPECT_EQ(stats.successes, 0);
    EXPECT_EQ(stats.last_success_step, -1);
    EXPECT_EQ(stats.last_status.code(), StatusCode::kIOError);
    EXPECT_EQ(publisher.last_checkpoint_step(), -1);
  }

  // Fault disarmed: the NEXT publish checkpoints cleanly — a give-up
  // never wedges the writer.
  publisher.Publish(model, 6);
  ASSERT_TRUE(publisher.WaitForCheckpoint(6, 10000000));
  const CheckpointWriterStats stats = publisher.checkpoint_stats();
  EXPECT_EQ(stats.successes, 1);
  EXPECT_EQ(stats.last_success_step, 6);
  EXPECT_TRUE(stats.last_status.ok());
  EXPECT_EQ(stats.give_ups, 1);  // History preserved.

  auto recovered = CheckpointSet(dir).LoadLatestValid();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().step, 6);
}

TEST(RobustnessTest, TornWriteIsRetriedToSuccess) {
  const std::string dir = ScratchDir("torn_retry");
  SnapshotPublisherOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_backoff.max_attempts = 4;
  options.checkpoint_backoff.initial_backoff_us = 200;
  options.checkpoint_backoff.jitter = 0.0;
  SnapshotPublisher publisher(options);
  const KgeModel model = MakeModel();

  // Tear the FIRST write attempt mid-file; kNthHit fires once, so the
  // retry runs clean. The retry overwrites the torn file.
  FaultSpec spec;
  spec.action = FaultAction::kTruncate;
  spec.trigger = FaultTrigger::kNthHit;
  spec.n = 6;
  spec.truncate_at = 10;
  ScopedFault fault("ckpt.write", spec);

  publisher.Publish(model, 9);
  ASSERT_TRUE(publisher.WaitForCheckpoint(9, 10000000));
  const CheckpointWriterStats stats = publisher.checkpoint_stats();
  EXPECT_EQ(stats.successes, 1);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.give_ups, 0);
  EXPECT_EQ(stats.last_success_step, 9);

  auto recovered = CheckpointSet(dir).LoadLatestValid();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().step, 9);
  EXPECT_EQ(recovered.value().model.entity_table().LogicalCopy(),
            model.entity_table().LogicalCopy());
}

// ---------------------------------------------------------------------------
// End to end over TCP: the wire-level acceptance check.

TEST(RobustnessTest, TcpClientsSeeExactAnswersOrExplicitErrors) {
  const KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 12);
  ServeServerOptions options;
  options.port = 0;
  options.engine.num_workers = 1;
  options.engine.max_queue = 2;
  ServeServer server(&publisher, options);
  ASSERT_TRUE(server.Start().ok());

  FaultSpec slow;
  slow.action = FaultAction::kLatency;
  slow.latency_us = 5000;
  ScopedFault fault("serve.execute", slow);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  constexpr int kRequests = 10;
  std::string pipelined;
  for (int i = 0; i < kRequests; ++i) {
    // Request 0 carries no deadline — it is accepted first (empty
    // queue) and therefore ALWAYS answered, however loaded the host
    // running this test is. The rest race their 8ms budgets.
    if (i > 0) pipelined += "DEADLINE 8000 ";
    pipelined += "SCORE " + std::to_string(i) + " 0 " +
                 std::to_string(i + 1) + "\n";
  }
  ASSERT_TRUE(client.Send(pipelined));
  const std::vector<std::string> lines = client.Lines(kRequests);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));

  int exact = 0;
  int explicit_errors = 0;
  for (int i = 0; i < kRequests; ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "SCORE ")) {
      // Responses are in request order, so line i answers request i.
      // %.17g round-trips doubles: the parsed score must be bit-exact.
      const std::size_t space = line.rfind(' ');
      const double score = std::strtod(line.c_str() + space, nullptr);
      EXPECT_EQ(score, model.Score(i, 0, i + 1)) << line;
      ++exact;
    } else {
      EXPECT_TRUE(StartsWith(line, "ERR overloaded") ||
                  StartsWith(line, "ERR deadline"))
          << line;
      ++explicit_errors;
    }
  }
  EXPECT_EQ(exact + explicit_errors, kRequests);
  EXPECT_GE(exact, 1);         // The head of the line always answers.
  EXPECT_GE(explicit_errors, 1);  // A 1-worker 5ms stall must trip some.
  server.Shutdown();
}

TEST(RobustnessTest, InfoReportsCheckpointCountersAndStaleness) {
  const std::string dir = ScratchDir("info_extras");
  const KgeModel model = MakeModel();
  SnapshotPublisherOptions pub_options;
  pub_options.checkpoint_dir = dir;
  SnapshotPublisher publisher(pub_options);
  publisher.Publish(model, 12);
  ASSERT_TRUE(publisher.WaitForCheckpoint(12, 10000000));

  ServeServerOptions options;
  options.port = 0;
  ServeServer server(&publisher, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("INFO\n"));
  std::vector<std::string> lines = client.Lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(StartsWith(lines[0], "INFO 12 48 4 8 transe ")) << lines[0];
  EXPECT_NE(lines[0].find("ckpt_ok=1"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("ckpt_step=12"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[0].find("stale=1"), std::string::npos) << lines[0];

  {
    FaultSpec spec;
    spec.action = FaultAction::kError;
    ScopedFault stall("publisher.stall", spec);
    ASSERT_TRUE(client.Send("INFO\nSCORE 1 0 2\n"));
    lines = client.Lines(2);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find(" stale=1"), std::string::npos) << lines[0];
    EXPECT_TRUE(StartsWith(lines[1], "SCORE ")) << lines[1];
    EXPECT_NE(lines[1].find(" stale=1"), std::string::npos) << lines[1];
  }
  server.Shutdown();
}

#endif  // NSC_FAULTS

}  // namespace
}  // namespace nsc
