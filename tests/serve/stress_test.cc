// The serving subsystem's concurrent-correctness contract, under fire:
// a training thread publishes snapshots at mini-batch cadence while
// client threads hammer the query engine with mixed score / rank / top-K
// requests — and EVERY answer must be bit-identical to a serial
// recomputation against the snapshot that answered it (the pinned
// QueryResult::snapshot). Runs under ThreadSanitizer in CI with zero
// serve-layer suppressions: the snapshot publication protocol, the
// engine's queue, and the batcher must all be data-race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "embedding/scoring_function.h"
#include "kg/synthetic.h"
#include "sampler/uniform_sampler.h"
#include "serve/local_client.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace nsc {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Every verification recomputes from result.snapshot — the exact
// immutable model state the engine answered from — so bit-equality is
// well-defined even though training keeps publishing fresher snapshots.
void VerifyResult(const Query& query, const QueryResult& result) {
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_NE(result.snapshot, nullptr);
  const KgeModel& model = result.snapshot->model();
  switch (query.kind) {
    case QueryKind::kScore: {
      ASSERT_TRUE(
          BitEqual(result.score, model.Score(query.h, query.r, query.t)));
      break;
    }
    case QueryKind::kRankHead:
    case QueryKind::kRankTail: {
      std::vector<double> sweep(
          static_cast<std::size_t>(model.num_entities()));
      const EntityId target =
          query.kind == QueryKind::kRankHead ? query.h : query.t;
      if (query.kind == QueryKind::kRankHead) {
        model.ScoreAllHeads(query.r, query.t, sweep.data());
      } else {
        model.ScoreAllTails(query.h, query.r, sweep.data());
      }
      const double reference = sweep[static_cast<std::size_t>(target)];
      int64_t higher = 0;
      for (const double s : sweep) {
        if (s > reference) ++higher;
      }
      ASSERT_EQ(result.rank, 1 + higher);
      ASSERT_TRUE(BitEqual(result.score, reference));
      break;
    }
    case QueryKind::kTopKHeads:
    case QueryKind::kTopKTails: {
      std::vector<TopKEntry> direct;
      if (query.kind == QueryKind::kTopKHeads) {
        model.TopKHeads(query.r, query.t, query.k, &direct, nullptr);
      } else {
        model.TopKTails(query.h, query.r, query.k, &direct, nullptr);
      }
      ASSERT_EQ(result.topk.size(), direct.size());
      for (std::size_t i = 0; i < direct.size(); ++i) {
        ASSERT_EQ(result.topk[i].index, direct[i].index);
        ASSERT_TRUE(BitEqual(result.topk[i].score, direct[i].score));
      }
      break;
    }
  }
}

TEST(ServeStressTest, ConcurrentMixedQueriesBitIdenticalWhileTraining) {
  SyntheticKgConfig kg_config;
  kg_config.num_entities = 120;
  kg_config.num_relations = 6;
  kg_config.num_triples = 1200;
  const Dataset data = GenerateSyntheticKg(kg_config);

  KgeModel model(data.num_entities(), data.num_relations(), 8,
                 MakeScoringFunction("transe"));
  Rng init_rng(31);
  model.InitXavier(&init_rng);

  SnapshotPublisher publisher;
  publisher.Publish(model, 0);

  QueryEngineOptions engine_options;
  engine_options.num_workers = 2;
  engine_options.max_batch = 16;
  engine_options.max_wait_us = 100;
  QueryEngine engine(&publisher, engine_options);

  UniformSampler sampler(data.num_entities());
  TrainConfig train_config;
  train_config.dim = 8;
  train_config.num_threads = 1;
  train_config.batch_size = 128;
  Trainer trainer(&model, &data.train, &sampler, train_config);
  trainer.EnableSnapshots(&publisher, /*publish_every_batches=*/1);

  std::atomic<bool> stop_training{false};
  std::thread train_thread([&] {
    while (!stop_training.load(std::memory_order_acquire)) {
      trainer.RunEpoch();
    }
  });

  constexpr int kClientThreads = 4;
  constexpr int kQueriesPerClient = 120;
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      LocalClient client(&engine);
      Rng rng(static_cast<uint64_t>(1000 + c));
      for (int i = 0; i < kQueriesPerClient; ++i) {
        Query query;
        const uint64_t pick = rng.Next() % 5;
        query.kind = static_cast<QueryKind>(pick);
        query.h = static_cast<EntityId>(rng.Next() %
                                        static_cast<uint64_t>(
                                            data.num_entities()));
        query.r = static_cast<RelationId>(
            rng.Next() % static_cast<uint64_t>(data.num_relations()));
        query.t = static_cast<EntityId>(rng.Next() %
                                        static_cast<uint64_t>(
                                            data.num_entities()));
        query.k = 1 + rng.Next() % 10;
        const QueryResult result = client.Call(query);
        VerifyResult(query, result);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_training.store(true, std::memory_order_release);
  train_thread.join();

  // The engine really served the mix (and, with 4 clients racing into a
  // 2-worker engine, the batcher had coalescing opportunities — counters
  // must at least be consistent).
  const BatchStatsSnapshot stats = engine.batch_stats();
  EXPECT_GT(stats.single_requests, 0u);
  EXPECT_GT(stats.topk_requests, 0u);
  EXPECT_LE(stats.topk_batches, stats.topk_requests);
  uint64_t hist_total = 0;
  for (int b = 0; b < BatchStatsSnapshot::kBuckets; ++b) {
    hist_total += stats.hist[b];
  }
  EXPECT_EQ(hist_total, stats.topk_batches);

  // Training made progress while we were querying.
  EXPECT_GT(publisher.published_step(), 0);
}

}  // namespace
}  // namespace nsc
