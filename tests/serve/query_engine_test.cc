// QueryEngine: every answer bit-identical to direct recomputation against
// the pinned snapshot, validation errors, the no-snapshot precondition,
// and the cross-request batcher's coalescing counters.
#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "embedding/scoring_function.h"
#include "serve/local_client.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace nsc {
namespace {

constexpr int32_t kEntities = 64;
constexpr int32_t kRelations = 5;
constexpr int kDim = 8;

KgeModel MakeModel(uint64_t seed = 17) {
  KgeModel model(kEntities, kRelations, kDim, MakeScoringFunction("transe"));
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : model_(MakeModel()) { publisher_.Publish(model_, 3); }

  KgeModel model_;
  SnapshotPublisher publisher_;
};

TEST_F(QueryEngineTest, ScoreMatchesSnapshotBitForBit) {
  QueryEngine engine(&publisher_);
  LocalClient client(&engine);
  const QueryResult result = client.Score(4, 2, 9);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.step, 3);
  ASSERT_NE(result.snapshot, nullptr);
  EXPECT_TRUE(BitEqual(result.score, result.snapshot->model().Score(4, 2, 9)));
}

TEST_F(QueryEngineTest, RankMatchesSerialSweepRecomputation) {
  QueryEngine engine(&publisher_);
  LocalClient client(&engine);

  const QueryResult head = client.RankHead(7, 1, 20);
  ASSERT_TRUE(head.status.ok());
  std::vector<double> sweep(kEntities);
  head.snapshot->model().ScoreAllHeads(1, 20, sweep.data());
  int64_t higher = 0;
  for (const double s : sweep) {
    if (s > sweep[7]) ++higher;
  }
  EXPECT_EQ(head.rank, 1 + higher);
  EXPECT_TRUE(BitEqual(head.score, sweep[7]));

  const QueryResult tail = client.RankTail(7, 1, 20);
  ASSERT_TRUE(tail.status.ok());
  tail.snapshot->model().ScoreAllTails(7, 1, sweep.data());
  higher = 0;
  for (const double s : sweep) {
    if (s > sweep[20]) ++higher;
  }
  EXPECT_EQ(tail.rank, 1 + higher);
}

TEST_F(QueryEngineTest, TopKMatchesDirectRetrievalBitForBit) {
  QueryEngine engine(&publisher_);
  LocalClient client(&engine);
  const QueryResult result = client.TopKTails(5, 2, 10);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.topk.size(), 10u);

  std::vector<TopKEntry> direct;
  result.snapshot->model().TopKTails(5, 2, 10, &direct, nullptr);
  ASSERT_EQ(direct.size(), result.topk.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(result.topk[i].index, direct[i].index);
    EXPECT_TRUE(BitEqual(result.topk[i].score, direct[i].score));
  }
}

TEST_F(QueryEngineTest, OutOfRangeIdsAreRejectedPerRequest) {
  QueryEngine engine(&publisher_);
  LocalClient client(&engine);
  EXPECT_FALSE(client.Score(kEntities, 0, 1).status.ok());
  EXPECT_FALSE(client.Score(0, kRelations, 1).status.ok());
  EXPECT_FALSE(client.RankTail(1, 0, kEntities).status.ok());
  EXPECT_FALSE(client.TopKTails(-1, 0, 4).status.ok());
  // A valid request right after: the engine is unharmed.
  EXPECT_TRUE(client.Score(0, 0, 1).status.ok());
}

TEST(QueryEngineNoSnapshotTest, FailsPreconditionBeforeFirstPublish) {
  SnapshotPublisher publisher;
  QueryEngine engine(&publisher);
  LocalClient client(&engine);
  const QueryResult result = client.Score(0, 0, 1);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.snapshot, nullptr);
  const QueryResult topk = client.TopKTails(0, 0, 4);
  EXPECT_FALSE(topk.status.ok());
}

TEST_F(QueryEngineTest, ResultsTrackNewlyPublishedSnapshots) {
  QueryEngine engine(&publisher_);
  LocalClient client(&engine);
  EXPECT_EQ(client.Score(1, 1, 2).step, 3);
  KgeModel updated = MakeModel(99);
  publisher_.Publish(updated, 8);
  const QueryResult result = client.Score(1, 1, 2);
  EXPECT_EQ(result.step, 8);
  EXPECT_TRUE(BitEqual(result.score, updated.Score(1, 1, 2)));
}

// One worker + a linger window: requests submitted together coalesce into
// one batched kernel call, and the counters say so.
TEST_F(QueryEngineTest, ConcurrentTopKRequestsCoalesce) {
  QueryEngineOptions options;
  options.num_workers = 1;
  options.max_batch = 16;
  options.max_wait_us = 50'000;  // Generous: the test must not flake.
  QueryEngine engine(&publisher_, options);

  constexpr int kRequests = 8;
  Mutex mu;
  int completed = 0;
  CondVar all_done;
  std::vector<QueryResult> results(kRequests);
  // Submit back-to-back; the single worker picks up the first and lingers,
  // so the rest join its batch.
  for (int i = 0; i < kRequests; ++i) {
    Query query;
    query.kind = QueryKind::kTopKTails;
    query.h = i;
    query.r = 1;
    query.k = 5;
    engine.Submit(query, [&, i](QueryResult r) {
      MutexLock lock(&mu);
      results[static_cast<std::size_t>(i)] = std::move(r);
      if (++completed == kRequests) all_done.NotifyAll();
    });
  }
  {
    MutexLock lock(&mu);
    while (completed < kRequests) all_done.Wait(&mu);
  }

  const BatchStatsSnapshot stats = engine.batch_stats();
  EXPECT_EQ(stats.topk_requests, static_cast<uint64_t>(kRequests));
  EXPECT_LT(stats.topk_batches, static_cast<uint64_t>(kRequests));
  EXPECT_GT(stats.coalesced_requests, 0u);
  EXPECT_GT(stats.mean_batch(), 1.0);

  // Coalescing is invisible in the answers: each equals its own direct
  // single-query retrieval.
  for (int i = 0; i < kRequests; ++i) {
    const QueryResult& r = results[static_cast<std::size_t>(i)];
    ASSERT_TRUE(r.status.ok());
    std::vector<TopKEntry> direct;
    r.snapshot->model().TopKTails(i, 1, 5, &direct, nullptr);
    ASSERT_EQ(r.topk.size(), direct.size());
    for (std::size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(r.topk[j].index, direct[j].index);
      EXPECT_TRUE(BitEqual(r.topk[j].score, direct[j].score));
    }
  }
}

TEST_F(QueryEngineTest, MaxBatchOneDisablesCoalescing) {
  QueryEngineOptions options;
  options.num_workers = 1;
  options.max_batch = 1;
  QueryEngine engine(&publisher_, options);
  LocalClient client(&engine);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.TopKTails(i, 0, 3).status.ok());
  }
  const BatchStatsSnapshot stats = engine.batch_stats();
  EXPECT_EQ(stats.topk_requests, 4u);
  EXPECT_EQ(stats.topk_batches, 4u);
  EXPECT_EQ(stats.coalesced_requests, 0u);
  EXPECT_EQ(stats.hist[0], 4u);
}

TEST_F(QueryEngineTest, MixedKindsDoNotCrossCoalesce) {
  QueryEngineOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.max_wait_us = 1000;
  QueryEngine engine(&publisher_, options);
  LocalClient client(&engine);
  // TopKHeads and TopKTails with differing k must never share a batch;
  // correctness is what matters here, the counters just have to add up.
  const QueryResult heads = client.TopKHeads(2, 7, 4);
  const QueryResult tails = client.TopKTails(7, 2, 6);
  ASSERT_TRUE(heads.status.ok());
  ASSERT_TRUE(tails.status.ok());
  EXPECT_EQ(heads.topk.size(), 4u);
  EXPECT_EQ(tails.topk.size(), 6u);
  const BatchStatsSnapshot stats = engine.batch_stats();
  EXPECT_EQ(stats.topk_requests, 2u);
}

TEST_F(QueryEngineTest, DestructorDrainsQueuedRequests) {
  Mutex mu;
  int completed = 0;
  {
    QueryEngineOptions options;
    options.num_workers = 1;
    QueryEngine engine(&publisher_, options);
    for (int i = 0; i < 32; ++i) {
      Query query;
      query.kind = QueryKind::kScore;
      query.h = i % kEntities;
      query.r = 0;
      query.t = (i + 1) % kEntities;
      engine.Submit(query, [&](QueryResult r) {
        ASSERT_TRUE(r.status.ok());
        MutexLock lock(&mu);
        ++completed;
      });
    }
  }  // Engine dtor: every accepted request must still be answered.
  MutexLock lock(&mu);
  EXPECT_EQ(completed, 32);
}

}  // namespace
}  // namespace nsc
