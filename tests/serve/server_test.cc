// ServeServer: the TCP front-end end to end on loopback — protocol round
// trips, partial-line delivery, pipelined requests, error handling, QUIT
// semantics, concurrent connections, and parity between a TCP-parsed
// score and the engine's bit-exact answer (%.17g round-trips doubles).
#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "embedding/scoring_function.h"
#include "serve/local_client.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace nsc {
namespace {

constexpr int32_t kEntities = 48;
constexpr int32_t kRelations = 4;

/// Minimal blocking loopback client; Lines() blocks until `n` complete
/// lines arrived.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& bytes) {
    return ::write(fd_, bytes.data(), bytes.size()) ==
           static_cast<ssize_t>(bytes.size());
  }

  /// Reads until `n` newline-terminated lines are buffered; returns them
  /// without their newlines. Empty vector on socket error/EOF.
  std::vector<std::string> Lines(std::size_t n) {
    while (CountLines() < n) {
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t newline = buffer_.find('\n');
      lines.push_back(buffer_.substr(0, newline));
      buffer_.erase(0, newline + 1);
    }
    return lines;
  }

  /// True when the peer closed the connection (EOF after draining).
  bool ReadEof() {
    char chunk[256];
    for (;;) {
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got == 0) return true;
      if (got < 0) return false;
    }
  }

 private:
  std::size_t CountLines() const {
    std::size_t count = 0;
    for (const char c : buffer_) {
      if (c == '\n') ++count;
    }
    return count;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

class ServeServerTest : public ::testing::Test {
 protected:
  ServeServerTest()
      : model_(kEntities, kRelations, 8, MakeScoringFunction("transe")) {
    Rng rng(77);
    model_.InitXavier(&rng);
    publisher_.Publish(model_, 12);
    ServeServerOptions options;
    options.port = 0;  // Ephemeral: tests never collide on a port.
    server_ = std::make_unique<ServeServer>(&publisher_, options);
    const Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  KgeModel model_;
  SnapshotPublisher publisher_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServeServerTest, InfoReportsSnapshotShape) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("INFO\n"));
  const std::vector<std::string> lines = client.Lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "INFO 12 48 4 8 transe");
}

TEST_F(ServeServerTest, ScoreRoundTripsBitExactThroughText) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("SCORE 3 1 7\n"));
  const std::vector<std::string> lines = client.Lines(1);
  ASSERT_EQ(lines.size(), 1u);
  // "SCORE <step> <score>" where <score> printed with %.17g recovers the
  // engine's double exactly.
  long long step = 0;
  double score = 0.0;
  ASSERT_EQ(std::sscanf(lines[0].c_str(), "SCORE %lld %lf", &step, &score),
            2)
      << lines[0];
  EXPECT_EQ(step, 12);
  const double direct = model_.Score(3, 1, 7);
  EXPECT_TRUE(std::memcmp(&score, &direct, sizeof(double)) == 0);
}

TEST_F(ServeServerTest, PartialLineDeliveryReassembles) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // One request split across three TCP sends, with pauses so the event
  // loop definitely observes partial reads.
  ASSERT_TRUE(client.Send("SCO"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.Send("RE 1 0"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.Send(" 2\nINFO\n"));
  const std::vector<std::string> lines = client.Lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("SCORE 12 ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("INFO ", 0), 0u) << lines[1];
}

TEST_F(ServeServerTest, PipelinedRequestsAnswerInOrder) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    burst += "RANK TAIL 1 0 " + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(client.Send(burst));
  const std::vector<std::string> lines = client.Lines(10);
  ASSERT_EQ(lines.size(), 10u);
  std::vector<double> sweep(kEntities);
  model_.ScoreAllTails(1, 0, sweep.data());
  for (int i = 0; i < 10; ++i) {
    int64_t higher = 0;
    for (const double s : sweep) {
      if (s > sweep[static_cast<std::size_t>(i)]) ++higher;
    }
    EXPECT_EQ(lines[static_cast<std::size_t>(i)],
              "RANK 12 " + std::to_string(1 + higher));
  }
}

TEST_F(ServeServerTest, MalformedInputGetsErrAndConnectionSurvives) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("FROBNICATE 1 2\nSCORE nope 0 1\nSCORE 999 0 1\n"));
  std::vector<std::string> lines = client.Lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("ERR ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ERR ", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("ERR ", 0), 0u) << lines[2];  // Out of range.
  // The connection still works after three errors.
  ASSERT_TRUE(client.Send("INFO\n"));
  lines = client.Lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("INFO ", 0), 0u);
}

TEST_F(ServeServerTest, CrlfLinesAreAccepted) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("INFO\r\n"));
  const std::vector<std::string> lines = client.Lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("INFO ", 0), 0u);
}

TEST_F(ServeServerTest, QuitDrainsThenCloses) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("SCORE 1 0 2\nQUIT\n"));
  const std::vector<std::string> lines = client.Lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("SCORE ", 0), 0u);
  EXPECT_EQ(lines[1], "BYE");
  EXPECT_TRUE(client.ReadEof());
}

TEST_F(ServeServerTest, TopKOverTcpMatchesLocalClient) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("TOPK TAILS 5 1 6\n"));
  const std::vector<std::string> lines = client.Lines(1);
  ASSERT_EQ(lines.size(), 1u);

  LocalClient local(server_->engine());
  const QueryResult direct = local.TopKTails(5, 1, 6);
  ASSERT_TRUE(direct.status.ok());
  std::string expected = "TOPK 12 6";
  for (const TopKEntry& entry : direct.topk) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), " %lld:%.17g",
                  static_cast<long long>(entry.index), entry.score);
    expected += buffer;
  }
  EXPECT_EQ(lines[0], expected);
}

TEST_F(ServeServerTest, ConcurrentConnectionsAllServed) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client(server_->port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 20; ++i) {
        const int h = (c * 20 + i) % kEntities;
        if (!client.Send("TOPK TAILS " + std::to_string(h) + " 0 5\n")) {
          ++failures;
          return;
        }
        const std::vector<std::string> lines = client.Lines(1);
        if (lines.size() != 1 || lines[0].rfind("TOPK 12 5 ", 0) != 0) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServeServerTest, ShutdownIsIdempotentAndDropsClients) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // Round-trip first so the connection is accepted (a connection still in
  // the listen backlog would be RST, not FIN, when the listener closes).
  ASSERT_TRUE(client.Send("INFO\n"));
  ASSERT_EQ(client.Lines(1).size(), 1u);
  server_->Shutdown();
  server_->Shutdown();  // Second call must be a no-op.
  EXPECT_TRUE(client.ReadEof());
}

TEST(ServeServerStartTest, BadBindAddressFails) {
  SnapshotPublisher publisher;
  ServeServerOptions options;
  options.host = "not-an-address";
  ServeServer server(&publisher, options);
  EXPECT_FALSE(server.Start().ok());
}

}  // namespace
}  // namespace nsc
