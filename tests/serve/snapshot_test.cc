// EmbeddingSnapshot / SnapshotPublisher: publication semantics, reader
// pinning, double-buffer reuse, and the async-checkpoint contract — a
// snapshot checkpoint taken mid-training is byte-identical to a serial
// SaveModel at the same step.
#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "embedding/checkpoint.h"
#include "embedding/scoring_function.h"
#include "kg/synthetic.h"
#include "sampler/uniform_sampler.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace nsc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

KgeModel MakeModel(uint64_t seed = 11) {
  KgeModel model(40, 5, 8, MakeScoringFunction("transe"));
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

TEST(SnapshotTest, CapturesModelStateAtConstruction) {
  KgeModel model = MakeModel();
  const double before = model.Score(1, 2, 3);
  EmbeddingSnapshot snap(model, 7);
  EXPECT_EQ(snap.step(), 7);

  // Mutating the live model must not leak into the snapshot.
  Rng rng(99);
  model.InitXavier(&rng);
  ASSERT_NE(model.Score(1, 2, 3), before);
  EXPECT_EQ(snap.model().Score(1, 2, 3), before);
}

TEST(SnapshotTest, CopyFromOverwritesInPlace) {
  KgeModel a = MakeModel(1);
  KgeModel b = MakeModel(2);
  EmbeddingSnapshot snap(a, 1);
  snap.CopyFrom(b, 2);
  EXPECT_EQ(snap.step(), 2);
  EXPECT_EQ(snap.model().Score(3, 1, 4), b.Score(3, 1, 4));
}

TEST(SnapshotPublisherTest, AcquireBeforeFirstPublishIsNull) {
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.Acquire(), nullptr);
  EXPECT_EQ(publisher.published_step(), -1);
}

TEST(SnapshotPublisherTest, PublishReplacesAndPinnedReadersKeepTheirs) {
  KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);

  std::shared_ptr<const EmbeddingSnapshot> pinned = publisher.Acquire();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->step(), 1);
  const double pinned_score = pinned->model().Score(0, 0, 1);

  Rng rng(123);
  model.InitXavier(&rng);
  publisher.Publish(model, 2);
  EXPECT_EQ(publisher.published_step(), 2);

  // The reader still holds the old state, bit-for-bit.
  EXPECT_EQ(pinned->step(), 1);
  EXPECT_EQ(pinned->model().Score(0, 0, 1), pinned_score);

  // A fresh Acquire sees the new one.
  std::shared_ptr<const EmbeddingSnapshot> fresh = publisher.Acquire();
  EXPECT_EQ(fresh->step(), 2);
  EXPECT_EQ(fresh->model().Score(0, 0, 1), model.Score(0, 0, 1));
}

TEST(SnapshotPublisherTest, RetiredBufferIsReusedOnceReadersDrain) {
  KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  const EmbeddingSnapshot* first = publisher.Acquire().get();

  // No reader pins snapshot 1 now; publishing twice cycles the double
  // buffer, so snapshot 3 must land in snapshot 1's storage.
  publisher.Publish(model, 2);
  publisher.Publish(model, 3);
  EXPECT_EQ(publisher.Acquire().get(), first);
  EXPECT_EQ(publisher.Acquire()->step(), 3);
}

TEST(SnapshotPublisherTest, PinnedRetiredBufferIsNotReused) {
  KgeModel model = MakeModel();
  SnapshotPublisher publisher;
  publisher.Publish(model, 1);
  std::shared_ptr<const EmbeddingSnapshot> pinned = publisher.Acquire();

  publisher.Publish(model, 2);
  publisher.Publish(model, 3);  // Spare (step 1) is pinned: fresh copy.
  EXPECT_NE(publisher.Acquire().get(), pinned.get());
  EXPECT_EQ(pinned->step(), 1);
}

TEST(SnapshotPublisherTest, BackgroundCheckpointWritesFreshestSnapshot) {
  const std::string path = TempPath("publisher_ckpt.nsckpt");
  std::remove(path.c_str());
  KgeModel model = MakeModel();
  SnapshotPublisherOptions options;
  options.checkpoint_path = path;
  {
    SnapshotPublisher publisher(options);
    publisher.Publish(model, 5);
    ASSERT_TRUE(publisher.WaitForCheckpoint(5, /*timeout_us=*/10'000'000));
    EXPECT_TRUE(publisher.last_checkpoint_status().ok());
    EXPECT_GE(publisher.last_checkpoint_step(), 5);
  }
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Score(1, 1, 2), model.Score(1, 1, 2));
}

TEST(SnapshotPublisherTest, DestructorFlushesPendingCheckpoint) {
  const std::string path = TempPath("publisher_flush.nsckpt");
  std::remove(path.c_str());
  KgeModel model = MakeModel();
  SnapshotPublisherOptions options;
  options.checkpoint_path = path;
  {
    SnapshotPublisher publisher(options);
    publisher.Publish(model, 1);
    publisher.Publish(model, 2);
    publisher.Publish(model, 3);
    // No wait: the dtor must drain the freshest pending write.
  }
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

// The satellite contract: a checkpoint taken through the snapshot path
// MID-TRAINING (the model keeps mutating after the publish) is
// byte-identical to stopping a fresh identical run at the same step and
// calling SaveModel directly. Holds because the snapshot is a logical
// copy and the checkpoint format serializes logical rows only.
TEST(SnapshotPublisherTest, MidTrainingCheckpointBytesMatchSerialSave) {
  SyntheticKgConfig kg_config;
  kg_config.num_entities = 60;
  kg_config.num_relations = 4;
  kg_config.num_triples = 400;
  const Dataset data = GenerateSyntheticKg(kg_config);

  TrainConfig config;
  config.dim = 8;
  config.num_threads = 1;  // Deterministic engine: runs are bit-for-bit.
  config.seed = 21;

  const std::string snap_path = TempPath("mid_training.nsckpt");
  const std::string serial_path = TempPath("serial_save.nsckpt");
  std::remove(snap_path.c_str());

  constexpr int kCheckpointEpochs = 2;
  {
    KgeModel model(data.num_entities(), data.num_relations(), config.dim,
                   MakeScoringFunction("transe"));
    Rng rng(3);
    model.InitXavier(&rng);
    UniformSampler sampler(data.num_entities());
    Trainer trainer(&model, &data.train, &sampler, config);

    SnapshotPublisherOptions options;
    options.checkpoint_path = snap_path;
    SnapshotPublisher publisher(options);
    for (int e = 0; e < kCheckpointEpochs; ++e) trainer.RunEpoch();
    const int64_t step = trainer.global_step();
    publisher.Publish(model, step);

    // Keep training while the background writer works: the checkpoint
    // must capture the published step, not the mutating live model.
    trainer.RunEpoch();
    ASSERT_TRUE(publisher.WaitForCheckpoint(step, /*timeout_us=*/10'000'000));
    ASSERT_TRUE(publisher.last_checkpoint_status().ok())
        << publisher.last_checkpoint_status().ToString();
  }

  {
    // The reference run: identical seeds and config, stopped at the
    // checkpointed step, saved serially on the training thread.
    KgeModel model(data.num_entities(), data.num_relations(), config.dim,
                   MakeScoringFunction("transe"));
    Rng rng(3);
    model.InitXavier(&rng);
    UniformSampler sampler(data.num_entities());
    Trainer trainer(&model, &data.train, &sampler, config);
    for (int e = 0; e < kCheckpointEpochs; ++e) trainer.RunEpoch();
    ASSERT_TRUE(SaveModel(model, serial_path).ok());
  }

  const std::string snap_bytes = ReadBytes(snap_path);
  const std::string serial_bytes = ReadBytes(serial_path);
  ASSERT_FALSE(snap_bytes.empty());
  EXPECT_EQ(snap_bytes, serial_bytes);
}

// Trainer integration: EnableSnapshots publishes at the configured
// mini-batch cadence with the right steps.
TEST(SnapshotPublisherTest, TrainerPublishesAtBatchCadence) {
  SyntheticKgConfig kg_config;
  kg_config.num_entities = 50;
  kg_config.num_relations = 3;
  kg_config.num_triples = 300;
  const Dataset data = GenerateSyntheticKg(kg_config);

  KgeModel model(data.num_entities(), data.num_relations(), 8,
                 MakeScoringFunction("transe"));
  Rng rng(5);
  model.InitXavier(&rng);
  UniformSampler sampler(data.num_entities());
  TrainConfig config;
  config.dim = 8;
  config.num_threads = 1;
  config.batch_size = 64;
  Trainer trainer(&model, &data.train, &sampler, config);

  SnapshotPublisher publisher;
  trainer.EnableSnapshots(&publisher, /*publish_every_batches=*/2);
  trainer.RunEpoch();

  EXPECT_GT(trainer.global_step(), 0);
  // The last publish happened at the last even step boundary.
  const int64_t expected =
      trainer.global_step() - (trainer.global_step() % 2);
  EXPECT_EQ(publisher.published_step(), expected);
  std::shared_ptr<const EmbeddingSnapshot> snap = publisher.Acquire();
  ASSERT_NE(snap, nullptr);
  if (trainer.global_step() % 2 == 0) {
    // Published at the final batch: snapshot equals the live model.
    EXPECT_EQ(snap->model().Score(1, 1, 2), model.Score(1, 1, 2));
  }
}

}  // namespace
}  // namespace nsc
