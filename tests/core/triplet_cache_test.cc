#include "core/triplet_cache.h"

#include <gtest/gtest.h>

namespace nsc {
namespace {

TEST(TripletCacheTest, LazyInitFillsToCapacity) {
  TripletCache cache(5, 100);
  Rng rng(1);
  const auto& entry = cache.GetOrInit(PackRt(2, 3), &rng);
  EXPECT_EQ(entry.size(), 5u);
  for (EntityId e : entry) {
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 100);
  }
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(TripletCacheTest, SecondGetReturnsSameEntry) {
  TripletCache cache(4, 50);
  Rng rng(2);
  auto& a = cache.GetOrInit(7, &rng);
  a[0] = 42;
  const auto& b = cache.GetOrInit(7, &rng);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(TripletCacheTest, DistinctKeysDistinctEntries) {
  TripletCache cache(3, 50);
  Rng rng(3);
  cache.GetOrInit(PackHr(1, 0), &rng);
  cache.GetOrInit(PackHr(2, 0), &rng);
  cache.GetOrInit(PackRt(0, 1), &rng);
  EXPECT_EQ(cache.num_entries(), 3u);
  EXPECT_EQ(cache.num_cached_ids(), 9u);
}

TEST(TripletCacheTest, FindWithoutInit) {
  TripletCache cache(3, 50);
  Rng rng(4);
  EXPECT_EQ(cache.Find(11), nullptr);
  cache.GetOrInit(11, &rng);
  ASSERT_NE(cache.Find(11), nullptr);
  EXPECT_EQ(cache.Find(11)->size(), 3u);
}

TEST(TripletCacheTest, SharedKeyAcrossPositives) {
  // Positives sharing (r, t) must share one head-cache entry — the space
  // saving of §III-B3 on 1-N/N-1 relations.
  TripletCache head_cache(4, 50);
  Rng rng(5);
  const Triple a{1, 0, 9}, b{2, 0, 9};  // Same (r, t) = (0, 9).
  auto& ea = head_cache.GetOrInit(PackRt(a.r, a.t), &rng);
  auto& eb = head_cache.GetOrInit(PackRt(b.r, b.t), &rng);
  EXPECT_EQ(&ea, &eb);
  EXPECT_EQ(head_cache.num_entries(), 1u);
}

TEST(TripletCacheTest, ClearEmptiesEverything) {
  TripletCache cache(2, 10);
  Rng rng(6);
  cache.GetOrInit(1, &rng);
  cache.GetOrInit(2, &rng);
  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.Find(1), nullptr);
}

TEST(BoundedTripletCacheTest, NeverExceedsMaxEntries) {
  TripletCache cache(3, 100, /*max_entries=*/4);
  Rng rng(8);
  for (uint64_t key = 0; key < 50; ++key) {
    cache.GetOrInit(key, &rng);
    EXPECT_LE(cache.num_entries(), 4u);
  }
  EXPECT_EQ(cache.evictions(), 46u);
}

TEST(BoundedTripletCacheTest, EvictsLeastRecentlyTouched) {
  TripletCache cache(2, 100, /*max_entries=*/3);
  Rng rng(9);
  cache.GetOrInit(1, &rng);
  cache.GetOrInit(2, &rng);
  cache.GetOrInit(3, &rng);
  cache.GetOrInit(1, &rng);  // Refresh key 1; key 2 is now the LRU.
  cache.GetOrInit(4, &rng);  // Evicts key 2.
  EXPECT_NE(cache.Find(1), nullptr);
  EXPECT_EQ(cache.Find(2), nullptr);
  EXPECT_NE(cache.Find(3), nullptr);
  EXPECT_NE(cache.Find(4), nullptr);
}

TEST(BoundedTripletCacheTest, EvictedKeyReinitialises) {
  TripletCache cache(4, 1000000, /*max_entries=*/1);
  Rng rng(10);
  const auto first = cache.GetOrInit(7, &rng);
  cache.GetOrInit(8, &rng);  // Evicts 7.
  const auto& second = cache.GetOrInit(7, &rng);  // Fresh random content.
  EXPECT_EQ(second.size(), 4u);
  EXPECT_NE(first, second);  // Overwhelmingly likely with 1M entities.
}

TEST(BoundedTripletCacheTest, UnboundedNeverEvicts) {
  TripletCache cache(2, 10, /*max_entries=*/0);
  Rng rng(11);
  for (uint64_t key = 0; key < 200; ++key) cache.GetOrInit(key, &rng);
  EXPECT_EQ(cache.num_entries(), 200u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(TripletCacheTest, InitIsRandomAcrossKeys) {
  TripletCache cache(20, 1000000);
  Rng rng(7);
  const auto a = cache.GetOrInit(1, &rng);
  const auto b = cache.GetOrInit(2, &rng);
  EXPECT_NE(a, b);  // Overwhelmingly likely with 1M entities.
}

}  // namespace
}  // namespace nsc
