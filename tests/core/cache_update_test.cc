#include "core/cache_update.h"

#include <gtest/gtest.h>

#include <set>

#include "embedding/scoring_function.h"
#include "kg/kg_index.h"

namespace nsc {
namespace {

// Builds a DistMult model where entity e's score for head-candidate slots
// can be controlled: entity vectors are e_i = (value_e, 0, ...), relation
// r = (1, 0, ...), tail t = (1, 0, ...) -> f(e, r, t) = value_e.
KgeModel MakeControlledModel(const std::vector<float>& entity_values) {
  const int dim = 4;
  KgeModel model(static_cast<int32_t>(entity_values.size()), 1, dim,
                 MakeScoringFunction("distmult"));
  for (size_t e = 0; e < entity_values.size(); ++e) {
    model.entity_table().Row(static_cast<int32_t>(e))[0] = entity_values[e];
  }
  model.relation_table().Row(0)[0] = 1.0f;
  return model;
}

TEST(CacheUpdaterTest, PreservesEntrySize) {
  KgeModel model = MakeControlledModel(std::vector<float>(50, 0.0f));
  // Score of candidate head e for (r=0, t=1) is value_e = 0 for everyone.
  CacheUpdater updater(&model, CacheUpdateStrategy::kImportanceSampling, 10);
  std::vector<EntityId> entry = {1, 2, 3, 4, 5};
  Rng rng(1);
  updater.UpdateHeadEntry(&entry, 0, 1, &rng);
  EXPECT_EQ(entry.size(), 5u);
  for (EntityId e : entry) {
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 50);
  }
}

TEST(CacheUpdaterTest, TopUpdateKeepsHighestScores) {
  // Entities 40..49 have the highest values; top update must select them.
  // The fixed tail (entity 1) needs a positive value so candidate scores
  // f(e, r, t=1) = v_e * v_1 actually order by v_e.
  std::vector<float> values(50, 0.0f);
  values[1] = 1.0f;
  for (int e = 40; e < 50; ++e) values[e] = 10.0f + e;
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kTop, 45);
  // Start from a poor cache; with N2=45 random draws, at least some of the
  // high scorers appear in the pool with high probability over repeats.
  std::vector<EntityId> entry = {0, 1, 2, 3, 4};
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    updater.UpdateHeadEntry(&entry, 0, 1, &rng);
  }
  for (EntityId e : entry) EXPECT_GE(e, 40) << "top update kept a low scorer";
}

TEST(CacheUpdaterTest, ImportanceSamplingPrefersHighScores) {
  std::vector<float> values(100, 0.0f);
  values[1] = 1.0f;  // Fixed tail must have non-zero value.
  for (int e = 90; e < 100; ++e) values[e] = 8.0f;  // exp(8) >> exp(0).
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kImportanceSampling, 50);
  std::vector<EntityId> entry = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    updater.UpdateHeadEntry(&entry, 0, 1, &rng);
  }
  int high = 0;
  for (EntityId e : entry) high += (e >= 90);
  EXPECT_GE(high, 6);  // Dominated by, but not necessarily all, high scorers.
}

TEST(CacheUpdaterTest, ImportanceSamplingStillExplores) {
  // All-equal scores: the refreshed cache should routinely contain fresh
  // random entities (exploration), i.e. CE > 0.
  KgeModel model = MakeControlledModel(std::vector<float>(200, 1.0f));
  CacheUpdater updater(&model, CacheUpdateStrategy::kImportanceSampling, 8);
  std::vector<EntityId> entry = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(4);
  const CacheRefreshResult result = updater.UpdateHeadEntry(&entry, 0, 1, &rng);
  EXPECT_GT(result.changed, 0);
}

TEST(CacheUpdaterTest, TopUpdateStagnatesOnceConverged) {
  // The §IV-C2 pathology: with top update and a converged score landscape
  // the cache stops changing (CE -> 0) because the same N1 entities always
  // win.
  std::vector<float> values(60, 0.0f);
  values[1] = 1.0f;  // Fixed tail value... but entity 1 is also a cached
  // candidate below; give the dominant five clearly separated values.
  for (int e = 0; e < 5; ++e) values[e] = 100.0f + e;
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kTop, 20);
  std::vector<EntityId> entry = {0, 1, 2, 3, 4};
  Rng rng(5);
  int total_changed = 0;
  for (int round = 0; round < 10; ++round) {
    total_changed += updater.UpdateHeadEntry(&entry, 0, 1, &rng).changed;
  }
  EXPECT_EQ(total_changed, 0);
}

TEST(CacheUpdaterTest, UniformUpdateIgnoresScores) {
  std::vector<float> values(100, 0.0f);
  values[99] = 1000.0f;
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kUniform, 50);
  std::vector<EntityId> entry = {0, 1, 2, 3, 4};
  Rng rng(6);
  int appearances_of_99 = 0;
  for (int round = 0; round < 50; ++round) {
    updater.UpdateHeadEntry(&entry, 0, 1, &rng);
    for (EntityId e : entry) appearances_of_99 += (e == 99);
  }
  // Uniform survivors: entity 99 shows up rarely despite its huge score.
  EXPECT_LT(appearances_of_99, 40);
}

TEST(CacheUpdaterTest, ChangedElementsCountIsAccurate) {
  KgeModel model = MakeControlledModel(std::vector<float>(10, 0.0f));
  CacheUpdater updater(&model, CacheUpdateStrategy::kUniform, 5);
  std::vector<EntityId> entry = {0, 1, 2};
  const std::set<EntityId> before(entry.begin(), entry.end());
  Rng rng(7);
  const CacheRefreshResult result = updater.UpdateHeadEntry(&entry, 0, 1, &rng);
  int actually_new = 0;
  for (EntityId e : entry) actually_new += before.count(e) == 0;
  EXPECT_EQ(result.changed, actually_new);
}

TEST(CacheUpdaterTest, TailUpdateUsesTailScores) {
  // For DistMult with our construction f(h, r, t) = value_h * value_t;
  // with h fixed to entity 1 (value 1), tail candidates rank by value.
  std::vector<float> values(30, 0.0f);
  values[1] = 1.0f;
  for (int e = 25; e < 30; ++e) values[e] = 50.0f;
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kTop, 25);
  std::vector<EntityId> entry = {2, 3, 4};
  Rng rng(8);
  for (int round = 0; round < 20; ++round) {
    updater.UpdateTailEntry(&entry, 1, 0, &rng);
  }
  for (EntityId e : entry) EXPECT_GE(e, 25);
}

TEST(CacheUpdaterTest, FilterEvictsKnownTrueTriples) {
  // With a filter index, candidates forming known-true triples must not
  // survive a refresh — neither fresh randoms nor stale entry members.
  std::vector<float> values(20, 0.0f);
  values[1] = 1.0f;
  // Entities 15..19 are *known true heads* for (r=0, t=1) and have huge
  // scores; unfiltered IS update would fill the cache with them.
  TripleStore known(20, 1);
  for (EntityId h = 15; h < 20; ++h) {
    values[h] = 50.0f;
    known.Add({h, 0, 1});
  }
  const KgIndex index(known);
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kImportanceSampling, 10,
                       &index);
  std::vector<EntityId> entry = {15, 16, 2, 3};  // Two stale true triples.
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    updater.UpdateHeadEntry(&entry, 0, 1, &rng);
    for (EntityId e : entry) {
      EXPECT_FALSE(index.Contains({e, 0, 1}))
          << "known-true head " << e << " survived round " << round;
    }
  }
}

TEST(CacheUpdaterTest, WithoutFilterTrueTriplesDominate) {
  // Control for the test above: no filter -> the high-scoring true heads
  // take over the cache (the false-negative failure mode).
  std::vector<float> values(20, 0.0f);
  values[1] = 1.0f;
  TripleStore known(20, 1);
  for (EntityId h = 15; h < 20; ++h) {
    values[h] = 50.0f;
    known.Add({h, 0, 1});
  }
  const KgIndex index(known);
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kImportanceSampling, 10,
                       /*filter_index=*/nullptr);
  std::vector<EntityId> entry = {2, 3, 4, 5};
  Rng rng(10);
  for (int round = 0; round < 10; ++round) {
    updater.UpdateHeadEntry(&entry, 0, 1, &rng);
  }
  int known_true = 0;
  for (EntityId e : entry) known_true += index.Contains({e, 0, 1});
  EXPECT_GT(known_true, 2);
}

TEST(CacheUpdaterTest, TrueAdmissionsCountedWhenFilterExhausted) {
  // Every entity is a known-true head for (r=0, t=1): the filter's redraw
  // budget cannot help, and each fresh draw silently admits a known-true
  // triple. The admission count must expose that instead of reporting the
  // filter as fully effective.
  const int32_t num_entities = 4;
  std::vector<float> values(num_entities, 0.0f);
  values[1] = 1.0f;
  TripleStore known(num_entities, 1);
  for (EntityId h = 0; h < num_entities; ++h) known.Add({h, 0, 1});
  const KgIndex index(known);
  KgeModel model = MakeControlledModel(values);
  const int n2 = 6;
  CacheUpdater updater(&model, CacheUpdateStrategy::kImportanceSampling, n2,
                       &index);
  std::vector<EntityId> entry = {0, 1, 2};
  Rng rng(11);
  const CacheRefreshResult result = updater.UpdateHeadEntry(&entry, 0, 1, &rng);
  // All 3 stale entry members are known-true (redrawn, admission each) and
  // all n2 fresh draws admit too.
  EXPECT_EQ(result.true_admissions, 3 + n2);
}

TEST(CacheUpdaterTest, NoAdmissionsWhenFilterCanSucceed) {
  // Plenty of clean entities: 10 retries find one with probability
  // ~1 - (5/50)^10, so admissions stay at zero.
  std::vector<float> values(50, 0.0f);
  values[1] = 1.0f;
  TripleStore known(50, 1);
  for (EntityId h = 45; h < 50; ++h) known.Add({h, 0, 1});
  const KgIndex index(known);
  KgeModel model = MakeControlledModel(values);
  CacheUpdater updater(&model, CacheUpdateStrategy::kImportanceSampling, 10,
                       &index);
  std::vector<EntityId> entry = {0, 2, 3};
  Rng rng(12);
  int admissions = 0;
  for (int round = 0; round < 20; ++round) {
    admissions += updater.UpdateHeadEntry(&entry, 0, 1, &rng).true_admissions;
  }
  EXPECT_EQ(admissions, 0);
}

TEST(CacheUpdaterTest, NoAdmissionsWithoutFilter) {
  KgeModel model = MakeControlledModel(std::vector<float>(20, 0.0f));
  CacheUpdater updater(&model, CacheUpdateStrategy::kUniform, 10,
                       /*filter_index=*/nullptr);
  std::vector<EntityId> entry = {0, 1, 2};
  Rng rng(13);
  EXPECT_EQ(updater.UpdateHeadEntry(&entry, 0, 1, &rng).true_admissions, 0);
}

TEST(CacheUpdateStrategyTest, Names) {
  EXPECT_EQ(CacheUpdateStrategyName(CacheUpdateStrategy::kImportanceSampling),
            "is");
  EXPECT_EQ(CacheUpdateStrategyName(CacheUpdateStrategy::kTop), "top");
  EXPECT_EQ(CacheUpdateStrategyName(CacheUpdateStrategy::kUniform), "uniform");
}

}  // namespace
}  // namespace nsc
