#include "core/nscaching_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "kg/kg_index.h"

namespace nsc {
namespace {

TripleStore MakeStore(int num_entities = 40) {
  TripleStore store(num_entities, 3);
  for (EntityId h = 0; h < 12; ++h) {
    store.Add({h, 0, static_cast<EntityId>((h + 5) % num_entities)});
    store.Add({h, 1, static_cast<EntityId>(20 + (h % 10))});
  }
  return store;
}

KgeModel MakeModel(int num_entities = 40, uint64_t seed = 1) {
  KgeModel model(num_entities, 3, 8, MakeScoringFunction("transe"));
  Rng rng(seed);
  model.InitXavier(&rng);
  return model;
}

NSCachingConfig SmallConfig() {
  NSCachingConfig c;
  c.n1 = 6;
  c.n2 = 6;
  return c;
}

TEST(NSCachingSamplerTest, NegativeIsCorruptionOfPositive) {
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  NSCachingSampler sampler(&model, &index, SmallConfig());
  Rng rng(2);
  const Triple pos{3, 0, 8};
  for (int i = 0; i < 200; ++i) {
    const NegativeSample neg = sampler.Sample(pos, &rng);
    EXPECT_EQ(neg.triple.r, pos.r);
    if (neg.side == CorruptionSide::kHead) {
      EXPECT_EQ(neg.triple.t, pos.t);
    } else {
      EXPECT_EQ(neg.triple.h, pos.h);
    }
  }
}

TEST(NSCachingSamplerTest, CachesKeyedByRtAndHr) {
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  NSCachingSampler sampler(&model, &index, SmallConfig());
  Rng rng(3);
  sampler.Sample({3, 0, 8}, &rng);
  EXPECT_NE(sampler.head_cache().Find(PackRt(0, 8)), nullptr);
  EXPECT_NE(sampler.tail_cache().Find(PackHr(3, 0)), nullptr);
  EXPECT_EQ(sampler.head_cache().Find(PackRt(1, 8)), nullptr);

  // A second positive sharing (r, t) reuses the same head-cache entry.
  sampler.Sample({7, 0, 8}, &rng);
  EXPECT_EQ(sampler.head_cache().num_entries(), 1u);
  EXPECT_EQ(sampler.tail_cache().num_entries(), 2u);
}

TEST(NSCachingSamplerTest, SampledEntityComesFromCache) {
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  Rng rng(4);
  const Triple pos{3, 0, 8};
  // With updates disabled, every sampled corruption must be a member of
  // the (frozen) cache entry for its key.
  NSCachingConfig frozen = SmallConfig();
  frozen.lazy_update_epochs = 1 << 20;
  NSCachingSampler frozen_sampler(&model, &index, frozen);
  frozen_sampler.BeginEpoch(1);  // 1 % huge != 0 -> updates disabled.
  EXPECT_FALSE(frozen_sampler.updates_enabled());
  frozen_sampler.Sample(pos, &rng);  // Initialises entries.
  const auto head_entry = *frozen_sampler.head_cache().Find(PackRt(0, 8));
  const auto tail_entry = *frozen_sampler.tail_cache().Find(PackHr(3, 0));
  for (int i = 0; i < 100; ++i) {
    const NegativeSample neg = frozen_sampler.Sample(pos, &rng);
    if (neg.side == CorruptionSide::kHead) {
      EXPECT_NE(std::find(head_entry.begin(), head_entry.end(), neg.triple.h),
                head_entry.end());
    } else {
      EXPECT_NE(std::find(tail_entry.begin(), tail_entry.end(), neg.triple.t),
                tail_entry.end());
    }
  }
}

TEST(NSCachingSamplerTest, UpdatesRefreshBothCaches) {
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  NSCachingSampler sampler(&model, &index, SmallConfig());
  Rng rng(5);
  sampler.BeginEpoch(0);
  EXPECT_TRUE(sampler.updates_enabled());
  sampler.Sample({3, 0, 8}, &rng);
  EXPECT_EQ(sampler.stats().updates, 2);  // Head + tail entry refreshed.
  EXPECT_EQ(sampler.stats().selections, 2);  // h̄ AND t̄ drawn from cache.
}

TEST(NSCachingSamplerTest, SelectionsCountBothCacheDraws) {
  // Step 6 of Algorithm 2 draws a head candidate h̄ AND a tail candidate
  // t̄ from the caches before step 7 keeps one of them, so the "negatives
  // drawn from the cache" counter advances by exactly 2 per Sample() —
  // counting 1 undercounted cache traffic by half.
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  NSCachingSampler sampler(&model, &index, SmallConfig());
  Rng rng(12);
  const int kSamples = 25;
  for (int i = 0; i < kSamples; ++i) sampler.Sample({3, 0, 8}, &rng);
  EXPECT_EQ(sampler.stats().selections, 2 * kSamples);
}

TEST(NSCachingSamplerTest, FilterDefeatAdmissionsAreCounted) {
  // Pathological key: EVERY entity is a known-true head for (r=0, t=1),
  // so the false-negative filter can never find a clean fresh candidate
  // and must admit known-true triples after its redraw budget. Those
  // silent admissions have to surface in the stats.
  const int32_t num_entities = 4;
  TripleStore store(num_entities, 2);
  for (EntityId h = 0; h < num_entities; ++h) store.Add({h, 0, 1});
  const KgIndex index(store);
  KgeModel model(num_entities, 2, 8, MakeScoringFunction("transe"));
  Rng init_rng(1);
  model.InitXavier(&init_rng);
  NSCachingConfig config = SmallConfig();
  ASSERT_TRUE(config.filter_true_triples);
  NSCachingSampler sampler(&model, &index, config);
  Rng rng(13);
  sampler.Sample({0, 0, 1}, &rng);  // Head-side pool: all draws admit.
  EXPECT_GT(sampler.stats().true_admissions, 0);
}

TEST(NSCachingSamplerTest, LazyUpdateSchedule) {
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  NSCachingConfig config = SmallConfig();
  config.lazy_update_epochs = 2;  // Update in epochs 0, 3, 6, ...
  NSCachingSampler sampler(&model, &index, config);
  Rng rng(6);
  const Triple pos{3, 0, 8};

  const int expected_enabled[] = {1, 0, 0, 1, 0, 0, 1};
  for (int epoch = 0; epoch < 7; ++epoch) {
    sampler.BeginEpoch(epoch);
    EXPECT_EQ(sampler.updates_enabled(), expected_enabled[epoch] == 1)
        << "epoch " << epoch;
    sampler.ResetStats();
    sampler.Sample(pos, &rng);
    EXPECT_EQ(sampler.stats().updates, expected_enabled[epoch] == 1 ? 2 : 0);
  }
}

TEST(NSCachingSamplerTest, CacheEntriesStayWithinUniverse) {
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  NSCachingSampler sampler(&model, &index, SmallConfig());
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    for (const Triple& pos : store) sampler.Sample(pos, &rng);
  }
  for (const Triple& pos : store) {
    const auto* entry = sampler.head_cache().Find(PackRt(pos.r, pos.t));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->size(), static_cast<size_t>(SmallConfig().n1));
    for (EntityId e : *entry) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, 40);
    }
  }
}

TEST(NSCachingSamplerTest, CacheConcentratesOnHighScoreNegatives) {
  // Property from §III-B: after repeated IS updates against a fixed model,
  // the cache should hold candidates with systematically higher scores
  // than uniform random ones.
  KgeModel model = MakeModel(60, 11);
  TripleStore store(60, 3);
  store.Add({3, 0, 8});
  const KgIndex index(store);
  NSCachingConfig config;
  config.n1 = 10;
  config.n2 = 30;
  NSCachingSampler sampler(&model, &index, config);
  Rng rng(8);
  const Triple pos{3, 0, 8};
  for (int i = 0; i < 60; ++i) sampler.Sample(pos, &rng);

  const auto* entry = sampler.head_cache().Find(PackRt(0, 8));
  ASSERT_NE(entry, nullptr);
  double cache_mean = 0.0;
  for (EntityId e : *entry) cache_mean += model.Score(e, 0, 8);
  cache_mean /= entry->size();

  double uniform_mean = 0.0;
  for (EntityId e = 0; e < 60; ++e) uniform_mean += model.Score(e, 0, 8);
  uniform_mean /= 60.0;

  EXPECT_GT(cache_mean, uniform_mean);
}

TEST(NSCachingSamplerTest, StatsResetWorks) {
  KgeModel model = MakeModel();
  const TripleStore store = MakeStore();
  const KgIndex index(store);
  NSCachingSampler sampler(&model, &index, SmallConfig());
  Rng rng(9);
  sampler.Sample({3, 0, 8}, &rng);
  EXPECT_GT(sampler.stats().selections, 0);
  sampler.ResetStats();
  EXPECT_EQ(sampler.stats().selections, 0);
  EXPECT_EQ(sampler.stats().updates, 0);
  EXPECT_EQ(sampler.stats().changed_elements, 0);
  EXPECT_EQ(sampler.stats().true_admissions, 0);
}

TEST(CacheStatsTest, MeanChangedElements) {
  CacheStats stats;
  EXPECT_EQ(stats.MeanChangedElements(), 0.0);
  stats.updates = 4;
  stats.changed_elements = 10;
  EXPECT_DOUBLE_EQ(stats.MeanChangedElements(), 2.5);
}

}  // namespace
}  // namespace nsc
