// Multi-thread stress and sharding-parity tests for the lock-striped
// TripletCache and the thread-safe NSCachingSampler.
//
// Two contracts:
//   1. Parity — an unbounded sharded cache reproduces the single-map
//      (1-shard) cache bit-for-bit on the same Rng stream: lazy init
//      consumes the caller's Rng identically regardless of striping.
//   2. Safety — N workers hammering a small shared key set (the worst
//      contention case: 1-N relations funnel many positives into one
//      entry) never corrupt an entry, lose a key, or miscount stats.
// This binary is also the primary target of the ThreadSanitizer CI job,
// where it runs with NO suppressions: everything it exercises must be
// genuinely race-free, not Hogwild-benign.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/nscaching_sampler.h"
#include "core/triplet_cache.h"
#include "kg/kg_index.h"

namespace nsc {
namespace {

TEST(ShardedCacheParityTest, ShardedMatchesSingleShardOnSameStream) {
  // Same interleaved sequence of fresh and repeated keys against a
  // 1-shard and an 8-shard unbounded cache, from identically seeded
  // streams: every entry must come out bit-for-bit equal.
  TripletCache single(6, 5000, /*max_entries=*/0, /*num_shards=*/1);
  TripletCache sharded(6, 5000, /*max_entries=*/0, /*num_shards=*/8);
  Rng rng_single(77), rng_sharded(77);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 40; ++k) {
    keys.push_back(PackRt(static_cast<RelationId>(k % 5),
                          static_cast<EntityId>(k)));
  }
  // Touch pattern with repeats (repeats must not consume the stream).
  for (int round = 0; round < 3; ++round) {
    for (uint64_t key : keys) {
      const auto& a = single.GetOrInit(key, &rng_single);
      const auto& b = sharded.GetOrInit(key, &rng_sharded);
      ASSERT_EQ(a, b) << "round " << round << " key " << key;
    }
  }
  EXPECT_EQ(single.num_entries(), sharded.num_entries());
  EXPECT_EQ(sharded.num_entries(), keys.size());
}

TEST(ShardedCacheParityTest, AcquireAndGetOrInitAgree) {
  TripletCache via_acquire(4, 300, 0, 4);
  TripletCache via_getorinit(4, 300, 0, 4);
  Rng rng_a(9), rng_b(9);
  for (uint64_t key = 0; key < 25; ++key) {
    TripletCache::LockedEntry locked = via_acquire.Acquire(key, &rng_a);
    locked.AssertHeld();  // Bridges Acquire()'s dynamic shard pick.
    const auto& plain = via_getorinit.GetOrInit(key, &rng_b);
    EXPECT_EQ(locked.candidates(), plain);
  }
}

TEST(CacheStressTest, ConcurrentAcquireOnSharedKeys) {
  constexpr int kThreads = 8;
  constexpr int kIters = 3000;
  constexpr int kCapacity = 8;
  constexpr int32_t kEntities = 1000;
  constexpr uint64_t kKeys = 7;  // Few keys -> heavy same-entry contention.
  TripletCache cache(kCapacity, kEntities, /*max_entries=*/0,
                     /*num_shards=*/8);

  Rng seeder(123);
  std::vector<Rng> rngs;
  for (int t = 0; t < kThreads; ++t) rngs.push_back(seeder.Split());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng& rng = rngs[t];
      for (int i = 0; i < kIters; ++i) {
        const uint64_t key = rng.UniformInt(kKeys);
        TripletCache::LockedEntry entry = cache.Acquire(key, &rng);
        entry.AssertHeld();
        std::vector<EntityId>& c = entry.candidates();
        ASSERT_EQ(c.size(), static_cast<size_t>(kCapacity));
        for (EntityId e : c) {
          ASSERT_GE(e, 0);
          ASSERT_LT(e, kEntities);
        }
        // Mutate under the lock the way a cache refresh would.
        c[rng.UniformInt(kCapacity)] =
            static_cast<EntityId>(rng.UniformInt(kEntities));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.num_entries(), kKeys);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(CacheStressTest, ConcurrentAcquireOnBoundedCacheEvicts) {
  constexpr int kThreads = 6;
  constexpr int kIters = 2000;
  TripletCache cache(4, 500, /*max_entries=*/16, /*num_shards=*/4);

  Rng seeder(321);
  std::vector<Rng> rngs;
  for (int t = 0; t < kThreads; ++t) rngs.push_back(seeder.Split());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng& rng = rngs[t];
      for (int i = 0; i < kIters; ++i) {
        const uint64_t key = rng.UniformInt(200);  // Far over the bound.
        TripletCache::LockedEntry entry = cache.Acquire(key, &rng);
        entry.AssertHeld();
        ASSERT_EQ(entry.candidates().size(), 4u);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Per-shard cap is ceil(16/4) = 4; every shard must respect it.
  EXPECT_LE(cache.num_entries(), 16u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(CacheStressTest, ConcurrentNSCachingSamplerOnSharedKeys) {
  // The real workload: N Hogwild workers call Sample() with per-worker
  // streams on positives that deliberately collide on (r, t) and (h, r)
  // keys. The model is fixed, so every shared access in here must be
  // properly synchronized (shard locks + atomic stats) — this is the
  // no-suppressions TSan target.
  constexpr int32_t kEntities = 50;
  constexpr int kThreads = 6;
  constexpr int kSamplesPerThread = 400;

  TripleStore store(kEntities, 3);
  for (EntityId h = 0; h < 10; ++h) {
    // Many triples share (r=0, t=20) and each (h, 0) — 1-N/N-1 contention.
    store.Add({h, 0, 20});
    store.Add({h, 1, static_cast<EntityId>(30 + h % 3)});
  }
  const KgIndex index(store);
  KgeModel model(kEntities, 3, 8, MakeScoringFunction("transe"));
  Rng init_rng(5);
  model.InitXavier(&init_rng);

  NSCachingConfig config;
  config.n1 = 6;
  config.n2 = 6;
  config.cache_shards = 8;
  NSCachingSampler sampler(&model, &index, config);
  ASSERT_TRUE(sampler.thread_safe_sampling());
  sampler.BeginEpoch(0);
  ASSERT_TRUE(sampler.updates_enabled());

  Rng seeder(99);
  std::vector<Rng> rngs;
  for (int t = 0; t < kThreads; ++t) rngs.push_back(seeder.Split());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng& rng = rngs[t];
      for (int i = 0; i < kSamplesPerThread; ++i) {
        const Triple& pos = store[rng.UniformInt(store.size())];
        const NegativeSample neg = sampler.Sample(pos, &rng);
        ASSERT_EQ(neg.triple.r, pos.r);
        if (neg.side == CorruptionSide::kHead) {
          ASSERT_EQ(neg.triple.t, pos.t);
          ASSERT_GE(neg.triple.h, 0);
          ASSERT_LT(neg.triple.h, kEntities);
        } else {
          ASSERT_EQ(neg.triple.h, pos.h);
          ASSERT_GE(neg.triple.t, 0);
          ASSERT_LT(neg.triple.t, kEntities);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Atomic accounting: nothing lost under contention. Both a head and a
  // tail candidate are drawn per Sample (selections += 2) and both
  // entries are refreshed (updates += 2).
  const int64_t total = int64_t{kThreads} * kSamplesPerThread;
  const CacheStats stats = sampler.stats();
  EXPECT_EQ(stats.selections, 2 * total);
  EXPECT_EQ(stats.updates, 2 * total);
  EXPECT_GE(stats.changed_elements, 0);

  // Entries stay well-formed: exactly N1 in-universe ids per key.
  for (const Triple& pos : store) {
    const auto* head = sampler.head_cache().Find(PackRt(pos.r, pos.t));
    const auto* tail = sampler.tail_cache().Find(PackHr(pos.h, pos.r));
    ASSERT_NE(head, nullptr);
    ASSERT_NE(tail, nullptr);
    EXPECT_EQ(head->size(), static_cast<size_t>(config.n1));
    EXPECT_EQ(tail->size(), static_cast<size_t>(config.n1));
    for (EntityId e : *head) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, kEntities);
    }
  }
}

}  // namespace
}  // namespace nsc
