#include "core/cache_select.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "embedding/scoring_function.h"

namespace nsc {
namespace {

// DistMult with controllable per-entity head scores (see cache_update_test).
KgeModel MakeControlledModel(const std::vector<float>& entity_values) {
  const int dim = 4;
  KgeModel model(static_cast<int32_t>(entity_values.size()), 1, dim,
                 MakeScoringFunction("distmult"));
  for (size_t e = 0; e < entity_values.size(); ++e) {
    model.entity_table().Row(static_cast<int32_t>(e))[0] = entity_values[e];
  }
  model.relation_table().Row(0)[0] = 1.0f;
  return model;
}

TEST(CacheSelectorTest, UniformIsUnbiased) {
  std::vector<float> values(10, 0.0f);
  values[9] = 100.0f;  // Huge score must NOT bias uniform selection.
  KgeModel model = MakeControlledModel(values);
  CacheSelector selector(&model, CacheSelectStrategy::kUniform);
  const std::vector<EntityId> entry = {1, 2, 9};
  Rng rng(1);
  std::map<EntityId, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[selector.SelectHead(entry, 0, 5, &rng)];
  for (EntityId e : entry) {
    EXPECT_NEAR(counts[e] / double(n), 1.0 / 3.0, 0.02) << "entity " << e;
  }
}

TEST(CacheSelectorTest, TopAlwaysPicksArgmax) {
  std::vector<float> values(10, 0.0f);
  values[4] = 3.0f;
  values[7] = 9.0f;
  values[5] = 1.0f;  // Fixed tail: f(e, r, t=5) = v_e * v_5 orders by v_e.
  KgeModel model = MakeControlledModel(values);
  CacheSelector selector(&model, CacheSelectStrategy::kTop);
  const std::vector<EntityId> entry = {1, 4, 7, 2};
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(selector.SelectHead(entry, 0, 5, &rng), 7);
  }
}

TEST(CacheSelectorTest, ImportanceSamplingTracksSoftmax) {
  std::vector<float> values(5, 0.0f);
  values[0] = 0.0f;
  values[1] = 1.0f;
  values[2] = 2.0f;
  values[4] = 1.0f;  // Fixed tail: f(e, r, t=4) = v_e.
  KgeModel model = MakeControlledModel(values);
  CacheSelector selector(&model, CacheSelectStrategy::kImportanceSampling);
  const std::vector<EntityId> entry = {0, 1, 2};
  Rng rng(3);
  std::map<EntityId, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[selector.SelectHead(entry, 0, 4, &rng)];
  const double z = std::exp(0.0) + std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(counts[0] / double(n), std::exp(0.0) / z, 0.01);
  EXPECT_NEAR(counts[1] / double(n), std::exp(1.0) / z, 0.01);
  EXPECT_NEAR(counts[2] / double(n), std::exp(2.0) / z, 0.01);
}

TEST(CacheSelectorTest, TopBreaksTiesUniformly) {
  // All candidates score identically (the init-time situation: fresh
  // uniform draws against a symmetric model). Top selection must not
  // deterministically favor the first argmax — ties break uniformly at
  // random via the Rng.
  KgeModel model = MakeControlledModel(std::vector<float>(10, 0.0f));
  CacheSelector selector(&model, CacheSelectStrategy::kTop);
  const std::vector<EntityId> entry = {2, 5, 8};
  Rng rng(6);
  std::map<EntityId, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[selector.SelectHead(entry, 0, 1, &rng)];
  for (EntityId e : entry) {
    EXPECT_NEAR(counts[e] / double(n), 1.0 / 3.0, 0.02) << "entity " << e;
  }
}

TEST(CacheSelectorTest, TopTieBreakOnlyAmongTied) {
  // One candidate strictly dominates: the tie-break must never divert the
  // pick away from the true argmax, and the tied losers stay unchosen.
  std::vector<float> values(10, 0.0f);
  values[5] = 1.0f;  // Fixed tail value.
  values[7] = 9.0f;  // Unique argmax among the entry.
  KgeModel model = MakeControlledModel(values);
  CacheSelector selector(&model, CacheSelectStrategy::kTop);
  const std::vector<EntityId> entry = {1, 7, 2};  // 1 and 2 tie at 0.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(selector.SelectHead(entry, 0, 5, &rng), 7);
  }
}

TEST(CacheSelectorTest, SelectTailUsesTailScores) {
  // f(h=1, r, t) = value_t with value_1 = 1.
  std::vector<float> values(10, 0.0f);
  values[1] = 1.0f;
  values[6] = 42.0f;
  KgeModel model = MakeControlledModel(values);
  CacheSelector selector(&model, CacheSelectStrategy::kTop);
  const std::vector<EntityId> entry = {3, 6, 8};
  Rng rng(4);
  EXPECT_EQ(selector.SelectTail(entry, 1, 0, &rng), 6);
}

TEST(CacheSelectorTest, SingleElementEntry) {
  KgeModel model = MakeControlledModel(std::vector<float>(5, 0.0f));
  for (auto strategy :
       {CacheSelectStrategy::kUniform, CacheSelectStrategy::kImportanceSampling,
        CacheSelectStrategy::kTop}) {
    CacheSelector selector(&model, strategy);
    Rng rng(5);
    EXPECT_EQ(selector.SelectHead({3}, 0, 1, &rng), 3);
  }
}

TEST(CacheSelectStrategyTest, Names) {
  EXPECT_EQ(CacheSelectStrategyName(CacheSelectStrategy::kUniform), "uniform");
  EXPECT_EQ(CacheSelectStrategyName(CacheSelectStrategy::kImportanceSampling),
            "is");
  EXPECT_EQ(CacheSelectStrategyName(CacheSelectStrategy::kTop), "top");
}

}  // namespace
}  // namespace nsc
