// Golden convergence regression — the tripwire for kernel rewrites
// (ISSUE 3). Trains a seeded synthetic KG for a fixed number of epochs at
// num_threads = 1 on the FORCED-SCALAR dispatch path (the scalar kernels
// are the bit-stable reference across ISAs; SIMD-vs-scalar agreement is
// simd_parity_test's job) and asserts the final mean loss and a handful
// of embedding row norms against recorded goldens.
//
// The goldens were recorded with the scalar path on the CI toolchain
// (gcc, -O2). Tolerances are relative 1e-3: wide enough to absorb
// compiler-level float drift (e.g. contraction differences between
// optimisation levels), tight enough that any real kernel or layout bug
// — a dropped tail lane, a mis-strided row, a wrong gradient sign —
// lands orders of magnitude outside them.
//
// To re-record after an INTENTIONAL semantic change, run with
// NSC_PRINT_GOLDENS=1 and paste the printed block over the constants.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/nscaching_sampler.h"
#include "kg/kg_index.h"
#include "kg/synthetic.h"
#include "sampler/bernoulli_sampler.h"
#include "train/trainer.h"
#include "util/env.h"
#include "util/simd.h"

namespace nsc {
namespace {

// Entity rows whose norms are pinned (spread across the id range so a
// mis-strided table cannot slip through on row 0 alone).
constexpr int32_t kProbeRows[] = {0, 7, 31, 64, 119};

struct GoldenRun {
  const char* scorer;
  const char* sampler;
  double final_loss;
  double entity_norms[5];
  double relation0_norm;
};

// Recorded on the reference toolchain; see file comment to re-record.
constexpr GoldenRun kGoldens[] = {
    {"transe", "bernoulli", 0.27288779560699167,
     {1.00000011920929, 1, 1, 0.9999999403953552, 1},
     3.518959283828735},
    {"complex", "bernoulli", 0.68103991275880638,
     {2.885035037994385, 2.774362087249756, 3.694580554962158,
      3.8443763256073, 4.284825325012207},
     2.767184019088745},
    {"transe", "nscaching", 0.70533943870123406,
     {1, 1, 0.9999999403953552, 0.9597378969192505, 1},
     3.71933650970459},
};

Dataset GoldenDataset() {
  SyntheticKgConfig c;
  c.num_entities = 120;
  c.num_relations = 4;
  c.num_triples = 900;
  c.seed = 11;
  return GenerateSyntheticKg(c);
}

TrainConfig GoldenTrainConfig() {
  TrainConfig c;
  c.dim = 12;
  c.learning_rate = 0.05;
  c.margin = 2.0;
  c.batch_size = 32;
  c.num_threads = 1;
  // The goldens pin the legacy per-pair reference semantics; the fused
  // engine's parity with it is trainer_parallel_test's job.
  c.fused_scoring = false;
  c.seed = 17;
  return c;
}

struct RunOutcome {
  double final_loss = 0.0;
  std::vector<double> entity_norms;
  double relation0_norm = 0.0;
};

RunOutcome TrainGoldenRun(const std::string& scorer,
                          const std::string& sampler_name) {
  const Dataset data = GoldenDataset();
  const KgIndex index(data.train);
  TrainConfig config = GoldenTrainConfig();
  if (scorer == "complex") config.l2_lambda = 0.01;

  KgeModel model(data.num_entities(), data.num_relations(), config.dim,
                 MakeScoringFunction(scorer));
  Rng rng(23);
  model.InitXavier(&rng);

  std::unique_ptr<NegativeSampler> sampler;
  if (sampler_name == "bernoulli") {
    sampler = std::make_unique<BernoulliSampler>(data.num_entities(), &index);
  } else {
    NSCachingConfig nsc_config;
    nsc_config.n1 = 10;
    nsc_config.n2 = 10;
    sampler = std::make_unique<NSCachingSampler>(&model, &index, nsc_config);
  }
  Trainer trainer(&model, &data.train, sampler.get(), config);

  RunOutcome out;
  for (int e = 0; e < 5; ++e) out.final_loss = trainer.RunEpoch().mean_loss;
  const int ew = model.entity_table().width();
  for (int32_t row : kProbeRows) {
    out.entity_norms.push_back(model.entity_table().RowNorm(row, ew));
  }
  out.relation0_norm =
      model.relation_table().RowNorm(0, model.relation_table().width());
  return out;
}

TEST(ConvergenceRegressionTest, MatchesRecordedGoldens) {
  // Scalar path: the golden numbers are ISA-independent by construction.
  simd::ScopedForcePath force(simd::Path::kScalar);

  const bool print = GetEnvBool("NSC_PRINT_GOLDENS", false);
  for (const GoldenRun& golden : kGoldens) {
    SCOPED_TRACE(std::string(golden.scorer) + " + " + golden.sampler);
    const RunOutcome out = TrainGoldenRun(golden.scorer, golden.sampler);

    if (print) {
      std::printf("    {\"%s\", \"%s\", %.17g,\n     {", golden.scorer,
                  golden.sampler, out.final_loss);
      for (size_t i = 0; i < out.entity_norms.size(); ++i) {
        std::printf("%s%.16g", i ? ", " : "", out.entity_norms[i]);
      }
      std::printf("},\n     %.16g},\n", out.relation0_norm);
      continue;
    }

    constexpr double kRelTol = 1e-3;
    EXPECT_NEAR(out.final_loss, golden.final_loss,
                kRelTol * golden.final_loss);
    ASSERT_EQ(out.entity_norms.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(out.entity_norms[i], golden.entity_norms[i],
                  kRelTol * golden.entity_norms[i])
          << "entity row " << kProbeRows[i];
    }
    EXPECT_NEAR(out.relation0_norm, golden.relation0_norm,
                kRelTol * golden.relation0_norm);
  }
}

TEST(ConvergenceRegressionTest, LossActuallyDecreased) {
  // Sanity companion to the goldens: the recorded loss must reflect real
  // training, not a silently diverged or frozen run.
  simd::ScopedForcePath force(simd::Path::kScalar);
  const Dataset data = GoldenDataset();
  const KgIndex index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 12,
                 MakeScoringFunction("transe"));
  Rng rng(23);
  model.InitXavier(&rng);
  BernoulliSampler sampler(data.num_entities(), &index);
  Trainer trainer(&model, &data.train, &sampler, GoldenTrainConfig());
  const double first = trainer.RunEpoch().mean_loss;
  double last = first;
  for (int e = 1; e < 5; ++e) last = trainer.RunEpoch().mean_loss;
  EXPECT_LT(last, 0.8 * first);
}

}  // namespace
}  // namespace nsc
