// Integration tests: the full stack (synthetic data -> training -> filtered
// evaluation) exercised the way the benchmark harness uses it, including
// the paper's headline qualitative claims at miniature scale:
//   - every scorer trains end-to-end with every sampler;
//   - NSCaching's gradients stay larger than Bernoulli's (Figure 10);
//   - NSCaching's NZL stays higher than Bernoulli's (Figure 7);
//   - NSCaching matches or beats Bernoulli on MRR (Table IV's direction);
//   - the tail cache drifts toward type-consistent entities (Table VI).
#include <gtest/gtest.h>

#include <numeric>

#include "core/nscaching_sampler.h"
#include "kg/kg_index.h"
#include "kg/synthetic.h"
#include "sampler/bernoulli_sampler.h"
#include "train/experiment.h"
#include "train/classification.h"

namespace nsc {
namespace {

Dataset MediumDataset() {
  SyntheticKgConfig c;
  c.num_entities = 250;
  c.num_relations = 6;
  c.num_triples = 2500;
  c.valid_fraction = 0.05;
  c.test_fraction = 0.05;
  c.seed = 1234;
  return GenerateSyntheticKg(c);
}

PipelineConfig BaseConfig(SamplerKind kind, const std::string& scorer) {
  PipelineConfig c;
  c.scorer = scorer;
  c.sampler = kind;
  c.train.dim = 16;
  c.train.epochs = 12;
  c.train.learning_rate = 0.005;
  c.train.margin = 4.0;
  c.train.seed = 9;
  c.train.l2_lambda =
      (scorer == "distmult" || scorer == "complex") ? 0.01 : 0.0;
  c.nscaching.n1 = 10;
  c.nscaching.n2 = 10;
  c.kbgan.candidate_set_size = 10;
  c.kbgan.generator_dim = 16;
  c.eval_threads = 4;
  return c;
}

TEST(EndToEndTest, EveryScorerTrainsWithNSCaching) {
  const Dataset data = MediumDataset();
  for (const std::string scorer :
       {"transe", "transh", "transd", "distmult", "complex"}) {
    PipelineConfig config = BaseConfig(SamplerKind::kNSCaching, scorer);
    config.train.epochs = 6;
    const PipelineResult result = RunPipeline(data, config);
    // Random MRR over 250 entities ~ 0.02; trained must clearly beat it.
    EXPECT_GT(result.test_metrics.mrr(), 0.05) << scorer;
  }
}

TEST(EndToEndTest, NSCachingKeepsGradientsAliveVsBernoulli) {
  const Dataset data = MediumDataset();
  auto grad_tail = [&](SamplerKind kind) {
    PipelineConfig config = BaseConfig(kind, "transe");
    config.train.track_grad_norm = true;
    const PipelineResult result = RunPipeline(data, config);
    double tail = 0.0;
    const size_t take = 4;
    for (size_t i = result.epoch_stats.size() - take;
         i < result.epoch_stats.size(); ++i) {
      tail += result.epoch_stats[i].mean_grad_norm;
    }
    return tail / take;
  };
  const double bernoulli = grad_tail(SamplerKind::kBernoulli);
  const double nscaching = grad_tail(SamplerKind::kNSCaching);
  EXPECT_GT(nscaching, bernoulli) << "Figure 10 direction violated";
}

TEST(EndToEndTest, NSCachingSustainsNonzeroLoss) {
  const Dataset data = MediumDataset();
  auto nzl_tail = [&](SamplerKind kind) {
    const PipelineResult result = RunPipeline(data, BaseConfig(kind, "transe"));
    return result.epoch_stats.back().nonzero_loss_ratio;
  };
  EXPECT_GT(nzl_tail(SamplerKind::kNSCaching),
            nzl_tail(SamplerKind::kBernoulli))
      << "Figure 7 direction violated";
}

TEST(EndToEndTest, NSCachingAtLeastMatchesBernoulliMrr) {
  const Dataset data = MediumDataset();
  const PipelineResult bernoulli =
      RunPipeline(data, BaseConfig(SamplerKind::kBernoulli, "transe"));
  const PipelineResult nscaching =
      RunPipeline(data, BaseConfig(SamplerKind::kNSCaching, "transe"));
  // Direction of Table IV; small slack for miniature-scale noise.
  EXPECT_GE(nscaching.test_metrics.mrr(), bernoulli.test_metrics.mrr() * 0.9);
}

TEST(EndToEndTest, ClassificationAccuracyAboveChanceAfterTraining) {
  const Dataset data = MediumDataset();
  const PipelineResult result =
      RunPipeline(data, BaseConfig(SamplerKind::kNSCaching, "transd"));
  const KgIndex all(std::vector<const TripleStore*>{&data.train, &data.valid,
                                                    &data.test});
  const double acc = EvaluateTripleClassification(*result.model, data.valid,
                                                  data.test, all, 4242);
  EXPECT_GT(acc, 55.0);
}

TEST(EndToEndTest, CacheDriftsTowardTypeConsistentEntities) {
  // Table VI at miniature scale: train on the professions KG and watch the
  // tail cache of a (person, profession, ?) positive fill with profession
  // entities (ids < 24 by construction).
  const Dataset data = GenerateProfessionsKg(250, 25, 21);
  const KgIndex train_index(data.train);
  KgeModel model(data.num_entities(), data.num_relations(), 16,
                 MakeScoringFunction("transe"));
  Rng rng(3);
  model.InitXavier(&rng);

  NSCachingConfig ns_config;
  ns_config.n1 = 10;
  ns_config.n2 = 10;
  NSCachingSampler sampler(&model, &train_index, ns_config);

  TrainConfig t_config;
  t_config.dim = 16;
  t_config.learning_rate = 0.05;
  t_config.margin = 3.0;
  t_config.seed = 8;
  Trainer trainer(&model, &data.train, &sampler, t_config);

  const RelationId r_prof = data.relations.Find("profession");
  ASSERT_GE(r_prof, 0);
  Triple probe{-1, r_prof, -1};
  for (const Triple& x : data.train) {
    if (x.r == r_prof) {
      probe = x;
      break;
    }
  }
  ASSERT_GE(probe.h, 0);

  auto profession_fraction = [&]() {
    const auto* entry = sampler.tail_cache().Find(PackHr(probe.h, probe.r));
    if (entry == nullptr) return 0.0;
    int professions = 0;
    for (EntityId e : *entry) professions += (e < 24);
    return static_cast<double>(professions) / entry->size();
  };

  for (int e = 0; e < 12; ++e) trainer.RunEpoch();
  // 24 professions out of ~300 entities: uniform chance is ~8%. After
  // training, the cache should be enriched well beyond chance.
  EXPECT_GT(profession_fraction(), 0.3);
}

TEST(EndToEndTest, BoundedCacheTrainsComparably) {
  // The §VI future-work memory bound: an LRU-capped cache must still train
  // to a reasonable model (evicted keys just restart their warm-up).
  const Dataset data = MediumDataset();
  const KgIndex train_index(data.train);
  auto run = [&](size_t cap) {
    KgeModel model(data.num_entities(), data.num_relations(), 16,
                   MakeScoringFunction("transe"));
    Rng rng(4);
    model.InitXavier(&rng);
    NSCachingConfig ns;
    ns.n1 = 10;
    ns.n2 = 10;
    ns.max_cache_entries = cap;
    NSCachingSampler sampler(&model, &train_index, ns);
    TrainConfig config;
    config.dim = 16;
    config.learning_rate = 0.005;
    config.margin = 4.0;
    config.seed = 6;
    Trainer trainer(&model, &data.train, &sampler, config);
    for (int e = 0; e < 10; ++e) trainer.RunEpoch();
    const KgIndex filter(std::vector<const TripleStore*>{
        &data.train, &data.valid, &data.test});
    return EvaluateLinkPrediction(model, data.test, filter).mrr();
  };
  const double unbounded = run(0);
  const double capped = run(200);  // Far fewer keys than positives touch.
  EXPECT_GT(capped, 0.05);
  EXPECT_GT(capped, unbounded * 0.5);
}

TEST(EndToEndTest, ExtensionScorersTrainEndToEnd) {
  // TransR / HolE / RESCAL are beyond the paper's Table III set but must
  // ride the same pipeline.
  const Dataset data = MediumDataset();
  for (const std::string scorer : {"transr", "hole", "rescal"}) {
    PipelineConfig config = BaseConfig(SamplerKind::kNSCaching, scorer);
    config.train.epochs = 6;
    config.train.dim = 8;  // d^2 relation rows stay small.
    const PipelineResult result = RunPipeline(data, config);
    EXPECT_GT(result.test_metrics.mrr(), 0.03) << scorer;
  }
}

TEST(EndToEndTest, InverseTwinDatasetIsEasierThanClean) {
  // The WN18-vs-WN18RR contrast (Table IV): identical generator except for
  // inverse twins must yield higher test MRR.
  SyntheticKgConfig with_twins;
  with_twins.num_entities = 200;
  with_twins.num_relations = 8;
  with_twins.num_triples = 2000;
  with_twins.inverse_twin_fraction = 1.0;
  with_twins.seed = 500;
  SyntheticKgConfig clean = with_twins;
  clean.inverse_twin_fraction = 0.0;
  clean.seed = 500;

  const Dataset easy = GenerateSyntheticKg(with_twins);
  const Dataset hard = GenerateSyntheticKg(clean);
  PipelineConfig config = BaseConfig(SamplerKind::kBernoulli, "transe");
  config.train.epochs = 10;
  const double easy_mrr = RunPipeline(easy, config).test_metrics.mrr();
  const double hard_mrr = RunPipeline(hard, config).test_metrics.mrr();
  EXPECT_GT(easy_mrr, hard_mrr);
}

}  // namespace
}  // namespace nsc
