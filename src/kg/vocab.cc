#include "kg/vocab.h"

#include "util/logging.h"

namespace nsc {

int32_t Vocab::GetOrAdd(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(names_.size());
  CHECK_LE(static_cast<int64_t>(id), kMaxId) << "vocabulary overflow";
  index_.emplace(name, id);
  names_.push_back(name);
  return id;
}

int32_t Vocab::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const std::string& Vocab::Name(int32_t id) const {
  CHECK_GE(id, 0);
  CHECK_LT(id, size());
  return names_[id];
}

}  // namespace nsc
