// Bidirectional string <-> dense-id mapping for entities and relations.
#ifndef NSCACHING_KG_VOCAB_H_
#define NSCACHING_KG_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kg/types.h"
#include "util/status.h"

namespace nsc {

/// Assigns dense int32 ids to names in first-seen order.
class Vocab {
 public:
  /// Returns the id of `name`, inserting it if new.
  int32_t GetOrAdd(const std::string& name);

  /// Returns the id of `name` or -1 when absent.
  int32_t Find(const std::string& name) const;

  /// Returns the name of `id`; id must be valid.
  const std::string& Name(int32_t id) const;

  int32_t size() const { return static_cast<int32_t>(names_.size()); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace nsc

#endif  // NSCACHING_KG_VOCAB_H_
