#include "kg/dataset.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/tsv.h"

namespace nsc {

void Dataset::FinalizeUniverse() {
  train.SetUniverse(entities.size(), relations.size());
  valid.SetUniverse(entities.size(), relations.size());
  test.SetUniverse(entities.size(), relations.size());
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name;
  stats.num_entities = dataset.num_entities();
  stats.num_relations = dataset.num_relations();
  stats.num_train = dataset.train.size();
  stats.num_valid = dataset.valid.size();
  stats.num_test = dataset.test.size();
  return stats;
}

namespace {

Status ParseSplit(const std::string& path, Dataset* dataset,
                  std::vector<Triple>* out) {
  auto rows = ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  for (const auto& row : rows.value()) {
    if (row.size() != 3) {
      return Status::InvalidArgument(path + ": expected 3 fields, got " +
                                     std::to_string(row.size()));
    }
    Triple x;
    x.h = dataset->entities.GetOrAdd(row[0]);
    x.r = dataset->relations.GetOrAdd(row[1]);
    x.t = dataset->entities.GetOrAdd(row[2]);
    out->push_back(x);
  }
  return Status::OK();
}

}  // namespace

StatusOr<Dataset> LoadDataset(const std::string& dir, const std::string& name) {
  Dataset dataset;
  dataset.name = name;

  std::vector<Triple> train_raw, valid_raw, test_raw;
  NSC_RETURN_IF_ERROR(ParseSplit(dir + "/train.txt", &dataset, &train_raw));
  NSC_RETURN_IF_ERROR(ParseSplit(dir + "/valid.txt", &dataset, &valid_raw));
  NSC_RETURN_IF_ERROR(ParseSplit(dir + "/test.txt", &dataset, &test_raw));

  dataset.FinalizeUniverse();

  // Entities/relations that appear in train; eval triples outside this set
  // are dropped per the standard protocol.
  std::unordered_set<int32_t> train_entities, train_relations;
  for (const Triple& x : train_raw) {
    train_entities.insert(x.h);
    train_entities.insert(x.t);
    train_relations.insert(x.r);
    dataset.train.Add(x);
  }
  auto keep = [&](const Triple& x) {
    return train_entities.count(x.h) > 0 && train_entities.count(x.t) > 0 &&
           train_relations.count(x.r) > 0;
  };
  size_t dropped = 0;
  for (const Triple& x : valid_raw) {
    if (keep(x)) {
      dataset.valid.Add(x);
    } else {
      ++dropped;
    }
  }
  for (const Triple& x : test_raw) {
    if (keep(x)) {
      dataset.test.Add(x);
    } else {
      ++dropped;
    }
  }
  if (dropped > 0) {
    LOG_WARNING << name << ": dropped " << dropped
                << " eval triples with entities/relations unseen in train";
  }
  return dataset;
}

namespace {

std::vector<std::vector<std::string>> ToRows(const Dataset& dataset,
                                             const TripleStore& split) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(split.size());
  for (const Triple& x : split) {
    rows.push_back({dataset.entities.Name(x.h), dataset.relations.Name(x.r),
                    dataset.entities.Name(x.t)});
  }
  return rows;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  NSC_RETURN_IF_ERROR(
      WriteTsvFile(dir + "/train.txt", ToRows(dataset, dataset.train)));
  NSC_RETURN_IF_ERROR(
      WriteTsvFile(dir + "/valid.txt", ToRows(dataset, dataset.valid)));
  NSC_RETURN_IF_ERROR(
      WriteTsvFile(dir + "/test.txt", ToRows(dataset, dataset.test)));
  return Status::OK();
}

}  // namespace nsc
