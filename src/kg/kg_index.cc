#include "kg/kg_index.h"

#include "util/logging.h"

namespace nsc {

KgIndex::KgIndex(const std::vector<const TripleStore*>& stores) {
  CHECK(!stores.empty());
  num_entities_ = stores[0]->num_entities();
  num_relations_ = stores[0]->num_relations();

  // Distinct (h, r) and (r, t) pair counts per relation, for tph/hpt.
  std::vector<int64_t> hr_pairs(num_relations_, 0);
  std::vector<int64_t> rt_pairs(num_relations_, 0);
  std::vector<int64_t> triples_per_relation(num_relations_, 0);
  entity_degrees_.assign(num_entities_, 0);

  for (const TripleStore* store : stores) {
    CHECK_EQ(store->num_entities(), num_entities_);
    CHECK_EQ(store->num_relations(), num_relations_);
    for (const Triple& x : *store) {
      if (!membership_.insert(PackTriple(x)).second) continue;  // Dedup.
      auto& tails = tails_by_hr_[PackHr(x.h, x.r)];
      if (tails.empty()) ++hr_pairs[x.r];
      tails.push_back(x.t);
      auto& heads = heads_by_rt_[PackRt(x.r, x.t)];
      if (heads.empty()) ++rt_pairs[x.r];
      heads.push_back(x.h);
      ++triples_per_relation[x.r];
      ++entity_degrees_[x.h];
      ++entity_degrees_[x.t];
    }
  }

  tph_.assign(num_relations_, 0.0);
  hpt_.assign(num_relations_, 0.0);
  for (RelationId r = 0; r < num_relations_; ++r) {
    if (hr_pairs[r] > 0) {
      tph_[r] = static_cast<double>(triples_per_relation[r]) /
                static_cast<double>(hr_pairs[r]);
    }
    if (rt_pairs[r] > 0) {
      hpt_[r] = static_cast<double>(triples_per_relation[r]) /
                static_cast<double>(rt_pairs[r]);
    }
  }
}

const std::vector<EntityId>& KgIndex::TailsOf(EntityId h, RelationId r) const {
  auto it = tails_by_hr_.find(PackHr(h, r));
  return it == tails_by_hr_.end() ? empty_ : it->second;
}

const std::vector<EntityId>& KgIndex::HeadsOf(RelationId r, EntityId t) const {
  auto it = heads_by_rt_.find(PackRt(r, t));
  return it == heads_by_rt_.end() ? empty_ : it->second;
}

double KgIndex::TailsPerHead(RelationId r) const {
  CHECK_GE(r, 0);
  CHECK_LT(r, num_relations_);
  return tph_[r];
}

double KgIndex::HeadsPerTail(RelationId r) const {
  CHECK_GE(r, 0);
  CHECK_LT(r, num_relations_);
  return hpt_[r];
}

double KgIndex::HeadReplaceProbability(RelationId r) const {
  const double tph = TailsPerHead(r);
  const double hpt = HeadsPerTail(r);
  const double denom = tph + hpt;
  if (denom <= 0.0) return 0.5;
  return tph / denom;
}

}  // namespace nsc
