#include "kg/triple_store.h"

#include "util/logging.h"

namespace nsc {

void TripleStore::Add(const Triple& x) {
  CHECK_GE(x.h, 0);
  CHECK_LT(x.h, num_entities_);
  CHECK_GE(x.t, 0);
  CHECK_LT(x.t, num_entities_);
  CHECK_GE(x.r, 0);
  CHECK_LT(x.r, num_relations_);
  triples_.push_back(x);
}

}  // namespace nsc
