// Synthetic knowledge-graph generation.
//
// The paper evaluates on WN18, WN18RR, FB15K and FB15K237, which are
// external downloads unavailable in this offline environment. This module
// substitutes structurally faithful synthetic graphs produced by a latent
// "world model": ground-truth entity and relation vectors are sampled in a
// small latent space, entities are grouped into type clusters, and triples
// are emitted by softmax-sampling tails whose latent vector is close to
// z_h + z_r (a TransE-style regularity). Because the data has learnable
// low-dimensional structure, embedding models trained on it behave like
// they do on real KGs: scores of observed triples separate from the bulk,
// the negative-score distribution becomes highly skew, and relation
// cardinalities (1-N / N-1 / N-N) matter for Bernoulli sampling.
//
// The WN18/FB15K presets additionally emit *inverse twin* relations
// (r'(t, h) for most facts r(h, t)), reproducing the test leakage that
// makes those datasets easy; the RR/237 presets omit twins, like their
// de-duplicated real counterparts.
#ifndef NSCACHING_KG_SYNTHETIC_H_
#define NSCACHING_KG_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "kg/dataset.h"

namespace nsc {

/// Parameters of the latent-space generator.
struct SyntheticKgConfig {
  std::string name = "synthetic";
  int num_entities = 2000;
  int num_relations = 12;
  /// Total facts to emit before splitting (train+valid+test after dedup).
  int num_triples = 12000;
  /// Fraction of emitted triples reserved for the validation / test splits.
  double valid_fraction = 0.04;
  double test_fraction = 0.04;

  /// Latent world-model geometry.
  int latent_dim = 16;
  int num_clusters = 10;
  double cluster_spread = 0.45;   // Within-cluster entity noise.
  double relation_scale = 1.0;    // Norm scale of relation vectors.
  double softmax_beta = 3.0;      // Sharpness of stochastic tail selection.
  int tail_candidate_pool = 64;   // Candidates scored per emitted triple.
  /// When true (default), the tails of each touched (h, r) pair are the
  /// *deterministic* nearest neighbours over the whole target cluster, so
  /// the emitted KG is complete with respect to its own world model: a
  /// non-emitted corruption is genuinely false, not merely unsampled.
  /// This matters for hard-negative methods — with stochastic emission,
  /// high-scoring "negatives" are often latent-true triples the sampler
  /// punishes the model for ranking well. Set false for the noisier
  /// stochastic emission.
  bool complete_neighborhoods = true;

  /// Relation cardinality mix (fractions; remainder is 1-to-1).
  double frac_one_to_many = 0.3;
  double frac_many_to_one = 0.3;
  double frac_many_to_many = 0.2;
  double high_cardinality_mean = 4.0;  // Mean fan-out of the "many" side.

  /// Fraction of relations that get an inverse twin relation; twins copy
  /// ~90% of the base relation's facts reversed (WN18/FB15K-style leakage).
  double inverse_twin_fraction = 0.0;

  uint64_t seed = 42;
};

/// Generates a dataset from the latent world model. Deterministic in
/// `config.seed`. Guarantees: no duplicate triples across all splits, and
/// every entity/relation in valid/test also occurs in train.
Dataset GenerateSyntheticKg(const SyntheticKgConfig& config);

/// Scale factor applied to the preset sizes below; 1.0 reproduces the
/// default benchmark scale (~1/10 of the real datasets).
/// Presets mirror the shape of Table II of the paper.
SyntheticKgConfig SynthWn18Config(double scale = 1.0);
SyntheticKgConfig SynthWn18RrConfig(double scale = 1.0);
SyntheticKgConfig SynthFb15kConfig(double scale = 1.0);
SyntheticKgConfig SynthFb15k237Config(double scale = 1.0);

/// Tiny fully-named "persons & professions" KG used for the Table VI
/// qualitative cache-evolution experiment (substituting FB13): entities
/// are persons, professions, and cities; relations are `profession`,
/// `born_in`, `located_in` and `colleague_of`. Entity names make cache
/// snapshots human-readable.
Dataset GenerateProfessionsKg(int num_persons = 400, int num_cities = 40,
                              uint64_t seed = 7);

}  // namespace nsc

#endif  // NSCACHING_KG_SYNTHETIC_H_
