// Flat, immutable-after-build storage of a triple list plus its vocabulary
// sizes. One TripleStore per split (train/valid/test).
#ifndef NSCACHING_KG_TRIPLE_STORE_H_
#define NSCACHING_KG_TRIPLE_STORE_H_

#include <vector>

#include "kg/types.h"

namespace nsc {

/// An ordered list of triples over a fixed entity/relation universe.
class TripleStore {
 public:
  TripleStore() = default;

  /// Creates a store over |E| = num_entities, |R| = num_relations.
  TripleStore(int32_t num_entities, int32_t num_relations)
      : num_entities_(num_entities), num_relations_(num_relations) {}

  /// Appends a triple; ids must be within the declared universe.
  void Add(const Triple& x);

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }
  const Triple& operator[](size_t i) const { return triples_[i]; }
  const std::vector<Triple>& triples() const { return triples_; }

  int32_t num_entities() const { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }

  /// Widens the universe (used when merging splits with a shared vocab).
  void SetUniverse(int32_t num_entities, int32_t num_relations) {
    num_entities_ = num_entities;
    num_relations_ = num_relations;
  }

  auto begin() const { return triples_.begin(); }
  auto end() const { return triples_.end(); }

 private:
  std::vector<Triple> triples_;
  int32_t num_entities_ = 0;
  int32_t num_relations_ = 0;
};

}  // namespace nsc

#endif  // NSCACHING_KG_TRIPLE_STORE_H_
