// A Dataset bundles the entity/relation vocabularies with the three
// standard splits (train/valid/test) of a link-prediction benchmark, plus
// loading from / saving to the on-disk layout used by the WN18 and FB15K
// releases (train.txt / valid.txt / test.txt, tab-separated h r t).
#ifndef NSCACHING_KG_DATASET_H_
#define NSCACHING_KG_DATASET_H_

#include <string>

#include "kg/triple_store.h"
#include "kg/vocab.h"
#include "util/status.h"

namespace nsc {

/// A complete link-prediction benchmark dataset.
struct Dataset {
  std::string name;
  Vocab entities;
  Vocab relations;
  TripleStore train;
  TripleStore valid;
  TripleStore test;

  int32_t num_entities() const { return entities.size(); }
  int32_t num_relations() const { return relations.size(); }

  /// Re-stamps the universe sizes of all splits from the vocabularies.
  /// Must be called after the vocabularies stop growing.
  void FinalizeUniverse();
};

/// Summary statistics in the shape of the paper's Table II.
struct DatasetStats {
  std::string name;
  int32_t num_entities = 0;
  int32_t num_relations = 0;
  size_t num_train = 0;
  size_t num_valid = 0;
  size_t num_test = 0;
};

/// Computes Table II-style statistics.
DatasetStats ComputeStats(const Dataset& dataset);

/// Loads a dataset from `dir`/{train,valid,test}.txt. Each line is
/// "head<TAB>relation<TAB>tail". Triples in valid/test whose entity or
/// relation never appears in train are dropped (the standard protocol:
/// embeddings for unseen ids are untrainable).
StatusOr<Dataset> LoadDataset(const std::string& dir, const std::string& name);

/// Writes `dataset` back out in the same three-file layout.
Status SaveDataset(const Dataset& dataset, const std::string& dir);

}  // namespace nsc

#endif  // NSCACHING_KG_DATASET_H_
