// Hash indexes over a set of triples:
//   - membership test Contains(h, r, t) — false-negative filtering and the
//     legacy per-candidate evaluator need it;
//   - adjacency lists (h, r) -> tails and (r, t) -> heads — deduplicated
//     at build time; the batched 1-vs-all evaluator masks exactly these
//     per-query lists to realise the "filtered" setting in O(|list|)
//     corrections instead of O(|E|) hash probes;
//   - per-relation cardinality statistics tph ("tails per head") and hpt
//     ("heads per tail") — the Bernoulli sampling scheme of TransH [42]
//     corrupts the head with probability tph / (tph + hpt).
#ifndef NSCACHING_KG_KG_INDEX_H_
#define NSCACHING_KG_KG_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"

namespace nsc {

/// Immutable index built from one or more triple stores.
class KgIndex {
 public:
  /// Builds an index over the given stores (e.g. train only, or
  /// train+valid+test for the filtered evaluation protocol). All stores
  /// must share the same universe; the first defines it.
  explicit KgIndex(const std::vector<const TripleStore*>& stores);

  /// Convenience: index over a single store.
  explicit KgIndex(const TripleStore& store)
      : KgIndex(std::vector<const TripleStore*>{&store}) {}

  /// True if (h, r, t) is present.
  bool Contains(const Triple& x) const {
    return membership_.count(PackTriple(x)) > 0;
  }

  /// Tails t with (h, r, t) present; empty vector when none.
  const std::vector<EntityId>& TailsOf(EntityId h, RelationId r) const;

  /// Heads h with (h, r, t) present; empty vector when none.
  const std::vector<EntityId>& HeadsOf(RelationId r, EntityId t) const;

  /// Average number of distinct tails per (head, relation) pair of `r`.
  double TailsPerHead(RelationId r) const;

  /// Average number of distinct heads per (relation, tail) pair of `r`.
  double HeadsPerTail(RelationId r) const;

  /// Bernoulli head-replacement probability tph/(tph+hpt) for relation r
  /// (falls back to 0.5 for relations unseen at build time).
  double HeadReplaceProbability(RelationId r) const;

  /// Number of occurrences of each entity (as head or tail).
  const std::vector<int64_t>& entity_degrees() const { return entity_degrees_; }

  int32_t num_entities() const { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }
  size_t num_triples() const { return membership_.size(); }

 private:
  int32_t num_entities_ = 0;
  int32_t num_relations_ = 0;
  std::unordered_set<uint64_t> membership_;
  std::unordered_map<uint64_t, std::vector<EntityId>> tails_by_hr_;
  std::unordered_map<uint64_t, std::vector<EntityId>> heads_by_rt_;
  std::vector<double> tph_;  // Indexed by relation.
  std::vector<double> hpt_;
  std::vector<int64_t> entity_degrees_;
  std::vector<EntityId> empty_;
};

}  // namespace nsc

#endif  // NSCACHING_KG_KG_INDEX_H_
