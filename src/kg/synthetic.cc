#include "kg/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/types.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/rng.h"

namespace nsc {

namespace {

/// Relation cardinality archetypes.
enum class Cardinality { kOneToOne, kOneToMany, kManyToOne, kManyToMany };

struct LatentRelation {
  std::vector<float> z;          // Latent translation vector.
  Cardinality cardinality = Cardinality::kOneToOne;
  int source_cluster = 0;        // Head type.
  int target_cluster = 0;        // Tail type.
  int twin_of = -1;              // >= 0: this id mirrors another relation.
};

double SquaredDistance(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s;
}

/// Samples `k` distinct tails for head `h` under relation `rel`: draws a
/// candidate pool from the target cluster and Gumbel-top-k samples with
/// logits -beta * ||z_h + z_r - z_t||^2.
std::vector<int> SampleNeighbors(const std::vector<std::vector<float>>& z_entity,
                                 const std::vector<float>& z_anchor,
                                 const std::vector<int>& pool, int pool_size,
                                 double beta, int k, Rng* rng) {
  const int take = std::min<int>(pool_size, static_cast<int>(pool.size()));
  if (take == 0) return {};
  std::vector<int> candidates(take);
  for (int i = 0; i < take; ++i) {
    candidates[i] = pool[rng->UniformInt(static_cast<uint64_t>(pool.size()))];
  }
  std::vector<double> logits(take);
  for (int i = 0; i < take; ++i) {
    logits[i] = -beta * SquaredDistance(z_entity[candidates[i]], z_anchor);
  }
  const int kk = std::min(k, take);
  std::vector<int> picked = GumbelTopK(logits, kk, rng);
  std::vector<int> out;
  out.reserve(kk);
  for (int idx : picked) out.push_back(candidates[idx]);
  return out;
}

/// Deterministic k nearest entities (by latent distance to `z_anchor`)
/// within `pool`. Used when complete_neighborhoods is set: every touched
/// (h, r) pair emits exactly its world-model-true tails.
std::vector<int> TopNeighbors(const std::vector<std::vector<float>>& z_entity,
                              const std::vector<float>& z_anchor,
                              const std::vector<int>& pool, int k) {
  std::vector<std::pair<double, int>> keyed;
  keyed.reserve(pool.size());
  for (int e : pool) {
    keyed.emplace_back(SquaredDistance(z_entity[e], z_anchor), e);
  }
  const int kk = std::min<int>(k, static_cast<int>(keyed.size()));
  std::partial_sort(keyed.begin(), keyed.begin() + kk, keyed.end());
  std::vector<int> out(kk);
  for (int i = 0; i < kk; ++i) out[i] = keyed[i].second;
  return out;
}

std::vector<float> AddVec(const std::vector<float>& a,
                          const std::vector<float>& b, float sign_b) {
  std::vector<float> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + sign_b * b[i];
  return out;
}

}  // namespace

Dataset GenerateSyntheticKg(const SyntheticKgConfig& config) {
  CHECK_GT(config.num_entities, 0);
  CHECK_GT(config.num_relations, 0);
  CHECK_GT(config.num_triples, 0);
  Rng rng(config.seed);

  // --- Latent world model -------------------------------------------------
  const int d = config.latent_dim;
  std::vector<std::vector<float>> centers(config.num_clusters,
                                          std::vector<float>(d));
  for (auto& c : centers) {
    for (float& v : c) v = static_cast<float>(rng.Gaussian(0.0, 1.2));
  }

  std::vector<std::vector<float>> z_entity(config.num_entities,
                                           std::vector<float>(d));
  std::vector<int> entity_cluster(config.num_entities);
  std::vector<std::vector<int>> cluster_members(config.num_clusters);
  for (int e = 0; e < config.num_entities; ++e) {
    const int c = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(config.num_clusters)));
    entity_cluster[e] = c;
    cluster_members[c].push_back(e);
    for (int i = 0; i < d; ++i) {
      z_entity[e][i] = centers[c][i] +
                       static_cast<float>(rng.Gaussian(0.0, config.cluster_spread));
    }
  }
  // Guard against empty clusters (possible for tiny configs).
  for (int c = 0; c < config.num_clusters; ++c) {
    if (cluster_members[c].empty()) {
      const int e = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(config.num_entities)));
      cluster_members[c].push_back(e);
    }
  }

  // --- Relations: cardinality archetypes and inverse twins ----------------
  std::vector<LatentRelation> relations(config.num_relations);
  std::vector<int> base_relations;
  int next = 0;
  while (next < config.num_relations) {
    LatentRelation& rel = relations[next];
    rel.z.resize(d);
    for (float& v : rel.z) {
      v = static_cast<float>(
          rng.Gaussian(0.0, config.relation_scale / std::sqrt(double(d))));
    }
    const double u = rng.Uniform();
    if (u < config.frac_one_to_many) {
      rel.cardinality = Cardinality::kOneToMany;
    } else if (u < config.frac_one_to_many + config.frac_many_to_one) {
      rel.cardinality = Cardinality::kManyToOne;
    } else if (u < config.frac_one_to_many + config.frac_many_to_one +
                       config.frac_many_to_many) {
      rel.cardinality = Cardinality::kManyToMany;
    } else {
      rel.cardinality = Cardinality::kOneToOne;
    }
    rel.source_cluster = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(config.num_clusters)));
    rel.target_cluster = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(config.num_clusters)));
    base_relations.push_back(next);
    const int base_id = next;
    ++next;
    if (next < config.num_relations &&
        rng.Bernoulli(config.inverse_twin_fraction)) {
      relations[next].twin_of = base_id;
      ++next;
    }
  }

  // --- Emit facts ----------------------------------------------------------
  // Zipf-ish quota per base relation.
  std::vector<double> weights(base_relations.size());
  for (size_t j = 0; j < weights.size(); ++j) {
    weights[j] = 1.0 / std::pow(static_cast<double>(j + 1), 0.6);
  }
  double wsum = 0.0;
  for (double w : weights) wsum += w;

  std::unordered_set<uint64_t> seen;
  std::vector<Triple> facts;
  facts.reserve(config.num_triples + config.num_triples / 2);

  auto emit = [&](EntityId h, RelationId r, EntityId t) {
    if (h == t) return false;
    Triple x{h, r, t};
    if (!seen.insert(PackTriple(x)).second) return false;
    facts.push_back(x);
    return true;
  };

  for (size_t j = 0; j < base_relations.size(); ++j) {
    const int rid = base_relations[j];
    const LatentRelation& rel = relations[rid];
    const int quota = std::max(
        4, static_cast<int>(config.num_triples * weights[j] / wsum));
    const std::vector<int>& sources = cluster_members[rel.source_cluster];
    const std::vector<int>& targets = cluster_members[rel.target_cluster];

    int emitted = 0;
    int guard = quota * 8;
    while (emitted < quota && guard-- > 0) {
      int fanout = 1;
      switch (rel.cardinality) {
        case Cardinality::kOneToOne:
          fanout = 1;
          break;
        case Cardinality::kOneToMany:
        case Cardinality::kManyToOne:
          fanout = 1 + static_cast<int>(rng.UniformInt(
                           static_cast<uint64_t>(config.high_cardinality_mean * 2)));
          break;
        case Cardinality::kManyToMany:
          fanout = 1 + static_cast<int>(rng.UniformInt(3));
          break;
      }
      auto neighbors = [&](const std::vector<float>& anchor,
                           const std::vector<int>& pool, int k) {
        if (config.complete_neighborhoods) {
          return TopNeighbors(z_entity, anchor, pool, k);
        }
        return SampleNeighbors(z_entity, anchor, pool,
                               config.tail_candidate_pool,
                               config.softmax_beta, k, &rng);
      };
      if (rel.cardinality == Cardinality::kManyToOne) {
        // Fix a tail, attach several heads near z_t - z_r.
        const int t = targets[rng.UniformInt(static_cast<uint64_t>(targets.size()))];
        const auto anchor = AddVec(z_entity[t], rel.z, -1.0f);
        for (int h : neighbors(anchor, sources, fanout)) {
          emitted += emit(h, rid, t) ? 1 : 0;
        }
      } else {
        // Fix a head, attach tails near z_h + z_r.
        const int h = sources[rng.UniformInt(static_cast<uint64_t>(sources.size()))];
        const auto anchor = AddVec(z_entity[h], rel.z, +1.0f);
        for (int t : neighbors(anchor, targets, fanout)) {
          emitted += emit(h, rid, t) ? 1 : 0;
        }
      }
    }
  }

  // Inverse twins mirror ~90% of their base relation's facts.
  const size_t num_base_facts = facts.size();
  for (int rid = 0; rid < config.num_relations; ++rid) {
    const int base = relations[rid].twin_of;
    if (base < 0) continue;
    for (size_t i = 0; i < num_base_facts; ++i) {
      const Triple& x = facts[i];
      if (x.r != base) continue;
      if (rng.Bernoulli(0.9)) emit(x.t, rid, x.h);
    }
  }

  // --- Split ----------------------------------------------------------------
  rng.Shuffle(&facts);
  const size_t total = facts.size();
  size_t want_test = static_cast<size_t>(config.test_fraction * total);
  size_t want_valid = static_cast<size_t>(config.valid_fraction * total);

  // Move a triple to an eval split only if each id still occurs elsewhere,
  // so train covers every entity/relation of valid/test.
  std::vector<int> entity_count(config.num_entities, 0);
  std::vector<int> relation_count(config.num_relations, 0);
  for (const Triple& x : facts) {
    ++entity_count[x.h];
    ++entity_count[x.t];
    ++relation_count[x.r];
  }

  Dataset dataset;
  dataset.name = config.name;
  for (int e = 0; e < config.num_entities; ++e) {
    dataset.entities.GetOrAdd("e" + std::to_string(e));
  }
  for (int r = 0; r < config.num_relations; ++r) {
    std::string name = "r" + std::to_string(r);
    if (relations[r].twin_of >= 0) {
      name += "_inv" + std::to_string(relations[r].twin_of);
    }
    dataset.relations.GetOrAdd(name);
  }
  dataset.FinalizeUniverse();

  std::vector<Triple> train_list, valid_list, test_list;
  for (const Triple& x : facts) {
    const bool removable = entity_count[x.h] > 1 && entity_count[x.t] > 1 &&
                           relation_count[x.r] > 1;
    if (removable && test_list.size() < want_test) {
      test_list.push_back(x);
      --entity_count[x.h];
      --entity_count[x.t];
      --relation_count[x.r];
    } else if (removable && valid_list.size() < want_valid) {
      valid_list.push_back(x);
      --entity_count[x.h];
      --entity_count[x.t];
      --relation_count[x.r];
    } else {
      train_list.push_back(x);
    }
  }
  for (const Triple& x : train_list) dataset.train.Add(x);
  for (const Triple& x : valid_list) dataset.valid.Add(x);
  for (const Triple& x : test_list) dataset.test.Add(x);
  return dataset;
}

SyntheticKgConfig SynthWn18Config(double scale) {
  // WN18: 40,943 entities, 18 relations, 141k train; sparse, hierarchical,
  // inverse-duplicate relations make it easy. Scaled ~1/12.
  SyntheticKgConfig c;
  c.name = "synth-WN18";
  c.num_entities = static_cast<int>(3400 * scale);
  c.num_relations = 18;
  c.num_triples = static_cast<int>(13000 * scale);
  c.num_clusters = 12;
  c.inverse_twin_fraction = 0.8;
  c.frac_one_to_many = 0.35;
  c.frac_many_to_one = 0.35;
  c.frac_many_to_many = 0.1;
  c.seed = 181;
  return c;
}

SyntheticKgConfig SynthWn18RrConfig(double scale) {
  // WN18RR: near-duplicate/inverse relations removed; 11 relations; harder.
  SyntheticKgConfig c;
  c.name = "synth-WN18RR";
  c.num_entities = static_cast<int>(3400 * scale);
  c.num_relations = 11;
  c.num_triples = static_cast<int>(9000 * scale);
  c.num_clusters = 12;
  c.inverse_twin_fraction = 0.0;
  c.cluster_spread = 0.6;  // Blurrier types: harder dataset.
  c.frac_one_to_many = 0.35;
  c.frac_many_to_one = 0.35;
  c.frac_many_to_many = 0.1;
  c.seed = 1811;
  return c;
}

SyntheticKgConfig SynthFb15kConfig(double scale) {
  // FB15K: 14,951 entities, 1,345 relations, dense general facts with
  // inverse duplicates. Scaled ~1/10 entities, relations trimmed to keep
  // per-relation support reasonable at this scale.
  SyntheticKgConfig c;
  c.name = "synth-FB15K";
  c.num_entities = static_cast<int>(1500 * scale);
  c.num_relations = 130;
  c.num_triples = static_cast<int>(40000 * scale);
  c.num_clusters = 20;
  c.inverse_twin_fraction = 0.7;
  c.frac_one_to_many = 0.3;
  c.frac_many_to_one = 0.3;
  c.frac_many_to_many = 0.3;
  c.high_cardinality_mean = 5.0;
  c.valid_fraction = 0.08;
  c.test_fraction = 0.10;
  c.seed = 15000;
  return c;
}

SyntheticKgConfig SynthFb15k237Config(double scale) {
  // FB15K237: inverse/near-duplicate relations removed; 237 relations.
  SyntheticKgConfig c;
  c.name = "synth-FB15K237";
  c.num_entities = static_cast<int>(1450 * scale);
  c.num_relations = 80;
  c.num_triples = static_cast<int>(24000 * scale);
  c.num_clusters = 20;
  c.inverse_twin_fraction = 0.0;
  c.cluster_spread = 0.6;
  c.frac_one_to_many = 0.3;
  c.frac_many_to_one = 0.3;
  c.frac_many_to_many = 0.3;
  c.high_cardinality_mean = 5.0;
  c.valid_fraction = 0.06;
  c.test_fraction = 0.07;
  c.seed = 237;
  return c;
}

Dataset GenerateProfessionsKg(int num_persons, int num_cities, uint64_t seed) {
  Rng rng(seed);

  static const char* kProfessions[] = {
      "actor",          "physician",  "artist",     "accountant",
      "attorney_at_law", "coach",      "aviator",    "sex_worker",
      "teacher",        "singer",     "politician", "writer",
      "chemist",        "engineer",   "nurse",      "farmer",
      "judge",          "journalist", "soldier",    "painter",
      "architect",      "historian",  "economist",  "athlete"};
  static const char* kFirst[] = {"allen",  "jose",   "hans",   "frank",
                                 "laura",  "john",   "raich",  "mark",
                                 "maria",  "elena",  "victor", "nina",
                                 "oscar",  "petra",  "samuel", "ruth",
                                 "tomas",  "iris",   "felix",  "anna"};
  static const char* kLast[] = {"clarke", "gola",    "zinsser", "pais",
                                "marx",   "cough",   "carter",  "shivas",
                                "lilly",  "ortega",  "weber",   "novak",
                                "keller", "dvorak",  "moore",   "sarti",
                                "blanc",  "herrera", "lindt",   "okafor"};
  static const char* kCityFlavor[] = {"ostrava", "como", "cavan", "brno",
                                      "leeds",   "turku", "gdansk", "liege"};

  const int num_professions = sizeof(kProfessions) / sizeof(kProfessions[0]);

  Dataset dataset;
  dataset.name = "synth-professions";
  std::vector<EntityId> profession_ids, city_ids, person_ids;
  for (int i = 0; i < num_professions; ++i) {
    profession_ids.push_back(dataset.entities.GetOrAdd(kProfessions[i]));
  }
  for (int i = 0; i < num_cities; ++i) {
    std::string name =
        i < 8 ? std::string(kCityFlavor[i]) : "city_" + std::to_string(i);
    city_ids.push_back(dataset.entities.GetOrAdd(name));
  }
  for (int i = 0; i < num_persons; ++i) {
    std::string name = std::string(kFirst[rng.UniformInt(uint64_t(20))]) + "_" +
                       kLast[rng.UniformInt(uint64_t(20))] + "_" +
                       std::to_string(i);
    person_ids.push_back(dataset.entities.GetOrAdd(name));
  }

  const RelationId r_profession = dataset.relations.GetOrAdd("profession");
  const RelationId r_born_in = dataset.relations.GetOrAdd("born_in");
  const RelationId r_located_in = dataset.relations.GetOrAdd("located_in");
  const RelationId r_colleague = dataset.relations.GetOrAdd("colleague_of");
  dataset.FinalizeUniverse();

  std::unordered_set<uint64_t> seen;
  std::vector<Triple> facts;
  auto emit = [&](EntityId h, RelationId r, EntityId t) {
    if (h == t) return;
    Triple x{h, r, t};
    if (seen.insert(PackTriple(x)).second) facts.push_back(x);
  };

  // Persons cluster by profession; colleagues mostly share a profession.
  std::vector<int> person_profession(num_persons);
  std::vector<std::vector<EntityId>> by_profession(num_professions);
  for (int i = 0; i < num_persons; ++i) {
    const int p = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(num_professions)));
    person_profession[i] = p;
    by_profession[p].push_back(person_ids[i]);
    emit(person_ids[i], r_profession, profession_ids[p]);
    if (rng.Bernoulli(0.15)) {  // Some persons have a second profession.
      const int p2 = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(num_professions)));
      emit(person_ids[i], r_profession, profession_ids[p2]);
    }
    emit(person_ids[i], r_born_in,
         city_ids[rng.UniformInt(static_cast<uint64_t>(num_cities))]);
  }
  for (int i = 0; i < num_cities; ++i) {
    emit(city_ids[i], r_located_in,
         city_ids[rng.UniformInt(static_cast<uint64_t>(num_cities))]);
  }
  for (int i = 0; i < num_persons; ++i) {
    const auto& peers = by_profession[person_profession[i]];
    for (int k = 0; k < 3 && peers.size() > 1; ++k) {
      emit(person_ids[i], r_colleague,
           peers[rng.UniformInt(static_cast<uint64_t>(peers.size()))]);
    }
  }

  rng.Shuffle(&facts);
  const size_t n_eval = facts.size() / 25;
  std::vector<int> entity_count(dataset.num_entities(), 0);
  for (const Triple& x : facts) {
    ++entity_count[x.h];
    ++entity_count[x.t];
  }
  size_t assigned_valid = 0, assigned_test = 0;
  for (const Triple& x : facts) {
    const bool removable = entity_count[x.h] > 1 && entity_count[x.t] > 1;
    if (removable && assigned_test < n_eval) {
      dataset.test.Add(x);
      ++assigned_test;
      --entity_count[x.h];
      --entity_count[x.t];
    } else if (removable && assigned_valid < n_eval) {
      dataset.valid.Add(x);
      ++assigned_valid;
      --entity_count[x.h];
      --entity_count[x.t];
    } else {
      dataset.train.Add(x);
    }
  }
  return dataset;
}

}  // namespace nsc
