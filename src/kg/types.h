// Core identifier types for knowledge-graph triples and the packed 64-bit
// keys used by hash indexes and the NSCaching head/tail caches.
//
// A triple (h, r, t) states that head entity h is connected to tail entity
// t by relation r, e.g. (Shakespeare, isAuthorOf, Hamlet).
#ifndef NSCACHING_KG_TYPES_H_
#define NSCACHING_KG_TYPES_H_

#include <cstdint>
#include <functional>

#include "util/logging.h"

namespace nsc {

/// Dense entity identifier, assigned by Vocab in insertion order.
using EntityId = int32_t;
/// Dense relation identifier.
using RelationId = int32_t;

/// Ids are packed into 64-bit keys with 21 bits per component, which caps
/// entity/relation vocabulary sizes at 2^21 (~2.09M) — enough for every
/// dataset in the paper (largest: WN18RR with 93,003 entities).
inline constexpr int kIdBits = 21;
inline constexpr int64_t kMaxId = (1LL << kIdBits) - 1;

/// One fact in the knowledge graph.
struct Triple {
  EntityId h = 0;
  RelationId r = 0;
  EntityId t = 0;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.h == b.h && a.r == b.r && a.t == b.t;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.h != b.h) return a.h < b.h;
    if (a.r != b.r) return a.r < b.r;
    return a.t < b.t;
  }
};

/// Packs a full triple into one 64-bit key. All ids must fit in kIdBits.
inline uint64_t PackTriple(const Triple& x) {
  CHECK_GE(x.h, 0);
  CHECK_LE(static_cast<int64_t>(x.h), kMaxId);
  CHECK_GE(x.r, 0);
  CHECK_LE(static_cast<int64_t>(x.r), kMaxId);
  CHECK_GE(x.t, 0);
  CHECK_LE(static_cast<int64_t>(x.t), kMaxId);
  return (static_cast<uint64_t>(x.h) << (2 * kIdBits)) |
         (static_cast<uint64_t>(x.r) << kIdBits) | static_cast<uint64_t>(x.t);
}

/// Inverse of PackTriple.
inline Triple UnpackTriple(uint64_t key) {
  Triple x;
  x.t = static_cast<EntityId>(key & kMaxId);
  x.r = static_cast<RelationId>((key >> kIdBits) & kMaxId);
  x.h = static_cast<EntityId>(key >> (2 * kIdBits));
  return x;
}

/// Packs an (h, r) pair — the key of the *tail* cache T in the paper
/// (candidates t̄ for corrupting the tail of triples that share (h, r)).
inline uint64_t PackHr(EntityId h, RelationId r) {
  return (static_cast<uint64_t>(h) << kIdBits) | static_cast<uint64_t>(r);
}

/// Packs an (r, t) pair — the key of the *head* cache H.
inline uint64_t PackRt(RelationId r, EntityId t) {
  return (static_cast<uint64_t>(r) << kIdBits) | static_cast<uint64_t>(t);
}

/// Which side of a positive triple was corrupted to form a negative.
enum class CorruptionSide { kHead, kTail };

/// Hash functor so Triple can key unordered containers directly.
struct TripleHash {
  size_t operator()(const Triple& x) const {
    uint64_t k = PackTriple(x);
    // splitmix64 finalizer.
    k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ULL;
    k = (k ^ (k >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(k ^ (k >> 31));
  }
};

}  // namespace nsc

#endif  // NSCACHING_KG_TYPES_H_
