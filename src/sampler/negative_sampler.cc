#include "sampler/negative_sampler.h"

namespace nsc {

Triple Corrupt(const Triple& pos, CorruptionSide side, EntityId entity) {
  Triple out = pos;
  if (side == CorruptionSide::kHead) {
    out.h = entity;
  } else {
    out.t = entity;
  }
  return out;
}

}  // namespace nsc
