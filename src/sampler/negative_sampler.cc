#include "sampler/negative_sampler.h"

namespace nsc {

void NegativeSampler::SampleBatch(const Triple* pos, size_t n, Rng* rng,
                                  NegativeSample* out) {
  for (size_t i = 0; i < n; ++i) out[i] = Sample(pos[i], rng);
}

Triple Corrupt(const Triple& pos, CorruptionSide side, EntityId entity) {
  Triple out = pos;
  if (side == CorruptionSide::kHead) {
    out.h = entity;
  } else {
    out.t = entity;
  }
  return out;
}

}  // namespace nsc
