// KBGAN-style adversarial negative sampler [9], re-implemented from the
// paper's description: a jointly trained *generator* (TransE, as chosen in
// [9]) picks the negative from a small uniformly drawn candidate set
// N eg = {(h̄, r, t̄)}; the target KG embedding model is the discriminator.
// The generator cannot be trained by backprop through the discrete choice,
// so it uses the REINFORCE policy gradient [44]:
//    ∇ E[reward] ≈ (reward − baseline) · ∇ log p(chosen candidate),
// with p = softmax of generator scores over the candidate set and reward =
// the discriminator's score of the chosen negative. A moving-average
// baseline reduces the (notoriously high) variance.
#ifndef NSCACHING_SAMPLER_KBGAN_SAMPLER_H_
#define NSCACHING_SAMPLER_KBGAN_SAMPLER_H_

#include <deque>
#include <memory>
#include <vector>

#include "embedding/model.h"
#include "embedding/optimizer.h"
#include "sampler/negative_sampler.h"

namespace nsc {

/// Hyper-parameters of the GAN sampler.
struct KbganConfig {
  int candidate_set_size = 50;  // |N eg|; the paper matches it to N1.
  int generator_dim = 50;
  double generator_lr = 0.01;
  double baseline_decay = 0.99;  // Moving-average reward baseline.
  uint64_t seed = 7;
};

class KbganSampler : public NegativeSampler {
 public:
  /// `index` (borrowed) provides Bernoulli side statistics.
  KbganSampler(int32_t num_entities, int32_t num_relations,
               const KgIndex* index, const KbganConfig& config);

  std::string name() const override { return "kbgan"; }

  /// Draws the candidate set, softmax-samples one by generator score, and
  /// stashes the choice for the next Feedback() call.
  NegativeSample Sample(const Triple& pos, Rng* rng) override;

  /// REINFORCE update of the generator from the discriminator's score of
  /// the negative it produced.
  void Feedback(const Triple& pos, const NegativeSample& neg,
                double neg_score) override;

  /// Warm-starts the generator by copying a pretrained TransE model of the
  /// same dimension (the paper pretrains the generator with TransE).
  void WarmStartGenerator(const KgeModel& pretrained);

  const KgeModel& generator() const { return *generator_; }
  double baseline() const { return baseline_; }

  /// Extra trainable floats introduced by the generator (Table I's
  /// "parameters" column: KBGAN has 2(|E|+|R|)d vs the baseline's 1×).
  size_t extra_parameters() const { return generator_->num_parameters(); }

 private:
  KbganConfig config_;
  const KgIndex* index_;
  std::unique_ptr<KgeModel> generator_;
  std::unique_ptr<Optimizer> gen_entity_opt_;
  std::unique_ptr<Optimizer> gen_relation_opt_;
  SideChooser side_chooser_;
  double baseline_ = 0.0;
  bool baseline_initialized_ = false;

  // Pending REINFORCE state between Sample() and Feedback(). A FIFO
  // queue, not a single slot: the batched trainer draws a whole
  // mini-batch of samples before delivering the (in-order) feedback, so
  // every draw must keep its policy state until its reward arrives.
  struct Pending {
    Triple pos;
    CorruptionSide side = CorruptionSide::kHead;
    std::vector<EntityId> candidates;
    std::vector<double> probs;
    int chosen = -1;
  };
  std::deque<Pending> pending_;
  bool eviction_warned_ = false;  // One warning per sampler on overflow.
};

}  // namespace nsc

#endif  // NSCACHING_SAMPLER_KBGAN_SAMPLER_H_
