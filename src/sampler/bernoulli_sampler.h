// Bernoulli negative sampling [42] — the paper's baseline scheme: the
// corrupted side is chosen per-relation with probability tph/(tph+hpt)
// for the head, reducing false negatives on 1-N / N-1 / N-N relations;
// the replacing entity is uniform.
#ifndef NSCACHING_SAMPLER_BERNOULLI_SAMPLER_H_
#define NSCACHING_SAMPLER_BERNOULLI_SAMPLER_H_

#include "sampler/negative_sampler.h"

namespace nsc {

class BernoulliSampler : public NegativeSampler {
 public:
  /// `index` (borrowed) supplies the tph/hpt statistics and, when
  /// `filter_known` is set, the known-positive rejection test.
  BernoulliSampler(int32_t num_entities, const KgIndex* index,
                   bool filter_known = true, int max_retries = 10)
      : num_entities_(num_entities),
        index_(index),
        filter_known_(filter_known),
        max_retries_(max_retries),
        side_chooser_(index) {}

  std::string name() const override { return "bernoulli"; }
  NegativeSample Sample(const Triple& pos, Rng* rng) override;
  /// Depends only on (pos, rng) and the immutable KgIndex statistics.
  bool stateless_sampling() const override { return true; }

 private:
  int32_t num_entities_;
  const KgIndex* index_;
  bool filter_known_;
  int max_retries_;
  SideChooser side_chooser_;
};

}  // namespace nsc

#endif  // NSCACHING_SAMPLER_BERNOULLI_SAMPLER_H_
