#include "sampler/uniform_sampler.h"

namespace nsc {

NegativeSample UniformSampler::Sample(const Triple& pos, Rng* rng) {
  NegativeSample out;
  out.side = side_chooser_.Choose(pos, rng);
  for (int attempt = 0;; ++attempt) {
    const EntityId e = static_cast<EntityId>(
        rng->UniformInt(static_cast<uint64_t>(num_entities_)));
    out.triple = Corrupt(pos, out.side, e);
    const bool known =
        index_ != nullptr && attempt < max_retries_ && index_->Contains(out.triple);
    if (!known) break;
  }
  return out;
}

}  // namespace nsc
