#include "sampler/kbgan_sampler.h"

#include <vector>

#include "embedding/scoring_function.h"
#include "util/logging.h"
#include "util/math.h"

namespace nsc {

KbganSampler::KbganSampler(int32_t num_entities, int32_t num_relations,
                           const KgIndex* index, const KbganConfig& config)
    : config_(config), index_(index), side_chooser_(index) {
  generator_ = std::make_unique<KgeModel>(num_entities, num_relations,
                                          config.generator_dim,
                                          MakeScoringFunction("transe"));
  Rng init_rng(config.seed);
  generator_->InitXavier(&init_rng);
  gen_entity_opt_ = std::make_unique<SgdOptimizer>(config.generator_lr);
  gen_relation_opt_ = std::make_unique<SgdOptimizer>(config.generator_lr);
}

void KbganSampler::WarmStartGenerator(const KgeModel& pretrained) {
  CHECK_EQ(pretrained.dim(), generator_->dim())
      << "generator warm start requires matching dimension";
  CHECK(pretrained.scorer().name() == "transe");
  generator_->entity_table().data() = pretrained.entity_table().data();
  generator_->relation_table().data() = pretrained.relation_table().data();
}

NegativeSample KbganSampler::Sample(const Triple& pos, Rng* rng) {
  const int n = config_.candidate_set_size;
  pending_.candidates.resize(n);
  for (int i = 0; i < n; ++i) {
    pending_.candidates[i] = static_cast<EntityId>(
        rng->UniformInt(static_cast<uint64_t>(generator_->num_entities())));
  }
  pending_.side = side_chooser_.Choose(pos, rng);

  std::vector<double> scores;
  if (pending_.side == CorruptionSide::kHead) {
    generator_->ScoreHeadCandidates(pos.r, pos.t, pending_.candidates, &scores);
  } else {
    generator_->ScoreTailCandidates(pos.h, pos.r, pending_.candidates, &scores);
  }
  SoftmaxInPlace(&scores);
  pending_.probs = scores;
  pending_.chosen = static_cast<int>(rng->Categorical(scores));
  pending_.pos = pos;
  pending_.valid = true;

  NegativeSample out;
  out.side = pending_.side;
  out.triple = Corrupt(pos, pending_.side,
                       pending_.candidates[pending_.chosen]);
  return out;
}

void KbganSampler::Feedback(const Triple& pos, const NegativeSample& neg,
                            double neg_score) {
  (void)neg;
  if (!pending_.valid || !(pending_.pos == pos)) return;
  pending_.valid = false;

  // Reward = discriminator plausibility of the generated negative; high
  // reward means the generator found a hard negative.
  if (!baseline_initialized_) {
    baseline_ = neg_score;
    baseline_initialized_ = true;
  }
  const double advantage = neg_score - baseline_;
  baseline_ = config_.baseline_decay * baseline_ +
              (1.0 - config_.baseline_decay) * neg_score;

  // ∂(−E[reward])/∂gen_score_i = −advantage · (1{i=chosen} − p_i).
  // Backprop that through the generator's TransE scorer per candidate and
  // apply SGD. The fixed (r, t) / (h, r) rows accumulate across candidates.
  const int dim = generator_->dim();
  const ScoringFunction& scorer = generator_->scorer();
  EmbeddingTable& ent = generator_->entity_table();
  EmbeddingTable& rel = generator_->relation_table();

  std::vector<float> g_cand(ent.width());
  std::vector<float> g_rel(rel.width(), 0.0f);
  std::vector<float> g_fixed(ent.width(), 0.0f);

  const bool head_side = pending_.side == CorruptionSide::kHead;
  const EntityId fixed_entity = head_side ? pos.t : pos.h;
  const float* fixed_row = ent.Row(fixed_entity);
  const float* rel_row = rel.Row(pos.r);

  for (size_t i = 0; i < pending_.candidates.size(); ++i) {
    const double dlogp =
        (static_cast<int>(i) == pending_.chosen ? 1.0 : 0.0) - pending_.probs[i];
    const float coeff = static_cast<float>(-advantage * dlogp);
    if (coeff == 0.0f) continue;
    std::fill(g_cand.begin(), g_cand.end(), 0.0f);
    const float* cand_row = ent.Row(pending_.candidates[i]);
    if (head_side) {
      scorer.Backward(cand_row, rel_row, fixed_row, dim, coeff, g_cand.data(),
                      g_rel.data(), g_fixed.data());
    } else {
      scorer.Backward(fixed_row, rel_row, cand_row, dim, coeff, g_fixed.data(),
                      g_rel.data(), g_cand.data());
    }
    gen_entity_opt_->Apply(&ent, pending_.candidates[i], g_cand.data());
  }
  gen_entity_opt_->Apply(&ent, fixed_entity, g_fixed.data());
  gen_relation_opt_->Apply(&rel, pos.r, g_rel.data());
}

}  // namespace nsc
