#include "sampler/kbgan_sampler.h"

#include <vector>

#include "embedding/scoring_function.h"
#include "util/logging.h"
#include "util/math.h"

namespace nsc {

KbganSampler::KbganSampler(int32_t num_entities, int32_t num_relations,
                           const KgIndex* index, const KbganConfig& config)
    : config_(config), index_(index), side_chooser_(index) {
  generator_ = std::make_unique<KgeModel>(num_entities, num_relations,
                                          config.generator_dim,
                                          MakeScoringFunction("transe"));
  Rng init_rng(config.seed);
  generator_->InitXavier(&init_rng);
  gen_entity_opt_ = std::make_unique<SgdOptimizer>(config.generator_lr);
  gen_relation_opt_ = std::make_unique<SgdOptimizer>(config.generator_lr);
}

void KbganSampler::WarmStartGenerator(const KgeModel& pretrained) {
  CHECK_EQ(pretrained.dim(), generator_->dim())
      << "generator warm start requires matching dimension";
  CHECK(pretrained.scorer().name() == "transe");
  // Row-wise logical copy: safe whatever layouts (padded/compact) the two
  // models use, and CHECKs the row counts actually match.
  generator_->entity_table().CopyLogicalFrom(pretrained.entity_table());
  generator_->relation_table().CopyLogicalFrom(pretrained.relation_table());
}

NegativeSample KbganSampler::Sample(const Triple& pos, Rng* rng) {
  Pending p;
  const int n = config_.candidate_set_size;
  p.candidates.resize(n);
  for (int i = 0; i < n; ++i) {
    p.candidates[i] = static_cast<EntityId>(
        rng->UniformInt(static_cast<uint64_t>(generator_->num_entities())));
  }
  p.side = side_chooser_.Choose(pos, rng);

  std::vector<double> scores;
  if (p.side == CorruptionSide::kHead) {
    generator_->ScoreHeadCandidates(pos.r, pos.t, p.candidates, &scores);
  } else {
    generator_->ScoreTailCandidates(pos.h, pos.r, p.candidates, &scores);
  }
  SoftmaxInPlace(&scores);
  p.chosen = static_cast<int>(rng->Categorical(scores));
  p.probs = std::move(scores);
  p.pos = pos;

  NegativeSample out;
  out.side = p.side;
  out.triple = Corrupt(pos, p.side, p.candidates[p.chosen]);

  // Bound the queue in case a caller samples without ever feeding back
  // (a whole mini-batch in flight is normal; unbounded growth is not).
  // The trainer delivers every batch's rewards before the next batch, so
  // eviction only fires for batches beyond this bound — warn, since the
  // evicted draws' REINFORCE updates are lost.
  constexpr size_t kMaxPendingDraws = 65536;
  if (pending_.size() >= kMaxPendingDraws) {
    if (!eviction_warned_) {
      LOG_WARNING << "KBGAN pending-reward queue exceeded "
                  << kMaxPendingDraws
                  << " draws; oldest draws lose their generator updates "
                     "(batch_size larger than the queue bound?)";
      eviction_warned_ = true;
    }
    pending_.pop_front();
  }
  pending_.push_back(std::move(p));
  return out;
}

void KbganSampler::Feedback(const Triple& pos, const NegativeSample& neg,
                            double neg_score) {
  (void)neg;
  // Rewards arrive in draw order. Find this reward's draw (normally the
  // front); older entries before it never got theirs and are dropped. If
  // no entry matches (e.g. the draw was evicted by the queue bound),
  // leave the queue untouched so younger draws still get their rewards.
  size_t match = 0;
  while (match < pending_.size() && !(pending_[match].pos == pos)) ++match;
  if (match == pending_.size()) return;
  const Pending pending = std::move(pending_[match]);
  pending_.erase(pending_.begin(), pending_.begin() + match + 1);

  // Reward = discriminator plausibility of the generated negative; high
  // reward means the generator found a hard negative.
  if (!baseline_initialized_) {
    baseline_ = neg_score;
    baseline_initialized_ = true;
  }
  const double advantage = neg_score - baseline_;
  baseline_ = config_.baseline_decay * baseline_ +
              (1.0 - config_.baseline_decay) * neg_score;

  // ∂(−E[reward])/∂gen_score_i = −advantage · (1{i=chosen} − p_i).
  // Backprop that through the generator's TransE scorer per candidate and
  // apply SGD. The fixed (r, t) / (h, r) rows accumulate across candidates.
  const int dim = generator_->dim();
  const ScoringFunction& scorer = generator_->scorer();
  ShardedEmbeddingTable& ent = generator_->entity_table();
  ShardedEmbeddingTable& rel = generator_->relation_table();

  std::vector<float> g_cand(ent.width());
  std::vector<float> g_rel(rel.width(), 0.0f);
  std::vector<float> g_fixed(ent.width(), 0.0f);

  const bool head_side = pending.side == CorruptionSide::kHead;
  const EntityId fixed_entity = head_side ? pos.t : pos.h;
  const float* fixed_row = ent.Row(fixed_entity);
  const float* rel_row = rel.Row(pos.r);

  for (size_t i = 0; i < pending.candidates.size(); ++i) {
    const double dlogp =
        (static_cast<int>(i) == pending.chosen ? 1.0 : 0.0) - pending.probs[i];
    const float coeff = static_cast<float>(-advantage * dlogp);
    if (coeff == 0.0f) continue;
    std::fill(g_cand.begin(), g_cand.end(), 0.0f);
    const float* cand_row = ent.Row(pending.candidates[i]);
    if (head_side) {
      scorer.Backward(cand_row, rel_row, fixed_row, dim, coeff, g_cand.data(),
                      g_rel.data(), g_fixed.data());
    } else {
      scorer.Backward(fixed_row, rel_row, cand_row, dim, coeff, g_fixed.data(),
                      g_rel.data(), g_cand.data());
    }
    gen_entity_opt_->Apply(&ent, pending.candidates[i], g_cand.data());
  }
  gen_entity_opt_->Apply(&ent, fixed_entity, g_fixed.data());
  gen_relation_opt_->Apply(&rel, pos.r, g_rel.data());
}

}  // namespace nsc
