// Negative-sampling interface (step 5 of Algorithm 1 / steps 5-8 of
// Algorithm 2 in the paper). Given a positive triple (h, r, t), a sampler
// returns one corrupted triple (h̄, r, t) or (h, r, t̄) from the negative
// set S̄ of Eq. (5). Implementations:
//   UniformSampler     — fixed uniform distribution [7];
//   BernoulliSampler   — fixed, relation-cardinality aware [42];
//   KbganSampler       — GAN generator with REINFORCE [9];
//   NSCachingSampler   — the paper's cache-based method (src/core/).
#ifndef NSCACHING_SAMPLER_NEGATIVE_SAMPLER_H_
#define NSCACHING_SAMPLER_NEGATIVE_SAMPLER_H_

#include <cstddef>
#include <string>

#include "kg/kg_index.h"
#include "kg/types.h"
#include "util/rng.h"

namespace nsc {

/// One sampled negative triple plus which side was corrupted.
struct NegativeSample {
  Triple triple;
  CorruptionSide side = CorruptionSide::kHead;
};

/// Stateful negative sampler. Samplers needing the current embedding
/// scores hold a pointer to the model they serve. Unless
/// thread_safe_sampling() says otherwise, all methods are called from the
/// (single) training thread.
class NegativeSampler {
 public:
  virtual ~NegativeSampler() = default;

  virtual std::string name() const = 0;

  /// Draws one negative for `pos`.
  virtual NegativeSample Sample(const Triple& pos, Rng* rng) = 0;

  /// Draws one negative for each of pos[0..n) into out[0..n). The default
  /// loops over Sample() in index order, so it consumes `rng` exactly like
  /// n sequential Sample() calls — the batched trainer relies on this to
  /// stay bit-for-bit compatible with the serial loop.
  virtual void SampleBatch(const Triple* pos, size_t n, Rng* rng,
                           NegativeSample* out);

  /// True when Sample() depends only on (pos, rng) — no mutable sampler
  /// state and no model parameters (uniform/Bernoulli). The trainer may
  /// then pre-sample ahead of parameter updates without changing results.
  /// Model-coupled samplers (NSCaching, KBGAN) must keep the default
  /// `false`.
  virtual bool stateless_sampling() const { return false; }

  /// True when Sample() may be called concurrently from multiple worker
  /// threads (each with its own Rng stream). The parallel trainer then
  /// routes the sampler through the full-Hogwild path — workers draw
  /// their own negatives inline — instead of the serial per-batch
  /// pre-pass. Stateless samplers are implicitly thread-safe (the
  /// default); stateful samplers must opt in by guarding their state
  /// (NSCaching's lock-striped caches + atomic stats do; KBGAN's
  /// generator does not).
  virtual bool thread_safe_sampling() const { return stateless_sampling(); }

  /// Post-update feedback: the discriminator's score of the sampled
  /// negative. KBGAN uses it as the REINFORCE reward; others ignore it.
  virtual void Feedback(const Triple& pos, const NegativeSample& neg,
                        double neg_score) {
    (void)pos;
    (void)neg;
    (void)neg_score;
  }

  /// Called at the start of every epoch (lazy cache updates key off this).
  virtual void BeginEpoch(int epoch) { (void)epoch; }
};

/// Chooses which side of a positive triple to corrupt. "uniform" flips a
/// fair coin; "bernoulli" uses the tph/(tph+hpt) rule of [42], which
/// corrupts the *head* of one-to-many relations more often to reduce
/// false negatives. The paper applies the Bernoulli rule inside KBGAN and
/// NSCaching as well (§IV-B1).
class SideChooser {
 public:
  /// Fair-coin chooser.
  SideChooser() = default;

  /// Bernoulli chooser backed by relation statistics from `index` (not
  /// owned; must outlive the chooser).
  explicit SideChooser(const KgIndex* index) : index_(index) {}

  CorruptionSide Choose(const Triple& pos, Rng* rng) const {
    const double p_head =
        index_ == nullptr ? 0.5 : index_->HeadReplaceProbability(pos.r);
    return rng->Bernoulli(p_head) ? CorruptionSide::kHead
                                  : CorruptionSide::kTail;
  }

  bool is_bernoulli() const { return index_ != nullptr; }

 private:
  const KgIndex* index_ = nullptr;
};

/// Applies a corruption: replaces the chosen side of `pos` with `entity`.
Triple Corrupt(const Triple& pos, CorruptionSide side, EntityId entity);

}  // namespace nsc

#endif  // NSCACHING_SAMPLER_NEGATIVE_SAMPLER_H_
