// Uniform negative sampling [7]: corrupt a fair-coin-chosen side with an
// entity drawn uniformly from E. Optionally rejects corruptions that are
// known positive triples (bounded retries), approximating Eq. (5)'s
// (h̄, r, t) ∉ S requirement.
#ifndef NSCACHING_SAMPLER_UNIFORM_SAMPLER_H_
#define NSCACHING_SAMPLER_UNIFORM_SAMPLER_H_

#include "sampler/negative_sampler.h"

namespace nsc {

class UniformSampler : public NegativeSampler {
 public:
  /// `index` (borrowed, may be null) enables known-positive rejection.
  UniformSampler(int32_t num_entities, const KgIndex* index = nullptr,
                 int max_retries = 10)
      : num_entities_(num_entities), index_(index), max_retries_(max_retries) {}

  std::string name() const override { return "uniform"; }
  NegativeSample Sample(const Triple& pos, Rng* rng) override;
  /// Depends only on (pos, rng) and the immutable KgIndex.
  bool stateless_sampling() const override { return true; }

 private:
  int32_t num_entities_;
  const KgIndex* index_;
  int max_retries_;
  SideChooser side_chooser_;  // Fair coin.
};

}  // namespace nsc

#endif  // NSCACHING_SAMPLER_UNIFORM_SAMPLER_H_
