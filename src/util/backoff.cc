#include "util/backoff.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/logging.h"

namespace nsc {

int64_t BackoffDelayUs(const BackoffOptions& options, int retry, Rng* rng) {
  CHECK_GE(retry, 0);
  double delay = static_cast<double>(options.initial_backoff_us) *
                 std::pow(std::max(options.multiplier, 1.0), retry);
  delay = std::min(delay, static_cast<double>(options.max_backoff_us));
  if (options.jitter > 0.0 && rng != nullptr) {
    delay *= rng->Uniform(1.0 - options.jitter, 1.0 + options.jitter);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(delay));
}

bool IsRetryableCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIOError ||
         code == StatusCode::kDeadlineExceeded;
}

Status RetryWithBackoff(const BackoffOptions& options,
                        const std::function<Status()>& op,
                        const SleepFn& sleep, const RetryObserver& on_failure) {
  CHECK_GE(options.max_attempts, 1);
  Rng jitter_rng(options.seed);
  Status status;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    status = op();
    if (status.ok()) return status;
    if (on_failure) on_failure(status, attempt);
    if (!IsRetryableCode(status.code())) return status;
    if (attempt + 1 >= options.max_attempts) break;
    const int64_t delay_us = BackoffDelayUs(options, attempt, &jitter_rng);
    if (sleep) {
      if (!sleep(delay_us)) return status;  // Caller canceled (shutdown).
    } else if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
  return status;
}

}  // namespace nsc
