// Annotated mutex / condition-variable wrappers for Clang thread-safety
// analysis (util/thread_annotations.h).
//
// The analysis only understands lock functions that carry capability
// attributes, and libstdc++'s std::mutex carries none — locking through
// it is invisible to -Wthread-safety. These zero-overhead wrappers (every
// method is an inline forward to the std primitive) are the annotated
// vocabulary the rest of the tree locks through:
//
//   Mutex      — std::mutex as an NSC_CAPABILITY, so fields can be
//                NSC_GUARDED_BY it and functions NSC_REQUIRES it.
//   MutexLock  — std::lock_guard as an NSC_SCOPED_CAPABILITY.
//   CondVar    — std::condition_variable over a Mutex. Wait() is
//                NSC_REQUIRES(mu): it atomically releases and reacquires
//                inside, so at the annotation granularity the capability
//                is held across the call — exactly the guarantee callers
//                may rely on.
//
// TSan still sees the underlying std::mutex / std::condition_variable, so
// the runtime jobs (PR 2/3's sanitizer CI) and this compile-time layer
// check the same protocols from both sides.
#ifndef NSCACHING_UTIL_MUTEX_H_
#define NSCACHING_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace nsc {

class CondVar;

/// A std::mutex the thread-safety analysis can see.
class NSC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NSC_ACQUIRE() { mu_.lock(); }
  void Unlock() NSC_RELEASE() { mu_.unlock(); }
  bool TryLock() NSC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Statically asserts to the analysis that this mutex is held on every
  /// path reaching the call (no runtime effect). Use where the acquisition
  /// happened through a boundary the analysis cannot follow.
  void AssertHeld() const NSC_ASSERT_CAPABILITY() {}

 private:
  friend class CondVar;
  std::mutex& native() { return mu_; }

  std::mutex mu_;
};

/// RAII lock of a Mutex for a lexical scope (the analysis tracks it like
/// the docs' MutexLocker: acquired at construction, released at scope
/// end).
class NSC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NSC_ACQUIRE(mu) : mu_(mu) { mu->Lock(); }
  ~MutexLock() NSC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks; *mu is reacquired before
  /// returning (so the capability is held at entry and at exit, which is
  /// what NSC_REQUIRES expresses). As with std::condition_variable,
  /// spurious wakeups happen: wait in a predicate loop.
  void Wait(Mutex* mu) NSC_REQUIRES(mu) {
    // Adopt the already-held native mutex so the std wait can release and
    // reacquire it, then detach again — the Mutex wrapper keeps ownership.
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait() with a relative timeout. Returns true if the wait timed out,
  /// false if it was notified (or woke spuriously) earlier. Same capability
  /// contract as Wait(): *mu is held at entry and at exit. This is the
  /// linger primitive of the serving layer's cross-request batcher
  /// (QueryEngine waits at most max_wait_us for more coalescible
  /// requests).
  bool WaitFor(Mutex* mu, int64_t timeout_us) NSC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::microseconds(timeout_us));
    lock.release();
    return status == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nsc

#endif  // NSCACHING_UTIL_MUTEX_H_
