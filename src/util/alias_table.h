// Walker alias method for O(1) sampling from a fixed discrete distribution.
// Used for degree-proportional entity corruption experiments and for
// sampling positive triples proportional to any static weighting.
#ifndef NSCACHING_UTIL_ALIAS_TABLE_H_
#define NSCACHING_UTIL_ALIAS_TABLE_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace nsc {

/// Preprocesses a weight vector in O(n); each Sample() is O(1).
class AliasTable {
 public:
  /// Builds the table. Weights must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability weights[i]/sum.
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

  /// Exact sampling probability of index i (for tests).
  double Probability(size_t i) const;

 private:
  std::vector<double> prob_;   // Acceptance probability per bucket.
  std::vector<size_t> alias_;  // Fallback index per bucket.
  std::vector<double> normalized_;
};

}  // namespace nsc

#endif  // NSCACHING_UTIL_ALIAS_TABLE_H_
