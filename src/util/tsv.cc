#include "util/tsv.h"

#include <fstream>
#include <sstream>

namespace nsc {

std::vector<std::string> SplitTsvLine(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadTsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(SplitTsvLine(line));
  }
  return rows;
}

Status WriteTsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << '\t';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace nsc
