// NEON (aarch64) implementations of the batched scorer kernels. NEON is
// baseline on aarch64, so no special compile flags are needed; on other
// targets this TU degrades to a "not compiled in" stub. Same numerical
// contract as the AVX2 kernels (see simd.h): double-widened score terms,
// scalar-order float backward, 4-float lanes.
#include "util/simd_kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

#include "util/topk.h"

namespace nsc {
namespace simd {
namespace {

/// Lane-wise sign(x) in {-1, 0, +1} as floats.
inline float32x4_t SignF32(float32x4_t x) {
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t pos = vbslq_f32(vcgtq_f32(x, zero), one, zero);
  const float32x4_t neg = vbslq_f32(vcltq_f32(x, zero), one, zero);
  return vsubq_f32(pos, neg);
}

/// Accumulates the 4 floats of `v`, widened to double, into lo/hi pairs.
inline void AccumulateWide(float32x4_t v, float64x2_t* lo, float64x2_t* hi) {
  *lo = vaddq_f64(*lo, vcvt_f64_f32(vget_low_f32(v)));
  *hi = vaddq_f64(*hi, vcvt_high_f64_f32(v));
}

void TransEScoreNeon(const float* const* h, const float* const* r,
                     const float* const* t, int dim, std::size_t n,
                     double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float64x2_t acc_lo = vdupq_n_f64(0.0);
    float64x2_t acc_hi = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t e = vsubq_f32(
          vaddq_f32(vld1q_f32(hv + k), vld1q_f32(rv + k)), vld1q_f32(tv + k));
      AccumulateWide(vabsq_f32(e), &acc_lo, &acc_hi);
    }
    double s = vaddvq_f64(vaddq_f64(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(hv[k] + rv[k] - tv[k]);
    out[i] = -s;
  }
}

void TransEBackwardNeon(const float* const* h, const float* const* r,
                        const float* const* t, int dim, std::size_t n,
                        const float* coeff, float* const* gh,
                        float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const float32x4_t cv = vdupq_n_f32(c);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t e = vsubq_f32(
          vaddq_f32(vld1q_f32(hv + k), vld1q_f32(rv + k)), vld1q_f32(tv + k));
      const float32x4_t sg = vmulq_f32(cv, SignF32(e));
      vst1q_f32(ghv + k, vsubq_f32(vld1q_f32(ghv + k), sg));
      vst1q_f32(grv + k, vsubq_f32(vld1q_f32(grv + k), sg));
      vst1q_f32(gtv + k, vaddq_f32(vld1q_f32(gtv + k), sg));
    }
    for (; k < dim; ++k) {
      const float d = hv[k] + rv[k] - tv[k];
      const float sg = c * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
      ghv[k] -= sg;
      grv[k] -= sg;
      gtv[k] += sg;
    }
  }
}

void DistMultScoreNeon(const float* const* h, const float* const* r,
                       const float* const* t, int dim, std::size_t n,
                       double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float64x2_t acc_lo = vdupq_n_f64(0.0);
    float64x2_t acc_hi = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t hvv = vld1q_f32(hv + k);
      const float32x4_t rvv = vld1q_f32(rv + k);
      const float32x4_t tvv = vld1q_f32(tv + k);
      const float64x2_t h_lo = vcvt_f64_f32(vget_low_f32(hvv));
      const float64x2_t h_hi = vcvt_high_f64_f32(hvv);
      const float64x2_t r_lo = vcvt_f64_f32(vget_low_f32(rvv));
      const float64x2_t r_hi = vcvt_high_f64_f32(rvv);
      const float64x2_t t_lo = vcvt_f64_f32(vget_low_f32(tvv));
      const float64x2_t t_hi = vcvt_high_f64_f32(tvv);
      acc_lo = vaddq_f64(acc_lo, vmulq_f64(vmulq_f64(h_lo, r_lo), t_lo));
      acc_hi = vaddq_f64(acc_hi, vmulq_f64(vmulq_f64(h_hi, r_hi), t_hi));
    }
    double s = vaddvq_f64(vaddq_f64(acc_lo, acc_hi));
    for (; k < dim; ++k) s += double(hv[k]) * rv[k] * tv[k];
    out[i] = s;
  }
}

void DistMultBackwardNeon(const float* const* h, const float* const* r,
                          const float* const* t, int dim, std::size_t n,
                          const float* coeff, float* const* gh,
                          float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const float32x4_t cv = vdupq_n_f32(c);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t hvv = vld1q_f32(hv + k);
      const float32x4_t rvv = vld1q_f32(rv + k);
      const float32x4_t tvv = vld1q_f32(tv + k);
      // Scalar associativity: g += (c * x) * y.
      const float32x4_t crv = vmulq_f32(cv, rvv);
      const float32x4_t chv = vmulq_f32(cv, hvv);
      vst1q_f32(ghv + k,
                vaddq_f32(vld1q_f32(ghv + k), vmulq_f32(crv, tvv)));
      vst1q_f32(grv + k,
                vaddq_f32(vld1q_f32(grv + k), vmulq_f32(chv, tvv)));
      vst1q_f32(gtv + k,
                vaddq_f32(vld1q_f32(gtv + k), vmulq_f32(chv, rvv)));
    }
    for (; k < dim; ++k) {
      ghv[k] += c * rv[k] * tv[k];
      grv[k] += c * hv[k] * tv[k];
      gtv[k] += c * hv[k] * rv[k];
    }
  }
}

void ComplExScoreNeon(const float* const* h, const float* const* r,
                      const float* const* t, int dim, std::size_t n,
                      double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    float64x2_t acc_lo = vdupq_n_f64(0.0);
    float64x2_t acc_hi = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t hrv = vld1q_f32(hr + k);
      const float32x4_t hiv = vld1q_f32(hi + k);
      const float32x4_t rrv = vld1q_f32(rr + k);
      const float32x4_t riv = vld1q_f32(ri + k);
      const float32x4_t trv = vld1q_f32(tr + k);
      const float32x4_t tiv = vld1q_f32(ti + k);
      for (int half = 0; half < 2; ++half) {
        const float64x2_t hrd =
            half ? vcvt_high_f64_f32(hrv) : vcvt_f64_f32(vget_low_f32(hrv));
        const float64x2_t hid =
            half ? vcvt_high_f64_f32(hiv) : vcvt_f64_f32(vget_low_f32(hiv));
        const float64x2_t rrd =
            half ? vcvt_high_f64_f32(rrv) : vcvt_f64_f32(vget_low_f32(rrv));
        const float64x2_t rid =
            half ? vcvt_high_f64_f32(riv) : vcvt_f64_f32(vget_low_f32(riv));
        const float64x2_t trd =
            half ? vcvt_high_f64_f32(trv) : vcvt_f64_f32(vget_low_f32(trv));
        const float64x2_t tid =
            half ? vcvt_high_f64_f32(tiv) : vcvt_f64_f32(vget_low_f32(tiv));
        const float64x2_t t1 = vmulq_f64(vmulq_f64(hrd, rrd), trd);
        const float64x2_t t2 = vmulq_f64(vmulq_f64(hid, rrd), tid);
        const float64x2_t t3 = vmulq_f64(vmulq_f64(hrd, rid), tid);
        const float64x2_t t4 = vmulq_f64(vmulq_f64(hid, rid), trd);
        const float64x2_t term =
            vsubq_f64(vaddq_f64(vaddq_f64(t1, t2), t3), t4);
        if (half) {
          acc_hi = vaddq_f64(acc_hi, term);
        } else {
          acc_lo = vaddq_f64(acc_lo, term);
        }
      }
    }
    double s = vaddvq_f64(vaddq_f64(acc_lo, acc_hi));
    for (; k < dim; ++k) {
      s += double(hr[k]) * rr[k] * tr[k] + double(hi[k]) * rr[k] * ti[k] +
           double(hr[k]) * ri[k] * ti[k] - double(hi[k]) * ri[k] * tr[k];
    }
    out[i] = s;
  }
}

void ComplExBackwardNeon(const float* const* h, const float* const* r,
                         const float* const* t, int dim, std::size_t n,
                         const float* coeff, float* const* gh,
                         float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const float32x4_t cv = vdupq_n_f32(c);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t hrv = vld1q_f32(hr + k);
      const float32x4_t hiv = vld1q_f32(hi + k);
      const float32x4_t rrv = vld1q_f32(rr + k);
      const float32x4_t riv = vld1q_f32(ri + k);
      const float32x4_t trv = vld1q_f32(tr + k);
      const float32x4_t tiv = vld1q_f32(ti + k);
      // Scalar associativity: g += c * (x*y ± z*w).
      const float32x4_t d_hr = vmulq_f32(
          cv, vaddq_f32(vmulq_f32(rrv, trv), vmulq_f32(riv, tiv)));
      const float32x4_t d_hi = vmulq_f32(
          cv, vsubq_f32(vmulq_f32(rrv, tiv), vmulq_f32(riv, trv)));
      const float32x4_t d_rr = vmulq_f32(
          cv, vaddq_f32(vmulq_f32(hrv, trv), vmulq_f32(hiv, tiv)));
      const float32x4_t d_ri = vmulq_f32(
          cv, vsubq_f32(vmulq_f32(hrv, tiv), vmulq_f32(hiv, trv)));
      const float32x4_t d_tr = vmulq_f32(
          cv, vsubq_f32(vmulq_f32(hrv, rrv), vmulq_f32(hiv, riv)));
      const float32x4_t d_ti = vmulq_f32(
          cv, vaddq_f32(vmulq_f32(hiv, rrv), vmulq_f32(hrv, riv)));
      vst1q_f32(ghv + k, vaddq_f32(vld1q_f32(ghv + k), d_hr));
      vst1q_f32(ghv + dim + k, vaddq_f32(vld1q_f32(ghv + dim + k), d_hi));
      vst1q_f32(grv + k, vaddq_f32(vld1q_f32(grv + k), d_rr));
      vst1q_f32(grv + dim + k, vaddq_f32(vld1q_f32(grv + dim + k), d_ri));
      vst1q_f32(gtv + k, vaddq_f32(vld1q_f32(gtv + k), d_tr));
      vst1q_f32(gtv + dim + k, vaddq_f32(vld1q_f32(gtv + dim + k), d_ti));
    }
    for (; k < dim; ++k) {
      ghv[k] += c * (rr[k] * tr[k] + ri[k] * ti[k]);
      ghv[dim + k] += c * (rr[k] * ti[k] - ri[k] * tr[k]);
      grv[k] += c * (hr[k] * tr[k] + hi[k] * ti[k]);
      grv[dim + k] += c * (hr[k] * ti[k] - hi[k] * tr[k]);
      gtv[k] += c * (hr[k] * rr[k] - hi[k] * ri[k]);
      gtv[dim + k] += c * (hi[k] * rr[k] + hr[k] * ri[k]);
    }
  }
}

// ---- 1-vs-all sweep kernels ------------------------------------------------
// Candidate-major adaptations of the score kernels above: the candidate
// slab (base + i*stride) is the only strided stream, the fixed rows stay
// hot in L1. Same double-widened term contract.

void TransESweepHeadNeon(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    float64x2_t acc_lo = vdupq_n_f64(0.0);
    float64x2_t acc_hi = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t e =
          vsubq_f32(vaddq_f32(vld1q_f32(cv + k), vld1q_f32(fixed_r + k)),
                    vld1q_f32(fixed_e + k));
      AccumulateWide(vabsq_f32(e), &acc_lo, &acc_hi);
    }
    double s = vaddvq_f64(vaddq_f64(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(cv[k] + fixed_r[k] - fixed_e[k]);
    out[i] = -s;
  }
}

void TransESweepTailNeon(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    float64x2_t acc_lo = vdupq_n_f64(0.0);
    float64x2_t acc_hi = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t e =
          vsubq_f32(vaddq_f32(vld1q_f32(fixed_e + k), vld1q_f32(fixed_r + k)),
                    vld1q_f32(cv + k));
      AccumulateWide(vabsq_f32(e), &acc_lo, &acc_hi);
    }
    double s = vaddvq_f64(vaddq_f64(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(fixed_e[k] + fixed_r[k] - cv[k]);
    out[i] = -s;
  }
}

/// Shared DistMult sweep core: out[i] = Σ_k cand[k] * (fixed_e[k] *
/// fixed_r[k]), every term a once-rounded double triple product exactly
/// as the scalar loop forms it (pairwise float products are exact in
/// double, so the association is irrelevant).
void DistMultSweepNeon(const float* fixed_e, const float* fixed_r,
                       const float* base, std::size_t stride,
                       std::size_t count, int dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    float64x2_t acc_lo = vdupq_n_f64(0.0);
    float64x2_t acc_hi = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const float32x4_t cvv = vld1q_f32(cv + k);
      const float32x4_t evv = vld1q_f32(fixed_e + k);
      const float32x4_t rvv = vld1q_f32(fixed_r + k);
      const float64x2_t c_lo = vcvt_f64_f32(vget_low_f32(cvv));
      const float64x2_t c_hi = vcvt_high_f64_f32(cvv);
      const float64x2_t e_lo = vcvt_f64_f32(vget_low_f32(evv));
      const float64x2_t e_hi = vcvt_high_f64_f32(evv);
      const float64x2_t r_lo = vcvt_f64_f32(vget_low_f32(rvv));
      const float64x2_t r_hi = vcvt_high_f64_f32(rvv);
      acc_lo = vaddq_f64(acc_lo, vmulq_f64(vmulq_f64(c_lo, r_lo), e_lo));
      acc_hi = vaddq_f64(acc_hi, vmulq_f64(vmulq_f64(c_hi, r_hi), e_hi));
    }
    double s = vaddvq_f64(vaddq_f64(acc_lo, acc_hi));
    for (; k < dim; ++k) s += double(cv[k]) * fixed_r[k] * fixed_e[k];
    out[i] = s;
  }
}

/// ComplEx sweep over fixed (r, t) [head] or (h, r) [tail]; candidate
/// rows are [re | im] like every entity row.
void ComplExSweepNeonImpl(const float* fr0, const float* fi0,
                          const float* fr1, const float* fi1, bool head,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim, double* out) {
  // head: f0 = r-row, f1 = t-row, term = cr*rr*tr + ci*rr*ti + cr*ri*ti
  //       − ci*ri*tr  (cand = h).
  // tail: f0 = h-row, f1 = r-row, term = hr*rr*cr + hi*rr*ci + hr*ri*ci
  //       − hi*ri*cr  (cand = t).
  for (std::size_t i = 0; i < count; ++i) {
    const float* cr = base + i * stride;
    const float* ci = cr + dim;
    float64x2_t acc = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 2 <= dim; k += 2) {
      const float64x2_t crd = vcvt_f64_f32(vld1_f32(cr + k));
      const float64x2_t cid = vcvt_f64_f32(vld1_f32(ci + k));
      const float64x2_t r0 = vcvt_f64_f32(vld1_f32(fr0 + k));
      const float64x2_t i0 = vcvt_f64_f32(vld1_f32(fi0 + k));
      const float64x2_t r1 = vcvt_f64_f32(vld1_f32(fr1 + k));
      const float64x2_t i1 = vcvt_f64_f32(vld1_f32(fi1 + k));
      float64x2_t t1, t2, t3, t4;
      if (head) {
        t1 = vmulq_f64(vmulq_f64(crd, r0), r1);
        t2 = vmulq_f64(vmulq_f64(cid, r0), i1);
        t3 = vmulq_f64(vmulq_f64(crd, i0), i1);
        t4 = vmulq_f64(vmulq_f64(cid, i0), r1);
      } else {
        t1 = vmulq_f64(vmulq_f64(r0, r1), crd);
        t2 = vmulq_f64(vmulq_f64(i0, r1), cid);
        t3 = vmulq_f64(vmulq_f64(r0, i1), cid);
        t4 = vmulq_f64(vmulq_f64(i0, i1), crd);
      }
      acc = vaddq_f64(acc,
                      vsubq_f64(vaddq_f64(vaddq_f64(t1, t2), t3), t4));
    }
    double s = vaddvq_f64(acc);
    for (; k < dim; ++k) {
      if (head) {
        s += double(cr[k]) * fr0[k] * fr1[k] + double(ci[k]) * fr0[k] * fi1[k] +
             double(cr[k]) * fi0[k] * fi1[k] - double(ci[k]) * fi0[k] * fr1[k];
      } else {
        s += double(fr0[k]) * fr1[k] * cr[k] + double(fi0[k]) * fr1[k] * ci[k] +
             double(fr0[k]) * fi1[k] * ci[k] - double(fi0[k]) * fi1[k] * cr[k];
      }
    }
    out[i] = s;
  }
}

void ComplExSweepHeadNeon(const float* fixed_e, const float* fixed_r,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim, double* out) {
  ComplExSweepNeonImpl(fixed_r, fixed_r + dim, fixed_e, fixed_e + dim,
                       /*head=*/true, base, stride, count, dim, out);
}

void ComplExSweepTailNeon(const float* fixed_e, const float* fixed_r,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim, double* out) {
  ComplExSweepNeonImpl(fixed_e, fixed_e + dim, fixed_r, fixed_r + dim,
                       /*head=*/false, base, stride, count, dim, out);
}

// ---- Fused sweep→top-K kernels ---------------------------------------------
// Tile-at-a-time retrieval (see simd.h): each kTileSize tile is scored by
// the sweep kernel above into a stack buffer, the tile max (vectorized
// over float64x2 lanes) is tested against the collector's K-th-best
// threshold, and only passing tiles fall into per-element insertion.

/// Merges one scored tile into the collector. The threshold is captured
/// once per tile; insertions may raise the live one, and Offer()
/// re-checks, so the stale test stays exact.
void OfferTileNeon(const double* scores, std::size_t base_index,
                   std::size_t n, TopKCollector* collector) {
  collector->CountTile();
  if (!collector->full()) {
    for (std::size_t i = 0; i < n; ++i) {
      collector->Offer(scores[i], base_index + i);
    }
    return;
  }
  const double threshold = collector->threshold();
  float64x2_t mx = vdupq_n_f64(threshold);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) mx = vmaxq_f64(mx, vld1q_f64(scores + i));
  double m = vmaxvq_f64(mx);
  for (; i < n; ++i) m = std::max(m, scores[i]);
  if (!(m > threshold)) {
    collector->CountPrunedTile();
    return;
  }
  for (i = 0; i < n; ++i) {
    if (scores[i] > threshold) collector->Offer(scores[i], base_index + i);
  }
}

template <ScorerKernels::SweepFn kSweep>
void SweepTopKNeon(const float* fixed_e, const float* fixed_r,
                   const float* base, std::size_t stride, std::size_t count,
                   int dim, TopKCollector* collector) {
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    kSweep(fixed_e, fixed_r, base + lo * stride, stride, n, dim, tile);
    OfferTileNeon(tile, lo, n, collector);
  }
}

// Batched retrieval, tile-outer / query-inner: the slab streams from
// memory once for all nq queries; per (tile, query) the sweep kernel
// runs its exact single-query arithmetic, so each query's result is
// bit-identical to its own single-query retrieval.
template <ScorerKernels::SweepFn kSweep>
void SweepTopKBatchNeon(const float* const* fixed_e,
                        const float* const* fixed_r, std::size_t nq,
                        const float* base, std::size_t stride,
                        std::size_t count, int dim,
                        TopKCollector* const* collectors) {
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    for (std::size_t q = 0; q < nq; ++q) {
      kSweep(fixed_e[q], fixed_r[q], base + lo * stride, stride, n, dim, tile);
      OfferTileNeon(tile, lo, n, collectors[q]);
    }
  }
}

const ScorerKernels kNeonKernels = {
    TransEScoreNeon,      TransEBackwardNeon,   DistMultScoreNeon,
    DistMultBackwardNeon, ComplExScoreNeon,     ComplExBackwardNeon,
    TransESweepHeadNeon,  TransESweepTailNeon,  DistMultSweepNeon,
    DistMultSweepNeon,    ComplExSweepHeadNeon, ComplExSweepTailNeon,
    SweepTopKNeon<TransESweepHeadNeon>,
    SweepTopKNeon<TransESweepTailNeon>,
    SweepTopKNeon<DistMultSweepNeon>,
    SweepTopKNeon<DistMultSweepNeon>,
    SweepTopKNeon<ComplExSweepHeadNeon>,
    SweepTopKNeon<ComplExSweepTailNeon>,
    SweepTopKBatchNeon<TransESweepHeadNeon>,
    SweepTopKBatchNeon<TransESweepTailNeon>,
    SweepTopKBatchNeon<DistMultSweepNeon>,
    SweepTopKBatchNeon<DistMultSweepNeon>,
    SweepTopKBatchNeon<ComplExSweepHeadNeon>,
    SweepTopKBatchNeon<ComplExSweepTailNeon>,
};

}  // namespace

namespace internal {
const ScorerKernels* GetNeonKernels() { return &kNeonKernels; }
}  // namespace internal

}  // namespace simd
}  // namespace nsc

#else  // !aarch64 NEON

namespace nsc {
namespace simd {
namespace internal {
const ScorerKernels* GetNeonKernels() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace nsc

#endif  // defined(__aarch64__) && defined(__ARM_NEON)
