#include "util/logging.h"

#include <atomic>

namespace nsc {
namespace internal {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level = static_cast<int>(level); }
LogLevel GetMinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_min_level.load() ||
      level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace nsc
