// Minimal non-owning view over a contiguous range — the C++17 stand-in
// for std::span used by batch-shaped APIs (Loss::ComputeBatch). Carries a
// pointer and a length; never owns, never allocates.
#ifndef NSCACHING_UTIL_SPAN_H_
#define NSCACHING_UTIL_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace nsc {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}

  /// From a vector of the element type (or, for Span<const T>, a vector
  /// of the non-const element type). Implicit by design, like
  /// absl::Span: a view type exists to be passed where a vector is held.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit view conversion.
  Span(std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}
  template <typename U = T,
            typename = std::enable_if_t<std::is_const<U>::value>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit view conversion.
  Span(const std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  constexpr Span subspan(std::size_t offset, std::size_t count) const {
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace nsc

#endif  // NSCACHING_UTIL_SPAN_H_
