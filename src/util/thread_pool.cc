#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace nsc {

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void(int)> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&mu_);
}

void ThreadPool::WorkerLoop(int worker_index) {
  for (;;) {
    std::function<void(int)> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && tasks_.empty()) task_ready_.Wait(&mu_);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task(worker_index);
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t, int)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t num_chunks =
      std::min<size_t>(workers_.size() * 4, n);  // Mild oversubscription.
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    Schedule([lo, hi, &fn](int worker) {
      for (size_t i = lo; i < hi; ++i) fn(i, worker);
    });
  }
  Wait();
}

}  // namespace nsc
