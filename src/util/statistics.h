// Streaming summary statistics and empirical-distribution helpers used by
// the analysis module (score CCDFs, Figure 1) and the benchmark reports.
#ifndef NSCACHING_UTIL_STATISTICS_H_
#define NSCACHING_UTIL_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace nsc {

/// Welford-style accumulator: mean/variance/min/max in one pass.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical quantile with linear interpolation; q in [0,1]. The input is
/// copied and sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Complementary CDF evaluated at each of `thresholds`:
/// out[j] = P(value >= thresholds[j]) under the empirical distribution.
std::vector<double> Ccdf(const std::vector<double>& values,
                         const std::vector<double>& thresholds);

/// Evenly spaced grid of `n` points covering [lo, hi] inclusive (n >= 2).
std::vector<double> LinSpace(double lo, double hi, int n);

}  // namespace nsc

#endif  // NSCACHING_UTIL_STATISTICS_H_
