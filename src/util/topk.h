// Bounded-heap top-K accumulation for the fused sweep→top-K retrieval
// kernels (ScoringFunction::TopKCandidates).
//
// "Top-K of |E| candidate scores" is what both the link-prediction
// protocol and NSCaching's kTop cache refresh reduce to, yet a full sweep
// materializes |E| doubles and scans them — O(|E|) memory traffic twice.
// The collector here is the other half of the fused primitive: sweep
// kernels score one L1-resident tile at a time, test the tile's max
// against the running K-th-best score, and only touch the heap for tiles
// that can change the result. A top-10 query over millions of entities
// then writes O(K) results instead of |E| floats.
//
// Tie contract: the retrieved set (and its order) is EXACTLY the first K
// elements of the full score buffer sorted by (score desc, index asc) —
// deterministic, layout- and dispatch-path-independent given bit-identical
// scores. The contract falls out of two rules: candidates are offered in
// increasing index order, and a candidate only displaces the current
// worst kept entry under a strict score comparison (an equal-scored later
// candidate never evicts an earlier one). topk_parity_test fuzzes this
// against the sorted full-buffer sweep across every scorer.
#ifndef NSCACHING_UTIL_TOPK_H_
#define NSCACHING_UTIL_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

namespace nsc {

/// One retrieval result: the candidate's row index within the swept slab
/// and its score.
struct TopKEntry {
  double score = 0.0;
  std::size_t index = 0;
};

/// Retrieval order: higher score first, equal scores by lower index —
/// i.e. the order of sorting the full score buffer descending with
/// index-ordered tie resolution.
inline bool TopKBetter(const TopKEntry& a, const TopKEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

/// Tile-pruning counters of one retrieval (exposed through
/// CacheRefreshResult into AtomicCacheStats so the pruning rate of the
/// kTop cache refresh is observable).
struct TopKSweepStats {
  std::size_t tiles = 0;         ///< Candidate tiles scored.
  std::size_t pruned_tiles = 0;  ///< Tiles whose max failed the threshold
                                 ///< test — zero heap work.
};

/// Bounded "best K (score desc, index asc)" accumulator. Reusable: Reset()
/// keeps the heap storage, so a thread_local collector makes repeated
/// retrievals allocation-free after warm-up.
class TopKCollector {
 public:
  /// Candidates per tile: the granularity of the threshold test in every
  /// fused kernel and the generic fallback. 256 doubles = one 2 KB
  /// L1-resident score buffer.
  static constexpr std::size_t kTileSize = 256;

  explicit TopKCollector(std::size_t k = 0) { Reset(k); }

  /// Empties the collector for a new retrieval of `k` results. Heap
  /// storage is retained.
  void Reset(std::size_t k) {
    k_ = k;
    heap_.clear();
    heap_.reserve(k);
    // k == 0 keeps the threshold at +inf so nothing ever qualifies.
    threshold_ = k == 0 ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
    index_base_ = 0;
    stats_ = TopKSweepStats();
  }

  /// Global offset added to every offered index when it is kept. Sharded
  /// sweeps drive one kernel call per shard with slab-relative indices;
  /// setting the base to the shard's first global row before each call
  /// makes the collected entries carry global ids while the kernels stay
  /// shard-oblivious. Offers must still arrive in increasing GLOBAL
  /// index order across calls (shards are swept in row order), so the
  /// tie contract is unchanged. Reset() restores 0.
  void set_index_base(std::size_t base) { index_base_ = base; }
  std::size_t index_base() const { return index_base_; }

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Strict qualification threshold: with the heap full, a candidate can
  /// only enter with score > threshold() (equal-scored later candidates
  /// lose the index tie), so a tile whose max is <= threshold() cannot
  /// change the result. -inf until the heap is full, then the running
  /// K-th-best score — the register the fused kernels test tiles against.
  double threshold() const { return threshold_; }

  /// Offers one candidate. Candidates MUST arrive in increasing index
  /// order; the strict > test then yields index-ordered tie resolution
  /// with no index comparisons on the hot path.
  void Offer(double score, std::size_t index) {
    if (full() && !(score > threshold_)) return;
    OfferQualified(score, index);
  }

  /// Offers one tile of `n` scores for slab rows [base_index,
  /// base_index + n): the generic (scalar) tile path — max-prune first,
  /// per-element threshold test only when the tile qualifies. The SIMD
  /// kernels implement the same contract with vector max / movemask and
  /// account their tiles through CountTile()/CountPrunedTile().
  void OfferTile(const double* scores, std::size_t base_index, std::size_t n) {
    ++stats_.tiles;
    if (full()) {
      double mx = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, scores[i]);
      if (!(mx > threshold_)) {
        ++stats_.pruned_tiles;
        return;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (scores[i] > threshold_) OfferQualified(scores[i], base_index + i);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) Offer(scores[i], base_index + i);
    }
  }

  /// Tile accounting hooks for kernels that run their own tile loop.
  void CountTile() { ++stats_.tiles; }
  void CountPrunedTile() { ++stats_.pruned_tiles; }

  const TopKSweepStats& stats() const { return stats_; }

  /// Moves the collected entries into `out`, best-first (TopKBetter
  /// order). The collector is left empty (call Reset before reuse);
  /// storage is retained.
  void ExtractSorted(std::vector<TopKEntry>* out) {
    out->assign(heap_.begin(), heap_.end());
    std::sort(out->begin(), out->end(), TopKBetter);
    heap_.clear();
  }

 private:
  /// Worst-at-front heap order: under std::push_heap's max-heap semantics
  /// with TopKBetter as the "less than", the front is the entry no other
  /// entry is worse than — the current K-th best.
  static bool HeapOrder(const TopKEntry& a, const TopKEntry& b) {
    return TopKBetter(a, b);
  }

  /// Slow path: the candidate is known to qualify (heap not full, or
  /// score strictly above the threshold).
  void OfferQualified(double score, std::size_t index) {
    index += index_base_;
    if (heap_.size() < k_) {
      heap_.push_back({score, index});
      std::push_heap(heap_.begin(), heap_.end(), HeapOrder);
      if (heap_.size() == k_) threshold_ = heap_.front().score;
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), HeapOrder);
    heap_.back() = {score, index};
    std::push_heap(heap_.begin(), heap_.end(), HeapOrder);
    threshold_ = heap_.front().score;
  }

  std::size_t k_ = 0;
  std::size_t index_base_ = 0;
  double threshold_ = std::numeric_limits<double>::infinity();
  std::vector<TopKEntry> heap_;
  TopKSweepStats stats_;
};

}  // namespace nsc

#endif  // NSCACHING_UTIL_TOPK_H_
