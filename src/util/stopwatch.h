// Wall-clock stopwatch used for the convergence-vs-time experiments
// (Figures 2-5 of the paper) and for the Table I timing micro-benchmarks.
#ifndef NSCACHING_UTIL_STOPWATCH_H_
#define NSCACHING_UTIL_STOPWATCH_H_

#include <chrono>

namespace nsc {

/// Monotonic stopwatch with pause/resume, so evaluation time can be
/// excluded from reported training time.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  /// Restarts from zero.
  void Start() {
    accumulated_ = Duration::zero();
    running_ = true;
    last_start_ = Clock::now();
  }

  /// Pauses accumulation (no-op if already paused).
  void Pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - last_start_;
    running_ = false;
  }

  /// Resumes accumulation (no-op if running).
  void Resume() {
    if (running_) return;
    running_ = true;
    last_start_ = Clock::now();
  }

  /// Elapsed seconds (includes the in-progress interval when running).
  double Seconds() const {
    Duration d = accumulated_;
    if (running_) d += Clock::now() - last_start_;
    return std::chrono::duration<double>(d).count();
  }

  double Milliseconds() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;

  Duration accumulated_ = Duration::zero();
  Clock::time_point last_start_;
  bool running_ = false;
};

}  // namespace nsc

#endif  // NSCACHING_UTIL_STOPWATCH_H_
