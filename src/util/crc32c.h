// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
// the checksum guarding checkpoint integrity (format NSCKPT02, see
// embedding/checkpoint.h). Software table implementation, stdlib only:
// checkpoint I/O is disk-bound, so a hardware CRC would not move the
// needle, and the scalar table keeps the value identical on every
// platform the kernels dispatch to.
#ifndef NSCACHING_UTIL_CRC32C_H_
#define NSCACHING_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace nsc {

/// Extends a running CRC-32C over `size` more bytes. Seed with 0:
///   crc = Crc32c(0, a, an); crc = Crc32c(crc, b, bn);
/// equals Crc32c(0, a+b concatenated).
uint32_t Crc32c(uint32_t crc, const void* data, std::size_t size);

}  // namespace nsc

#endif  // NSCACHING_UTIL_CRC32C_H_
