// Runtime-dispatched SIMD kernels for the batched scoring hot path.
//
// NSCaching makes sampling overhead negligible, so ScoreBatch/BackwardBatch
// dominate every epoch. This layer gives the three specialised scorers
// (TransE, DistMult, ComplEx) one vectorised inner loop per batch, chosen
// once at runtime from what the binary was compiled with AND what the CPU
// actually supports:
//
//   AVX2      — x86-64, 8-float lanes (simd_avx2.cc, built with -mavx2
//               when the compiler supports it; safe to carry on any x86
//               binary because the path is only taken after a CPUID check);
//   NEON      — aarch64, 4-float lanes (baseline on that architecture);
//   scalar    — everywhere, bit-identical to the pre-SIMD batch loops.
//
// Numerical contract: score kernels form each per-triple term in double
// exactly as the scalar loops do (float products widened to double), so
// SIMD and scalar scores differ only by reduction order — a few double
// ULPs. Backward kernels mirror the scalar loops' float operation order
// and do not use FMA contraction, so gradients agree to float-ULP level.
// simd_parity_test fuzzes both claims across every scorer, dim tail, batch
// size and table layout.
//
// Testing knobs: NSC_FORCE_SCALAR=1 forces the scalar path for the whole
// process (read once, before first dispatch); ForcePath()/ScopedForcePath
// override it programmatically within a test.
#ifndef NSCACHING_UTIL_SIMD_H_
#define NSCACHING_UTIL_SIMD_H_

#include <cstddef>

namespace nsc {

class TopKCollector;  // util/topk.h — bounded heap of the top-K kernels.

namespace simd {

/// Lane multiple (in floats) the padded EmbeddingTable layout rounds row
/// widths up to: one AVX2 ymm register. NEON uses 4-float lanes but pads
/// to the same multiple so the storage layout is ISA-independent — a
/// process never mixes layouts no matter which dispatch path is active.
inline constexpr int kPadLanes = 8;

/// Byte alignment of every padded row (and of the table base pointer).
inline constexpr std::size_t kRowAlignment = 64;

/// `width` rounded up to the next multiple of kPadLanes.
constexpr int PaddedWidth(int width) {
  return (width + kPadLanes - 1) / kPadLanes * kPadLanes;
}

/// The dispatchable kernel implementations.
enum class Path { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Human-readable name ("scalar", "avx2", "neon").
const char* PathName(Path path);

/// True when `path`'s kernels are compiled into this binary and the CPU
/// supports them (kScalar is always available).
bool PathAvailable(Path path);

/// The best available path ignoring NSC_FORCE_SCALAR and ForcePath().
Path BestAvailablePath();

/// The path batched scoring actually dispatches to right now: a forced
/// override if one is active, else NSC_FORCE_SCALAR, else the best
/// available path. The environment is consulted once and cached.
Path ActivePath();
const char* ActivePathName();

/// Overrides dispatch for the whole process (CHECKs PathAvailable). Used
/// by the parity tests to compare SIMD against forced-scalar in-process.
void ForcePath(Path path);
void ClearForcedPath();

/// RAII override for tests.
class ScopedForcePath {
 public:
  explicit ScopedForcePath(Path path) { ForcePath(path); }
  ~ScopedForcePath() { ClearForcedPath(); }
  ScopedForcePath(const ScopedForcePath&) = delete;
  ScopedForcePath& operator=(const ScopedForcePath&) = delete;
};

/// Batched kernels over per-triple row pointers (the ScoringFunction
/// ScoreBatch/BackwardBatch calling convention). `dim` is the model
/// dimension: for ComplEx the rows are 2*dim wide ([re | im]); for TransE
/// and DistMult they are dim wide. Backward kernels process triples in
/// order (gradient pointers may alias across triples) and accumulate +=.
///
/// Sweep kernels are the 1-vs-all primitive (ScoringFunction::
/// ScoreAllCandidates): one fixed (entity, relation) pair is scored
/// against `count` candidate entity rows stored contiguously at
/// `base + i * stride` floats — an EmbeddingTable slab. *_head variants
/// score f(cand, r, t) with fixed_e = the tail row; *_tail variants score
/// f(h, r, cand) with fixed_e = the head row. No per-candidate pointer
/// arrays: the candidate stream is the only strided access, the fixed
/// rows (or their widened products) stay in registers/L1. Score terms are
/// formed in double exactly as the scalar loops (a product of two floats
/// is exact in double, so any association of a triple product rounds
/// identically), preserving the batch kernels' parity contract.
///
/// Sweep→top-K kernels (ScoringFunction::TopKCandidates) fuse the same
/// per-candidate sweep arithmetic with bounded-heap retrieval: scores are
/// formed one kTileSize tile at a time in an L1-resident buffer, the
/// tile's SIMD max is tested against the collector's running K-th-best
/// threshold, and only tiles that pass fall into per-lane movemask
/// insertion — the |E|-double score buffer is never materialized. Because
/// each tile reuses the corresponding sweep kernel's exact per-candidate
/// math, the retrieved set is bit-identical to sorting that sweep's full
/// buffer (see util/topk.h for the tie contract).
///
/// Batched sweep→top-K kernels answer `nq` independent retrievals in ONE
/// pass over the candidate slab: each tile is scored for every query
/// while it is L1-resident, so the slab is streamed from memory once
/// instead of nq times. fixed_e/fixed_r/collectors are parallel arrays,
/// one slot per query. Per query the per-candidate arithmetic is exactly
/// the single-query kernel's (a read-only tile shared across queries
/// changes no FP op), so each query's result is bit-identical to its own
/// single-query retrieval.
struct ScorerKernels {
  using ScoreFn = void (*)(const float* const* h, const float* const* r,
                           const float* const* t, int dim, std::size_t n,
                           double* out);
  using BackwardFn = void (*)(const float* const* h, const float* const* r,
                              const float* const* t, int dim, std::size_t n,
                              const float* coeff, float* const* gh,
                              float* const* gr, float* const* gt);
  using SweepFn = void (*)(const float* fixed_e, const float* fixed_r,
                           const float* base, std::size_t stride,
                           std::size_t count, int dim, double* out);
  using SweepTopKFn = void (*)(const float* fixed_e, const float* fixed_r,
                               const float* base, std::size_t stride,
                               std::size_t count, int dim,
                               TopKCollector* collector);
  using SweepTopKBatchFn = void (*)(const float* const* fixed_e,
                                    const float* const* fixed_r,
                                    std::size_t nq, const float* base,
                                    std::size_t stride, std::size_t count,
                                    int dim, TopKCollector* const* collectors);

  ScoreFn transe_score;
  BackwardFn transe_backward;
  ScoreFn distmult_score;
  BackwardFn distmult_backward;
  ScoreFn complex_score;
  BackwardFn complex_backward;
  SweepFn transe_sweep_head;
  SweepFn transe_sweep_tail;
  SweepFn distmult_sweep_head;
  SweepFn distmult_sweep_tail;
  SweepFn complex_sweep_head;
  SweepFn complex_sweep_tail;
  SweepTopKFn transe_topk_head;
  SweepTopKFn transe_topk_tail;
  SweepTopKFn distmult_topk_head;
  SweepTopKFn distmult_topk_tail;
  SweepTopKFn complex_topk_head;
  SweepTopKFn complex_topk_tail;
  SweepTopKBatchFn transe_topk_batch_head;
  SweepTopKBatchFn transe_topk_batch_tail;
  SweepTopKBatchFn distmult_topk_batch_head;
  SweepTopKBatchFn distmult_topk_batch_tail;
  SweepTopKBatchFn complex_topk_batch_head;
  SweepTopKBatchFn complex_topk_batch_tail;
};

/// Kernel table for an explicit path (CHECKs PathAvailable).
const ScorerKernels& KernelsFor(Path path);

/// Kernel table for ActivePath() — what the scorers call per batch.
inline const ScorerKernels& Kernels() { return KernelsFor(ActivePath()); }

}  // namespace simd
}  // namespace nsc

#endif  // NSCACHING_UTIL_SIMD_H_
