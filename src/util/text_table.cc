#include "util/text_table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace nsc {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void TextTable::AddSeparator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string TextTable::Render() const {
  size_t num_cols = header_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.cells.size());
  std::vector<size_t> widths(num_cols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    if (!row.separator) widen(row.cells);
  }

  size_t total = 0;
  for (size_t w : widths) total += w + 2;

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < num_cols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      out << std::string(total, '-') << '\n';
    } else {
      emit(row.cells);
    }
  }
  return out.str();
}

std::string TextTable::Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TextTable::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace nsc
