// Tab-separated-value reading/writing for KG triple files in the standard
// "head<TAB>relation<TAB>tail" format used by WN18/FB15K releases.
#ifndef NSCACHING_UTIL_TSV_H_
#define NSCACHING_UTIL_TSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace nsc {

/// Splits one line on '\t'. Empty fields are preserved.
std::vector<std::string> SplitTsvLine(const std::string& line);

/// Reads all lines of `path` and splits each on tabs. Skips lines that are
/// entirely empty. Returns IOError if the file cannot be opened.
StatusOr<std::vector<std::vector<std::string>>> ReadTsvFile(
    const std::string& path);

/// Writes rows joined by tabs, one per line. Returns IOError on failure.
Status WriteTsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace nsc

#endif  // NSCACHING_UTIL_TSV_H_
