#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace nsc {

int64_t GetEnvInt(const char* name, int64_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at flag-
  // parse time, before any worker thread exists; nothing calls setenv.
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

double GetEnvDouble(const char* name, double fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at flag-
  // parse time, before any worker thread exists; nothing calls setenv.
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

bool GetEnvBool(const char* name, bool fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at flag-
  // parse time, before any worker thread exists; nothing calls setenv.
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  if (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
      std::strcmp(v, "on") == 0 || std::strcmp(v, "yes") == 0) {
    return true;
  }
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
      std::strcmp(v, "off") == 0 || std::strcmp(v, "no") == 0) {
    return false;
  }
  return fallback;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at flag-
  // parse time, before any worker thread exists; nothing calls setenv.
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace nsc
