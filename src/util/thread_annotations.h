// Portable Clang thread-safety-analysis annotation macros.
//
// Under Clang these expand to the capability attributes that power
// -Wthread-safety (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html);
// under every other compiler they expand to nothing, so annotated code
// stays warning-clean on GCC. CI builds the whole tree with
//   clang++ -Wthread-safety -Wthread-safety-beta -Werror
// which turns every lock-protocol violation the analysis can see into a
// compile error (the static-analysis job; see README "Static analysis").
//
// Vocabulary (all macros are no-ops outside Clang):
//   NSC_CAPABILITY(name)      — class is a capability (e.g. a mutex type).
//   NSC_SCOPED_CAPABILITY     — RAII class that acquires on construction
//                               and releases on destruction; the object
//                               itself can be named in NSC_REQUIRES.
//   NSC_GUARDED_BY(mu)        — field may only be accessed holding mu.
//   NSC_PT_GUARDED_BY(mu)     — pointee may only be accessed holding mu.
//   NSC_REQUIRES(...)         — function requires the capabilities held.
//   NSC_ACQUIRE(...)/NSC_RELEASE(...)
//                             — function acquires/releases them.
//   NSC_TRY_ACQUIRE(b, ...)   — try-lock; returns b on success.
//   NSC_EXCLUDES(...)         — caller must NOT hold them (deadlock guard).
//   NSC_ASSERT_CAPABILITY(...)— runtime assertion that they are held; adds
//                               the fact to the analysis state. With no
//                               argument, applies to `this`.
//   NSC_RETURN_CAPABILITY(mu) — function returns a reference to mu.
//   NSC_NO_THREAD_SAFETY_ANALYSIS
//                             — opt a function out; every use must carry a
//                               reason comment (the same rule as NOLINT in
//                               .clang-tidy — see README).
//
// The capability expressions passed to these macros must stay
// UNPARENTHESIZED (`NSC_GUARDED_BY(mu)`, not `(mu)`): they are attribute
// arguments, not value expressions, and the analysis matches them
// syntactically. (This is also why bugprone-macro-parentheses is disabled
// for this header's idiom in .clang-tidy.)
#ifndef NSCACHING_UTIL_THREAD_ANNOTATIONS_H_
#define NSCACHING_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define NSC_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define NSC_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define NSC_CAPABILITY(x) NSC_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define NSC_SCOPED_CAPABILITY NSC_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define NSC_GUARDED_BY(x) NSC_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define NSC_PT_GUARDED_BY(x) NSC_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define NSC_ACQUIRED_BEFORE(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define NSC_ACQUIRED_AFTER(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define NSC_REQUIRES(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define NSC_REQUIRES_SHARED(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define NSC_ACQUIRE(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define NSC_ACQUIRE_SHARED(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define NSC_RELEASE(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define NSC_RELEASE_SHARED(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define NSC_TRY_ACQUIRE(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define NSC_EXCLUDES(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define NSC_ASSERT_CAPABILITY(...) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(__VA_ARGS__))

#define NSC_RETURN_CAPABILITY(x) \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NSC_NO_THREAD_SAFETY_ANALYSIS \
  NSC_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // NSCACHING_UTIL_THREAD_ANNOTATIONS_H_
