// Retry with capped, jittered exponential backoff — the policy behind
// the snapshot publisher's background checkpoint writer (transient disk
// errors must not silently drop a checkpoint, and a hard-down disk must
// not spin the writer at 100% CPU).
//
// Jitter is deterministic: the delay sequence is a pure function of
// BackoffOptions (including the seed), so failure-scenario tests replay
// the exact waits. Sleeping is pluggable (SleepFn) so callers can wait
// on a condition variable instead — the publisher's writer interrupts a
// backoff sleep the moment shutdown is requested.
#ifndef NSCACHING_UTIL_BACKOFF_H_
#define NSCACHING_UTIL_BACKOFF_H_

#include <cstdint>
#include <functional>

#include "util/rng.h"
#include "util/status.h"

namespace nsc {

/// Policy of RetryWithBackoff.
struct BackoffOptions {
  /// Total tries including the first (>= 1). The op runs at most this
  /// many times.
  int max_attempts = 5;
  /// Delay before the first retry.
  int64_t initial_backoff_us = 1000;
  /// Growth factor per retry (>= 1).
  double multiplier = 2.0;
  /// Cap on any single delay.
  int64_t max_backoff_us = 200'000;
  /// Each delay is scaled by a uniform factor in [1 - jitter, 1 + jitter]
  /// (decorrelates retry storms across writers). 0 disables.
  double jitter = 0.2;
  /// Seed of the jitter RNG — the whole delay sequence is deterministic.
  uint64_t seed = 0xbacc0ff5ULL;
};

/// Computes the (jittered, capped) delay before retry `retry` (0-based).
/// `rng` carries the jitter stream across retries of one operation.
int64_t BackoffDelayUs(const BackoffOptions& options, int retry, Rng* rng);

/// True for codes RetryWithBackoff considers transient (kUnavailable,
/// kIOError, kDeadlineExceeded); everything else fails fast.
bool IsRetryableCode(StatusCode code);

/// Sleeps for the given microseconds; returns false to cancel remaining
/// retries (e.g. shutdown observed while waiting).
using SleepFn = std::function<bool(int64_t sleep_us)>;

/// Invoked after each failed attempt with its status and the 0-based
/// attempt index — the hook counters hang off.
using RetryObserver = std::function<void(const Status& status, int attempt)>;

/// Runs `op` until it returns OK or a non-retryable code, up to
/// options.max_attempts tries, sleeping a jittered exponential delay
/// between tries. Returns the final status. `sleep` defaults to a real
/// sleep; returning false from it stops retrying immediately (the last
/// failure is returned). `on_failure` (optional) observes every failed
/// attempt, including the final one.
Status RetryWithBackoff(const BackoffOptions& options,
                        const std::function<Status()>& op,
                        const SleepFn& sleep = SleepFn(),
                        const RetryObserver& on_failure = RetryObserver());

}  // namespace nsc

#endif  // NSCACHING_UTIL_BACKOFF_H_
