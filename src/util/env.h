// Environment-variable knobs shared by the benchmark binaries, so the whole
// harness can be scaled up/down (NSC_SCALE, NSC_EPOCHS, NSC_FULL, ...)
// without recompiling.
#ifndef NSCACHING_UTIL_ENV_H_
#define NSCACHING_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace nsc {

/// Returns the env var value or `fallback` when unset/unparsable.
int64_t GetEnvInt(const char* name, int64_t fallback);
double GetEnvDouble(const char* name, double fallback);
bool GetEnvBool(const char* name, bool fallback);
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace nsc

#endif  // NSCACHING_UTIL_ENV_H_
