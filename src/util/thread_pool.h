// Fixed-size worker pool with a ParallelFor convenience, used to
// parallelise filtered link-prediction evaluation over test triples.
// Work items receive a worker index so callers can use per-worker state
// (e.g. split RNG streams) without locking.
//
// Lock protocol (machine-checked by -Wthread-safety, see README "Static
// analysis"): every queue field is NSC_GUARDED_BY(mu_); tasks execute
// OUTSIDE the lock; the public entry points are NSC_EXCLUDES(mu_), so a
// task that re-enters the pool (Schedule from inside a task) cannot
// self-deadlock on the queue mutex.
#ifndef NSCACHING_UTIL_THREAD_POOL_H_
#define NSCACHING_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nsc {

/// A simple blocking thread pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>=1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; it receives the index of the worker that runs it.
  void Schedule(std::function<void(int worker)> task) NSC_EXCLUDES(mu_);

  /// Blocks until all scheduled tasks have completed.
  void Wait() NSC_EXCLUDES(mu_);

  /// Runs fn(i, worker) for i in [begin, end) across the pool and waits.
  /// Iterations are distributed in contiguous chunks.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t i, int worker)>& fn)
      NSC_EXCLUDES(mu_);

 private:
  void WorkerLoop(int worker_index) NSC_EXCLUDES(mu_);

  // Written only by the constructor; joined by the destructor. Read-only
  // (size) everywhere else, so no guard is needed after construction.
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::function<void(int)>> tasks_ NSC_GUARDED_BY(mu_);
  size_t in_flight_ NSC_GUARDED_BY(mu_) = 0;
  bool shutdown_ NSC_GUARDED_BY(mu_) = false;
};

/// Number of hardware threads, at least 1.
int DefaultThreadCount();

}  // namespace nsc

#endif  // NSCACHING_UTIL_THREAD_POOL_H_
