// Fixed-size worker pool with a ParallelFor convenience, used to
// parallelise filtered link-prediction evaluation over test triples.
// Work items receive a worker index so callers can use per-worker state
// (e.g. split RNG streams) without locking.
#ifndef NSCACHING_UTIL_THREAD_POOL_H_
#define NSCACHING_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nsc {

/// A simple blocking thread pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>=1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; it receives the index of the worker that runs it.
  void Schedule(std::function<void(int worker)> task);

  /// Blocks until all scheduled tasks have completed.
  void Wait();

  /// Runs fn(i, worker) for i in [begin, end) across the pool and waits.
  /// Iterations are distributed in contiguous chunks.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t i, int worker)>& fn);

 private:
  void WorkerLoop(int worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void(int)>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Number of hardware threads, at least 1.
int DefaultThreadCount();

}  // namespace nsc

#endif  // NSCACHING_UTIL_THREAD_POOL_H_
