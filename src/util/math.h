// Small numeric kernels shared across the embedding and sampling code:
// stable softmax / logsumexp, vector primitives, and Gumbel-top-k sampling
// without replacement (used by the NSCaching importance-sampling cache
// update, Algorithm 3 of the paper).
#ifndef NSCACHING_UTIL_MATH_H_
#define NSCACHING_UTIL_MATH_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace nsc {

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
double LogSumExp(const std::vector<double>& x);

/// Replaces x by softmax(x) with max-subtraction for stability.
void SoftmaxInPlace(std::vector<double>* x);

/// Logistic sigmoid 1/(1+exp(-x)), stable for large |x|.
double Sigmoid(double x);

/// log(1 + exp(x)), stable for large |x| (softplus).
double Log1pExp(double x);

/// Dot product of two length-n float arrays.
float Dot(const float* a, const float* b, int n);

/// Euclidean norm of a length-n float array.
float L2Norm(const float* a, int n);

/// Sum_i |a_i|.
float L1Norm(const float* a, int n);

/// y += alpha * x for length-n arrays.
void Axpy(float alpha, const float* x, float* y, int n);

/// Scales a length-n array in place.
void Scale(float alpha, float* a, int n);

/// Samples k distinct indices from {0..logits.size()-1} with probability
/// proportional to exp(logits[i]), *without replacement*, via the
/// Gumbel-top-k trick: argtop-k of logits[i] + Gumbel noise. Requires
/// k <= logits.size(). The returned indices are in no particular order.
std::vector<int> GumbelTopK(const std::vector<double>& logits, int k, Rng* rng);

/// Deterministic top-k: indices of the k largest values (ties broken by
/// lower index). Requires k <= values.size().
std::vector<int> TopK(const std::vector<double>& values, int k);

}  // namespace nsc

#endif  // NSCACHING_UTIL_MATH_H_
