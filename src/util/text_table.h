// Console table renderer used by the benchmark harness to print
// paper-style tables (Table II, IV, V, ...) with aligned columns.
#ifndef NSCACHING_UTIL_TEXT_TABLE_H_
#define NSCACHING_UTIL_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace nsc {

/// Accumulates rows of strings and renders them with per-column padding.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row (may have fewer cells than the header).
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table; every column padded to its widest cell, columns
  /// separated by two spaces, separator rows drawn with dashes.
  std::string Render() const;

  /// Convenience numeric formatting helpers.
  static std::string Fixed(double v, int digits);
  static std::string Int(long long v);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace nsc

#endif  // NSCACHING_UTIL_TEXT_TABLE_H_
