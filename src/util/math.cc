#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace nsc {

double LogSumExp(const std::vector<double>& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double v : x) sum += std::exp(v - m);
  return m + std::log(sum);
}

void SoftmaxInPlace(std::vector<double>* x) {
  if (x->empty()) return;
  const double m = *std::max_element(x->begin(), x->end());
  double sum = 0.0;
  for (double& v : *x) {
    v = std::exp(v - m);
    sum += v;
  }
  for (double& v : *x) v /= sum;
}

double Sigmoid(double x) {
  if (x >= 0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double Log1pExp(double x) {
  if (x > 35.0) return x;
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

float Dot(const float* a, const float* b, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

float L2Norm(const float* a, int n) { return std::sqrt(Dot(a, a, n)); }

float L1Norm(const float* a, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) s += std::fabs(a[i]);
  return s;
}

void Axpy(float alpha, const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, float* a, int n) {
  for (int i = 0; i < n; ++i) a[i] *= alpha;
}

std::vector<int> GumbelTopK(const std::vector<double>& logits, int k, Rng* rng) {
  CHECK_LE(static_cast<size_t>(k), logits.size());
  std::vector<std::pair<double, int>> keyed(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    keyed[i] = {logits[i] + rng->Gumbel(), static_cast<int>(i)};
  }
  std::partial_sort(keyed.begin(), keyed.begin() + k, keyed.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<int> out(k);
  for (int i = 0; i < k; ++i) out[i] = keyed[i].second;
  return out;
}

std::vector<int> TopK(const std::vector<double>& values, int k) {
  CHECK_LE(static_cast<size_t>(k), values.size());
  std::vector<int> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](int a, int b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace nsc
