#include "util/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace nsc {

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, const FaultSpec& spec) {
  MutexLock lock(&mu_);
  auto [it, inserted] = points_.insert_or_assign(point, ArmedPoint{});
  it->second.spec = spec;
  it->second.rng = Rng(spec.seed);
  if (inserted) {
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(&mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

FaultPointStats FaultRegistry::stats(const std::string& point) const {
  MutexLock lock(&mu_);
  const auto it = points_.find(point);
  return it != points_.end() ? it->second.counters : FaultPointStats{};
}

FaultHit FaultRegistry::EvaluateSlow(const char* point) {
  FaultHit hit;
  int64_t sleep_us = 0;
  {
    MutexLock lock(&mu_);
    const auto it = points_.find(point);
    if (it == points_.end()) return FaultHit{};
    ArmedPoint& armed = it->second;
    const FaultSpec& spec = armed.spec;
    const uint64_t hit_index = ++armed.counters.hits;  // 1-based.

    if (spec.max_triggers >= 0 &&
        armed.counters.triggers >=
            static_cast<uint64_t>(spec.max_triggers)) {
      return FaultHit{};
    }
    bool fires = false;
    switch (spec.trigger) {
      case FaultTrigger::kAlways:
        fires = true;
        break;
      case FaultTrigger::kNthHit:
        fires = hit_index == spec.n;
        break;
      case FaultTrigger::kEveryKth:
        fires = spec.n > 0 && hit_index % spec.n == 0;
        break;
      case FaultTrigger::kProbability:
        fires = armed.rng.Bernoulli(spec.probability);
        break;
    }
    if (!fires) return FaultHit{};
    ++armed.counters.triggers;
    hit.fired = true;
    hit.action = spec.action;
    hit.truncate_at = spec.truncate_at;
    sleep_us = spec.latency_us;
  }
  // Latency and abort resolve here, outside the lock: a sleeping fault
  // must not serialize every other point's evaluation behind it.
  if (hit.action == FaultAction::kAbort) {
    std::fprintf(stderr, "fault: injected abort at point '%s'\n", point);
    std::fflush(stderr);
    std::abort();
  }
  if (hit.action == FaultAction::kLatency) {
    if (sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
    // The site proceeds normally — latency faults only delay.
    return FaultHit{};
  }
  return hit;
}

}  // namespace nsc
