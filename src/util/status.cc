#include "util/status.h"

namespace nsc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace nsc
