#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace nsc {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CHECK_GT(n, 0ULL);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gumbel() {
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(-std::log(u));
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CHECK_GE(w, 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0);
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against floating-point drift.
}

Rng Rng::Split() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace nsc
