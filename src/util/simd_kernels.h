// Internal registry glue between simd.cc (dispatch) and the per-ISA
// translation units. Each GetXxxKernels() returns nullptr when that ISA's
// kernels are not compiled into this binary; availability of the CPU
// feature itself is checked separately by the dispatcher.
#ifndef NSCACHING_UTIL_SIMD_KERNELS_H_
#define NSCACHING_UTIL_SIMD_KERNELS_H_

#include "util/simd.h"

namespace nsc {
namespace simd {
namespace internal {

/// Always non-null; bit-identical to the pre-SIMD per-scorer batch loops.
const ScorerKernels* GetScalarKernels();

/// Non-null iff simd_avx2.cc was built with AVX2+FMA codegen.
const ScorerKernels* GetAvx2Kernels();

/// Non-null iff built for an aarch64/NEON target.
const ScorerKernels* GetNeonKernels();

}  // namespace internal
}  // namespace simd
}  // namespace nsc

#endif  // NSCACHING_UTIL_SIMD_KERNELS_H_
