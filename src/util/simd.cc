#include "util/simd.h"

#include <atomic>
#include <cmath>
#include <vector>

#include "util/env.h"
#include "util/logging.h"
#include "util/simd_kernels.h"
#include "util/topk.h"

namespace nsc {
namespace simd {

namespace {

// ---- Scalar kernels --------------------------------------------------------
// These are the reference implementations: the exact loops the specialised
// scorers ran before the dispatch layer existed. Per-triple terms are
// formed in double precision where the originals did, so the scalar path
// reproduces pre-SIMD training bit-for-bit.

inline float Sign(float x) {
  return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
}

void TransEScoreScalar(const float* const* h, const float* const* r,
                       const float* const* t, int dim, std::size_t n,
                       double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    double s = 0.0;
    for (int k = 0; k < dim; ++k) s += std::fabs(hv[k] + rv[k] - tv[k]);
    out[i] = -s;
  }
}

void TransEBackwardScalar(const float* const* h, const float* const* r,
                          const float* const* t, int dim, std::size_t n,
                          const float* coeff, float* const* gh,
                          float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    for (int k = 0; k < dim; ++k) {
      const float sg = c * Sign(hv[k] + rv[k] - tv[k]);
      ghv[k] -= sg;
      grv[k] -= sg;
      gtv[k] += sg;
    }
  }
}

void DistMultScoreScalar(const float* const* h, const float* const* r,
                         const float* const* t, int dim, std::size_t n,
                         double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    double s = 0.0;
    for (int k = 0; k < dim; ++k) s += double(hv[k]) * rv[k] * tv[k];
    out[i] = s;
  }
}

void DistMultBackwardScalar(const float* const* h, const float* const* r,
                            const float* const* t, int dim, std::size_t n,
                            const float* coeff, float* const* gh,
                            float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    for (int k = 0; k < dim; ++k) {
      ghv[k] += c * rv[k] * tv[k];
      grv[k] += c * hv[k] * tv[k];
      gtv[k] += c * hv[k] * rv[k];
    }
  }
}

void ComplExScoreScalar(const float* const* h, const float* const* r,
                        const float* const* t, int dim, std::size_t n,
                        double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    double s = 0.0;
    for (int k = 0; k < dim; ++k) {
      s += double(hr[k]) * rr[k] * tr[k] + double(hi[k]) * rr[k] * ti[k] +
           double(hr[k]) * ri[k] * ti[k] - double(hi[k]) * ri[k] * tr[k];
    }
    out[i] = s;
  }
}

void ComplExBackwardScalar(const float* const* h, const float* const* r,
                           const float* const* t, int dim, std::size_t n,
                           const float* coeff, float* const* gh,
                           float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    for (int k = 0; k < dim; ++k) {
      ghv[k] += c * (rr[k] * tr[k] + ri[k] * ti[k]);
      ghv[dim + k] += c * (rr[k] * ti[k] - ri[k] * tr[k]);
      grv[k] += c * (hr[k] * tr[k] + hi[k] * ti[k]);
      grv[dim + k] += c * (hr[k] * ti[k] - hi[k] * tr[k]);
      gtv[k] += c * (hr[k] * rr[k] - hi[k] * ri[k]);
      gtv[dim + k] += c * (hi[k] * rr[k] + hr[k] * ri[k]);
    }
  }
}

// ---- Scalar 1-vs-all sweep kernels -----------------------------------------
// Literal transcriptions of the scalar Score loops with the candidate row
// substituted for one side, so a forced-scalar sweep is bit-identical to
// per-candidate scalar scoring (the link-prediction parity test pins this).

void TransESweepHeadScalar(const float* fixed_e, const float* fixed_r,
                           const float* base, std::size_t stride,
                           std::size_t count, int dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    double s = 0.0;
    for (int k = 0; k < dim; ++k) {
      s += std::fabs(cv[k] + fixed_r[k] - fixed_e[k]);
    }
    out[i] = -s;
  }
}

void TransESweepTailScalar(const float* fixed_e, const float* fixed_r,
                           const float* base, std::size_t stride,
                           std::size_t count, int dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    double s = 0.0;
    for (int k = 0; k < dim; ++k) {
      s += std::fabs(fixed_e[k] + fixed_r[k] - cv[k]);
    }
    out[i] = -s;
  }
}

// The DistMult/ComplEx sweeps hoist the pairwise products of the fixed
// rows out of the candidate loop, widened to double. A float × float
// product is exact in double (24-bit × 24-bit significands fit in 53),
// so cand * (x*y) rounds identically to the scalar Score's (cand*x) * y
// — every term is the once-rounded exact triple product either way, and
// the forced-scalar sweep stays bit-identical to per-candidate scoring
// while halving the per-candidate multiply and widening work.

/// Thread-local scratch for the hoisted fixed-pair products.
std::vector<double>& SweepScratch() {
  static thread_local std::vector<double> scratch;
  return scratch;
}

void DistMultSweepScalar(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim, double* out) {
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(dim);
  double* w = scratch.data();
  for (int k = 0; k < dim; ++k) w[k] = double(fixed_e[k]) * fixed_r[k];
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    double s = 0.0;
    for (int k = 0; k < dim; ++k) s += double(cv[k]) * w[k];
    out[i] = s;
  }
}

/// term = cr*a + ci*b + cr*c − ci*d in the scalar loop's t1+t2+t3−t4
/// order; head (cand = h): a = rr*tr, b = rr*ti, c = ri*ti, d = ri*tr.
void ComplExSweepHeadScalar(const float* fixed_e, const float* fixed_r,
                            const float* base, std::size_t stride,
                            std::size_t count, int dim, double* out) {
  const float* rr = fixed_r;
  const float* ri = fixed_r + dim;
  const float* tr = fixed_e;
  const float* ti = fixed_e + dim;
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(4 * dim);
  double* a = scratch.data();
  double* b = a + dim;
  double* c = b + dim;
  double* d = c + dim;
  for (int k = 0; k < dim; ++k) {
    a[k] = double(rr[k]) * tr[k];
    b[k] = double(rr[k]) * ti[k];
    c[k] = double(ri[k]) * ti[k];
    d[k] = double(ri[k]) * tr[k];
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* cr = base + i * stride;
    const float* ci = cr + dim;
    double s = 0.0;
    for (int k = 0; k < dim; ++k) {
      s += double(cr[k]) * a[k] + double(ci[k]) * b[k] + double(cr[k]) * c[k] -
           double(ci[k]) * d[k];
    }
    out[i] = s;
  }
}

/// Tail (cand = t): term = cr*a + ci*b + ci*c − cr*d with a = hr*rr,
/// b = hi*rr, c = hr*ri, d = hi*ri.
void ComplExSweepTailScalar(const float* fixed_e, const float* fixed_r,
                            const float* base, std::size_t stride,
                            std::size_t count, int dim, double* out) {
  const float* hr = fixed_e;
  const float* hi = fixed_e + dim;
  const float* rr = fixed_r;
  const float* ri = fixed_r + dim;
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(4 * dim);
  double* a = scratch.data();
  double* b = a + dim;
  double* c = b + dim;
  double* d = c + dim;
  for (int k = 0; k < dim; ++k) {
    a[k] = double(hr[k]) * rr[k];
    b[k] = double(hi[k]) * rr[k];
    c[k] = double(hr[k]) * ri[k];
    d[k] = double(hi[k]) * ri[k];
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* cr = base + i * stride;
    const float* ci = cr + dim;
    double s = 0.0;
    for (int k = 0; k < dim; ++k) {
      s += double(cr[k]) * a[k] + double(ci[k]) * b[k] + double(ci[k]) * c[k] -
           double(cr[k]) * d[k];
    }
    out[i] = s;
  }
}

// ---- Scalar fused sweep→top-K kernels --------------------------------------
// One shape for every scorer: score a kTileSize tile through the scalar
// sweep kernel into an L1-resident buffer, then hand the tile to the
// bounded-heap collector, whose tile-max threshold test skips heap work
// on tiles with no qualifying candidate. Each tile runs the sweep
// kernel's exact per-candidate arithmetic (sweep scores are
// per-candidate independent), so the retrieved set is bit-identical to
// sorting the full-buffer scalar sweep.

template <ScorerKernels::SweepFn kSweep>
void SweepTopKViaTiles(const float* fixed_e, const float* fixed_r,
                       const float* base, std::size_t stride,
                       std::size_t count, int dim, TopKCollector* collector) {
  double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    kSweep(fixed_e, fixed_r, base + lo * stride, stride, n, dim, tile);
    collector->OfferTile(tile, lo, n);
  }
}

// Batched retrieval, tile-outer / query-inner: each tile of candidate
// rows is scored for every query while it is cache-resident, so the slab
// streams from memory once for all nq queries. Per (tile, query) the
// sweep kernel runs its exact single-query arithmetic (the hoists it
// recomputes per call are deterministic), so every query's retrieval is
// bit-identical to its own single-query run.
template <ScorerKernels::SweepFn kSweep>
void SweepTopKBatchViaTiles(const float* const* fixed_e,
                            const float* const* fixed_r, std::size_t nq,
                            const float* base, std::size_t stride,
                            std::size_t count, int dim,
                            TopKCollector* const* collectors) {
  double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    for (std::size_t q = 0; q < nq; ++q) {
      kSweep(fixed_e[q], fixed_r[q], base + lo * stride, stride, n, dim, tile);
      collectors[q]->OfferTile(tile, lo, n);
    }
  }
}

const ScorerKernels kScalarKernels = {
    TransEScoreScalar,      TransEBackwardScalar,  DistMultScoreScalar,
    DistMultBackwardScalar, ComplExScoreScalar,    ComplExBackwardScalar,
    TransESweepHeadScalar,  TransESweepTailScalar, DistMultSweepScalar,
    DistMultSweepScalar,    ComplExSweepHeadScalar, ComplExSweepTailScalar,
    SweepTopKViaTiles<TransESweepHeadScalar>,
    SweepTopKViaTiles<TransESweepTailScalar>,
    SweepTopKViaTiles<DistMultSweepScalar>,
    SweepTopKViaTiles<DistMultSweepScalar>,
    SweepTopKViaTiles<ComplExSweepHeadScalar>,
    SweepTopKViaTiles<ComplExSweepTailScalar>,
    SweepTopKBatchViaTiles<TransESweepHeadScalar>,
    SweepTopKBatchViaTiles<TransESweepTailScalar>,
    SweepTopKBatchViaTiles<DistMultSweepScalar>,
    SweepTopKBatchViaTiles<DistMultSweepScalar>,
    SweepTopKBatchViaTiles<ComplExSweepHeadScalar>,
    SweepTopKBatchViaTiles<ComplExSweepTailScalar>,
};

// ---- Dispatch --------------------------------------------------------------

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // The sweep/top-K kernels use explicit FMA intrinsics, so the "avx2"
  // path requires both CPUID bits. (FMA is a separate feature flag even
  // though every mainstream AVX2 CPU — Haswell+, Zen+ — also has it.)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Path ResolveAutoPath() {
  if (GetEnvBool("NSC_FORCE_SCALAR", false)) return Path::kScalar;
  return BestAvailablePath();
}

// Forced override; -1 = none. Relaxed atomics suffice: tests force a path
// from one thread before fanning work out.
std::atomic<int> g_forced_path{-1};

}  // namespace

namespace internal {
const ScorerKernels* GetScalarKernels() { return &kScalarKernels; }
}  // namespace internal

const char* PathName(Path path) {
  switch (path) {
    case Path::kScalar: return "scalar";
    case Path::kAvx2: return "avx2";
    case Path::kNeon: return "neon";
  }
  return "unknown";
}

bool PathAvailable(Path path) {
  switch (path) {
    case Path::kScalar:
      return true;
    case Path::kAvx2:
      return internal::GetAvx2Kernels() != nullptr && CpuSupportsAvx2();
    case Path::kNeon:
      return internal::GetNeonKernels() != nullptr;
  }
  return false;
}

Path BestAvailablePath() {
  if (PathAvailable(Path::kAvx2)) return Path::kAvx2;
  if (PathAvailable(Path::kNeon)) return Path::kNeon;
  return Path::kScalar;
}

Path ActivePath() {
  const int forced = g_forced_path.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<Path>(forced);
  static const Path auto_path = ResolveAutoPath();
  return auto_path;
}

const char* ActivePathName() { return PathName(ActivePath()); }

void ForcePath(Path path) {
  CHECK(PathAvailable(path)) << "SIMD path " << PathName(path)
                             << " is not available on this host";
  g_forced_path.store(static_cast<int>(path), std::memory_order_release);
}

void ClearForcedPath() {
  g_forced_path.store(-1, std::memory_order_release);
}

const ScorerKernels& KernelsFor(Path path) {
  CHECK(PathAvailable(path)) << "SIMD path " << PathName(path)
                             << " is not available on this host";
  switch (path) {
    case Path::kAvx2: return *internal::GetAvx2Kernels();
    case Path::kNeon: return *internal::GetNeonKernels();
    case Path::kScalar: break;
  }
  return kScalarKernels;
}

}  // namespace simd
}  // namespace nsc
