#include "util/alias_table.h"

#include <numeric>

#include "util/logging.h"

namespace nsc {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  CHECK_GT(n, 0UL);
  double total = 0.0;
  for (double w : weights) {
    CHECK_GE(w, 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; buckets with p*n < 1 are "small".
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * n;

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;  // Numerical leftovers.
}

size_t AliasTable::Sample(Rng* rng) const {
  const size_t bucket = rng->UniformInt(static_cast<uint64_t>(prob_.size()));
  return rng->Uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::Probability(size_t i) const {
  CHECK_LT(i, normalized_.size());
  return normalized_[i];
}

}  // namespace nsc
