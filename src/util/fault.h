// Deterministic fault injection: named fault points that tests, stress
// suites and benchmarks arm at runtime to prove the robustness behaviors
// the serving and checkpoint layers claim (retry-with-backoff, torn-write
// recovery, overload shedding, deadline expiry).
//
// A fault POINT is a named site in library code:
//
//   if (NSC_FAULT_POINT("ckpt.write").error()) {
//     return Status::IOError("injected ckpt.write failure");
//   }
//
// Unarmed, the point costs one relaxed atomic load of a process-wide
// armed-point counter (no string hash, no lock) — cheap enough for hot
// paths. Under -DNSC_FAULTS=OFF the macro expands to a constant empty
// FaultHit and the whole site folds away at compile time.
//
// A fault SPEC armed on a point has two independent axes:
//
//   - TRIGGER policy — which evaluations fire: always, exactly the Nth
//     hit (1-based), every Kth hit, or independently with probability p
//     from a seeded per-point RNG. All policies are deterministic for a
//     given arm order + seed, so failure scenarios replay bit-for-bit.
//   - ACTION — what a firing evaluation does: kError and kTruncate are
//     returned to the site (the site maps them to its own failure mode:
//     a Status, a torn write of `truncate_at` bytes); kLatency sleeps
//     inside Evaluate before returning un-fired (the site's code path is
//     unchanged, only slower); kAbort flushes a diagnostic and calls
//     std::abort() — the crash-simulation hammer for restart tests.
//
// The registry is process-wide (FaultRegistry::Global()) and thread-safe:
// points are evaluated concurrently from engine workers and the
// checkpoint writer while a test thread arms/disarms. Tests use
// ScopedFault so a failing assertion can never leak an armed fault into
// the next test.
//
// Catalog of the points compiled into the library today (grep
// NSC_FAULT_POINT for ground truth): see README "Fault tolerance".
#ifndef NSCACHING_UTIL_FAULT_H_
#define NSCACHING_UTIL_FAULT_H_

// -DNSC_FAULTS=OFF (CMake) defines NSC_FAULTS=0: every fault point
// compiles out entirely. The registry class itself stays (tests that arm
// faults then observe nothing must still link), only the sites vanish.
#ifndef NSC_FAULTS
#define NSC_FAULTS 1
#endif

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace nsc {

/// What a firing fault point does (see the header comment for which
/// actions resolve inside Evaluate and which are returned to the site).
enum class FaultAction {
  kError,     ///< Site maps the hit to its own error return.
  kLatency,   ///< Evaluate sleeps latency_us, then reports "not fired".
  kTruncate,  ///< Site writes only truncate_at bytes (torn write).
  kAbort,     ///< Evaluate calls std::abort() — simulated crash.
};

/// When an armed fault point fires.
enum class FaultTrigger {
  kAlways,       ///< Every evaluation.
  kNthHit,       ///< Exactly the n-th evaluation (1-based), once.
  kEveryKth,     ///< Evaluations n, 2n, 3n, ...
  kProbability,  ///< Independently with `probability`, seeded RNG.
};

/// A fault armed on a point: trigger policy + action + parameters.
struct FaultSpec {
  FaultAction action = FaultAction::kError;
  FaultTrigger trigger = FaultTrigger::kAlways;
  /// kNthHit: the single 1-based hit that fires. kEveryKth: the period.
  uint64_t n = 1;
  /// kProbability: chance each evaluation fires, in [0, 1].
  double probability = 0.0;
  /// kProbability: seed of the per-point RNG (deterministic replay).
  uint64_t seed = 0x5eedfa17ULL;
  /// kLatency: how long Evaluate sleeps when firing.
  int64_t latency_us = 0;
  /// kTruncate: bytes of the faulted chunk the site should still write.
  uint64_t truncate_at = 0;
  /// Stop firing after this many triggers; -1 = unlimited. (kNthHit
  /// fires at most once regardless.)
  int64_t max_triggers = -1;
};

/// The outcome of evaluating a fault point. Default-constructed = not
/// fired (the unarmed fast path and the NSC_FAULTS=0 expansion).
struct FaultHit {
  bool fired = false;
  FaultAction action = FaultAction::kError;
  uint64_t truncate_at = 0;

  /// True when the site should fail (kError fired).
  bool error() const { return fired && action == FaultAction::kError; }
  /// True when the site should tear its write at truncate_at bytes.
  bool truncated() const {
    return fired && action == FaultAction::kTruncate;
  }
};

/// Per-point evaluation counters, for assertions and bench reporting.
struct FaultPointStats {
  uint64_t hits = 0;      ///< Evaluations while armed.
  uint64_t triggers = 0;  ///< Evaluations that fired.
};

/// Process-wide registry of armed fault points. Thread-safe. Use through
/// FaultRegistry::Global() and the NSC_FAULT_POINT macro.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Arms (or re-arms, resetting counters) `point` with `spec`.
  void Arm(const std::string& point, const FaultSpec& spec)
      NSC_EXCLUDES(mu_);

  /// Disarms `point`; evaluations go back to the one-atomic fast path.
  void Disarm(const std::string& point) NSC_EXCLUDES(mu_);

  /// Disarms everything (test teardown).
  void DisarmAll() NSC_EXCLUDES(mu_);

  /// Evaluates the point. Unarmed registry: one relaxed atomic load.
  /// kLatency sleeps and kAbort aborts in here; kError/kTruncate are
  /// returned for the site to act on.
  FaultHit Evaluate(const char* point) NSC_EXCLUDES(mu_) {
    if (armed_points_.load(std::memory_order_relaxed) == 0) {
      return FaultHit{};
    }
    return EvaluateSlow(point);
  }

  /// Counters of `point` since it was (re-)armed; zeros when unarmed.
  FaultPointStats stats(const std::string& point) const NSC_EXCLUDES(mu_);

 private:
  struct ArmedPoint {
    FaultSpec spec;
    FaultPointStats counters;
    Rng rng{0};  // Re-seeded from spec.seed at Arm.
  };

  FaultRegistry() = default;

  FaultHit EvaluateSlow(const char* point) NSC_EXCLUDES(mu_);

  /// Number of currently armed points — the unarmed fast-path gate.
  std::atomic<int> armed_points_{0};

  mutable Mutex mu_;
  std::unordered_map<std::string, ArmedPoint> points_ NSC_GUARDED_BY(mu_);
};

/// RAII arm/disarm for tests: the fault cannot outlive the scope even
/// when an assertion fails mid-test.
class ScopedFault {
 public:
  ScopedFault(std::string point, const FaultSpec& spec)
      : point_(std::move(point)) {
    FaultRegistry::Global().Arm(point_, spec);
  }
  ~ScopedFault() { FaultRegistry::Global().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  const std::string point_;
};

}  // namespace nsc

#if NSC_FAULTS
/// Evaluates the named fault point (see FaultRegistry::Evaluate).
#define NSC_FAULT_POINT(point) ::nsc::FaultRegistry::Global().Evaluate(point)
#else
#define NSC_FAULT_POINT(point) (::nsc::FaultHit{})
#endif

#endif  // NSCACHING_UTIL_FAULT_H_
