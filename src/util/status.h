// Minimal Status / StatusOr error-handling vocabulary, in the style of
// Arrow / RocksDB: library code on hot paths never throws; fallible
// operations return a Status (or StatusOr<T>) which callers must inspect.
#ifndef NSCACHING_UTIL_STATUS_H_
#define NSCACHING_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace nsc {

/// Error category attached to a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a message. The default
/// constructed Status is OK. Statuses are cheap to copy when OK (no
/// allocation) and cheap enough otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Transient inability to serve (overload shedding, resource down);
  /// retryable — see util/backoff.h.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The caller's deadline expired before the operation ran/finished.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holder of either a value or an error Status. Mirrors the subset of
/// absl::StatusOr used in this codebase. T need not be default
/// constructible.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value — mirrors absl::StatusOr, so `return value;`
  /// works from a StatusOr-returning function.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by contract.
  StatusOr(T value) : status_(), value_(std::move(value)) {}
  /// Implicit from error status; `status.ok()` must be false.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by contract.
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; valid only when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nsc

/// Propagates a non-OK status to the caller.
#define NSC_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::nsc::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // NSCACHING_UTIL_STATUS_H_
