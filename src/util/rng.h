// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit Rng so that
// training runs, benchmarks, and tests are reproducible bit-for-bit for a
// given seed. The generator is xoshiro256**, seeded through splitmix64;
// `Split()` derives an independent stream, which is how per-thread RNGs are
// created for parallel evaluation.
#ifndef NSCACHING_UTIL_RNG_H_
#define NSCACHING_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nsc {

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Standard Gumbel(0,1) variate: -log(-log(U)).
  double Gumbel();

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples an index in [0, weights.size()) proportional to `weights`.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent generator (e.g. one per worker thread).
  Rng Split();

  /// UniformRandomBitGenerator interface, so Rng works with <algorithm>.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// splitmix64 step; exposed for seeding/hashing helpers.
uint64_t SplitMix64(uint64_t* state);

}  // namespace nsc

#endif  // NSCACHING_UTIL_RNG_H_
