#include "util/statistics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace nsc {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> Ccdf(const std::vector<double>& values,
                         const std::vector<double>& thresholds) {
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out(thresholds.size(), 0.0);
  if (sorted.empty()) return out;
  for (size_t j = 0; j < thresholds.size(); ++j) {
    // Count of values >= threshold.
    const auto it =
        std::lower_bound(sorted.begin(), sorted.end(), thresholds[j]);
    out[j] = static_cast<double>(sorted.end() - it) /
             static_cast<double>(sorted.size());
  }
  return out;
}

std::vector<double> LinSpace(double lo, double hi, int n) {
  CHECK_GE(n, 2);
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) out[i] = lo + step * i;
  out.back() = hi;
  return out;
}

}  // namespace nsc
