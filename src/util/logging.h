// Lightweight logging and invariant-checking macros. CHECK failures abort:
// they indicate programmer error, never data-dependent conditions (those
// return Status instead).
#ifndef NSCACHING_UTIL_LOGGING_H_
#define NSCACHING_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace nsc {
namespace internal {

/// Severity levels for LOG().
enum class LogLevel { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Stream-style log sink; flushes the accumulated message on destruction.
/// kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Minimum level that is actually printed (default: kInfo). Tests and
/// benches may raise it to silence progress chatter.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

}  // namespace internal
}  // namespace nsc

#define NSC_LOG_INTERNAL(level) \
  ::nsc::internal::LogMessage(::nsc::internal::LogLevel::level, __FILE__, __LINE__).stream()

#define LOG_INFO NSC_LOG_INTERNAL(kInfo)
#define LOG_WARNING NSC_LOG_INTERNAL(kWarning)
#define LOG_ERROR NSC_LOG_INTERNAL(kError)
#define LOG_FATAL NSC_LOG_INTERNAL(kFatal)

/// Aborts with a message when an invariant is violated.
#define CHECK(cond)                                         \
  if (!(cond)) LOG_FATAL << "CHECK failed: " #cond " "

#define CHECK_OK(status_expr)                               \
  do {                                                      \
    const auto& _st = (status_expr);                        \
    if (!_st.ok()) LOG_FATAL << "CHECK_OK failed: " << _st.ToString(); \
  } while (0)

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // NSCACHING_UTIL_LOGGING_H_
