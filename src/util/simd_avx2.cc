// AVX2 implementations of the batched scorer kernels. This translation
// unit is compiled with -mavx2 (see CMakeLists.txt) when the compiler
// supports it; on other compilers/targets it degrades to a stub that
// reports "not compiled in". The dispatcher only selects these kernels
// after a runtime CPUID check, so shipping them in a generic x86 binary
// is safe.
//
// Numerical contract (see simd.h): score terms are widened to double
// before multiplying, exactly as the scalar loops do, so only the
// reduction order differs; backward kernels mirror the scalar float
// operation order (explicit mul/add intrinsics, no FMA contraction) and
// store each gradient stream chunk-by-chunk so per-slot accumulation
// order is preserved even when gradient pointers alias.
#include "util/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <vector>

namespace nsc {
namespace simd {
namespace {

inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

/// Widens the low/high halves of 8 floats to two 4-double vectors.
inline void Widen(__m256 v, __m256d* lo, __m256d* hi) {
  *lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  *hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

/// Lane-wise sign(x) in {-1, 0, +1} as floats.
inline __m256 SignPs(__m256 x) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 pos = _mm256_and_ps(_mm256_cmp_ps(x, zero, _CMP_GT_OQ), one);
  const __m256 neg = _mm256_and_ps(_mm256_cmp_ps(zero, x, _CMP_GT_OQ), one);
  return _mm256_sub_ps(pos, neg);
}

void TransEScoreAvx2(const float* const* h, const float* const* r,
                     const float* const* t, int dim, std::size_t n,
                     double* out) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(hv + k), _mm256_loadu_ps(rv + k)),
          _mm256_loadu_ps(tv + k));
      const __m256 a = _mm256_and_ps(e, abs_mask);
      __m256d lo, hi;
      Widen(a, &lo, &hi);
      acc_lo = _mm256_add_pd(acc_lo, lo);
      acc_hi = _mm256_add_pd(acc_hi, hi);
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(hv[k] + rv[k] - tv[k]);
    out[i] = -s;
  }
}

void TransEBackwardAvx2(const float* const* h, const float* const* r,
                        const float* const* t, int dim, std::size_t n,
                        const float* coeff, float* const* gh,
                        float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const __m256 cv = _mm256_set1_ps(c);
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(hv + k), _mm256_loadu_ps(rv + k)),
          _mm256_loadu_ps(tv + k));
      const __m256 sg = _mm256_mul_ps(cv, SignPs(e));
      _mm256_storeu_ps(ghv + k, _mm256_sub_ps(_mm256_loadu_ps(ghv + k), sg));
      _mm256_storeu_ps(grv + k, _mm256_sub_ps(_mm256_loadu_ps(grv + k), sg));
      _mm256_storeu_ps(gtv + k, _mm256_add_ps(_mm256_loadu_ps(gtv + k), sg));
    }
    for (; k < dim; ++k) {
      const float d = hv[k] + rv[k] - tv[k];
      const float sg = c * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
      ghv[k] -= sg;
      grv[k] -= sg;
      gtv[k] += sg;
    }
  }
}

void DistMultScoreAvx2(const float* const* h, const float* const* r,
                       const float* const* t, int dim, std::size_t n,
                       double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      __m256d h_lo, h_hi, r_lo, r_hi, t_lo, t_hi;
      Widen(_mm256_loadu_ps(hv + k), &h_lo, &h_hi);
      Widen(_mm256_loadu_ps(rv + k), &r_lo, &r_hi);
      Widen(_mm256_loadu_ps(tv + k), &t_lo, &t_hi);
      acc_lo = _mm256_add_pd(
          acc_lo, _mm256_mul_pd(_mm256_mul_pd(h_lo, r_lo), t_lo));
      acc_hi = _mm256_add_pd(
          acc_hi, _mm256_mul_pd(_mm256_mul_pd(h_hi, r_hi), t_hi));
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += double(hv[k]) * rv[k] * tv[k];
    out[i] = s;
  }
}

void DistMultBackwardAvx2(const float* const* h, const float* const* r,
                          const float* const* t, int dim, std::size_t n,
                          const float* coeff, float* const* gh,
                          float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const __m256 cv = _mm256_set1_ps(c);
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 hvv = _mm256_loadu_ps(hv + k);
      const __m256 rvv = _mm256_loadu_ps(rv + k);
      const __m256 tvv = _mm256_loadu_ps(tv + k);
      // Scalar associativity: g += (c * x) * y.
      const __m256 crv = _mm256_mul_ps(cv, rvv);
      const __m256 chv = _mm256_mul_ps(cv, hvv);
      _mm256_storeu_ps(ghv + k, _mm256_add_ps(_mm256_loadu_ps(ghv + k),
                                              _mm256_mul_ps(crv, tvv)));
      _mm256_storeu_ps(grv + k, _mm256_add_ps(_mm256_loadu_ps(grv + k),
                                              _mm256_mul_ps(chv, tvv)));
      _mm256_storeu_ps(gtv + k, _mm256_add_ps(_mm256_loadu_ps(gtv + k),
                                              _mm256_mul_ps(chv, rvv)));
    }
    for (; k < dim; ++k) {
      ghv[k] += c * rv[k] * tv[k];
      grv[k] += c * hv[k] * tv[k];
      gtv[k] += c * hv[k] * rv[k];
    }
  }
}

void ComplExScoreAvx2(const float* const* h, const float* const* r,
                      const float* const* t, int dim, std::size_t n,
                      double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    __m256d acc = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m256d hrd = _mm256_cvtps_pd(_mm_loadu_ps(hr + k));
      const __m256d hid = _mm256_cvtps_pd(_mm_loadu_ps(hi + k));
      const __m256d rrd = _mm256_cvtps_pd(_mm_loadu_ps(rr + k));
      const __m256d rid = _mm256_cvtps_pd(_mm_loadu_ps(ri + k));
      const __m256d trd = _mm256_cvtps_pd(_mm_loadu_ps(tr + k));
      const __m256d tid = _mm256_cvtps_pd(_mm_loadu_ps(ti + k));
      const __m256d t1 = _mm256_mul_pd(_mm256_mul_pd(hrd, rrd), trd);
      const __m256d t2 = _mm256_mul_pd(_mm256_mul_pd(hid, rrd), tid);
      const __m256d t3 = _mm256_mul_pd(_mm256_mul_pd(hrd, rid), tid);
      const __m256d t4 = _mm256_mul_pd(_mm256_mul_pd(hid, rid), trd);
      acc = _mm256_add_pd(
          acc, _mm256_sub_pd(_mm256_add_pd(_mm256_add_pd(t1, t2), t3), t4));
    }
    double s = HSum(acc);
    for (; k < dim; ++k) {
      s += double(hr[k]) * rr[k] * tr[k] + double(hi[k]) * rr[k] * ti[k] +
           double(hr[k]) * ri[k] * ti[k] - double(hi[k]) * ri[k] * tr[k];
    }
    out[i] = s;
  }
}

void ComplExBackwardAvx2(const float* const* h, const float* const* r,
                         const float* const* t, int dim, std::size_t n,
                         const float* coeff, float* const* gh,
                         float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const __m256 cv = _mm256_set1_ps(c);
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 hrv = _mm256_loadu_ps(hr + k);
      const __m256 hiv = _mm256_loadu_ps(hi + k);
      const __m256 rrv = _mm256_loadu_ps(rr + k);
      const __m256 riv = _mm256_loadu_ps(ri + k);
      const __m256 trv = _mm256_loadu_ps(tr + k);
      const __m256 tiv = _mm256_loadu_ps(ti + k);
      // Scalar associativity: g += c * (x*y ± z*w).
      const __m256 d_hr = _mm256_mul_ps(
          cv, _mm256_add_ps(_mm256_mul_ps(rrv, trv), _mm256_mul_ps(riv, tiv)));
      const __m256 d_hi = _mm256_mul_ps(
          cv, _mm256_sub_ps(_mm256_mul_ps(rrv, tiv), _mm256_mul_ps(riv, trv)));
      const __m256 d_rr = _mm256_mul_ps(
          cv, _mm256_add_ps(_mm256_mul_ps(hrv, trv), _mm256_mul_ps(hiv, tiv)));
      const __m256 d_ri = _mm256_mul_ps(
          cv, _mm256_sub_ps(_mm256_mul_ps(hrv, tiv), _mm256_mul_ps(hiv, trv)));
      const __m256 d_tr = _mm256_mul_ps(
          cv, _mm256_sub_ps(_mm256_mul_ps(hrv, rrv), _mm256_mul_ps(hiv, riv)));
      const __m256 d_ti = _mm256_mul_ps(
          cv, _mm256_add_ps(_mm256_mul_ps(hiv, rrv), _mm256_mul_ps(hrv, riv)));
      _mm256_storeu_ps(ghv + k,
                       _mm256_add_ps(_mm256_loadu_ps(ghv + k), d_hr));
      _mm256_storeu_ps(ghv + dim + k,
                       _mm256_add_ps(_mm256_loadu_ps(ghv + dim + k), d_hi));
      _mm256_storeu_ps(grv + k,
                       _mm256_add_ps(_mm256_loadu_ps(grv + k), d_rr));
      _mm256_storeu_ps(grv + dim + k,
                       _mm256_add_ps(_mm256_loadu_ps(grv + dim + k), d_ri));
      _mm256_storeu_ps(gtv + k,
                       _mm256_add_ps(_mm256_loadu_ps(gtv + k), d_tr));
      _mm256_storeu_ps(gtv + dim + k,
                       _mm256_add_ps(_mm256_loadu_ps(gtv + dim + k), d_ti));
    }
    for (; k < dim; ++k) {
      ghv[k] += c * (rr[k] * tr[k] + ri[k] * ti[k]);
      ghv[dim + k] += c * (rr[k] * ti[k] - ri[k] * tr[k]);
      grv[k] += c * (hr[k] * tr[k] + hi[k] * ti[k]);
      grv[dim + k] += c * (hr[k] * ti[k] - hi[k] * tr[k]);
      gtv[k] += c * (hr[k] * rr[k] - hi[k] * ri[k]);
      gtv[dim + k] += c * (hi[k] * rr[k] + hr[k] * ri[k]);
    }
  }
}

// ---- 1-vs-all sweep kernels ------------------------------------------------
// Candidate-major loops over a contiguous row slab: the only strided
// stream is the candidate rows; the fixed pair (or its double-widened
// pairwise products, which are exact — 24-bit × 24-bit fits in a 53-bit
// significand — so any association of a triple product rounds the same)
// is hoisted out of the sweep.

/// Thread-local double scratch for the hoisted fixed-pair products.
std::vector<double>& SweepScratch() {
  static thread_local std::vector<double> scratch;
  return scratch;
}

void TransESweepHeadAvx2(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim, double* out) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(cv + k), _mm256_loadu_ps(fixed_r + k)),
          _mm256_loadu_ps(fixed_e + k));
      const __m256 a = _mm256_and_ps(e, abs_mask);
      __m256d lo, hi;
      Widen(a, &lo, &hi);
      acc_lo = _mm256_add_pd(acc_lo, lo);
      acc_hi = _mm256_add_pd(acc_hi, hi);
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(cv[k] + fixed_r[k] - fixed_e[k]);
    out[i] = -s;
  }
}

void TransESweepTailAvx2(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim, double* out) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(fixed_e + k),
                        _mm256_loadu_ps(fixed_r + k)),
          _mm256_loadu_ps(cv + k));
      const __m256 a = _mm256_and_ps(e, abs_mask);
      __m256d lo, hi;
      Widen(a, &lo, &hi);
      acc_lo = _mm256_add_pd(acc_lo, lo);
      acc_hi = _mm256_add_pd(acc_hi, hi);
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(fixed_e[k] + fixed_r[k] - cv[k]);
    out[i] = -s;
  }
}

/// Shared DistMult sweep core over w[k] = fixed_e[k] * fixed_r[k] widened
/// to double (exact): out[i] = Σ_k cand[k] * w[k].
void DistMultSweepAvx2(const float* fixed_e, const float* fixed_r,
                       const float* base, std::size_t stride,
                       std::size_t count, int dim, double* out) {
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(dim);
  double* w = scratch.data();
  for (int k = 0; k < dim; ++k) w[k] = double(fixed_e[k]) * fixed_r[k];
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      __m256d c_lo, c_hi;
      Widen(_mm256_loadu_ps(cv + k), &c_lo, &c_hi);
      acc_lo = _mm256_add_pd(acc_lo,
                             _mm256_mul_pd(c_lo, _mm256_loadu_pd(w + k)));
      acc_hi = _mm256_add_pd(acc_hi,
                             _mm256_mul_pd(c_hi, _mm256_loadu_pd(w + k + 4)));
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += double(cv[k]) * w[k];
    out[i] = s;
  }
}

/// ComplEx sweep cores over the four exact pairwise fixed products
/// a/b/c/d (layout [a | b | c | d], each dim doubles). Head (cand = h):
/// term = cr*a + ci*b + cr*c − ci*d with a=rr*tr, b=rr*ti, c=ri*ti,
/// d=ri*tr. Tail (cand = t): term = cr*a + ci*b + ci*c − cr*d with
/// a=hr*rr, b=hi*rr, c=hr*ri, d=hi*ri. Both reproduce the scalar loop's
/// t1+t2+t3−t4 per-k order.
void ComplExSweepHeadAvx2(const float* fixed_e, const float* fixed_r,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim, double* out) {
  const float* rr = fixed_r;
  const float* ri = fixed_r + dim;
  const float* tr = fixed_e;
  const float* ti = fixed_e + dim;
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(4 * dim);
  double* a = scratch.data();
  double* b = a + dim;
  double* c = b + dim;
  double* d = c + dim;
  for (int k = 0; k < dim; ++k) {
    a[k] = double(rr[k]) * tr[k];
    b[k] = double(rr[k]) * ti[k];
    c[k] = double(ri[k]) * ti[k];
    d[k] = double(ri[k]) * tr[k];
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* cr = base + i * stride;
    const float* ci = cr + dim;
    __m256d acc = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m256d crd = _mm256_cvtps_pd(_mm_loadu_ps(cr + k));
      const __m256d cid = _mm256_cvtps_pd(_mm_loadu_ps(ci + k));
      const __m256d t1 = _mm256_mul_pd(crd, _mm256_loadu_pd(a + k));
      const __m256d t2 = _mm256_mul_pd(cid, _mm256_loadu_pd(b + k));
      const __m256d t3 = _mm256_mul_pd(crd, _mm256_loadu_pd(c + k));
      const __m256d t4 = _mm256_mul_pd(cid, _mm256_loadu_pd(d + k));
      acc = _mm256_add_pd(
          acc, _mm256_sub_pd(_mm256_add_pd(_mm256_add_pd(t1, t2), t3), t4));
    }
    double s = HSum(acc);
    for (; k < dim; ++k) {
      s += double(cr[k]) * a[k] + double(ci[k]) * b[k] + double(cr[k]) * c[k] -
           double(ci[k]) * d[k];
    }
    out[i] = s;
  }
}

void ComplExSweepTailAvx2(const float* fixed_e, const float* fixed_r,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim, double* out) {
  const float* hr = fixed_e;
  const float* hi = fixed_e + dim;
  const float* rr = fixed_r;
  const float* ri = fixed_r + dim;
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(4 * dim);
  double* a = scratch.data();
  double* b = a + dim;
  double* c = b + dim;
  double* d = c + dim;
  for (int k = 0; k < dim; ++k) {
    a[k] = double(hr[k]) * rr[k];
    b[k] = double(hi[k]) * rr[k];
    c[k] = double(hr[k]) * ri[k];
    d[k] = double(hi[k]) * ri[k];
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* cr = base + i * stride;
    const float* ci = cr + dim;
    __m256d acc = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m256d crd = _mm256_cvtps_pd(_mm_loadu_ps(cr + k));
      const __m256d cid = _mm256_cvtps_pd(_mm_loadu_ps(ci + k));
      const __m256d t1 = _mm256_mul_pd(crd, _mm256_loadu_pd(a + k));
      const __m256d t2 = _mm256_mul_pd(cid, _mm256_loadu_pd(b + k));
      const __m256d t3 = _mm256_mul_pd(cid, _mm256_loadu_pd(c + k));
      const __m256d t4 = _mm256_mul_pd(crd, _mm256_loadu_pd(d + k));
      acc = _mm256_add_pd(
          acc, _mm256_sub_pd(_mm256_add_pd(_mm256_add_pd(t1, t2), t3), t4));
    }
    double s = HSum(acc);
    for (; k < dim; ++k) {
      s += double(cr[k]) * a[k] + double(ci[k]) * b[k] + double(ci[k]) * c[k] -
           double(cr[k]) * d[k];
    }
    out[i] = s;
  }
}

const ScorerKernels kAvx2Kernels = {
    TransEScoreAvx2,      TransEBackwardAvx2,   DistMultScoreAvx2,
    DistMultBackwardAvx2, ComplExScoreAvx2,     ComplExBackwardAvx2,
    TransESweepHeadAvx2,  TransESweepTailAvx2,  DistMultSweepAvx2,
    DistMultSweepAvx2,    ComplExSweepHeadAvx2, ComplExSweepTailAvx2,
};

}  // namespace

namespace internal {
const ScorerKernels* GetAvx2Kernels() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace simd
}  // namespace nsc

#else  // !defined(__AVX2__)

namespace nsc {
namespace simd {
namespace internal {
const ScorerKernels* GetAvx2Kernels() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace nsc

#endif  // defined(__AVX2__)
