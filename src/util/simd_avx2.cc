// AVX2 implementations of the batched scorer kernels. This translation
// unit is compiled with -mavx2 -mfma (see CMakeLists.txt) when the
// compiler supports them; on other compilers/targets it degrades to a
// stub that reports "not compiled in". The dispatcher only selects
// these kernels after a runtime CPUID check for BOTH avx2 and fma bits,
// so shipping them in a generic x86 binary is safe.
//
// Numerical contract (see simd.h): score terms are widened to double
// before multiplying, exactly as the scalar loops do, so only the
// reduction order differs; backward kernels mirror the scalar float
// operation order (explicit mul/add intrinsics, no FMA contraction) and
// store each gradient stream chunk-by-chunk so per-slot accumulation
// order is preserved even when gradient pointers alias. The 1-vs-all
// sweep and fused top-K kernels for DistMult/ComplEx DO use explicit
// FMA intrinsics (their contract against the scalar path is
// reduction-order tolerance, and sweep and top-K share per-candidate
// arithmetic so they stay bit-identical to each other); everything else
// keeps explicit mul/add, and the file is built with -ffp-contract=off
// so the compiler cannot contract anything behind our backs.
#include "util/simd_kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/topk.h"

namespace nsc {
namespace simd {
namespace {

inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

/// Widens the low/high halves of 8 floats to two 4-double vectors.
inline void Widen(__m256 v, __m256d* lo, __m256d* hi) {
  *lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  *hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

/// Lane-wise sign(x) in {-1, 0, +1} as floats.
inline __m256 SignPs(__m256 x) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 pos = _mm256_and_ps(_mm256_cmp_ps(x, zero, _CMP_GT_OQ), one);
  const __m256 neg = _mm256_and_ps(_mm256_cmp_ps(zero, x, _CMP_GT_OQ), one);
  return _mm256_sub_ps(pos, neg);
}

void TransEScoreAvx2(const float* const* h, const float* const* r,
                     const float* const* t, int dim, std::size_t n,
                     double* out) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(hv + k), _mm256_loadu_ps(rv + k)),
          _mm256_loadu_ps(tv + k));
      const __m256 a = _mm256_and_ps(e, abs_mask);
      __m256d lo, hi;
      Widen(a, &lo, &hi);
      acc_lo = _mm256_add_pd(acc_lo, lo);
      acc_hi = _mm256_add_pd(acc_hi, hi);
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(hv[k] + rv[k] - tv[k]);
    out[i] = -s;
  }
}

void TransEBackwardAvx2(const float* const* h, const float* const* r,
                        const float* const* t, int dim, std::size_t n,
                        const float* coeff, float* const* gh,
                        float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const __m256 cv = _mm256_set1_ps(c);
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(hv + k), _mm256_loadu_ps(rv + k)),
          _mm256_loadu_ps(tv + k));
      const __m256 sg = _mm256_mul_ps(cv, SignPs(e));
      _mm256_storeu_ps(ghv + k, _mm256_sub_ps(_mm256_loadu_ps(ghv + k), sg));
      _mm256_storeu_ps(grv + k, _mm256_sub_ps(_mm256_loadu_ps(grv + k), sg));
      _mm256_storeu_ps(gtv + k, _mm256_add_ps(_mm256_loadu_ps(gtv + k), sg));
    }
    for (; k < dim; ++k) {
      const float d = hv[k] + rv[k] - tv[k];
      const float sg = c * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
      ghv[k] -= sg;
      grv[k] -= sg;
      gtv[k] += sg;
    }
  }
}

void DistMultScoreAvx2(const float* const* h, const float* const* r,
                       const float* const* t, int dim, std::size_t n,
                       double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      __m256d h_lo, h_hi, r_lo, r_hi, t_lo, t_hi;
      Widen(_mm256_loadu_ps(hv + k), &h_lo, &h_hi);
      Widen(_mm256_loadu_ps(rv + k), &r_lo, &r_hi);
      Widen(_mm256_loadu_ps(tv + k), &t_lo, &t_hi);
      acc_lo = _mm256_add_pd(
          acc_lo, _mm256_mul_pd(_mm256_mul_pd(h_lo, r_lo), t_lo));
      acc_hi = _mm256_add_pd(
          acc_hi, _mm256_mul_pd(_mm256_mul_pd(h_hi, r_hi), t_hi));
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += double(hv[k]) * rv[k] * tv[k];
    out[i] = s;
  }
}

void DistMultBackwardAvx2(const float* const* h, const float* const* r,
                          const float* const* t, int dim, std::size_t n,
                          const float* coeff, float* const* gh,
                          float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const __m256 cv = _mm256_set1_ps(c);
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 hvv = _mm256_loadu_ps(hv + k);
      const __m256 rvv = _mm256_loadu_ps(rv + k);
      const __m256 tvv = _mm256_loadu_ps(tv + k);
      // Scalar associativity: g += (c * x) * y.
      const __m256 crv = _mm256_mul_ps(cv, rvv);
      const __m256 chv = _mm256_mul_ps(cv, hvv);
      _mm256_storeu_ps(ghv + k, _mm256_add_ps(_mm256_loadu_ps(ghv + k),
                                              _mm256_mul_ps(crv, tvv)));
      _mm256_storeu_ps(grv + k, _mm256_add_ps(_mm256_loadu_ps(grv + k),
                                              _mm256_mul_ps(chv, tvv)));
      _mm256_storeu_ps(gtv + k, _mm256_add_ps(_mm256_loadu_ps(gtv + k),
                                              _mm256_mul_ps(chv, rvv)));
    }
    for (; k < dim; ++k) {
      ghv[k] += c * rv[k] * tv[k];
      grv[k] += c * hv[k] * tv[k];
      gtv[k] += c * hv[k] * rv[k];
    }
  }
}

void ComplExScoreAvx2(const float* const* h, const float* const* r,
                      const float* const* t, int dim, std::size_t n,
                      double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    __m256d acc = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m256d hrd = _mm256_cvtps_pd(_mm_loadu_ps(hr + k));
      const __m256d hid = _mm256_cvtps_pd(_mm_loadu_ps(hi + k));
      const __m256d rrd = _mm256_cvtps_pd(_mm_loadu_ps(rr + k));
      const __m256d rid = _mm256_cvtps_pd(_mm_loadu_ps(ri + k));
      const __m256d trd = _mm256_cvtps_pd(_mm_loadu_ps(tr + k));
      const __m256d tid = _mm256_cvtps_pd(_mm_loadu_ps(ti + k));
      const __m256d t1 = _mm256_mul_pd(_mm256_mul_pd(hrd, rrd), trd);
      const __m256d t2 = _mm256_mul_pd(_mm256_mul_pd(hid, rrd), tid);
      const __m256d t3 = _mm256_mul_pd(_mm256_mul_pd(hrd, rid), tid);
      const __m256d t4 = _mm256_mul_pd(_mm256_mul_pd(hid, rid), trd);
      acc = _mm256_add_pd(
          acc, _mm256_sub_pd(_mm256_add_pd(_mm256_add_pd(t1, t2), t3), t4));
    }
    double s = HSum(acc);
    for (; k < dim; ++k) {
      s += double(hr[k]) * rr[k] * tr[k] + double(hi[k]) * rr[k] * ti[k] +
           double(hr[k]) * ri[k] * ti[k] - double(hi[k]) * ri[k] * tr[k];
    }
    out[i] = s;
  }
}

void ComplExBackwardAvx2(const float* const* h, const float* const* r,
                         const float* const* t, int dim, std::size_t n,
                         const float* coeff, float* const* gh,
                         float* const* gr, float* const* gt) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* hr = h[i];
    const float* hi = h[i] + dim;
    const float* rr = r[i];
    const float* ri = r[i] + dim;
    const float* tr = t[i];
    const float* ti = t[i] + dim;
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    const __m256 cv = _mm256_set1_ps(c);
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 hrv = _mm256_loadu_ps(hr + k);
      const __m256 hiv = _mm256_loadu_ps(hi + k);
      const __m256 rrv = _mm256_loadu_ps(rr + k);
      const __m256 riv = _mm256_loadu_ps(ri + k);
      const __m256 trv = _mm256_loadu_ps(tr + k);
      const __m256 tiv = _mm256_loadu_ps(ti + k);
      // Scalar associativity: g += c * (x*y ± z*w).
      const __m256 d_hr = _mm256_mul_ps(
          cv, _mm256_add_ps(_mm256_mul_ps(rrv, trv), _mm256_mul_ps(riv, tiv)));
      const __m256 d_hi = _mm256_mul_ps(
          cv, _mm256_sub_ps(_mm256_mul_ps(rrv, tiv), _mm256_mul_ps(riv, trv)));
      const __m256 d_rr = _mm256_mul_ps(
          cv, _mm256_add_ps(_mm256_mul_ps(hrv, trv), _mm256_mul_ps(hiv, tiv)));
      const __m256 d_ri = _mm256_mul_ps(
          cv, _mm256_sub_ps(_mm256_mul_ps(hrv, tiv), _mm256_mul_ps(hiv, trv)));
      const __m256 d_tr = _mm256_mul_ps(
          cv, _mm256_sub_ps(_mm256_mul_ps(hrv, rrv), _mm256_mul_ps(hiv, riv)));
      const __m256 d_ti = _mm256_mul_ps(
          cv, _mm256_add_ps(_mm256_mul_ps(hiv, rrv), _mm256_mul_ps(hrv, riv)));
      _mm256_storeu_ps(ghv + k,
                       _mm256_add_ps(_mm256_loadu_ps(ghv + k), d_hr));
      _mm256_storeu_ps(ghv + dim + k,
                       _mm256_add_ps(_mm256_loadu_ps(ghv + dim + k), d_hi));
      _mm256_storeu_ps(grv + k,
                       _mm256_add_ps(_mm256_loadu_ps(grv + k), d_rr));
      _mm256_storeu_ps(grv + dim + k,
                       _mm256_add_ps(_mm256_loadu_ps(grv + dim + k), d_ri));
      _mm256_storeu_ps(gtv + k,
                       _mm256_add_ps(_mm256_loadu_ps(gtv + k), d_tr));
      _mm256_storeu_ps(gtv + dim + k,
                       _mm256_add_ps(_mm256_loadu_ps(gtv + dim + k), d_ti));
    }
    for (; k < dim; ++k) {
      ghv[k] += c * (rr[k] * tr[k] + ri[k] * ti[k]);
      ghv[dim + k] += c * (rr[k] * ti[k] - ri[k] * tr[k]);
      grv[k] += c * (hr[k] * tr[k] + hi[k] * ti[k]);
      grv[dim + k] += c * (hr[k] * ti[k] - hi[k] * tr[k]);
      gtv[k] += c * (hr[k] * rr[k] - hi[k] * ri[k]);
      gtv[dim + k] += c * (hi[k] * rr[k] + hr[k] * ri[k]);
    }
  }
}

// ---- 1-vs-all sweep kernels ------------------------------------------------
// Candidate-major loops over a contiguous row slab: the only strided
// stream is the candidate rows; the fixed pair (or its double-widened
// pairwise products, which are exact — 24-bit × 24-bit fits in a 53-bit
// significand — so any association of a triple product rounds the same)
// is hoisted out of the sweep.

/// Thread-local double scratch for the hoisted fixed-pair products.
std::vector<double>& SweepScratch() {
  static thread_local std::vector<double> scratch;
  return scratch;
}

void TransESweepHeadAvx2(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim, double* out) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(cv + k), _mm256_loadu_ps(fixed_r + k)),
          _mm256_loadu_ps(fixed_e + k));
      const __m256 a = _mm256_and_ps(e, abs_mask);
      __m256d lo, hi;
      Widen(a, &lo, &hi);
      acc_lo = _mm256_add_pd(acc_lo, lo);
      acc_hi = _mm256_add_pd(acc_hi, hi);
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(cv[k] + fixed_r[k] - fixed_e[k]);
    out[i] = -s;
  }
}

void TransESweepTailAvx2(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim, double* out) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 e = _mm256_sub_ps(
          _mm256_add_ps(_mm256_loadu_ps(fixed_e + k),
                        _mm256_loadu_ps(fixed_r + k)),
          _mm256_loadu_ps(cv + k));
      const __m256 a = _mm256_and_ps(e, abs_mask);
      __m256d lo, hi;
      Widen(a, &lo, &hi);
      acc_lo = _mm256_add_pd(acc_lo, lo);
      acc_hi = _mm256_add_pd(acc_hi, hi);
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += std::fabs(fixed_e[k] + fixed_r[k] - cv[k]);
    out[i] = -s;
  }
}

/// Shared DistMult sweep core over w[k] = fixed_e[k] * fixed_r[k] widened
/// to double (exact): out[i] = Σ_k cand[k] * w[k].
void DistMultSweepAvx2(const float* fixed_e, const float* fixed_r,
                       const float* base, std::size_t stride,
                       std::size_t count, int dim, double* out) {
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(dim);
  double* w = scratch.data();
  for (int k = 0; k < dim; ++k) w[k] = double(fixed_e[k]) * fixed_r[k];
  for (std::size_t i = 0; i < count; ++i) {
    const float* cv = base + i * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      __m256d c_lo, c_hi;
      Widen(_mm256_loadu_ps(cv + k), &c_lo, &c_hi);
      acc_lo = _mm256_fmadd_pd(c_lo, _mm256_loadu_pd(w + k), acc_lo);
      acc_hi = _mm256_fmadd_pd(c_hi, _mm256_loadu_pd(w + k + 4), acc_hi);
    }
    double s = HSum(_mm256_add_pd(acc_lo, acc_hi));
    for (; k < dim; ++k) s += double(cv[k]) * w[k];
    out[i] = s;
  }
}

/// ComplEx sweep cores over the four exact pairwise fixed products
/// a/b/c/d (layout [a | b | c | d], each dim doubles). Head (cand = h):
/// term = cr*a + ci*b + cr*c − ci*d with a=rr*tr, b=rr*ti, c=ri*ti,
/// d=ri*tr. Tail (cand = t): term = cr*a + ci*b + ci*c − cr*d with
/// a=hr*rr, b=hi*rr, c=hr*ri, d=hi*ri. The products fold into FMAs
/// (fewer multiply-port uops and one fewer rounding per term than the
/// scalar loop's t1+t2+t3−t4; the sweep's contract vs. the scalar path
/// is reduction-order tolerance, not bit equality).
void ComplExSweepHeadAvx2(const float* fixed_e, const float* fixed_r,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim, double* out) {
  const float* rr = fixed_r;
  const float* ri = fixed_r + dim;
  const float* tr = fixed_e;
  const float* ti = fixed_e + dim;
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(4 * dim);
  double* a = scratch.data();
  double* b = a + dim;
  double* c = b + dim;
  double* d = c + dim;
  for (int k = 0; k < dim; ++k) {
    a[k] = double(rr[k]) * tr[k];
    b[k] = double(rr[k]) * ti[k];
    c[k] = double(ri[k]) * ti[k];
    d[k] = double(ri[k]) * tr[k];
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* cr = base + i * stride;
    const float* ci = cr + dim;
    __m256d acc = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m256d crd = _mm256_cvtps_pd(_mm_loadu_ps(cr + k));
      const __m256d cid = _mm256_cvtps_pd(_mm_loadu_ps(ci + k));
      const __m256d t2 = _mm256_mul_pd(cid, _mm256_loadu_pd(b + k));
      const __m256d t12 = _mm256_fmadd_pd(crd, _mm256_loadu_pd(a + k), t2);
      const __m256d t123 = _mm256_fmadd_pd(crd, _mm256_loadu_pd(c + k), t12);
      acc = _mm256_add_pd(
          acc, _mm256_fnmadd_pd(cid, _mm256_loadu_pd(d + k), t123));
    }
    double s = HSum(acc);
    for (; k < dim; ++k) {
      s += double(cr[k]) * a[k] + double(ci[k]) * b[k] + double(cr[k]) * c[k] -
           double(ci[k]) * d[k];
    }
    out[i] = s;
  }
}

void ComplExSweepTailAvx2(const float* fixed_e, const float* fixed_r,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim, double* out) {
  const float* hr = fixed_e;
  const float* hi = fixed_e + dim;
  const float* rr = fixed_r;
  const float* ri = fixed_r + dim;
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(4 * dim);
  double* a = scratch.data();
  double* b = a + dim;
  double* c = b + dim;
  double* d = c + dim;
  for (int k = 0; k < dim; ++k) {
    a[k] = double(hr[k]) * rr[k];
    b[k] = double(hi[k]) * rr[k];
    c[k] = double(hr[k]) * ri[k];
    d[k] = double(hi[k]) * ri[k];
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* cr = base + i * stride;
    const float* ci = cr + dim;
    __m256d acc = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m256d crd = _mm256_cvtps_pd(_mm_loadu_ps(cr + k));
      const __m256d cid = _mm256_cvtps_pd(_mm_loadu_ps(ci + k));
      const __m256d t2 = _mm256_mul_pd(cid, _mm256_loadu_pd(b + k));
      const __m256d t12 = _mm256_fmadd_pd(crd, _mm256_loadu_pd(a + k), t2);
      const __m256d t123 = _mm256_fmadd_pd(cid, _mm256_loadu_pd(c + k), t12);
      acc = _mm256_add_pd(
          acc, _mm256_fnmadd_pd(crd, _mm256_loadu_pd(d + k), t123));
    }
    double s = HSum(acc);
    for (; k < dim; ++k) {
      s += double(cr[k]) * a[k] + double(ci[k]) * b[k] + double(ci[k]) * c[k] -
           double(cr[k]) * d[k];
    }
    out[i] = s;
  }
}

// ---- Fused sweep→top-K kernels ---------------------------------------------
// Tile-at-a-time retrieval: each kTileSize tile is scored by the
// corresponding sweep kernel into a 2 KB stack buffer (never touching an
// |E|-sized score array), then tested against the collector's running
// K-th-best threshold with one vectorized max pass. Only tiles whose max
// beats the threshold fall into per-lane insertion, and there a movemask
// of (score > threshold) selects the qualifying lanes — heap work is
// proportional to candidates that can actually enter the top-K, not |E|.

inline double HMax(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d max2 = _mm_max_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(max2, max2);
  return _mm_cvtsd_f64(_mm_max_sd(max2, swapped));
}

/// Merges one scored tile into the collector. The threshold vector is
/// captured once per tile: insertions may raise the live threshold, so
/// the stale mask is a superset of the qualifying lanes — Offer()
/// re-checks against the current threshold, which keeps the result exact
/// while the mask test stays branch-free.
void OfferTileAvx2(const double* scores, std::size_t base_index,
                   std::size_t n, TopKCollector* collector) {
  collector->CountTile();
  if (!collector->full()) {
    // Heap still filling (only the first ceil(K/kTileSize) tiles): plain
    // insertion, no threshold to test against yet.
    for (std::size_t i = 0; i < n; ++i) {
      collector->Offer(scores[i], base_index + i);
    }
    return;
  }
  const double threshold = collector->threshold();
  const __m256d tv = _mm256_set1_pd(threshold);
  __m256d mx = tv;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) mx = _mm256_max_pd(mx, _mm256_loadu_pd(scores + i));
  double m = HMax(mx);
  for (; i < n; ++i) m = std::max(m, scores[i]);
  if (!(m > threshold)) {
    collector->CountPrunedTile();
    return;
  }
  for (i = 0; i + 4 <= n; i += 4) {
    int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(scores + i), tv, _CMP_GT_OQ));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      mask &= mask - 1;
      collector->Offer(scores[i + lane], base_index + i + lane);
    }
  }
  for (; i < n; ++i) {
    if (scores[i] > threshold) collector->Offer(scores[i], base_index + i);
  }
}

// The tile scorers below process FOUR candidates per inner iteration with
// one accumulator set per candidate. Each candidate's operation sequence
// (loads, adds, widenings, its own HSum, its own scalar tail) is exactly
// the single-candidate body of the corresponding sweep kernel, so every
// score is bit-identical to the full sweep's — interleaving only gives
// the CPU four independent add_pd dependency chains instead of one. The
// plain sweep kernels are latency-bound on that chain (one ~4-cycle
// vector add per 8 floats, serialized, plus a serial horizontal
// reduction per candidate); four-way interleaving is where the fused
// retrieval's throughput win over sweep+scan actually comes from. The
// *Batch variants answer nq retrievals per pass: tile-outer /
// query-inner, so each 256-candidate tile is scored for every query
// while its rows are L1-resident and the slab streams from memory once
// instead of nq times. Sharing a read-only tile changes no per-query FP
// op, so each query's result stays bit-identical to its single-query
// retrieval.

template <bool kCandIsHead>
void TransEScoreTileAvx2(const float* fixed_e, const float* fixed_r,
                         const float* tbase, std::size_t stride, std::size_t n,
                         int dim, double* tile) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  // One candidate's |h + r - t| accumulation step — identical to the
  // sweep kernel's loop body for the same k.
  auto accumulate = [&](const float* cv, int k, const __m256 rv,
                        const __m256 ev, __m256d* alo, __m256d* ahi) {
    const __m256 e =
        kCandIsHead
            ? _mm256_sub_ps(_mm256_add_ps(_mm256_loadu_ps(cv + k), rv), ev)
            : _mm256_sub_ps(_mm256_add_ps(ev, rv), _mm256_loadu_ps(cv + k));
    const __m256 a = _mm256_and_ps(e, abs_mask);
    __m256d lo_d, hi_d;
    Widen(a, &lo_d, &hi_d);
    *alo = _mm256_add_pd(*alo, lo_d);
    *ahi = _mm256_add_pd(*ahi, hi_d);
  };
  auto finish = [&](const float* cv, int k, __m256d alo, __m256d ahi) {
    double s = HSum(_mm256_add_pd(alo, ahi));
    for (; k < dim; ++k) {
      s += kCandIsHead ? std::fabs(cv[k] + fixed_r[k] - fixed_e[k])
                       : std::fabs(fixed_e[k] + fixed_r[k] - cv[k]);
    }
    return -s;
  };
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* c0 = tbase + i * stride;
    const float* c1 = c0 + stride;
    const float* c2 = c1 + stride;
    const float* c3 = c2 + stride;
    __m256d a0l = _mm256_setzero_pd(), a0h = _mm256_setzero_pd();
    __m256d a1l = _mm256_setzero_pd(), a1h = _mm256_setzero_pd();
    __m256d a2l = _mm256_setzero_pd(), a2h = _mm256_setzero_pd();
    __m256d a3l = _mm256_setzero_pd(), a3h = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 rv = _mm256_loadu_ps(fixed_r + k);
      const __m256 ev = _mm256_loadu_ps(fixed_e + k);
      accumulate(c0, k, rv, ev, &a0l, &a0h);
      accumulate(c1, k, rv, ev, &a1l, &a1h);
      accumulate(c2, k, rv, ev, &a2l, &a2h);
      accumulate(c3, k, rv, ev, &a3l, &a3h);
    }
    tile[i + 0] = finish(c0, k, a0l, a0h);
    tile[i + 1] = finish(c1, k, a1l, a1h);
    tile[i + 2] = finish(c2, k, a2l, a2h);
    tile[i + 3] = finish(c3, k, a3l, a3h);
  }
  for (; i < n; ++i) {
    const float* cv = tbase + i * stride;
    __m256d al = _mm256_setzero_pd(), ah = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      accumulate(cv, k, _mm256_loadu_ps(fixed_r + k),
                 _mm256_loadu_ps(fixed_e + k), &al, &ah);
    }
    tile[i] = finish(cv, k, al, ah);
  }
}

template <bool kCandIsHead>
void TransESweepTopKAvx2(const float* fixed_e, const float* fixed_r,
                         const float* base, std::size_t stride,
                         std::size_t count, int dim,
                         TopKCollector* collector) {
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    TransEScoreTileAvx2<kCandIsHead>(fixed_e, fixed_r, base + lo * stride,
                                     stride, n, dim, tile);
    OfferTileAvx2(tile, lo, n, collector);
  }
}

template <bool kCandIsHead>
void TransESweepTopKBatchAvx2(const float* const* fixed_e,
                              const float* const* fixed_r, std::size_t nq,
                              const float* base, std::size_t stride,
                              std::size_t count, int dim,
                              TopKCollector* const* collectors) {
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    for (std::size_t q = 0; q < nq; ++q) {
      TransEScoreTileAvx2<kCandIsHead>(fixed_e[q], fixed_r[q],
                                       base + lo * stride, stride, n, dim,
                                       tile);
      OfferTileAvx2(tile, lo, n, collectors[q]);
    }
  }
}

// Same exact hoist as DistMultSweepAvx2: w[k] = fixed_e[k] * fixed_r[k]
// widened to double.
void DistMultHoistWAvx2(const float* fixed_e, const float* fixed_r, int dim,
                        double* w) {
  for (int k = 0; k < dim; ++k) w[k] = double(fixed_e[k]) * fixed_r[k];
}

void DistMultScoreTileAvx2(const double* w, const float* tbase,
                           std::size_t stride, std::size_t n, int dim,
                           double* tile) {
  auto accumulate = [&](const float* cv, int k, const __m256d w0,
                        const __m256d w1, __m256d* alo, __m256d* ahi) {
    __m256d c_lo, c_hi;
    Widen(_mm256_loadu_ps(cv + k), &c_lo, &c_hi);
    *alo = _mm256_fmadd_pd(c_lo, w0, *alo);
    *ahi = _mm256_fmadd_pd(c_hi, w1, *ahi);
  };
  auto finish = [&](const float* cv, int k, __m256d alo, __m256d ahi) {
    double s = HSum(_mm256_add_pd(alo, ahi));
    for (; k < dim; ++k) s += double(cv[k]) * w[k];
    return s;
  };
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* c0 = tbase + i * stride;
    const float* c1 = c0 + stride;
    const float* c2 = c1 + stride;
    const float* c3 = c2 + stride;
    __m256d a0l = _mm256_setzero_pd(), a0h = _mm256_setzero_pd();
    __m256d a1l = _mm256_setzero_pd(), a1h = _mm256_setzero_pd();
    __m256d a2l = _mm256_setzero_pd(), a2h = _mm256_setzero_pd();
    __m256d a3l = _mm256_setzero_pd(), a3h = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256d w0 = _mm256_loadu_pd(w + k);
      const __m256d w1 = _mm256_loadu_pd(w + k + 4);
      accumulate(c0, k, w0, w1, &a0l, &a0h);
      accumulate(c1, k, w0, w1, &a1l, &a1h);
      accumulate(c2, k, w0, w1, &a2l, &a2h);
      accumulate(c3, k, w0, w1, &a3l, &a3h);
    }
    tile[i + 0] = finish(c0, k, a0l, a0h);
    tile[i + 1] = finish(c1, k, a1l, a1h);
    tile[i + 2] = finish(c2, k, a2l, a2h);
    tile[i + 3] = finish(c3, k, a3l, a3h);
  }
  for (; i < n; ++i) {
    const float* cv = tbase + i * stride;
    __m256d al = _mm256_setzero_pd(), ah = _mm256_setzero_pd();
    int k = 0;
    for (; k + 8 <= dim; k += 8) {
      accumulate(cv, k, _mm256_loadu_pd(w + k), _mm256_loadu_pd(w + k + 4),
                 &al, &ah);
    }
    tile[i] = finish(cv, k, al, ah);
  }
}

void DistMultSweepTopKAvx2(const float* fixed_e, const float* fixed_r,
                           const float* base, std::size_t stride,
                           std::size_t count, int dim,
                           TopKCollector* collector) {
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(dim);
  double* w = scratch.data();
  DistMultHoistWAvx2(fixed_e, fixed_r, dim, w);
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    DistMultScoreTileAvx2(w, base + lo * stride, stride, n, dim, tile);
    OfferTileAvx2(tile, lo, n, collector);
  }
}

void DistMultSweepTopKBatchAvx2(const float* const* fixed_e,
                                const float* const* fixed_r, std::size_t nq,
                                const float* base, std::size_t stride,
                                std::size_t count, int dim,
                                TopKCollector* const* collectors) {
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(nq * static_cast<std::size_t>(dim));
  double* w = scratch.data();
  for (std::size_t q = 0; q < nq; ++q) {
    DistMultHoistWAvx2(fixed_e[q], fixed_r[q], dim, w + q * dim);
  }
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    for (std::size_t q = 0; q < nq; ++q) {
      DistMultScoreTileAvx2(w + q * dim, base + lo * stride, stride, n, dim,
                            tile);
      OfferTileAvx2(tile, lo, n, collectors[q]);
    }
  }
}

// Same exact pairwise-product hoist as ComplExSweep{Head,Tail}Avx2 (see
// those kernels for the a/b/c/d derivations per side). abcd is laid out
// [a | b | c | d], each dim doubles.
template <bool kCandIsHead>
void ComplExHoistAvx2(const float* fixed_e, const float* fixed_r, int dim,
                      double* abcd) {
  double* a = abcd;
  double* b = a + dim;
  double* c = b + dim;
  double* d = c + dim;
  if (kCandIsHead) {
    const float* rr = fixed_r;
    const float* ri = fixed_r + dim;
    const float* tr = fixed_e;
    const float* ti = fixed_e + dim;
    for (int k = 0; k < dim; ++k) {
      a[k] = double(rr[k]) * tr[k];
      b[k] = double(rr[k]) * ti[k];
      c[k] = double(ri[k]) * ti[k];
      d[k] = double(ri[k]) * tr[k];
    }
  } else {
    const float* hr = fixed_e;
    const float* hi = fixed_e + dim;
    const float* rr = fixed_r;
    const float* ri = fixed_r + dim;
    for (int k = 0; k < dim; ++k) {
      a[k] = double(hr[k]) * rr[k];
      b[k] = double(hi[k]) * rr[k];
      c[k] = double(hr[k]) * ri[k];
      d[k] = double(hi[k]) * ri[k];
    }
  }
}

template <bool kCandIsHead>
void ComplExScoreTileAvx2(const double* abcd, const float* tbase,
                          std::size_t stride, std::size_t n, int dim,
                          double* tile) {
  const double* a = abcd;
  const double* b = a + dim;
  const double* c = b + dim;
  const double* d = c + dim;
  auto accumulate = [&](const float* cr, int k, const __m256d av,
                        const __m256d bv, const __m256d cvv, const __m256d dv,
                        __m256d* acc) {
    const float* ci = cr + dim;
    const __m256d crd = _mm256_cvtps_pd(_mm_loadu_ps(cr + k));
    const __m256d cid = _mm256_cvtps_pd(_mm_loadu_ps(ci + k));
    const __m256d t2 = _mm256_mul_pd(cid, bv);
    const __m256d t12 = _mm256_fmadd_pd(crd, av, t2);
    const __m256d t123 = _mm256_fmadd_pd(kCandIsHead ? crd : cid, cvv, t12);
    *acc = _mm256_add_pd(
        *acc, _mm256_fnmadd_pd(kCandIsHead ? cid : crd, dv, t123));
  };
  auto finish = [&](const float* cr, int k, __m256d acc) {
    const float* ci = cr + dim;
    double s = HSum(acc);
    for (; k < dim; ++k) {
      s += kCandIsHead ? double(cr[k]) * a[k] + double(ci[k]) * b[k] +
                             double(cr[k]) * c[k] - double(ci[k]) * d[k]
                       : double(cr[k]) * a[k] + double(ci[k]) * b[k] +
                             double(ci[k]) * c[k] - double(cr[k]) * d[k];
    }
    return s;
  };
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* c0 = tbase + i * stride;
    const float* c1 = c0 + stride;
    const float* c2 = c1 + stride;
    const float* c3 = c2 + stride;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m256d av = _mm256_loadu_pd(a + k);
      const __m256d bv = _mm256_loadu_pd(b + k);
      const __m256d cvv = _mm256_loadu_pd(c + k);
      const __m256d dv = _mm256_loadu_pd(d + k);
      accumulate(c0, k, av, bv, cvv, dv, &acc0);
      accumulate(c1, k, av, bv, cvv, dv, &acc1);
      accumulate(c2, k, av, bv, cvv, dv, &acc2);
      accumulate(c3, k, av, bv, cvv, dv, &acc3);
    }
    tile[i + 0] = finish(c0, k, acc0);
    tile[i + 1] = finish(c1, k, acc1);
    tile[i + 2] = finish(c2, k, acc2);
    tile[i + 3] = finish(c3, k, acc3);
  }
  for (; i < n; ++i) {
    const float* cv = tbase + i * stride;
    __m256d acc = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= dim; k += 4) {
      accumulate(cv, k, _mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k),
                 _mm256_loadu_pd(c + k), _mm256_loadu_pd(d + k), &acc);
    }
    tile[i] = finish(cv, k, acc);
  }
}

template <bool kCandIsHead>
void ComplExSweepTopKAvx2(const float* fixed_e, const float* fixed_r,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim,
                          TopKCollector* collector) {
  std::vector<double>& scratch = SweepScratch();
  scratch.resize(4 * dim);
  ComplExHoistAvx2<kCandIsHead>(fixed_e, fixed_r, dim, scratch.data());
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    ComplExScoreTileAvx2<kCandIsHead>(scratch.data(), base + lo * stride,
                                      stride, n, dim, tile);
    OfferTileAvx2(tile, lo, n, collector);
  }
}

template <bool kCandIsHead>
void ComplExSweepTopKBatchAvx2(const float* const* fixed_e,
                               const float* const* fixed_r, std::size_t nq,
                               const float* base, std::size_t stride,
                               std::size_t count, int dim,
                               TopKCollector* const* collectors) {
  std::vector<double>& scratch = SweepScratch();
  const std::size_t per_query = 4 * static_cast<std::size_t>(dim);
  scratch.resize(nq * per_query);
  for (std::size_t q = 0; q < nq; ++q) {
    ComplExHoistAvx2<kCandIsHead>(fixed_e[q], fixed_r[q], dim,
                                  scratch.data() + q * per_query);
  }
  alignas(64) double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    for (std::size_t q = 0; q < nq; ++q) {
      ComplExScoreTileAvx2<kCandIsHead>(scratch.data() + q * per_query,
                                        base + lo * stride, stride, n, dim,
                                        tile);
      OfferTileAvx2(tile, lo, n, collectors[q]);
    }
  }
}

const ScorerKernels kAvx2Kernels = {
    TransEScoreAvx2,      TransEBackwardAvx2,   DistMultScoreAvx2,
    DistMultBackwardAvx2, ComplExScoreAvx2,     ComplExBackwardAvx2,
    TransESweepHeadAvx2,  TransESweepTailAvx2,  DistMultSweepAvx2,
    DistMultSweepAvx2,    ComplExSweepHeadAvx2, ComplExSweepTailAvx2,
    TransESweepTopKAvx2</*kCandIsHead=*/true>,
    TransESweepTopKAvx2</*kCandIsHead=*/false>,
    DistMultSweepTopKAvx2,
    DistMultSweepTopKAvx2,
    ComplExSweepTopKAvx2</*kCandIsHead=*/true>,
    ComplExSweepTopKAvx2</*kCandIsHead=*/false>,
    TransESweepTopKBatchAvx2</*kCandIsHead=*/true>,
    TransESweepTopKBatchAvx2</*kCandIsHead=*/false>,
    DistMultSweepTopKBatchAvx2,
    DistMultSweepTopKBatchAvx2,
    ComplExSweepTopKBatchAvx2</*kCandIsHead=*/true>,
    ComplExSweepTopKBatchAvx2</*kCandIsHead=*/false>,
};

}  // namespace

namespace internal {
const ScorerKernels* GetAvx2Kernels() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace simd
}  // namespace nsc

#else  // !(defined(__AVX2__) && defined(__FMA__))

namespace nsc {
namespace simd {
namespace internal {
const ScorerKernels* GetAvx2Kernels() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace nsc

#endif  // defined(__AVX2__) && defined(__FMA__)
