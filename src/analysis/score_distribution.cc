#include "analysis/score_distribution.h"

#include <algorithm>

#include "util/statistics.h"

namespace nsc {

std::vector<double> NegativeDistanceSamples(const KgeModel& model,
                                            const Triple& pos) {
  const double pos_score = model.Score(pos);
  std::vector<double> out;
  out.reserve(model.num_entities() - 1);
  Triple corrupted = pos;
  for (EntityId e = 0; e < model.num_entities(); ++e) {
    if (e == pos.t) continue;
    corrupted.t = e;
    out.push_back(pos_score - model.Score(corrupted));
  }
  return out;
}

CcdfCurve NegativeScoreCcdf(const KgeModel& model, const Triple& pos,
                            int grid_points) {
  const std::vector<double> d = NegativeDistanceSamples(model, pos);
  CcdfCurve curve;
  if (d.empty()) return curve;
  const auto [lo_it, hi_it] = std::minmax_element(d.begin(), d.end());
  double lo = *lo_it, hi = *hi_it;
  if (lo == hi) hi = lo + 1.0;
  curve.thresholds = LinSpace(lo, hi, grid_points);
  curve.ccdf = Ccdf(d, curve.thresholds);
  return curve;
}

}  // namespace nsc
