// Exploration/exploitation instrumentation of §IV-C (Figures 7 & 8):
//   RR  — repeat ratio: the fraction of sampled negative triples that were
//         already sampled within the last `window` epochs (low RR = good
//         exploration);
//   NZL — non-zero-loss ratio: the fraction of pairs whose training loss
//         is non-zero (high NZL = good exploitation; the trainer also
//         reports this in EpochStats, the tracker recomputes it from the
//         observer stream so ablation harnesses need only one hook).
#ifndef NSCACHING_ANALYSIS_DYNAMICS_H_
#define NSCACHING_ANALYSIS_DYNAMICS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kg/types.h"
#include "sampler/negative_sampler.h"

namespace nsc {

/// Per-epoch RR / NZL series built from the trainer's negative observer.
class DynamicsTracker {
 public:
  /// `window` is the repeat-detection horizon in epochs (20 in the paper).
  explicit DynamicsTracker(int window = 20) : window_(window) {}

  /// Call for every sampled pair (wire to Trainer::set_negative_observer).
  void Observe(const Triple& pos, const NegativeSample& neg, double pair_loss);

  /// Closes the current epoch and appends to the series.
  void EndEpoch();

  /// Repeat ratio per epoch, in [0, 1].
  const std::vector<double>& repeat_ratio() const { return repeat_ratio_; }
  /// Non-zero-loss ratio per epoch, in [0, 1].
  const std::vector<double>& nonzero_loss_ratio() const { return nzl_; }

 private:
  int window_;
  int epoch_ = 0;
  int64_t samples_this_epoch_ = 0;
  int64_t repeats_this_epoch_ = 0;
  int64_t nonzero_this_epoch_ = 0;
  // Packed negative triple -> last epoch it was sampled in.
  std::unordered_map<uint64_t, int> last_seen_;
  std::vector<double> repeat_ratio_;
  std::vector<double> nzl_;
};

}  // namespace nsc

#endif  // NSCACHING_ANALYSIS_DYNAMICS_H_
