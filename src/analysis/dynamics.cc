#include "analysis/dynamics.h"

#include "embedding/loss.h"

namespace nsc {

void DynamicsTracker::Observe(const Triple& pos, const NegativeSample& neg,
                              double pair_loss) {
  (void)pos;
  ++samples_this_epoch_;
  // Same threshold as Trainer::Accumulate (kNonzeroLossThreshold), so the
  // tracker's NZL series and EpochStats::nonzero_loss_ratio agree exactly.
  if (pair_loss > kNonzeroLossThreshold) ++nonzero_this_epoch_;
  const uint64_t key = PackTriple(neg.triple);
  auto it = last_seen_.find(key);
  if (it != last_seen_.end() && epoch_ - it->second <= window_) {
    ++repeats_this_epoch_;
  }
  last_seen_[key] = epoch_;
}

void DynamicsTracker::EndEpoch() {
  const double n = samples_this_epoch_ > 0
                       ? static_cast<double>(samples_this_epoch_)
                       : 1.0;
  repeat_ratio_.push_back(static_cast<double>(repeats_this_epoch_) / n);
  nzl_.push_back(static_cast<double>(nonzero_this_epoch_) / n);
  samples_this_epoch_ = 0;
  repeats_this_epoch_ = 0;
  nonzero_this_epoch_ = 0;
  ++epoch_;
}

}  // namespace nsc
