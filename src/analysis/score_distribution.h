// Instrumentation for Figure 1 of the paper: the distribution of negative
// triple "distances" D(h,r,t̄) = f(h,r,t) − f(h,r,t̄) for a fixed positive
// triple, whose complementary CDF F_D(x) = P(D >= x) is highly skew —
// only a few negatives stay within the margin (D < γ) as training
// proceeds, which is the empirical motivation for caching them.
//
// Note on sign: the paper writes D = f(h,r,t̄) − f(h,r,t) with f a
// *distance* (smaller = more plausible). This library uses plausibility
// scores (larger = better), so the equivalent quantity is
// D = score(pos) − score(neg); D >= γ means the margin-loss gradient of
// that negative has vanished. Both conventions yield the same CCDF.
#ifndef NSCACHING_ANALYSIS_SCORE_DISTRIBUTION_H_
#define NSCACHING_ANALYSIS_SCORE_DISTRIBUTION_H_

#include <vector>

#include "embedding/model.h"
#include "kg/types.h"

namespace nsc {

/// D values for every tail corruption t̄ != t of `pos`:
/// out[i] = score(h, r, t) − score(h, r, t̄_i).
std::vector<double> NegativeDistanceSamples(const KgeModel& model,
                                            const Triple& pos);

/// CCDF of the D samples on an even grid of `grid_points` thresholds
/// spanning [min(D), max(D)]. Returns {thresholds, ccdf}.
struct CcdfCurve {
  std::vector<double> thresholds;
  std::vector<double> ccdf;
};
CcdfCurve NegativeScoreCcdf(const KgeModel& model, const Triple& pos,
                            int grid_points = 41);

}  // namespace nsc

#endif  // NSCACHING_ANALYSIS_SCORE_DISTRIBUTION_H_
