// Gradient-norm bookkeeping for Figure 10 of the paper: the mini-batch
// average l2 norm of parameter gradients stays visibly larger under
// NSCaching than under Bernoulli sampling — the direct evidence that the
// cache avoids vanishing gradients.
#ifndef NSCACHING_ANALYSIS_GRAD_NORM_H_
#define NSCACHING_ANALYSIS_GRAD_NORM_H_

#include <vector>

#include "train/trainer.h"

namespace nsc {

/// Collects the mean_grad_norm series out of per-epoch trainer stats.
class GradNormRecorder {
 public:
  void Add(const EpochStats& stats) { series_.push_back(stats.mean_grad_norm); }

  const std::vector<double>& series() const { return series_; }

  /// Mean over the last `k` recorded epochs (0 -> whole series).
  double Tail(int k = 0) const;

 private:
  std::vector<double> series_;
};

}  // namespace nsc

#endif  // NSCACHING_ANALYSIS_GRAD_NORM_H_
