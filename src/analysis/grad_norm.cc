#include "analysis/grad_norm.h"

namespace nsc {

double GradNormRecorder::Tail(int k) const {
  if (series_.empty()) return 0.0;
  const size_t take = (k <= 0 || static_cast<size_t>(k) > series_.size())
                          ? series_.size()
                          : static_cast<size_t>(k);
  double sum = 0.0;
  for (size_t i = series_.size() - take; i < series_.size(); ++i) {
    sum += series_[i];
  }
  return sum / static_cast<double>(take);
}

}  // namespace nsc
