#include "train/classification.h"

#include <algorithm>
#include <limits>

#include "sampler/negative_sampler.h"
#include "util/logging.h"

namespace nsc {

TripleStore GenerateClassificationNegatives(const TripleStore& positives,
                                            const KgIndex& all_index,
                                            uint64_t seed) {
  Rng rng(seed);
  SideChooser side_chooser(&all_index);
  TripleStore negatives(positives.num_entities(), positives.num_relations());
  for (const Triple& pos : positives) {
    const CorruptionSide side = side_chooser.Choose(pos, &rng);
    Triple neg = pos;
    for (int attempt = 0; attempt < 100; ++attempt) {
      const EntityId e = static_cast<EntityId>(
          rng.UniformInt(static_cast<uint64_t>(positives.num_entities())));
      neg = Corrupt(pos, side, e);
      if (!all_index.Contains(neg)) break;
    }
    negatives.Add(neg);
  }
  return negatives;
}

namespace {

/// Labelled score sample.
struct Scored {
  double score;
  bool positive;
};

/// Best threshold and its accuracy for one pool of labelled scores:
/// predict positive iff score >= σ.
void BestThreshold(std::vector<Scored>* pool, double* threshold,
                   int64_t* best_correct) {
  // Sweep thresholds downward over sorted scores; at threshold just above
  // all scores, every sample is predicted negative.
  std::sort(pool->begin(), pool->end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });
  int64_t num_pos = 0;
  for (const Scored& s : *pool) num_pos += s.positive ? 1 : 0;
  const int64_t num_neg = static_cast<int64_t>(pool->size()) - num_pos;

  // Start: all predicted negative -> correct = num_neg.
  int64_t correct = num_neg;
  *best_correct = correct;
  *threshold = std::numeric_limits<double>::infinity();
  int64_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < pool->size()) {
    // Move every sample tied at this score to "predicted positive".
    const double s = (*pool)[i].score;
    while (i < pool->size() && (*pool)[i].score == s) {
      if ((*pool)[i].positive) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    correct = num_neg - fp + tp;
    if (correct > *best_correct) {
      *best_correct = correct;
      *threshold = s;  // Predict positive iff score >= s.
    }
  }
}

}  // namespace

ClassificationThresholds FitThresholds(const KgeModel& model,
                                       const TripleStore& valid_pos,
                                       const TripleStore& valid_neg) {
  const int32_t num_relations = model.num_relations();
  std::vector<std::vector<Scored>> by_relation(num_relations);
  std::vector<Scored> all;
  auto add = [&](const TripleStore& store, bool positive) {
    for (const Triple& x : store) {
      const Scored s{model.Score(x), positive};
      by_relation[x.r].push_back(s);
      all.push_back(s);
    }
  };
  add(valid_pos, true);
  add(valid_neg, false);

  ClassificationThresholds out;
  out.per_relation.assign(num_relations, 0.0);
  out.seen.assign(num_relations, false);
  int64_t ignored = 0;
  BestThreshold(&all, &out.global, &ignored);
  for (int32_t r = 0; r < num_relations; ++r) {
    if (by_relation[r].empty()) continue;
    out.seen[r] = true;
    int64_t correct = 0;
    BestThreshold(&by_relation[r], &out.per_relation[r], &correct);
  }
  return out;
}

double ClassificationAccuracy(const KgeModel& model,
                              const ClassificationThresholds& thresholds,
                              const TripleStore& pos, const TripleStore& neg) {
  int64_t correct = 0, total = 0;
  auto judge = [&](const TripleStore& store, bool positive) {
    for (const Triple& x : store) {
      const double sigma = thresholds.seen[x.r] ? thresholds.per_relation[x.r]
                                                : thresholds.global;
      const bool predicted_positive = model.Score(x) >= sigma;
      if (predicted_positive == positive) ++correct;
      ++total;
    }
  };
  judge(pos, true);
  judge(neg, false);
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(correct) /
                          static_cast<double>(total);
}

double EvaluateTripleClassification(const KgeModel& model,
                                    const TripleStore& valid,
                                    const TripleStore& test,
                                    const KgIndex& all_index, uint64_t seed) {
  const TripleStore valid_neg =
      GenerateClassificationNegatives(valid, all_index, seed);
  const TripleStore test_neg =
      GenerateClassificationNegatives(test, all_index, seed + 1);
  const ClassificationThresholds thresholds =
      FitThresholds(model, valid, valid_neg);
  return ClassificationAccuracy(model, thresholds, test, test_neg);
}

}  // namespace nsc
