#include "train/link_prediction.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace nsc {

namespace {

/// Rank of the true entity for one side of one triple.
int64_t RankOneSide(const KgeModel& model, const Triple& x,
                    CorruptionSide side, const KgIndex& filter_index,
                    bool filtered) {
  const int32_t num_entities = model.num_entities();
  const double true_score = model.Score(x);
  int64_t greater = 0;
  Triple corrupted = x;
  for (EntityId e = 0; e < num_entities; ++e) {
    if (side == CorruptionSide::kHead) {
      if (e == x.h) continue;
      corrupted.h = e;
    } else {
      if (e == x.t) continue;
      corrupted.t = e;
    }
    if (filtered && filter_index.Contains(corrupted)) continue;
    if (model.Score(corrupted) > true_score) ++greater;
  }
  return greater + 1;
}

}  // namespace

RankingMetrics EvaluateLinkPrediction(const KgeModel& model,
                                      const TripleStore& eval_set,
                                      const KgIndex& filter_index,
                                      const LinkPredictionOptions& options) {
  const size_t limit = options.max_triples == 0
                           ? eval_set.size()
                           : std::min(options.max_triples, eval_set.size());
  const int threads =
      options.num_threads > 0 ? options.num_threads : DefaultThreadCount();

  std::vector<RankingMetrics> per_worker(threads);
  ThreadPool pool(threads);
  pool.ParallelFor(0, limit, [&](size_t i, int worker) {
    const Triple& x = eval_set[i];
    per_worker[worker].AddRank(RankOneSide(model, x, CorruptionSide::kHead,
                                           filter_index, options.filtered));
    per_worker[worker].AddRank(RankOneSide(model, x, CorruptionSide::kTail,
                                           filter_index, options.filtered));
  });

  RankingMetrics total;
  for (const auto& m : per_worker) total.Merge(m);
  return total;
}

}  // namespace nsc
