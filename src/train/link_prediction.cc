#include "train/link_prediction.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace nsc {

namespace {

/// Strictly-greater / exactly-equal candidate counts for one side of one
/// query. The rank is derived from these per the tie policy.
struct SideCounts {
  int64_t greater = 0;
  int64_t ties = 0;
};

double RankFromCounts(const SideCounts& c, TieBreak tie_break) {
  const double optimistic = static_cast<double>(c.greater + 1);
  return tie_break == TieBreak::kOptimistic
             ? optimistic
             : optimistic + 0.5 * static_cast<double>(c.ties);
}

/// Legacy reference evaluator: one virtual Score() and (when filtered)
/// one hash probe per candidate entity.
SideCounts CountOneSideLegacy(const KgeModel& model, const Triple& x,
                              CorruptionSide side, const KgIndex& filter_index,
                              bool filtered) {
  const int32_t num_entities = model.num_entities();
  const double true_score = model.Score(x);
  SideCounts counts;
  Triple corrupted = x;
  for (EntityId e = 0; e < num_entities; ++e) {
    if (side == CorruptionSide::kHead) {
      if (e == x.h) continue;
      corrupted.h = e;
    } else {
      if (e == x.t) continue;
      corrupted.t = e;
    }
    if (filtered && filter_index.Contains(corrupted)) continue;
    const double s = model.Score(corrupted);
    counts.greater += s > true_score;
    counts.ties += s == true_score;
  }
  return counts;
}

/// Batched counterpart over a full 1-vs-all sweep: `scores[e]` holds the
/// candidate score of every entity e (including the true one, whose own
/// sweep score is the comparison reference so candidate-vs-true
/// comparisons never mix two kernels' arithmetic). The dense count over
/// all entities is a branch-free, vectorizable loop; the true entity and
/// (when filtered) the per-query known-true list are then subtracted —
/// O(|filter list|) corrections instead of O(|E|) hash probes. The lists
/// are deduplicated at KgIndex build time, so each candidate is
/// subtracted at most once.
SideCounts CountOneSideBatched(const double* scores, int32_t num_entities,
                               EntityId true_entity, bool filtered,
                               const std::vector<EntityId>& known) {
  const double true_score = scores[true_entity];
  SideCounts counts;
  for (int32_t e = 0; e < num_entities; ++e) {
    counts.greater += scores[e] > true_score;
    counts.ties += scores[e] == true_score;
  }
  --counts.ties;  // The true entity always ties with itself.
  if (filtered) {
    for (EntityId f : known) {
      if (f == true_entity) continue;
      counts.greater -= scores[f] > true_score;
      counts.ties -= scores[f] == true_score;
    }
  }
  return counts;
}

/// Candidates per sub-range sweep of the hits-only mode. One tile of
/// doubles is the only score storage a worker ever holds.
constexpr int32_t kEvalTile = 256;

/// Hits@K-only tiled counting with early exit. Sweeps 256-entity tiles
/// through the sub-range kernels (ScoreHeadRange/ScoreTailRange — the
/// same arithmetic as the full sweep, so candidate-vs-true comparisons
/// are unchanged), applies the filtered corrections of each tile before
/// moving on, and stops once the strictly-greater count reaches hits_k.
/// Each tile's correction-adjusted contribution is non-negative (a known
/// candidate's subtraction cancels its own dense count from the same
/// tile), so the running count is an exact lower bound of the final one
/// and the exit is never premature. Returns true when the full entity
/// range was counted (`out` then holds exact counts, equal to
/// CountOneSideBatched's); false on early exit (the rank is provably
/// > hits_k, `out` is partial junk).
bool CountOneSideHitsOnly(const KgeModel& model, const Triple& x,
                          CorruptionSide side, bool filtered,
                          const std::vector<EntityId>& known, int hits_k,
                          double* tile, std::vector<EntityId>* sorted_known,
                          SideCounts* out) {
  const int32_t num_entities = model.num_entities();
  const EntityId true_entity = side == CorruptionSide::kHead ? x.h : x.t;
  // True score from a count-1 slice of the sweep: per-candidate scores
  // are range-independent, so this is bit-identical to the full sweep's
  // entry for the true entity.
  double true_score;
  if (side == CorruptionSide::kHead) {
    model.ScoreHeadRange(x.r, x.t, static_cast<size_t>(true_entity), 1,
                         &true_score);
  } else {
    model.ScoreTailRange(x.h, x.r, static_cast<size_t>(true_entity), 1,
                         &true_score);
  }
  sorted_known->clear();
  if (filtered) {
    for (EntityId f : known) {
      if (f != true_entity) sorted_known->push_back(f);
    }
    std::sort(sorted_known->begin(), sorted_known->end());
  }
  SideCounts counts;
  size_t next_known = 0;
  for (int32_t lo = 0; lo < num_entities; lo += kEvalTile) {
    const int32_t n = std::min(kEvalTile, num_entities - lo);
    if (side == CorruptionSide::kHead) {
      model.ScoreHeadRange(x.r, x.t, static_cast<size_t>(lo),
                           static_cast<size_t>(n), tile);
    } else {
      model.ScoreTailRange(x.h, x.r, static_cast<size_t>(lo),
                           static_cast<size_t>(n), tile);
    }
    for (int32_t i = 0; i < n; ++i) {
      counts.greater += tile[i] > true_score;
      counts.ties += tile[i] == true_score;
    }
    if (true_entity >= lo && true_entity < lo + n) {
      --counts.ties;  // The true entity always ties with itself.
    }
    while (next_known < sorted_known->size() &&
           (*sorted_known)[next_known] < lo + n) {
      const EntityId f = (*sorted_known)[next_known++];
      counts.greater -= tile[f - lo] > true_score;
      counts.ties -= tile[f - lo] == true_score;
    }
    if (counts.greater >= hits_k) {
      *out = counts;
      return false;
    }
  }
  *out = counts;
  return true;
}

}  // namespace

RankingMetrics EvaluateLinkPrediction(const KgeModel& model,
                                      const TripleStore& eval_set,
                                      const KgIndex& filter_index,
                                      const LinkPredictionOptions& options) {
  const size_t limit = options.max_triples == 0
                           ? eval_set.size()
                           : std::min(options.max_triples, eval_set.size());
  if (limit == 0) return {};
  if (options.hits_only) {
    CHECK_GE(options.hits_k, 1);
    CHECK_LE(options.hits_k, 10) << "RankingMetrics tracks hits up to k=10";
  }
  const int threads =
      options.num_threads > 0 ? options.num_threads : DefaultThreadCount();

  // One contiguous chunk of queries per slot. Each task accumulates into
  // a worker-local RankingMetrics and stores it once, so no two workers
  // ever write the same accumulator concurrently; the slots are
  // cacheline-padded anyway so even those single stores cannot false
  // share. Merging in chunk order keeps the result deterministic in the
  // thread count regardless of which worker ran which chunk.
  struct alignas(64) ChunkSlot {
    RankingMetrics metrics;
  };
  const size_t num_chunks = std::min(static_cast<size_t>(threads), limit);
  const size_t chunk = (limit + num_chunks - 1) / num_chunks;
  std::vector<ChunkSlot> slots(num_chunks);

  ThreadPool pool(threads);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = c * chunk;
    const size_t hi = std::min(limit, lo + chunk);
    if (lo >= hi) break;
    pool.Schedule([&, lo, hi, c](int /*worker*/) {
      RankingMetrics local;
      if (options.hits_only) {
        // Hits@K-only: one 256-double tile is the worker's entire score
        // storage; no |E| buffer exists on this path.
        double tile[kEvalTile];
        std::vector<EntityId> sorted_known;
        const double junk_rank = static_cast<double>(options.hits_k) + 1.0;
        for (size_t i = lo; i < hi; ++i) {
          const Triple& x = eval_set[i];
          SideCounts counts;
          for (CorruptionSide side :
               {CorruptionSide::kHead, CorruptionSide::kTail}) {
            const std::vector<EntityId>& known =
                side == CorruptionSide::kHead ? filter_index.HeadsOf(x.r, x.t)
                                              : filter_index.TailsOf(x.h, x.r);
            const bool exact = CountOneSideHitsOnly(
                model, x, side, options.filtered, known, options.hits_k, tile,
                &sorted_known, &counts);
            local.AddRank(exact ? RankFromCounts(counts, options.tie_break)
                                : junk_rank);
          }
        }
        slots[c].metrics = local;
        return;
      }
      std::vector<double> scores;
      if (options.use_batched) {
        scores.resize(static_cast<size_t>(model.num_entities()));
      }
      for (size_t i = lo; i < hi; ++i) {
        const Triple& x = eval_set[i];
        SideCounts head, tail;
        if (options.use_batched) {
          model.ScoreAllHeads(x.r, x.t, scores.data());
          head = CountOneSideBatched(scores.data(), model.num_entities(), x.h,
                                     options.filtered,
                                     filter_index.HeadsOf(x.r, x.t));
          model.ScoreAllTails(x.h, x.r, scores.data());
          tail = CountOneSideBatched(scores.data(), model.num_entities(), x.t,
                                     options.filtered,
                                     filter_index.TailsOf(x.h, x.r));
        } else {
          head = CountOneSideLegacy(model, x, CorruptionSide::kHead,
                                    filter_index, options.filtered);
          tail = CountOneSideLegacy(model, x, CorruptionSide::kTail,
                                    filter_index, options.filtered);
        }
        local.AddRank(RankFromCounts(head, options.tie_break));
        local.AddRank(RankFromCounts(tail, options.tie_break));
      }
      slots[c].metrics = local;
    });
  }
  pool.Wait();

  RankingMetrics total;
  for (const ChunkSlot& slot : slots) total.Merge(slot.metrics);
  return total;
}

}  // namespace nsc
