#include "train/train_config.h"

#include <sstream>

namespace nsc {

std::string TrainConfig::ToString() const {
  std::ostringstream out;
  out << "dim=" << dim << " lr=" << learning_rate << " opt=" << optimizer
      << " margin=" << margin << " lambda=" << l2_lambda
      << " batch=" << batch_size << " epochs=" << epochs
      << " threads=" << num_threads << " fused=" << (fused_scoring ? 1 : 0)
      << " fblock=" << fused_block << " seed=" << seed;
  return out.str();
}

}  // namespace nsc
