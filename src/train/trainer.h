// The stochastic training loop of Algorithms 1 and 2: shuffled
// mini-batches over the training triples; per positive, one negative is
// drawn from the pluggable NegativeSampler, the pairwise loss of the
// model family is differentiated through the scorer, and touched rows are
// updated by a sparse optimizer. The trainer is where NSCaching, KBGAN
// and the fixed baselines meet the identical surrounding machinery, so
// measured differences are attributable to the sampler alone.
//
// Execution engine: RunEpoch() walks the epoch in mini-batches of
// TrainConfig::batch_size and, with TrainConfig::num_threads > 1, trains
// each batch Hogwild-style — lock-free asynchronous SGD over the shared
// embedding tables — on a ThreadPool with per-worker RNG streams and
// per-worker gradient scratch. With num_threads == 1 the engine performs
// exactly the operation sequence of the legacy serial loop (retained as
// RunEpochSerial()), bit-for-bit, so convergence results remain
// comparable across PRs.
//
// Hot path: with TrainConfig::fused_scoring (the default) each worker's
// share of a mini-batch runs as a FUSED step — positives and negatives
// are each scored in a single ScoringFunction::ScoreBatch call through
// the runtime-dispatched SIMD kernels (util/simd.h) and the loss batch
// is differentiated in one Loss::ComputeBatch; the update pass then
// walks the pairs driving BackwardBatch + a batched sparse optimizer
// apply (Optimizer::ApplyBatch) through the per-worker GradAccumulator,
// keeping the paper's one-optimizer-step-per-pair dynamics. Scores are
// computed against the parameters as the previous fusion block left
// them, so they are stale by at most TrainConfig::fused_block pairs —
// the same kind of asynchrony the Hogwild engine already tolerates
// across workers.
// fused_scoring = false pins the legacy pair-at-a-time loop: per-pair
// scalar Score/Backward, which with num_threads == 1 stays bit-for-bit
// identical to RunEpochSerial() independent of the SIMD dispatch path.
// The two paths coincide exactly at batch_size == 1 on the forced-scalar
// path (pinned ULP-bounded by trainer_parallel_test).
#ifndef NSCACHING_TRAIN_TRAINER_H_
#define NSCACHING_TRAIN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "embedding/loss.h"
#include "embedding/model.h"
#include "embedding/optimizer.h"
#include "kg/triple_store.h"
#include "sampler/negative_sampler.h"
#include "train/grad_accumulator.h"
#include "train/train_config.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nsc {

class SnapshotPublisher;

/// Per-epoch training telemetry.
struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  /// Fraction of (pos, neg) pairs with non-zero loss — the NZL measure of
  /// Figures 7/8 (exploitation: a useful negative produces gradient).
  double nonzero_loss_ratio = 0.0;
  /// Mean per-pair gradient l2 norm (Figure 10); 0 unless
  /// TrainConfig::track_grad_norm.
  double mean_grad_norm = 0.0;
  /// Wall-clock seconds spent training this epoch (sampling included,
  /// evaluation excluded).
  double seconds = 0.0;
};

/// Observer of every sampled (positive, negative, loss) event; used by the
/// analysis module to compute the repeat ratio (RR) of Figure 7. Always
/// invoked serially, in pair order, even under the parallel engine.
using NegativeObserver =
    std::function<void(const Triple& pos, const NegativeSample& neg,
                       double pair_loss)>;

class Trainer {
 public:
  /// All pointers are borrowed and must outlive the trainer. The loss is
  /// chosen from the scorer's family (margin for translational with
  /// config.margin, logistic for semantic matching).
  Trainer(KgeModel* model, const TripleStore* train_set,
          NegativeSampler* sampler, const TrainConfig& config);

  /// Runs one full pass over the (shuffled) training set through the
  /// batched engine (config.batch_size, config.num_threads,
  /// config.fused_scoring). With fused_scoring = false and one thread
  /// this reproduces RunEpochSerial() bit-for-bit; with fused_scoring on
  /// each worker sub-range runs the fused ScoreBatch→ComputeBatch→
  /// BackwardBatch step; with more threads, each mini-batch is trained
  /// Hogwild-style (results are run-to-run nondeterministic but the
  /// sampling streams stay seeded).
  EpochStats RunEpoch();

  /// The legacy pair-at-a-time reference loop (no batching, no threads,
  /// never fused — fused_scoring is ignored here). Kept as the semantic
  /// baseline for parity tests and the serial baseline of
  /// bench_throughput; uses the same RNG stream as RunEpoch() with
  /// num_threads == 1.
  EpochStats RunEpochSerial();

  /// Epochs completed so far.
  int epoch() const { return epoch_; }

  /// Mini-batches completed so far across all epochs — the step stamped
  /// onto published snapshots (RunEpochSerial counts its whole epoch as
  /// one step: it has no mini-batch boundaries).
  int64_t global_step() const { return global_step_; }

  /// Routes serving snapshots (and, through them, async checkpoints)
  /// out of the training loop: after every `publish_every_batches`-th
  /// completed mini-batch the trainer publishes the model to `publisher`
  /// stamped with global_step(). Publication happens at the batch
  /// boundary, where Hogwild workers are parked at the ThreadPool
  /// barrier, so the snapshot copy races with nothing. `publisher` is
  /// borrowed and must outlive the trainer (or be detached by passing
  /// nullptr).
  void EnableSnapshots(SnapshotPublisher* publisher,
                       int publish_every_batches = 1);

  /// Total training seconds across all epochs (evaluation excluded).
  double cumulative_seconds() const { return cumulative_seconds_; }

  void set_negative_observer(NegativeObserver observer) {
    observer_ = std::move(observer);
  }

  const Loss& loss() const { return *loss_; }
  KgeModel* model() { return model_; }

  /// Worker threads the engine actually uses (resolves num_threads <= 0).
  int num_threads() const { return num_threads_; }

 private:
  /// Everything one trained pair reports back to the epoch loop.
  struct PairOutcome {
    double loss = 0.0;
    double grad_norm = 0.0;
    double neg_score = 0.0;  // Discriminator score, for sampler Feedback.
  };

  /// Reusable fused-step buffers: per-pair row pointers and score/loss
  /// batches, plus the BackwardBatch entry arrays (≤ 2 entries per pair —
  /// the active positive and negative sides). Capacity is retained across
  /// batches, so the fused hot path is allocation-free once warm.
  struct FusedScratch {
    std::vector<const float*> pos_h, pos_r, pos_t;
    std::vector<const float*> neg_h, neg_r, neg_t;
    std::vector<double> pos_scores, neg_scores;
    LossBatchGrad loss_grad;
    std::vector<const float*> bh, br, bt;
    std::vector<float> coeff;
    std::vector<float*> gh, gr, gt;
  };

  /// Per-worker mutable state; workers_[0] doubles as the serial scratch.
  ///
  /// Ownership protocol (no mutex — this is index partitioning, which the
  /// thread-safety analysis cannot express, so it is stated here instead):
  /// workers_[i] is written ONLY by the worker running with worker index
  /// i, and only between a ThreadPool::Schedule() handoff and the
  /// matching Wait() barrier — those order the accesses, so the state
  /// needs no lock and no atomics. The main thread touches workers_[i]
  /// exclusively outside Schedule/Wait windows (construction, serial
  /// paths via workers_[0]). Every intentionally unsynchronized access in
  /// the trainer targets the SHARED model tables (Hogwild), never a
  /// WorkerState — see tsan.supp for that inventory.
  struct WorkerState {
    GradAccumulator entity_grads;
    std::vector<float> relation_grad;  // The pair's one touched relation row.
    FusedScratch fused;
    Rng rng{0};  // Independent stream; only used when num_threads_ > 1.
  };

  /// One gradient step on a (positive, negative) pair: scores, loss
  /// gradient, sparse backward into ws's accumulator, optimizer update,
  /// norm projection. Does NOT call sampler Feedback or the observer —
  /// the epoch loops do, serially, preserving the legacy call order.
  PairOutcome TrainPairStep(const Triple& pos, const NegativeSample& neg,
                            WorkerState* ws);

  /// The shared tail of one pair's update over ws's gradient state (the
  /// entity accumulator plus the relation-row buffer): L2 penalty,
  /// optional gradient norm (returned), batched sparse optimizer step,
  /// norm projection. Both the pair path and the fused walk end here, so
  /// the parity-critical ordering lives in exactly one place.
  double ApplyPairUpdate(const Triple& pos, WorkerState* ws);

  /// The full serial treatment of one pair — step, Feedback, totals,
  /// observer, in the legacy order. All serial code paths share this so
  /// the bit-for-bit parity contract lives in exactly one place.
  void TrainSerialPair(const Triple& pos, const NegativeSample& neg) {
    const PairOutcome out = TrainPairStep(pos, neg, &workers_[0]);
    sampler_->Feedback(pos, neg, out.neg_score);
    Accumulate(out);
    if (observer_) observer_(pos, neg, out.loss);
  }

  /// Serial mini-batch pass (num_threads == 1), bit-for-bit equal to the
  /// legacy loop: stateless samplers are pre-sampled per batch (their
  /// draws depend only on the RNG stream, so the interleaving is
  /// immaterial); stateful samplers stay interleaved pair-by-pair.
  void RunBatchSerial(size_t lo, size_t hi);

  /// Hogwild mini-batch pass (num_threads > 1): samplers whose
  /// thread_safe_sampling() trait allows it (stateless ones, and
  /// NSCaching with its sharded cache) are drawn inside the workers from
  /// per-worker RNG streams — select, corrupt AND cache refresh all
  /// parallel; the rest (KBGAN) are drawn serially up front, then only
  /// the gradient work fans out. Feedback and the observer run serially
  /// after the barrier.
  void RunBatchParallel(size_t lo, size_t hi);

  /// Fused mini-batch pass, one thread: pre-sample the batch, then one
  /// fused sub-step over the whole batch.
  void RunBatchFusedSerial(size_t lo, size_t hi);

  /// Fused mini-batch pass, Hogwild: the batch is partitioned into
  /// num_threads contiguous sub-ranges; each worker samples its sub-range
  /// (per-worker RNG, when the sampler's trait allows — else a serial
  /// pre-pass) and runs one fused sub-step on it. Workers race on the
  /// shared tables across sub-steps exactly as the pair path races across
  /// pairs. Feedback and the observer run serially after the barrier.
  void RunBatchFusedParallel(size_t lo, size_t hi);

  /// The fused training step over batch-local pairs [lo, hi) of
  /// pos_batch_/negs_: runs FusedBlockStep over blocks of at most
  /// config_.fused_block pairs, so each block's batched scoring sees the
  /// previous block's updates. Fills outcomes_[lo, hi); Feedback and the
  /// observer are the callers' job, as with TrainPairStep.
  void FusedSubStep(size_t lo, size_t hi, WorkerState* ws);

  /// One fusion block: two ScoreBatch calls (positives, negatives)
  /// through the SIMD dispatch and one Loss::ComputeBatch, then a
  /// per-pair update walk — BackwardBatch over the pair's active sides
  /// into ws's entity accumulator (shared rows folded per unique id) and
  /// the shared relation-row buffer, batched sparse optimizer apply from
  /// the accumulator slots, norm projection of every touched row.
  void FusedBlockStep(size_t lo, size_t hi, WorkerState* ws);

  /// Fills pos_batch_ from the shuffled order and sizes negs_/outcomes_
  /// for one mini-batch [lo, hi) of the epoch.
  void GatherBatch(size_t lo, size_t hi);

  /// The serial, in-pair-order epilogue every batch engine must run:
  /// sampler Feedback, epoch totals, the analysis observer — the parity-
  /// critical accounting contract, in exactly one place.
  void DrainBatchOutcomes(size_t b);

  /// Closes out the epoch in flight: derives EpochStats from the running
  /// totals, advances the epoch counter and the cumulative clock.
  EpochStats FinishEpoch(const Stopwatch& watch);

  /// Advances global_step_ past one completed mini-batch and publishes to
  /// the attached SnapshotPublisher when the cadence says so.
  void StepCompleted();

  /// Folds one pair's outcome into the running epoch totals. The NZL
  /// threshold is shared with analysis/DynamicsTracker so the two
  /// measurements of Figures 7/8 cannot drift.
  void Accumulate(const PairOutcome& outcome) {
    loss_sum_ += outcome.loss;
    grad_norm_sum_ += outcome.grad_norm;
    if (outcome.loss > kNonzeroLossThreshold) ++nonzero_;
  }

  KgeModel* model_;
  const TripleStore* train_set_;
  NegativeSampler* sampler_;
  TrainConfig config_;
  std::unique_ptr<Loss> loss_;
  std::unique_ptr<Optimizer> entity_opt_;
  std::unique_ptr<Optimizer> relation_opt_;
  Rng rng_;
  int epoch_ = 0;
  double cumulative_seconds_ = 0.0;
  int64_t global_step_ = 0;
  SnapshotPublisher* publisher_ = nullptr;  // Borrowed; null = detached.
  int publish_every_batches_ = 1;
  int batches_since_publish_ = 0;
  NegativeObserver observer_;
  std::vector<size_t> order_;  // Shuffled triple indices, reused.

  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // Created only when num_threads_ > 1.
  std::vector<WorkerState> workers_;

  // Per-batch scratch, reused across batches (no steady-state allocation).
  std::vector<Triple> pos_batch_;
  std::vector<NegativeSample> negs_;
  std::vector<PairOutcome> outcomes_;

  // Running totals of the epoch in flight.
  double loss_sum_ = 0.0;
  double grad_norm_sum_ = 0.0;
  size_t nonzero_ = 0;
};

}  // namespace nsc

#endif  // NSCACHING_TRAIN_TRAINER_H_
