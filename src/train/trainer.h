// The stochastic training loop of Algorithms 1 and 2: shuffled
// mini-batches over the training triples; per positive, one negative is
// drawn from the pluggable NegativeSampler, the pairwise loss of the
// model family is differentiated through the scorer, and touched rows are
// updated by a sparse optimizer. The trainer is where NSCaching, KBGAN
// and the fixed baselines meet the identical surrounding machinery, so
// measured differences are attributable to the sampler alone.
#ifndef NSCACHING_TRAIN_TRAINER_H_
#define NSCACHING_TRAIN_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "embedding/loss.h"
#include "embedding/model.h"
#include "embedding/optimizer.h"
#include "kg/triple_store.h"
#include "sampler/negative_sampler.h"
#include "train/train_config.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace nsc {

/// Per-epoch training telemetry.
struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  /// Fraction of (pos, neg) pairs with non-zero loss — the NZL measure of
  /// Figures 7/8 (exploitation: a useful negative produces gradient).
  double nonzero_loss_ratio = 0.0;
  /// Mini-batch average gradient l2 norm (Figure 10); 0 unless
  /// TrainConfig::track_grad_norm.
  double mean_grad_norm = 0.0;
  /// Wall-clock seconds spent training this epoch (sampling included,
  /// evaluation excluded).
  double seconds = 0.0;
};

/// Observer of every sampled (positive, negative, loss) event; used by the
/// analysis module to compute the repeat ratio (RR) of Figure 7.
using NegativeObserver =
    std::function<void(const Triple& pos, const NegativeSample& neg,
                       double pair_loss)>;

class Trainer {
 public:
  /// All pointers are borrowed and must outlive the trainer. The loss is
  /// chosen from the scorer's family (margin for translational with
  /// config.margin, logistic for semantic matching).
  Trainer(KgeModel* model, const TripleStore* train_set,
          NegativeSampler* sampler, const TrainConfig& config);

  /// Runs one full pass over the (shuffled) training set.
  EpochStats RunEpoch();

  /// Epochs completed so far.
  int epoch() const { return epoch_; }

  /// Total training seconds across all epochs (evaluation excluded).
  double cumulative_seconds() const { return cumulative_seconds_; }

  void set_negative_observer(NegativeObserver observer) {
    observer_ = std::move(observer);
  }

  const PairwiseLoss& loss() const { return *loss_; }
  KgeModel* model() { return model_; }

 private:
  /// One gradient step on a (positive, negative) pair; returns the loss
  /// value, and the pair's gradient l2 norm via `grad_norm` if non-null.
  double TrainPair(const Triple& pos, const NegativeSample& neg,
                   double* grad_norm);

  KgeModel* model_;
  const TripleStore* train_set_;
  NegativeSampler* sampler_;
  TrainConfig config_;
  std::unique_ptr<PairwiseLoss> loss_;
  std::unique_ptr<Optimizer> entity_opt_;
  std::unique_ptr<Optimizer> relation_opt_;
  Rng rng_;
  int epoch_ = 0;
  double cumulative_seconds_ = 0.0;
  NegativeObserver observer_;
  std::vector<size_t> order_;  // Shuffled triple indices, reused.

  // Reusable per-pair gradient slots (≤ 3 entity rows + 1 relation row).
  struct EntitySlot {
    EntityId id = -1;
    std::vector<float> grad;
  };
  std::vector<EntitySlot> entity_slots_;
  std::vector<float> relation_grad_;
  float* EntityGradFor(EntityId e);
};

}  // namespace nsc

#endif  // NSCACHING_TRAIN_TRAINER_H_
