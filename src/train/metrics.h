// Ranking metrics of the link-prediction protocol (§IV-A3): MRR, MR and
// Hit@k, accumulated over head- and tail-replacement ranks.
#ifndef NSCACHING_TRAIN_METRICS_H_
#define NSCACHING_TRAIN_METRICS_H_

#include <cstdint>
#include <string>

namespace nsc {

/// Accumulator over individual ranks (1-based). Ranks may be fractional:
/// the tie-aware evaluation mode (TieBreak::kMean) counts each tied
/// candidate as half a rank, so a rank of e.g. 2.5 is legal. A
/// fractional rank contributes to hits_at(k) iff rank <= k, exactly like
/// an integer one.
class RankingMetrics {
 public:
  /// Records one rank (>= 1; integer ranks convert implicitly).
  void AddRank(double rank);

  /// Merges another accumulator (for parallel evaluation).
  void Merge(const RankingMetrics& other);

  size_t count() const { return count_; }
  /// Mean reciprocal rank: (1/n) Σ 1/rank_i. Larger is better.
  double mrr() const;
  /// Mean rank. Smaller is better — but see the paper's caveat that MR is
  /// easily distorted by a few large ranks.
  double mr() const;
  /// Fraction of ranks <= k, in percent (the paper reports percentages).
  double hits_at(int k) const;

  std::string ToString() const;

 private:
  static constexpr int kMaxTrackedK = 10;
  size_t count_ = 0;
  double reciprocal_sum_ = 0.0;
  double rank_sum_ = 0.0;
  // hits_le_[k-1] = #ranks <= k for k = 1..10.
  int64_t hits_le_[kMaxTrackedK] = {0};
};

}  // namespace nsc

#endif  // NSCACHING_TRAIN_METRICS_H_
