// Filtered link-prediction evaluation (§IV-A2/3): for every test triple
// (h, r, t), the true head is ranked against all corrupted heads
// (ē, r, t), and the true tail against all (h, r, ē). In the "Filtered"
// setting, corruptions that are themselves known triples (anywhere in
// train ∪ valid ∪ test) are skipped so a model is not penalised for
// ranking another true fact highly. Evaluation parallelises over test
// triples with a thread pool.
//
// Two evaluator implementations share the protocol:
//   - the batched 1-vs-all ranker (default): per query one
//     KgeModel::ScoreAllHeads/ScoreAllTails sweep fills a per-worker
//     score buffer over every entity, the rank is a vectorizable count
//     of scores above the true score, and the filtered setting masks the
//     per-query known-true candidate lists the KgIndex already stores
//     (HeadsOf/TailsOf) — O(|filter|) corrections instead of O(|E|)
//     hash probes;
//   - the legacy per-candidate loop (use_batched = false): one virtual
//     Score() plus one Contains() per candidate, kept as the reference
//     the parity test pins the sweep against.
#ifndef NSCACHING_TRAIN_LINK_PREDICTION_H_
#define NSCACHING_TRAIN_LINK_PREDICTION_H_

#include "embedding/model.h"
#include "kg/kg_index.h"
#include "kg/triple_store.h"
#include "train/metrics.h"

namespace nsc {

/// How candidates whose score exactly equals the true triple's score are
/// ranked.
enum class TieBreak {
  /// rank = 1 + #strictly greater — the historical (optimistic)
  /// convention. A degenerate model scoring every triple identically
  /// reports a perfect MRR of 1.0 under this rule.
  kOptimistic,
  /// rank = 1 + #strictly greater + #ties / 2 — each tied candidate
  /// counts half, the expected rank under random tie shuffling. The
  /// all-equal-scores degenerate model reports MRR ≈ 2/|E| instead
  /// of 1.0.
  kMean,
};

/// Evaluation knobs.
struct LinkPredictionOptions {
  /// Skip known-true corruptions (the paper's "Filtered" setting).
  bool filtered = true;
  /// Worker threads; <= 0 picks the hardware default.
  int num_threads = 0;
  /// Evaluate at most this many triples (0 = all) — lets benches trade
  /// precision for speed on the periodic evaluations of Figures 2-5.
  size_t max_triples = 0;
  /// Rank through the batched 1-vs-all sweep (default). false pins the
  /// legacy per-candidate evaluator — the escape hatch the benches
  /// expose as --legacy-eval, and the baseline of the parity test.
  bool use_batched = true;
  /// Tie handling; kOptimistic reproduces the historical ranks exactly.
  TieBreak tie_break = TieBreak::kOptimistic;
  /// Hits@K-only early-exit mode: rank work for a query side stops as
  /// soon as `hits_k` candidates provably beat the true score, so a
  /// mid-pack query costs a few kernel tiles instead of a full |E|
  /// sweep — and no per-worker |E| score buffer is ever allocated
  /// (tiles of 256 candidates are scored via the sub-range sweeps and
  /// discarded). Early-exited queries record the junk rank hits_k + 1,
  /// so of the returned metrics ONLY hits_at(j) for j <= hits_k and
  /// count() are meaningful — and those are bit-identical to the full
  /// evaluator's under both tie policies: per-tile filtered corrections
  /// keep the running strictly-greater count an exact lower bound of
  /// the final one, and non-exited queries finish with exact counts.
  /// Implies the batched sweeps (use_batched is ignored when set).
  bool hits_only = false;
  /// K of the hits_only mode; must be in [1, 10] (the tracked-K range
  /// of RankingMetrics).
  int hits_k = 10;
};

/// Ranks every triple of `eval_set` under `model`. `filter_index` must
/// cover train+valid+test when options.filtered (pass the train-only
/// index for the "raw" setting).
RankingMetrics EvaluateLinkPrediction(const KgeModel& model,
                                      const TripleStore& eval_set,
                                      const KgIndex& filter_index,
                                      const LinkPredictionOptions& options = {});

}  // namespace nsc

#endif  // NSCACHING_TRAIN_LINK_PREDICTION_H_
