// Filtered link-prediction evaluation (§IV-A2/3): for every test triple
// (h, r, t), the true head is ranked against all corrupted heads
// (ē, r, t), and the true tail against all (h, r, ē). In the "Filtered"
// setting, corruptions that are themselves known triples (anywhere in
// train ∪ valid ∪ test) are skipped so a model is not penalised for
// ranking another true fact highly. Evaluation parallelises over test
// triples with a thread pool.
#ifndef NSCACHING_TRAIN_LINK_PREDICTION_H_
#define NSCACHING_TRAIN_LINK_PREDICTION_H_

#include "embedding/model.h"
#include "kg/kg_index.h"
#include "kg/triple_store.h"
#include "train/metrics.h"

namespace nsc {

/// Evaluation knobs.
struct LinkPredictionOptions {
  /// Skip known-true corruptions (the paper's "Filtered" setting).
  bool filtered = true;
  /// Worker threads; <= 0 picks the hardware default.
  int num_threads = 0;
  /// Evaluate at most this many triples (0 = all) — lets benches trade
  /// precision for speed on the periodic evaluations of Figures 2-5.
  size_t max_triples = 0;
};

/// Ranks every triple of `eval_set` under `model`. `filter_index` must
/// cover train+valid+test when options.filtered (pass the train-only
/// index for the "raw" setting). Ranks use the optimistic convention:
/// rank = 1 + #candidates with strictly larger score.
RankingMetrics EvaluateLinkPrediction(const KgeModel& model,
                                      const TripleStore& eval_set,
                                      const KgIndex& filter_index,
                                      const LinkPredictionOptions& options = {});

}  // namespace nsc

#endif  // NSCACHING_TRAIN_LINK_PREDICTION_H_
