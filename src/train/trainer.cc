#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/math.h"

namespace nsc {

Trainer::Trainer(KgeModel* model, const TripleStore* train_set,
                 NegativeSampler* sampler, const TrainConfig& config)
    : model_(model),
      train_set_(train_set),
      sampler_(sampler),
      config_(config),
      rng_(config.seed) {
  CHECK(model != nullptr);
  CHECK(train_set != nullptr);
  CHECK(sampler != nullptr);
  CHECK(!train_set->empty());
  loss_ = MakeDefaultLoss(model->scorer(), config.margin);
  entity_opt_ = MakeOptimizer(config.optimizer, config.learning_rate,
                              model->entity_table());
  relation_opt_ = MakeOptimizer(config.optimizer, config.learning_rate,
                                model->relation_table());
  CHECK(entity_opt_ != nullptr) << "unknown optimizer " << config.optimizer;
  order_.resize(train_set->size());
  std::iota(order_.begin(), order_.end(), size_t{0});

  num_threads_ =
      config.num_threads <= 0 ? DefaultThreadCount() : config.num_threads;
  workers_.resize(static_cast<size_t>(num_threads_));
  // Worker streams come from a seeder distinct from rng_, so the main
  // stream (shuffle + stateful sampling) is identical for every thread
  // count — the 1-thread engine stays bit-for-bit equal to the serial
  // reference no matter what num_threads was configured elsewhere.
  Rng stream_seeder(config.seed ^ 0x517cc1b727220a95ULL);
  for (WorkerState& ws : workers_) {
    ws.entity_grads.Configure(model->entity_table().width());
    ws.relation_grad.resize(model->relation_table().width());
    ws.rng = stream_seeder.Split();
  }
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
}

Trainer::PairOutcome Trainer::TrainPairStep(const Triple& pos,
                                            const NegativeSample& neg,
                                            WorkerState* ws) {
  PairOutcome out;
  const double pos_score = model_->Score(pos);
  const double neg_score = model_->Score(neg.triple);
  out.neg_score = neg_score;
  const LossGrad lg = loss_->Compute(pos_score, neg_score);
  out.loss = lg.loss;
  if (lg.d_pos == 0.0 && lg.d_neg == 0.0 && config_.l2_lambda == 0.0) {
    return out;
  }

  GradAccumulator& grads = ws->entity_grads;
  grads.Clear();
  std::fill(ws->relation_grad.begin(), ws->relation_grad.end(), 0.0f);
  const int dim = model_->dim();
  const ScoringFunction& scorer = model_->scorer();
  EmbeddingTable& ent = model_->entity_table();
  EmbeddingTable& rel = model_->relation_table();

  // Register all four ids BEFORE taking gradient pointers: GradFor may
  // grow the flat slot storage, invalidating earlier returned pointers.
  grads.GradFor(pos.h);
  grads.GradFor(pos.t);
  grads.GradFor(neg.triple.h);
  grads.GradFor(neg.triple.t);
  float* g_pos_h = grads.GradFor(pos.h);
  float* g_pos_t = grads.GradFor(pos.t);
  float* g_neg_h = grads.GradFor(neg.triple.h);
  float* g_neg_t = grads.GradFor(neg.triple.t);
  float* g_rel = ws->relation_grad.data();

  if (lg.d_pos != 0.0) {
    scorer.Backward(ent.Row(pos.h), rel.Row(pos.r), ent.Row(pos.t), dim,
                    static_cast<float>(lg.d_pos), g_pos_h, g_rel, g_pos_t);
  }
  if (lg.d_neg != 0.0) {
    scorer.Backward(ent.Row(neg.triple.h), rel.Row(neg.triple.r),
                    ent.Row(neg.triple.t), dim, static_cast<float>(lg.d_neg),
                    g_neg_h, g_rel, g_neg_t);
  }

  // L2 penalty λ‖·‖² on every touched row (semantic matching models).
  if (config_.l2_lambda > 0.0) {
    const float two_lambda = static_cast<float>(2.0 * config_.l2_lambda);
    for (size_t s = 0; s < grads.size(); ++s) {
      Axpy(two_lambda, ent.Row(grads.id(s)), grads.grad(s), ent.width());
    }
    Axpy(two_lambda, rel.Row(pos.r), g_rel, rel.width());
  }

  if (config_.track_grad_norm) {
    double sq = 0.0;
    const int ew = ent.width();
    for (size_t s = 0; s < grads.size(); ++s) {
      const float* g = grads.grad(s);
      for (int k = 0; k < ew; ++k) sq += double(g[k]) * g[k];
    }
    for (float g : ws->relation_grad) sq += double(g) * g;
    out.grad_norm = std::sqrt(sq);
  }

  entity_opt_->BeginStep();
  relation_opt_->BeginStep();
  for (size_t s = 0; s < grads.size(); ++s) {
    entity_opt_->Apply(&ent, grads.id(s), grads.grad(s));
  }
  relation_opt_->Apply(&rel, pos.r, g_rel);

  if (config_.apply_entity_constraints) {
    for (size_t s = 0; s < grads.size(); ++s) {
      model_->ProjectEntity(grads.id(s));
    }
    model_->ProjectRelation(pos.r);
  }
  return out;
}

void Trainer::RunBatchSerial(size_t lo, size_t hi) {
  const size_t b = hi - lo;
  if (sampler_->stateless_sampling()) {
    // A stateless sampler's draws depend only on the RNG stream, so
    // pre-sampling the batch consumes rng_ exactly as the interleaved
    // loop would and yields identical negatives.
    pos_batch_.resize(b);
    negs_.resize(b);
    for (size_t i = 0; i < b; ++i) {
      pos_batch_[i] = (*train_set_)[order_[lo + i]];
    }
    sampler_->SampleBatch(pos_batch_.data(), b, &rng_, negs_.data());
    for (size_t i = 0; i < b; ++i) {
      TrainSerialPair(pos_batch_[i], negs_[i]);
    }
  } else {
    // Model-coupled samplers (NSCaching scores candidates against rows
    // the previous pair just updated) must stay interleaved to preserve
    // the serial semantics.
    for (size_t i = lo; i < hi; ++i) {
      const Triple& pos = (*train_set_)[order_[i]];
      const NegativeSample neg = sampler_->Sample(pos, &rng_);
      TrainSerialPair(pos, neg);
    }
  }
}

void Trainer::RunBatchParallel(size_t lo, size_t hi) {
  const size_t b = hi - lo;
  pos_batch_.resize(b);
  negs_.resize(b);
  outcomes_.resize(b);
  for (size_t i = 0; i < b; ++i) {
    pos_batch_[i] = (*train_set_)[order_[lo + i]];
  }
  if (sampler_->thread_safe_sampling() && !config_.force_serial_sampling) {
    // Full Hogwild: workers sample their own pairs from per-worker
    // streams and race on the shared tables (sparse updates rarely
    // collide, so the lost-update rate is negligible — the standard
    // asynchronous-SGD argument). Thread-safe stateful samplers
    // (NSCaching) run their select/refresh inside the workers too — the
    // cache refresh is the paper's dominant cost, so this is where the
    // sampler itself finally scales with cores.
    pool_->ParallelFor(0, b, [this](size_t i, int w) {
      WorkerState& ws = workers_[w];
      negs_[i] = sampler_->Sample(pos_batch_[i], &ws.rng);
      outcomes_[i] = TrainPairStep(pos_batch_[i], negs_[i], &ws);
    });
  } else {
    // Thread-hostile samplers (KBGAN's generator state): draw the whole
    // batch serially against the pre-batch parameters, then train in
    // parallel.
    sampler_->SampleBatch(pos_batch_.data(), b, &rng_, negs_.data());
    pool_->ParallelFor(0, b, [this](size_t i, int w) {
      outcomes_[i] = TrainPairStep(pos_batch_[i], negs_[i], &workers_[w]);
    });
  }
  // Feedback and observer run serially, in pair order, after the barrier.
  for (size_t i = 0; i < b; ++i) {
    sampler_->Feedback(pos_batch_[i], negs_[i], outcomes_[i].neg_score);
    Accumulate(outcomes_[i]);
    if (observer_) observer_(pos_batch_[i], negs_[i], outcomes_[i].loss);
  }
}

EpochStats Trainer::FinishEpoch(const Stopwatch& watch) {
  EpochStats stats;
  stats.epoch = epoch_;
  const double n = static_cast<double>(order_.size());
  stats.mean_loss = loss_sum_ / n;
  stats.nonzero_loss_ratio = static_cast<double>(nonzero_) / n;
  stats.mean_grad_norm = grad_norm_sum_ / n;
  stats.seconds = watch.Seconds();
  cumulative_seconds_ += stats.seconds;
  ++epoch_;
  return stats;
}

EpochStats Trainer::RunEpoch() {
  Stopwatch watch;
  sampler_->BeginEpoch(epoch_);
  rng_.Shuffle(&order_);
  loss_sum_ = 0.0;
  grad_norm_sum_ = 0.0;
  nonzero_ = 0;

  const size_t n = order_.size();
  const size_t batch =
      config_.batch_size > 0 ? static_cast<size_t>(config_.batch_size) : n;
  for (size_t lo = 0; lo < n; lo += batch) {
    const size_t hi = std::min(n, lo + batch);
    if (num_threads_ > 1) {
      RunBatchParallel(lo, hi);
    } else {
      RunBatchSerial(lo, hi);
    }
  }
  return FinishEpoch(watch);
}

EpochStats Trainer::RunEpochSerial() {
  Stopwatch watch;
  sampler_->BeginEpoch(epoch_);
  rng_.Shuffle(&order_);
  loss_sum_ = 0.0;
  grad_norm_sum_ = 0.0;
  nonzero_ = 0;

  for (size_t i = 0; i < order_.size(); ++i) {
    const Triple& pos = (*train_set_)[order_[i]];
    const NegativeSample neg = sampler_->Sample(pos, &rng_);
    TrainSerialPair(pos, neg);
  }
  return FinishEpoch(watch);
}

}  // namespace nsc
