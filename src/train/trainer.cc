#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/math.h"

namespace nsc {

Trainer::Trainer(KgeModel* model, const TripleStore* train_set,
                 NegativeSampler* sampler, const TrainConfig& config)
    : model_(model),
      train_set_(train_set),
      sampler_(sampler),
      config_(config),
      rng_(config.seed) {
  CHECK(model != nullptr);
  CHECK(train_set != nullptr);
  CHECK(sampler != nullptr);
  CHECK(!train_set->empty());
  loss_ = MakeDefaultLoss(model->scorer(), config.margin);
  entity_opt_ = MakeOptimizer(config.optimizer, config.learning_rate,
                              model->entity_table());
  relation_opt_ = MakeOptimizer(config.optimizer, config.learning_rate,
                                model->relation_table());
  CHECK(entity_opt_ != nullptr) << "unknown optimizer " << config.optimizer;
  relation_grad_.resize(model->relation_table().width());
  order_.resize(train_set->size());
  std::iota(order_.begin(), order_.end(), size_t{0});
}

float* Trainer::EntityGradFor(EntityId e) {
  for (auto& slot : entity_slots_) {
    if (slot.id == e) return slot.grad.data();
  }
  entity_slots_.push_back(
      {e, std::vector<float>(model_->entity_table().width(), 0.0f)});
  return entity_slots_.back().grad.data();
}

double Trainer::TrainPair(const Triple& pos, const NegativeSample& neg,
                          double* grad_norm) {
  const double pos_score = model_->Score(pos);
  const double neg_score = model_->Score(neg.triple);
  const LossGrad lg = loss_->Compute(pos_score, neg_score);

  if (lg.d_pos == 0.0 && lg.d_neg == 0.0 && config_.l2_lambda == 0.0) {
    if (grad_norm != nullptr) *grad_norm = 0.0;
    // Even a zero-gradient pair gives the GAN generator its reward signal.
    sampler_->Feedback(pos, neg, neg_score);
    return lg.loss;
  }

  entity_slots_.clear();
  std::fill(relation_grad_.begin(), relation_grad_.end(), 0.0f);
  const int dim = model_->dim();
  const ScoringFunction& scorer = model_->scorer();
  EmbeddingTable& ent = model_->entity_table();
  EmbeddingTable& rel = model_->relation_table();

  // Resolve all gradient slots BEFORE taking row pointers: EntityGradFor
  // may grow the slot vector, and Backward writes through these pointers.
  float* g_pos_h = EntityGradFor(pos.h);
  float* g_pos_t = EntityGradFor(pos.t);
  float* g_neg_h = EntityGradFor(neg.triple.h);
  float* g_neg_t = EntityGradFor(neg.triple.t);

  if (lg.d_pos != 0.0) {
    scorer.Backward(ent.Row(pos.h), rel.Row(pos.r), ent.Row(pos.t), dim,
                    static_cast<float>(lg.d_pos), g_pos_h, relation_grad_.data(),
                    g_pos_t);
  }
  if (lg.d_neg != 0.0) {
    scorer.Backward(ent.Row(neg.triple.h), rel.Row(neg.triple.r),
                    ent.Row(neg.triple.t), dim, static_cast<float>(lg.d_neg),
                    g_neg_h, relation_grad_.data(), g_neg_t);
  }

  // L2 penalty λ‖·‖² on every touched row (semantic matching models).
  if (config_.l2_lambda > 0.0) {
    const float two_lambda = static_cast<float>(2.0 * config_.l2_lambda);
    for (auto& slot : entity_slots_) {
      Axpy(two_lambda, ent.Row(slot.id), slot.grad.data(), ent.width());
    }
    Axpy(two_lambda, rel.Row(pos.r), relation_grad_.data(), rel.width());
  }

  if (grad_norm != nullptr) {
    double sq = 0.0;
    for (const auto& slot : entity_slots_) {
      for (float g : slot.grad) sq += double(g) * g;
    }
    for (float g : relation_grad_) sq += double(g) * g;
    *grad_norm = std::sqrt(sq);
  }

  entity_opt_->BeginStep();
  relation_opt_->BeginStep();
  for (auto& slot : entity_slots_) {
    entity_opt_->Apply(&ent, slot.id, slot.grad.data());
  }
  relation_opt_->Apply(&rel, pos.r, relation_grad_.data());

  if (config_.apply_entity_constraints) {
    for (const auto& slot : entity_slots_) model_->ProjectEntity(slot.id);
    model_->ProjectRelation(pos.r);
  }

  sampler_->Feedback(pos, neg, neg_score);
  return lg.loss;
}

EpochStats Trainer::RunEpoch() {
  Stopwatch watch;
  sampler_->BeginEpoch(epoch_);
  rng_.Shuffle(&order_);

  EpochStats stats;
  stats.epoch = epoch_;
  double loss_sum = 0.0;
  double grad_norm_sum = 0.0;
  size_t nonzero = 0;
  const size_t n = order_.size();

  for (size_t i = 0; i < n; ++i) {
    const Triple& pos = (*train_set_)[order_[i]];
    const NegativeSample neg = sampler_->Sample(pos, &rng_);
    double grad_norm = 0.0;
    const double pair_loss =
        TrainPair(pos, neg, config_.track_grad_norm ? &grad_norm : nullptr);
    loss_sum += pair_loss;
    grad_norm_sum += grad_norm;
    if (pair_loss > 1e-12) ++nonzero;
    if (observer_) observer_(pos, neg, pair_loss);
  }

  stats.mean_loss = loss_sum / static_cast<double>(n);
  stats.nonzero_loss_ratio = static_cast<double>(nonzero) / static_cast<double>(n);
  stats.mean_grad_norm = grad_norm_sum / static_cast<double>(n);
  stats.seconds = watch.Seconds();
  cumulative_seconds_ += stats.seconds;
  ++epoch_;
  return stats;
}

}  // namespace nsc
