#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "serve/snapshot.h"
#include "util/logging.h"
#include "util/math.h"

namespace nsc {

Trainer::Trainer(KgeModel* model, const TripleStore* train_set,
                 NegativeSampler* sampler, const TrainConfig& config)
    : model_(model),
      train_set_(train_set),
      sampler_(sampler),
      config_(config),
      rng_(config.seed) {
  CHECK(model != nullptr);
  CHECK(train_set != nullptr);
  CHECK(sampler != nullptr);
  CHECK(!train_set->empty());
  loss_ = MakeDefaultLoss(model->scorer(), config.margin);
  entity_opt_ = MakeOptimizer(config.optimizer, config.learning_rate,
                              model->entity_table());
  relation_opt_ = MakeOptimizer(config.optimizer, config.learning_rate,
                                model->relation_table());
  CHECK(entity_opt_ != nullptr) << "unknown optimizer " << config.optimizer;
  order_.resize(train_set->size());
  std::iota(order_.begin(), order_.end(), size_t{0});

  num_threads_ =
      config.num_threads <= 0 ? DefaultThreadCount() : config.num_threads;
  workers_.resize(static_cast<size_t>(num_threads_));
  // Worker streams come from a seeder distinct from rng_, so the main
  // stream (shuffle + stateful sampling) is identical for every thread
  // count — the 1-thread engine stays bit-for-bit equal to the serial
  // reference no matter what num_threads was configured elsewhere.
  Rng stream_seeder(config.seed ^ 0x517cc1b727220a95ULL);
  for (WorkerState& ws : workers_) {
    ws.entity_grads.Configure(model->entity_table().width());
    ws.relation_grad.resize(model->relation_table().width());
    ws.rng = stream_seeder.Split();
  }
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
}

Trainer::PairOutcome Trainer::TrainPairStep(const Triple& pos,
                                            const NegativeSample& neg,
                                            WorkerState* ws) {
  PairOutcome out;
  const double pos_score = model_->Score(pos);
  const double neg_score = model_->Score(neg.triple);
  out.neg_score = neg_score;
  const LossGrad lg = loss_->Compute(pos_score, neg_score);
  out.loss = lg.loss;
  if (lg.d_pos == 0.0 && lg.d_neg == 0.0 && config_.l2_lambda == 0.0) {
    return out;
  }

  GradAccumulator& grads = ws->entity_grads;
  grads.Clear();
  std::fill(ws->relation_grad.begin(), ws->relation_grad.end(), 0.0f);
  const int dim = model_->dim();
  const ScoringFunction& scorer = model_->scorer();
  ShardedEmbeddingTable& ent = model_->entity_table();
  ShardedEmbeddingTable& rel = model_->relation_table();

  // Register all four ids BEFORE taking gradient pointers: GradFor may
  // grow the flat slot storage, invalidating earlier returned pointers.
  grads.GradFor(pos.h);
  grads.GradFor(pos.t);
  grads.GradFor(neg.triple.h);
  grads.GradFor(neg.triple.t);
  float* g_pos_h = grads.GradFor(pos.h);
  float* g_pos_t = grads.GradFor(pos.t);
  float* g_neg_h = grads.GradFor(neg.triple.h);
  float* g_neg_t = grads.GradFor(neg.triple.t);
  float* g_rel = ws->relation_grad.data();

  if (lg.d_pos != 0.0) {
    scorer.Backward(ent.Row(pos.h), rel.Row(pos.r), ent.Row(pos.t), dim,
                    static_cast<float>(lg.d_pos), g_pos_h, g_rel, g_pos_t);
  }
  if (lg.d_neg != 0.0) {
    scorer.Backward(ent.Row(neg.triple.h), rel.Row(neg.triple.r),
                    ent.Row(neg.triple.t), dim, static_cast<float>(lg.d_neg),
                    g_neg_h, g_rel, g_neg_t);
  }

  out.grad_norm = ApplyPairUpdate(pos, ws);
  return out;
}

double Trainer::ApplyPairUpdate(const Triple& pos, WorkerState* ws) {
  GradAccumulator& grads = ws->entity_grads;
  float* g_rel = ws->relation_grad.data();
  ShardedEmbeddingTable& ent = model_->entity_table();
  ShardedEmbeddingTable& rel = model_->relation_table();

  // L2 penalty λ‖·‖² on every touched row (semantic matching models).
  if (config_.l2_lambda > 0.0) {
    const float two_lambda = static_cast<float>(2.0 * config_.l2_lambda);
    for (size_t s = 0; s < grads.size(); ++s) {
      Axpy(two_lambda, ent.Row(grads.id(s)), grads.grad(s), ent.width());
    }
    Axpy(two_lambda, rel.Row(pos.r), g_rel, rel.width());
  }

  double grad_norm = 0.0;
  if (config_.track_grad_norm) {
    double sq = 0.0;
    const int ew = ent.width();
    for (size_t s = 0; s < grads.size(); ++s) {
      const float* g = grads.grad(s);
      for (int k = 0; k < ew; ++k) sq += double(g[k]) * g[k];
    }
    for (float g : ws->relation_grad) sq += double(g) * g;
    grad_norm = std::sqrt(sq);
  }

  entity_opt_->BeginStep();
  relation_opt_->BeginStep();
  entity_opt_->ApplyBatch(&ent, grads.ids(), grads.size(), grads.grads_flat(),
                          static_cast<size_t>(grads.width()));
  relation_opt_->Apply(&rel, pos.r, g_rel);

  if (config_.apply_entity_constraints) {
    for (size_t s = 0; s < grads.size(); ++s) {
      model_->ProjectEntity(grads.id(s));
    }
    model_->ProjectRelation(pos.r);
  }
  return grad_norm;
}

void Trainer::RunBatchSerial(size_t lo, size_t hi) {
  const size_t b = hi - lo;
  if (sampler_->stateless_sampling()) {
    // A stateless sampler's draws depend only on the RNG stream, so
    // pre-sampling the batch consumes rng_ exactly as the interleaved
    // loop would and yields identical negatives.
    pos_batch_.resize(b);
    negs_.resize(b);
    for (size_t i = 0; i < b; ++i) {
      pos_batch_[i] = (*train_set_)[order_[lo + i]];
    }
    sampler_->SampleBatch(pos_batch_.data(), b, &rng_, negs_.data());
    for (size_t i = 0; i < b; ++i) {
      TrainSerialPair(pos_batch_[i], negs_[i]);
    }
  } else {
    // Model-coupled samplers (NSCaching scores candidates against rows
    // the previous pair just updated) must stay interleaved to preserve
    // the serial semantics.
    for (size_t i = lo; i < hi; ++i) {
      const Triple& pos = (*train_set_)[order_[i]];
      const NegativeSample neg = sampler_->Sample(pos, &rng_);
      TrainSerialPair(pos, neg);
    }
  }
}

void Trainer::GatherBatch(size_t lo, size_t hi) {
  const size_t b = hi - lo;
  pos_batch_.resize(b);
  negs_.resize(b);
  outcomes_.resize(b);
  for (size_t i = 0; i < b; ++i) {
    pos_batch_[i] = (*train_set_)[order_[lo + i]];
  }
}

void Trainer::DrainBatchOutcomes(size_t b) {
  for (size_t i = 0; i < b; ++i) {
    sampler_->Feedback(pos_batch_[i], negs_[i], outcomes_[i].neg_score);
    Accumulate(outcomes_[i]);
    if (observer_) observer_(pos_batch_[i], negs_[i], outcomes_[i].loss);
  }
}

void Trainer::RunBatchParallel(size_t lo, size_t hi) {
  const size_t b = hi - lo;
  GatherBatch(lo, hi);
  if (sampler_->thread_safe_sampling() && !config_.force_serial_sampling) {
    // Full Hogwild: workers sample their own pairs from per-worker
    // streams and race on the shared tables (sparse updates rarely
    // collide, so the lost-update rate is negligible — the standard
    // asynchronous-SGD argument). Thread-safe stateful samplers
    // (NSCaching) run their select/refresh inside the workers too — the
    // cache refresh is the paper's dominant cost, so this is where the
    // sampler itself finally scales with cores.
    pool_->ParallelFor(0, b, [this](size_t i, int w) {
      WorkerState& ws = workers_[w];
      negs_[i] = sampler_->Sample(pos_batch_[i], &ws.rng);
      outcomes_[i] = TrainPairStep(pos_batch_[i], negs_[i], &ws);
    });
  } else {
    // Thread-hostile samplers (KBGAN's generator state): draw the whole
    // batch serially against the pre-batch parameters, then train in
    // parallel.
    sampler_->SampleBatch(pos_batch_.data(), b, &rng_, negs_.data());
    pool_->ParallelFor(0, b, [this](size_t i, int w) {
      outcomes_[i] = TrainPairStep(pos_batch_[i], negs_[i], &workers_[w]);
    });
  }
  // Feedback and observer run serially, in pair order, after the barrier.
  DrainBatchOutcomes(b);
}

void Trainer::FusedSubStep(size_t lo, size_t hi, WorkerState* ws) {
  // Process the sub-range in fusion blocks: each block's scores are
  // computed in one batched pass against the rows as the previous block
  // left them, bounding score staleness to config_.fused_block pairs.
  const size_t block = config_.fused_block > 0
                           ? static_cast<size_t>(config_.fused_block)
                           : (hi - lo);
  for (size_t blo = lo; blo < hi; blo += block) {
    FusedBlockStep(blo, std::min(hi, blo + block), ws);
  }
}

void Trainer::FusedBlockStep(size_t lo, size_t hi, WorkerState* ws) {
  const size_t n = hi - lo;
  if (n == 0) return;
  FusedScratch& fs = ws->fused;
  ShardedEmbeddingTable& ent = model_->entity_table();
  ShardedEmbeddingTable& rel = model_->relation_table();
  const ScoringFunction& scorer = model_->scorer();
  const int dim = model_->dim();

  // Score each side of the sub-batch in one batched call through the
  // runtime SIMD dispatch, then differentiate the whole loss batch at
  // once — the fused replacement for two virtual Score calls and a
  // scalar loss per pair.
  fs.pos_h.resize(n);
  fs.pos_r.resize(n);
  fs.pos_t.resize(n);
  fs.neg_h.resize(n);
  fs.neg_r.resize(n);
  fs.neg_t.resize(n);
  fs.pos_scores.resize(n);
  fs.neg_scores.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Triple& pos = pos_batch_[lo + i];
    const Triple& neg = negs_[lo + i].triple;
    fs.pos_h[i] = ent.Row(pos.h);
    fs.pos_r[i] = rel.Row(pos.r);
    fs.pos_t[i] = ent.Row(pos.t);
    fs.neg_h[i] = ent.Row(neg.h);
    fs.neg_r[i] = rel.Row(neg.r);
    fs.neg_t[i] = ent.Row(neg.t);
  }
  scorer.ScoreBatch(fs.pos_h.data(), fs.pos_r.data(), fs.pos_t.data(), dim, n,
                    fs.pos_scores.data());
  scorer.ScoreBatch(fs.neg_h.data(), fs.neg_r.data(), fs.neg_t.data(), dim, n,
                    fs.neg_scores.data());
  loss_->ComputeBatch(fs.pos_scores, fs.neg_scores, &fs.loss_grad);

  // Backward entries for one pair: at most the positive and negative side.
  fs.bh.resize(2);
  fs.br.resize(2);
  fs.bt.resize(2);
  fs.coeff.resize(2);
  fs.gh.resize(2);
  fs.gr.resize(2);
  fs.gt.resize(2);

  // Gradient + update pass. Scores (and the loss gradients derived from
  // them) are the block's, computed against the pre-block parameters; the
  // update pass itself stays PER PAIR — one sparse optimizer step per
  // pair, exactly the paper's Algorithm 1/2 dynamics — so fused training
  // converges like the pair path at the paper's hyper-parameters instead
  // of taking batch-count-many optimizer steps per epoch. Within-block
  // staleness of the scores is the same asynchrony the Hogwild engine
  // already tolerates across workers. Each pair drives one BackwardBatch
  // call (its active sides, shared entity rows folded by the accumulator)
  // and a batched sparse apply straight from the accumulator slots. The
  // relation gradient reuses the pair path's shared one-row buffer: a
  // corruption never changes the relation, so both sides fold into the
  // single pos.r row (the pair path encodes the same invariant).
  GradAccumulator& eg = ws->entity_grads;
  const bool l2 = config_.l2_lambda > 0.0;
  for (size_t i = 0; i < n; ++i) {
    PairOutcome& out = outcomes_[lo + i];
    out.loss = fs.loss_grad.loss[i];
    out.grad_norm = 0.0;
    out.neg_score = fs.neg_scores[i];
    const double d_pos = fs.loss_grad.d_pos[i];
    const double d_neg = fs.loss_grad.d_neg[i];
    if (d_pos == 0.0 && d_neg == 0.0 && !l2) continue;
    const Triple& pos = pos_batch_[lo + i];
    const Triple& neg = negs_[lo + i].triple;

    // Register all ids BEFORE taking gradient pointers: GradFor may grow
    // the flat slot storage, invalidating earlier returned pointers.
    eg.Clear();
    std::fill(ws->relation_grad.begin(), ws->relation_grad.end(), 0.0f);
    float* g_rel = ws->relation_grad.data();
    eg.GradFor(pos.h);
    eg.GradFor(pos.t);
    eg.GradFor(neg.h);
    eg.GradFor(neg.t);

    size_t e = 0;
    if (d_pos != 0.0) {
      fs.bh[e] = fs.pos_h[i];
      fs.br[e] = fs.pos_r[i];
      fs.bt[e] = fs.pos_t[i];
      fs.coeff[e] = static_cast<float>(d_pos);
      fs.gh[e] = eg.GradFor(pos.h);
      fs.gr[e] = g_rel;
      fs.gt[e] = eg.GradFor(pos.t);
      ++e;
    }
    if (d_neg != 0.0) {
      fs.bh[e] = fs.neg_h[i];
      fs.br[e] = fs.neg_r[i];
      fs.bt[e] = fs.neg_t[i];
      fs.coeff[e] = static_cast<float>(d_neg);
      fs.gh[e] = eg.GradFor(neg.h);
      fs.gr[e] = g_rel;
      fs.gt[e] = eg.GradFor(neg.t);
      ++e;
    }
    if (e > 0) {
      scorer.BackwardBatch(fs.bh.data(), fs.br.data(), fs.bt.data(), dim, e,
                           fs.coeff.data(), fs.gh.data(), fs.gr.data(),
                           fs.gt.data());
    }

    // The shared tail — L2, grad norm, batched sparse apply, projection —
    // runs through the same ApplyPairUpdate as the pair path.
    out.grad_norm = ApplyPairUpdate(pos, ws);
  }
}

void Trainer::RunBatchFusedSerial(size_t lo, size_t hi) {
  const size_t b = hi - lo;
  GatherBatch(lo, hi);
  // One sampling pre-pass: stateless samplers consume rng_ exactly as the
  // interleaved loop would; model-coupled samplers draw against the
  // pre-batch parameters — the fused semantic (the parallel engine already
  // samples ahead of the batch's updates the same way).
  sampler_->SampleBatch(pos_batch_.data(), b, &rng_, negs_.data());
  FusedSubStep(0, b, &workers_[0]);
  DrainBatchOutcomes(b);
}

void Trainer::RunBatchFusedParallel(size_t lo, size_t hi) {
  const size_t b = hi - lo;
  GatherBatch(lo, hi);
  // One contiguous sub-range per worker; sub-steps race on the shared
  // tables across workers exactly as the pair path races across pairs.
  const size_t chunks =
      std::min(b, static_cast<size_t>(num_threads_ > 0 ? num_threads_ : 1));
  const auto chunk_lo = [b, chunks](size_t c) { return c * b / chunks; };
  if (sampler_->thread_safe_sampling() && !config_.force_serial_sampling) {
    pool_->ParallelFor(0, chunks, [this, &chunk_lo](size_t c, int w) {
      WorkerState& ws = workers_[w];
      const size_t clo = chunk_lo(c), chi = chunk_lo(c + 1);
      for (size_t i = clo; i < chi; ++i) {
        negs_[i] = sampler_->Sample(pos_batch_[i], &ws.rng);
      }
      FusedSubStep(clo, chi, &ws);
    });
  } else {
    sampler_->SampleBatch(pos_batch_.data(), b, &rng_, negs_.data());
    pool_->ParallelFor(0, chunks, [this, &chunk_lo](size_t c, int w) {
      FusedSubStep(chunk_lo(c), chunk_lo(c + 1), &workers_[w]);
    });
  }
  // Feedback and observer run serially, in pair order, after the barrier.
  DrainBatchOutcomes(b);
}

EpochStats Trainer::FinishEpoch(const Stopwatch& watch) {
  EpochStats stats;
  stats.epoch = epoch_;
  const double n = static_cast<double>(order_.size());
  stats.mean_loss = loss_sum_ / n;
  stats.nonzero_loss_ratio = static_cast<double>(nonzero_) / n;
  stats.mean_grad_norm = grad_norm_sum_ / n;
  stats.seconds = watch.Seconds();
  cumulative_seconds_ += stats.seconds;
  ++epoch_;
  return stats;
}

void Trainer::EnableSnapshots(SnapshotPublisher* publisher,
                              int publish_every_batches) {
  CHECK(publisher == nullptr || publish_every_batches > 0);
  publisher_ = publisher;
  publish_every_batches_ = publish_every_batches;
  batches_since_publish_ = 0;
}

void Trainer::StepCompleted() {
  ++global_step_;
  if (publisher_ == nullptr) return;
  if (++batches_since_publish_ < publish_every_batches_) return;
  batches_since_publish_ = 0;
  // At this point every engine (serial or Hogwild) has passed its batch
  // barrier: no worker is touching the tables, so the publisher's copy
  // reads a quiescent model.
  publisher_->Publish(*model_, global_step_);
}

EpochStats Trainer::RunEpoch() {
  Stopwatch watch;
  sampler_->BeginEpoch(epoch_);
  rng_.Shuffle(&order_);
  loss_sum_ = 0.0;
  grad_norm_sum_ = 0.0;
  nonzero_ = 0;

  const size_t n = order_.size();
  const size_t batch =
      config_.batch_size > 0 ? static_cast<size_t>(config_.batch_size) : n;
  for (size_t lo = 0; lo < n; lo += batch) {
    const size_t hi = std::min(n, lo + batch);
    if (config_.fused_scoring) {
      if (num_threads_ > 1) {
        RunBatchFusedParallel(lo, hi);
      } else {
        RunBatchFusedSerial(lo, hi);
      }
    } else if (num_threads_ > 1) {
      RunBatchParallel(lo, hi);
    } else {
      RunBatchSerial(lo, hi);
    }
    StepCompleted();
  }
  return FinishEpoch(watch);
}

EpochStats Trainer::RunEpochSerial() {
  Stopwatch watch;
  sampler_->BeginEpoch(epoch_);
  rng_.Shuffle(&order_);
  loss_sum_ = 0.0;
  grad_norm_sum_ = 0.0;
  nonzero_ = 0;

  for (size_t i = 0; i < order_.size(); ++i) {
    const Triple& pos = (*train_set_)[order_[i]];
    const NegativeSample neg = sampler_->Sample(pos, &rng_);
    TrainSerialPair(pos, neg);
  }
  // The serial reference loop has no mini-batch boundaries; the whole
  // epoch counts as one step.
  StepCompleted();
  return FinishEpoch(watch);
}

}  // namespace nsc
