#include "train/metrics.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace nsc {

void RankingMetrics::AddRank(double rank) {
  CHECK_GE(rank, 1.0);
  ++count_;
  reciprocal_sum_ += 1.0 / rank;
  rank_sum_ += rank;
  // rank <= k first holds at k = ceil(rank).
  for (int k = static_cast<int>(std::ceil(rank)); k <= kMaxTrackedK; ++k) {
    ++hits_le_[k - 1];
  }
}

void RankingMetrics::Merge(const RankingMetrics& other) {
  count_ += other.count_;
  reciprocal_sum_ += other.reciprocal_sum_;
  rank_sum_ += other.rank_sum_;
  for (int k = 0; k < kMaxTrackedK; ++k) hits_le_[k] += other.hits_le_[k];
}

double RankingMetrics::mrr() const {
  return count_ == 0 ? 0.0 : reciprocal_sum_ / static_cast<double>(count_);
}

double RankingMetrics::mr() const {
  return count_ == 0 ? 0.0 : rank_sum_ / static_cast<double>(count_);
}

double RankingMetrics::hits_at(int k) const {
  CHECK_GE(k, 1);
  CHECK_LE(k, kMaxTrackedK);
  return count_ == 0 ? 0.0
                     : 100.0 * static_cast<double>(hits_le_[k - 1]) /
                           static_cast<double>(count_);
}

std::string RankingMetrics::ToString() const {
  std::ostringstream out;
  out << "MRR=" << mrr() << " MR=" << mr() << " Hit@10=" << hits_at(10) << "%";
  return out.str();
}

}  // namespace nsc
