// End-to-end experiment pipeline shared by the benchmark harness and the
// examples: dataset -> model -> (optional Bernoulli pretrain) -> sampler ->
// epochs with periodic timed evaluation -> best-validation snapshot ->
// final filtered test metrics. This is the machinery behind Table IV/V and
// Figures 2-5 of the paper.
#ifndef NSCACHING_TRAIN_EXPERIMENT_H_
#define NSCACHING_TRAIN_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/nscaching_sampler.h"
#include "embedding/model.h"
#include "kg/dataset.h"
#include "kg/kg_index.h"
#include "sampler/kbgan_sampler.h"
#include "train/link_prediction.h"
#include "train/metrics.h"
#include "train/train_config.h"
#include "train/trainer.h"

namespace nsc {

/// Which negative-sampling method drives training.
enum class SamplerKind { kUniform, kBernoulli, kKbgan, kNSCaching };

std::string SamplerKindName(SamplerKind kind);

/// Full pipeline configuration.
struct PipelineConfig {
  std::string scorer = "transe";
  TrainConfig train;
  SamplerKind sampler = SamplerKind::kBernoulli;
  NSCachingConfig nscaching;
  KbganConfig kbgan;

  /// Bernoulli warm-start epochs before the chosen sampler takes over
  /// (the paper's "+pretrain" regime); 0 = from scratch. For KBGAN the
  /// generator is warm-started with a TransE model pretrained alongside.
  int pretrain_epochs = 0;

  /// Periodic *test* evaluation cadence for convergence curves
  /// (Figures 2-5); 0 disables.
  int eval_test_every = 0;
  /// Periodic *validation* cadence for best-model selection (the paper
  /// picks the checkpoint with the best validation MRR); 0 disables and
  /// the final model is used.
  int eval_valid_every = 0;
  /// Subsample size for the periodic evaluations (0 = all triples); the
  /// final test evaluation always uses every test triple.
  size_t periodic_eval_max_triples = 0;
  int eval_threads = 0;  // <= 0: hardware default.
  /// Pin the legacy per-candidate evaluator instead of the batched
  /// 1-vs-all ranker (the benches' --legacy-eval escape hatch). Both
  /// produce identical ranks; this exists for A/B timing and as a
  /// fallback should a new scorer's sweep kernel misbehave.
  bool legacy_eval = false;
};

/// One point of a convergence-vs-time curve.
struct SeriesPoint {
  int epoch = 0;
  double seconds = 0.0;  // Cumulative *training* time (eval excluded).
  double mrr = 0.0;
  double hits10 = 0.0;
  double mr = 0.0;
};

/// Everything a bench needs from one run.
struct PipelineResult {
  RankingMetrics test_metrics;          // Full filtered test evaluation.
  std::vector<SeriesPoint> test_series; // Periodic test evals (may be empty).
  std::vector<EpochStats> epoch_stats;  // Loss/NZL/grad-norm per epoch.
  std::vector<double> cache_ce;         // NSCaching CE per epoch (else empty).
  double train_seconds = 0.0;
  int best_epoch = -1;                  // Epoch of the reported checkpoint.
  std::unique_ptr<KgeModel> model;      // The evaluated checkpoint.
};

/// Builds the sampler named by `kind` over `model`/`index`.
std::unique_ptr<NegativeSampler> MakeSampler(SamplerKind kind,
                                             const KgeModel* model,
                                             const KgIndex* train_index,
                                             const PipelineConfig& config);

/// Runs the full pipeline on `dataset`. Deterministic in config.train.seed.
PipelineResult RunPipeline(const Dataset& dataset, const PipelineConfig& config);

}  // namespace nsc

#endif  // NSCACHING_TRAIN_EXPERIMENT_H_
