#include "train/grad_accumulator.h"

#include <algorithm>

namespace nsc {

float* GradAccumulator::GradFor(EntityId e) {
  const auto inserted = index_.emplace(e, active_);
  if (!inserted.second) {
    return grads_.data() + inserted.first->second * width_;
  }
  const size_t offset = active_ * static_cast<size_t>(width_);
  if (grads_.size() < offset + width_) {
    grads_.resize(offset + width_, 0.0f);
  } else {
    // Reused storage from an earlier, larger step: zero it explicitly.
    std::fill(grads_.begin() + offset, grads_.begin() + offset + width_, 0.0f);
  }
  if (ids_.size() <= active_) ids_.resize(active_ + 1);
  ids_[active_] = e;
  ++active_;
  return grads_.data() + offset;
}

}  // namespace nsc
