// Hash-indexed sparse gradient accumulator for embedding rows.
//
// One training pair touches up to four entity rows (pos/neg head and
// tail, with overlaps); a mini-batch touches up to 4·B. The accumulator
// maps EntityId -> gradient slot in O(1) amortized — replacing the old
// Trainer::EntityGradFor linear scan, which was O(k) per lookup and thus
// quadratic in the number of touched entities per step — while keeping
// slot storage flat and reusable across steps (no per-step allocation
// once warm).
#ifndef NSCACHING_TRAIN_GRAD_ACCUMULATOR_H_
#define NSCACHING_TRAIN_GRAD_ACCUMULATOR_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "kg/types.h"

namespace nsc {

/// Sparse {EntityId -> zero-initialised gradient row} map with flat,
/// reusable storage. Not thread-safe; the trainer keeps one per worker.
class GradAccumulator {
 public:
  /// Sets the gradient row width and drops all slots AND their storage
  /// (stale floats from a previous width must never leak into reused
  /// rows). Call once before first use, and again if the width changes.
  void Configure(int width) {
    width_ = width;
    grads_.clear();
    ids_.clear();
    Clear();
  }

  /// Drops all active slots; storage is retained for reuse.
  void Clear() {
    index_.clear();
    active_ = 0;
  }

  /// Returns the gradient row for entity `e`, zeroed on first touch this
  /// step. Pointers are invalidated by subsequent GradFor calls (storage
  /// may grow) — resolve every id before writing through any of them.
  float* GradFor(EntityId e);

  size_t size() const { return active_; }
  EntityId id(size_t slot) const { return ids_[slot]; }
  /// Flat views over the active slots, for Optimizer::ApplyBatch: ids()
  /// holds size() row ids; grads_flat() holds size() rows of width()
  /// floats each, slot s at grads_flat() + s * width().
  const EntityId* ids() const { return ids_.data(); }
  const float* grads_flat() const { return grads_.data(); }
  float* grad(size_t slot) { return grads_.data() + slot * width_; }
  const float* grad(size_t slot) const {
    return grads_.data() + slot * width_;
  }
  int width() const { return width_; }

 private:
  int width_ = 0;
  size_t active_ = 0;                         // Slots live this step.
  std::vector<EntityId> ids_;                 // id of each active slot.
  std::vector<float> grads_;                  // active_ rows, flat.
  std::unordered_map<EntityId, size_t> index_;  // id -> slot.
};

}  // namespace nsc

#endif  // NSCACHING_TRAIN_GRAD_ACCUMULATOR_H_
