// Hyper-parameters of the KG embedding training loop (Algorithm 1/2).
#ifndef NSCACHING_TRAIN_TRAIN_CONFIG_H_
#define NSCACHING_TRAIN_TRAIN_CONFIG_H_

#include <cstdint>
#include <string>

namespace nsc {

/// Everything the Trainer needs besides the model, data and sampler.
/// Defaults reflect the paper's search space midpoints (§IV-B2: d ∈
/// {20..200}, η ∈ {1e-4..1e-1}, γ ∈ {1..4}, λ ∈ {1e-3..1e-1}, Adam).
struct TrainConfig {
  int dim = 50;
  double learning_rate = 0.01;
  std::string optimizer = "adam";
  /// Margin γ of Eq. (1); used by translational models only.
  double margin = 2.0;
  /// L2 penalty λ of the semantic-matching objective; 0 disables.
  double l2_lambda = 0.0;
  int batch_size = 256;
  int epochs = 50;
  /// Worker threads for the batched engine. 1 = serial reference
  /// semantics (bit-for-bit reproducible); >1 = Hogwild-style lock-free
  /// parallel execution of each mini-batch; <= 0 = hardware default.
  int num_threads = 1;
  /// Batch-first fused hot path (the default): each worker's share of a
  /// mini-batch is scored in two ScoreBatch calls through the SIMD
  /// dispatch and the loss batch is differentiated in one
  /// Loss::ComputeBatch; gradients then flow through BackwardBatch + a
  /// batched sparse optimizer apply driven from the GradAccumulator,
  /// keeping the paper's one-optimizer-step-per-pair dynamics (scores are
  /// the sub-batch's, so they are stale by at most one batch — the same
  /// asynchrony Hogwild already tolerates). `false` pins the legacy
  /// pair-at-a-time path: per-pair scalar Score/Backward, which with
  /// num_threads == 1 is bit-for-bit identical to RunEpochSerial().
  bool fused_scoring = true;
  /// Pairs scored ahead per fused block. Each block of a worker's
  /// sub-range is scored (and its loss differentiated) in one batched
  /// pass, then updated pair-by-pair before the next block is scored, so
  /// loss gradients are computed from scores at most `fused_block` pairs
  /// stale — large enough to amortize the SIMD kernels, small enough that
  /// fused training tracks the pair path's convergence at the paper's
  /// learning rates (unbounded staleness demonstrably diverges for the
  /// logistic family at high lr × large batch). <= 0 means the whole
  /// sub-range is one block.
  int fused_block = 32;
  /// Force the serial per-batch sampling pre-pass even for samplers whose
  /// thread_safe_sampling() trait would let workers draw negatives inline.
  /// Benchmarking/debugging knob: bench_throughput's "serial refresh" rows
  /// measure exactly the cost this removes for NSCaching. No effect with
  /// num_threads == 1.
  bool force_serial_sampling = false;
  /// Project entity rows onto the scorer's norm constraint after updates.
  bool apply_entity_constraints = true;
  /// Track per-pair gradient l2 norms (Figure 10); small overhead.
  bool track_grad_norm = false;
  uint64_t seed = 1;

  std::string ToString() const;
};

}  // namespace nsc

#endif  // NSCACHING_TRAIN_TRAIN_CONFIG_H_
