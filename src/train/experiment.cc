#include "train/experiment.h"

#include "embedding/scoring_function.h"
#include "sampler/bernoulli_sampler.h"
#include "sampler/uniform_sampler.h"
#include "util/logging.h"

namespace nsc {

std::string SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kUniform:
      return "uniform";
    case SamplerKind::kBernoulli:
      return "bernoulli";
    case SamplerKind::kKbgan:
      return "kbgan";
    case SamplerKind::kNSCaching:
      return "nscaching";
  }
  return "?";
}

std::unique_ptr<NegativeSampler> MakeSampler(SamplerKind kind,
                                             const KgeModel* model,
                                             const KgIndex* train_index,
                                             const PipelineConfig& config) {
  switch (kind) {
    case SamplerKind::kUniform:
      return std::make_unique<UniformSampler>(model->num_entities(),
                                              train_index);
    case SamplerKind::kBernoulli:
      return std::make_unique<BernoulliSampler>(model->num_entities(),
                                                train_index);
    case SamplerKind::kKbgan:
      return std::make_unique<KbganSampler>(model->num_entities(),
                                            model->num_relations(),
                                            train_index, config.kbgan);
    case SamplerKind::kNSCaching:
      return std::make_unique<NSCachingSampler>(model, train_index,
                                                config.nscaching);
  }
  return nullptr;
}

PipelineResult RunPipeline(const Dataset& dataset,
                           const PipelineConfig& config) {
  PipelineResult result;

  const KgIndex train_index(dataset.train);
  const KgIndex filter_index(std::vector<const TripleStore*>{
      &dataset.train, &dataset.valid, &dataset.test});

  auto scorer = MakeScoringFunction(config.scorer);
  CHECK(scorer != nullptr) << "unknown scorer " << config.scorer;
  auto model = std::make_unique<KgeModel>(dataset.num_entities(),
                                          dataset.num_relations(),
                                          config.train.dim, std::move(scorer));
  Rng init_rng(config.train.seed ^ 0xC0FFEE);
  model->InitXavier(&init_rng);

  // --- Optional Bernoulli pretrain (the paper's warm start) --------------
  if (config.pretrain_epochs > 0) {
    BernoulliSampler pretrain_sampler(model->num_entities(), &train_index);
    TrainConfig pre_cfg = config.train;
    pre_cfg.epochs = config.pretrain_epochs;
    Trainer pretrainer(model.get(), &dataset.train, &pretrain_sampler, pre_cfg);
    for (int e = 0; e < config.pretrain_epochs; ++e) pretrainer.RunEpoch();
    result.train_seconds += pretrainer.cumulative_seconds();
  }

  auto sampler = MakeSampler(config.sampler, model.get(), &train_index, config);
  CHECK(sampler != nullptr);

  // KBGAN with pretrain additionally warm-starts the generator with a
  // TransE model trained under Bernoulli sampling, per [9].
  if (config.sampler == SamplerKind::kKbgan && config.pretrain_epochs > 0) {
    KgeModel generator_seed(dataset.num_entities(), dataset.num_relations(),
                            config.kbgan.generator_dim,
                            MakeScoringFunction("transe"));
    Rng gen_rng(config.train.seed ^ 0xBADF00D);
    generator_seed.InitXavier(&gen_rng);
    BernoulliSampler gen_sampler(generator_seed.num_entities(), &train_index);
    TrainConfig gen_cfg = config.train;
    gen_cfg.dim = config.kbgan.generator_dim;
    gen_cfg.epochs = config.pretrain_epochs;
    Trainer gen_trainer(&generator_seed, &dataset.train, &gen_sampler, gen_cfg);
    for (int e = 0; e < config.pretrain_epochs; ++e) gen_trainer.RunEpoch();
    static_cast<KbganSampler*>(sampler.get())
        ->WarmStartGenerator(generator_seed);
  }

  Trainer trainer(model.get(), &dataset.train, sampler.get(), config.train);

  LinkPredictionOptions periodic_opts;
  periodic_opts.max_triples = config.periodic_eval_max_triples;
  periodic_opts.num_threads = config.eval_threads;
  periodic_opts.use_batched = !config.legacy_eval;

  std::unique_ptr<KgeModel> best_model;
  double best_valid_mrr = -1.0;

  auto* nscaching =
      config.sampler == SamplerKind::kNSCaching
          ? static_cast<NSCachingSampler*>(sampler.get())
          : nullptr;

  for (int e = 0; e < config.train.epochs; ++e) {
    if (nscaching != nullptr) nscaching->ResetStats();
    result.epoch_stats.push_back(trainer.RunEpoch());
    if (nscaching != nullptr) {
      result.cache_ce.push_back(nscaching->stats().MeanChangedElements());
    }

    const int done = e + 1;
    if (config.eval_test_every > 0 &&
        (done % config.eval_test_every == 0 || done == config.train.epochs)) {
      const RankingMetrics m = EvaluateLinkPrediction(
          *model, dataset.test, filter_index, periodic_opts);
      result.test_series.push_back({done, trainer.cumulative_seconds(),
                                    m.mrr(), m.hits_at(10), m.mr()});
    }
    if (config.eval_valid_every > 0 && !dataset.valid.empty() &&
        (done % config.eval_valid_every == 0 || done == config.train.epochs)) {
      const RankingMetrics m = EvaluateLinkPrediction(
          *model, dataset.valid, filter_index, periodic_opts);
      if (m.mrr() > best_valid_mrr) {
        best_valid_mrr = m.mrr();
        best_model = std::make_unique<KgeModel>(model->Clone());
        result.best_epoch = done;
      }
    }
  }
  result.train_seconds += trainer.cumulative_seconds();

  if (best_model != nullptr) {
    result.model = std::move(best_model);
  } else {
    result.best_epoch = config.train.epochs;
    result.model = std::move(model);
  }

  LinkPredictionOptions final_opts;
  final_opts.num_threads = config.eval_threads;
  final_opts.use_batched = !config.legacy_eval;
  result.test_metrics = EvaluateLinkPrediction(*result.model, dataset.test,
                                               filter_index, final_opts);
  return result;
}

}  // namespace nsc
