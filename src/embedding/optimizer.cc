#include "embedding/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace nsc {

void SgdOptimizer::Apply(ShardedEmbeddingTable* table, int32_t row,
                         const float* grad) {
  float* p = table->Row(row);
  const int w = table->width();
  for (int i = 0; i < w; ++i) p[i] -= static_cast<float>(lr_) * grad[i];
}

AdagradOptimizer::AdagradOptimizer(double lr,
                                   const ShardedEmbeddingTable& shape,
                                   double eps)
    : lr_(lr),
      eps_(eps),
      accum_(ShardedEmbeddingTable::ZerosLike(shape)),
      width_(shape.width()),
      stride_(shape.stride()) {}

void AdagradOptimizer::Apply(ShardedEmbeddingTable* table, int32_t row,
                             const float* grad) {
  CHECK_EQ(table->width(), width_);
  CHECK_EQ(table->stride(), stride_);
  float* p = table->Row(row);
  // Moment rows resolve through the mirrored shard layout — never
  // through base + row * stride arithmetic, which would assume one
  // contiguous slab.
  float* a = accum_.Row(row);
  for (int i = 0; i < width_; ++i) {
    a[i] += grad[i] * grad[i];
    p[i] -= static_cast<float>(lr_ * grad[i] / (std::sqrt(double(a[i])) + eps_));
  }
}

AdamOptimizer::AdamOptimizer(double lr, const ShardedEmbeddingTable& shape,
                             double beta1, double beta2, double eps)
    : lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      m_(ShardedEmbeddingTable::ZerosLike(shape)),
      v_(ShardedEmbeddingTable::ZerosLike(shape)),
      width_(shape.width()),
      stride_(shape.stride()) {}

void AdamOptimizer::Apply(ShardedEmbeddingTable* table, int32_t row,
                          const float* grad) {
  CHECK_EQ(table->width(), width_);
  CHECK_EQ(table->stride(), stride_);
  const int64_t step = step_.load(std::memory_order_relaxed);
  CHECK_GT(step, 0) << "call BeginStep() before Apply()";
  float* p = table->Row(row);
  float* m = m_.Row(row);
  float* v = v_.Row(row);
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step));
  for (int i = 0; i < width_; ++i) {
    m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * grad[i]);
    v[i] = static_cast<float>(beta2_ * v[i] +
                              (1.0 - beta2_) * double(grad[i]) * grad[i]);
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    p[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name, double lr,
                                         const ShardedEmbeddingTable& shape) {
  if (name == "sgd") return std::make_unique<SgdOptimizer>(lr);
  if (name == "adagrad") return std::make_unique<AdagradOptimizer>(lr, shape);
  if (name == "adam") return std::make_unique<AdamOptimizer>(lr, shape);
  return nullptr;
}

}  // namespace nsc
