// A crash-recoverable DIRECTORY of checkpoints: the unit the serving
// stack's background writer produces and a restarted process recovers
// from.
//
// One file per checkpoint (`ckpt-<step>.nsc`, format v2 with a CRC-32C
// trailer — embedding/checkpoint.h), the newest `keep` retained, plus an
// advisory MANIFEST. The layout is designed so that NO crash point loses
// committed data:
//
//   - A crash mid-write leaves a torn `ckpt-<step>.nsc` whose missing
//     trailer / CRC mismatch makes it self-evidently invalid; earlier
//     checkpoints are separate files and untouched.
//   - A crash between the data file and the manifest leaves a stale
//     manifest — which is why recovery NEVER trusts it: LoadLatestValid
//     rescans the directory and validates actual bytes.
//   - Retention prunes oldest-first and only after the new checkpoint is
//     fully on disk, so the set always contains the newest valid state.
//
// LoadLatestValid() walks the files newest-step-first and returns the
// first one that fully validates (magic, length, CRC), skipping torn or
// corrupt files — the recovery contract pinned by
// tests/embedding/checkpoint_set_test.cc's corruption matrix.
#ifndef NSCACHING_EMBEDDING_CHECKPOINT_SET_H_
#define NSCACHING_EMBEDDING_CHECKPOINT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "embedding/checkpoint.h"
#include "embedding/model.h"
#include "util/status.h"

namespace nsc {

/// Configuration of a CheckpointSet.
struct CheckpointSetOptions {
  /// Newest checkpoints retained on disk (>= 1). Older files are pruned
  /// after each successful write.
  int keep = 3;
};

/// A checkpoint restored by CheckpointSet::LoadLatestValid.
struct LoadedCheckpoint {
  KgeModel model;
  int64_t step = -1;
  /// Files newer than the loaded one that failed validation and were
  /// skipped (diagnostics; empty on a clean directory).
  std::vector<std::string> skipped;
};

/// Manages `dir` as a set of retained checkpoints. One writer at a time
/// (the snapshot publisher's background thread); any number of readers.
class CheckpointSet {
 public:
  explicit CheckpointSet(std::string dir,
                         CheckpointSetOptions options = CheckpointSetOptions());

  /// Creates the directory if missing (one level). Idempotent.
  Status Init() const;

  /// Writes `model` at `step` to ckpt-<step>.nsc, rewrites the manifest
  /// (temp + rename), then prunes beyond options.keep. On write failure
  /// the torn file is left in place — recovery skips it by validation,
  /// and a retrying writer overwrites it; removal here would hide the
  /// exact state a crash leaves.
  Status Write(const KgeModel& model, int64_t step) const;

  /// Newest checkpoint in the directory that validates end to end.
  /// Skips (and records) torn/corrupt/unreadable files. NotFound when
  /// the directory holds no valid checkpoint; IOError when it cannot be
  /// listed.
  StatusOr<LoadedCheckpoint> LoadLatestValid(
      const ShardOptions& entity_sharding = ShardOptions()) const;

  /// Steps of every checkpoint FILE present (valid or not), ascending.
  StatusOr<std::vector<int64_t>> ListSteps() const;

  /// dir/ckpt-<step>.nsc — exposed for tests that corrupt files in
  /// place.
  std::string CheckpointPath(int64_t step) const;

  const std::string& dir() const { return dir_; }

 private:
  Status WriteManifest(const std::vector<int64_t>& steps) const;

  const std::string dir_;
  const CheckpointSetOptions options_;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_CHECKPOINT_SET_H_
