#include "embedding/initializer.h"

#include <cmath>

namespace nsc {

void XavierUniformInit(EmbeddingTable* table, Rng* rng) {
  const double bound = std::sqrt(6.0 / (2.0 * table->width()));
  UniformInit(table, -bound, bound, rng);
}

void GaussianInit(EmbeddingTable* table, double stddev, Rng* rng) {
  for (float& v : table->data()) {
    v = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
}

void UniformInit(EmbeddingTable* table, double lo, double hi, Rng* rng) {
  for (float& v : table->data()) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
}

}  // namespace nsc
