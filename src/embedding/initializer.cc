#include "embedding/initializer.h"

#include <cmath>

namespace nsc {

namespace {

// All initializers walk rows × logical width (never the raw storage), so
// a padded and a compact table — and a sharded and a single-slab one —
// consume the identical RNG stream and end up with identical logical
// contents; padding floats stay zero. Templated over the table type:
// EmbeddingTable and ShardedEmbeddingTable share the Row/rows/width API.
template <typename Table, typename Fn>
void FillRows(Table* table, Fn&& fill) {
  const int width = table->width();
  for (int32_t r = 0; r < table->rows(); ++r) {
    float* row = table->Row(r);
    for (int i = 0; i < width; ++i) row[i] = fill();
  }
}

}  // namespace

void XavierUniformInit(EmbeddingTable* table, Rng* rng) {
  const double bound = std::sqrt(6.0 / (2.0 * table->width()));
  UniformInit(table, -bound, bound, rng);
}

void XavierUniformInit(ShardedEmbeddingTable* table, Rng* rng) {
  const double bound = std::sqrt(6.0 / (2.0 * table->width()));
  UniformInit(table, -bound, bound, rng);
}

void GaussianInit(EmbeddingTable* table, double stddev, Rng* rng) {
  FillRows(table, [&] {
    return static_cast<float>(rng->Gaussian(0.0, stddev));
  });
}

void GaussianInit(ShardedEmbeddingTable* table, double stddev, Rng* rng) {
  FillRows(table, [&] {
    return static_cast<float>(rng->Gaussian(0.0, stddev));
  });
}

void UniformInit(EmbeddingTable* table, double lo, double hi, Rng* rng) {
  FillRows(table, [&] { return static_cast<float>(rng->Uniform(lo, hi)); });
}

void UniformInit(ShardedEmbeddingTable* table, double lo, double hi,
                 Rng* rng) {
  FillRows(table, [&] { return static_cast<float>(rng->Uniform(lo, hi)); });
}

}  // namespace nsc
