#include "embedding/model.h"

#include "embedding/initializer.h"
#include "util/logging.h"

namespace nsc {

namespace {

// Reused pointer-array scratch for the batched kernels. thread_local so
// parallel evaluation and Hogwild workers don't race; after warm-up the
// candidate-scoring hot path (NSCaching's cache refresh runs it twice
// per trained triple) is allocation-free.
struct BatchScratch {
  std::vector<const float*> h, r, t;
};

BatchScratch& Scratch() {
  static thread_local BatchScratch scratch;
  return scratch;
}

}  // namespace

KgeModel::KgeModel(int32_t num_entities, int32_t num_relations, int dim,
                   std::unique_ptr<ScoringFunction> scorer,
                   TableLayout layout)
    : dim_(dim), scorer_(std::move(scorer)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  const int pad = layout == TableLayout::kPadded ? simd::kPadLanes : 1;
  entities_ = EmbeddingTable(num_entities, scorer_->entity_width(dim), pad);
  relations_ = EmbeddingTable(num_relations, scorer_->relation_width(dim), pad);
}

KgeModel::KgeModel(int dim, std::unique_ptr<ScoringFunction> scorer,
                   EmbeddingTable entities, EmbeddingTable relations)
    : dim_(dim),
      scorer_(std::move(scorer)),
      entities_(std::move(entities)),
      relations_(std::move(relations)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  CHECK_EQ(entities_.width(), scorer_->entity_width(dim))
      << "entity table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
  CHECK_EQ(relations_.width(), scorer_->relation_width(dim))
      << "relation table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
}

void KgeModel::InitXavier(Rng* rng) {
  XavierUniformInit(&entities_, rng);
  XavierUniformInit(&relations_, rng);
}

double KgeModel::Score(EntityId h, RelationId r, EntityId t) const {
  return scorer_->Score(entities_.Row(h), relations_.Row(r), entities_.Row(t),
                        dim_);
}

void KgeModel::ScoreBatch(const Triple* triples, size_t n, double* out) const {
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.resize(n);
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) {
    s.h[i] = entities_.Row(triples[i].h);
    s.r[i] = relations_.Row(triples[i].r);
    s.t[i] = entities_.Row(triples[i].t);
  }
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n, out);
}

void KgeModel::ScoreBatch(const std::vector<Triple>& triples,
                          std::vector<double>* out) const {
  out->resize(triples.size());
  ScoreBatch(triples.data(), triples.size(), out->data());
}

void KgeModel::ScoreHeadCandidates(RelationId r, EntityId t,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.assign(n, relations_.Row(r));
  s.t.assign(n, entities_.Row(t));
  for (size_t i = 0; i < n; ++i) s.h[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

void KgeModel::ScoreTailCandidates(EntityId h, RelationId r,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  BatchScratch& s = Scratch();
  s.h.assign(n, entities_.Row(h));
  s.r.assign(n, relations_.Row(r));
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) s.t[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

KgeModel KgeModel::Clone() const {
  // The adopting constructor takes exact table copies, so any layout
  // (including non-default strides) is preserved verbatim.
  return KgeModel(dim_, MakeScoringFunction(scorer_->name()), entities_,
                  relations_);
}

}  // namespace nsc
