#include "embedding/model.h"

#include <cstring>

#include "embedding/initializer.h"
#include "util/logging.h"

namespace nsc {

namespace {

// Reused pointer-array scratch for the batched kernels. thread_local so
// parallel evaluation and Hogwild workers don't race; after warm-up the
// candidate-scoring hot path (NSCaching's cache refresh runs it twice
// per trained triple) is allocation-free.
struct BatchScratch {
  std::vector<const float*> h, r, t;
};

BatchScratch& Scratch() {
  static thread_local BatchScratch scratch;
  return scratch;
}

// Contiguous row slab for the candidate-list sweeps (cache refresh):
// candidate rows are gathered here so ScoreAllCandidates streams one
// slab instead of chasing per-candidate pointers. Allocation-free after
// warm-up, like the pointer scratch.
AlignedFloatVector& GatherScratch() {
  static thread_local AlignedFloatVector rows;
  return rows;
}

// Bounded heap reused across top-K retrievals (Reset(k) clears it but
// keeps the capacity); thread_local for the same reason as the rest.
TopKCollector& Collector() {
  static thread_local TopKCollector collector;
  return collector;
}

}  // namespace

KgeModel::KgeModel(int32_t num_entities, int32_t num_relations, int dim,
                   std::unique_ptr<ScoringFunction> scorer,
                   TableLayout layout, const ShardOptions& entity_sharding)
    : dim_(dim), scorer_(std::move(scorer)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  const int pad = layout == TableLayout::kPadded ? simd::kPadLanes : 1;
  entities_ = ShardedEmbeddingTable(num_entities, scorer_->entity_width(dim),
                                    pad, entity_sharding);
  // Relation counts are small — one shard always.
  relations_ = ShardedEmbeddingTable(num_relations,
                                     scorer_->relation_width(dim), pad);
}

KgeModel::KgeModel(int dim, std::unique_ptr<ScoringFunction> scorer,
                   EmbeddingTable entities, EmbeddingTable relations)
    : KgeModel(dim, std::move(scorer),
               ShardedEmbeddingTable(std::move(entities)),
               ShardedEmbeddingTable(std::move(relations))) {}

KgeModel::KgeModel(int dim, std::unique_ptr<ScoringFunction> scorer,
                   ShardedEmbeddingTable entities,
                   ShardedEmbeddingTable relations)
    : dim_(dim),
      scorer_(std::move(scorer)),
      entities_(std::move(entities)),
      relations_(std::move(relations)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  CHECK_EQ(entities_.width(), scorer_->entity_width(dim))
      << "entity table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
  CHECK_EQ(relations_.width(), scorer_->relation_width(dim))
      << "relation table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
}

void KgeModel::InitXavier(Rng* rng) {
  XavierUniformInit(&entities_, rng);
  XavierUniformInit(&relations_, rng);
}

double KgeModel::Score(EntityId h, RelationId r, EntityId t) const {
  return scorer_->Score(entities_.Row(h), relations_.Row(r), entities_.Row(t),
                        dim_);
}

void KgeModel::ScoreBatch(const Triple* triples, size_t n, double* out) const {
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.resize(n);
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) {
    s.h[i] = entities_.Row(triples[i].h);
    s.r[i] = relations_.Row(triples[i].r);
    s.t[i] = entities_.Row(triples[i].t);
  }
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n, out);
}

void KgeModel::ScoreBatch(const std::vector<Triple>& triples,
                          std::vector<double>* out) const {
  out->resize(triples.size());
  ScoreBatch(triples.data(), triples.size(), out->data());
}

void KgeModel::ScoreAllHeads(RelationId r, EntityId t, double* out) const {
  ScoreHeadRange(r, t, 0, static_cast<std::size_t>(entities_.rows()), out);
}

void KgeModel::ScoreAllTails(EntityId h, RelationId r, double* out) const {
  ScoreTailRange(h, r, 0, static_cast<std::size_t>(entities_.rows()), out);
}

void KgeModel::ScoreHeadRange(RelationId r, EntityId t, std::size_t first,
                              std::size_t count, double* out) const {
  if (count == 0) return;
  const float* fixed_t = entities_.Row(t);
  const float* fixed_r = relations_.Row(r);
  // One sweep per shard slab: per-candidate scores are slab-independent,
  // so out is bit-identical to a single contiguous sweep.
  entities_.ForEachSlab(
      first, count,
      [&](int /*shard*/, const float* base, std::size_t global_first,
          std::size_t n) {
        scorer_->ScoreAllCandidates(CorruptionSide::kHead, fixed_t, fixed_r,
                                    base,
                                    static_cast<size_t>(entities_.stride()), n,
                                    dim_, out + (global_first - first));
      });
}

void KgeModel::ScoreTailRange(EntityId h, RelationId r, std::size_t first,
                              std::size_t count, double* out) const {
  if (count == 0) return;
  const float* fixed_h = entities_.Row(h);
  const float* fixed_r = relations_.Row(r);
  entities_.ForEachSlab(
      first, count,
      [&](int /*shard*/, const float* base, std::size_t global_first,
          std::size_t n) {
        scorer_->ScoreAllCandidates(CorruptionSide::kTail, fixed_h, fixed_r,
                                    base,
                                    static_cast<size_t>(entities_.stride()), n,
                                    dim_, out + (global_first - first));
      });
}

void KgeModel::TopKHeads(RelationId r, EntityId t, std::size_t k,
                         std::vector<TopKEntry>* out,
                         TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (entities_.rows() > 0) {
    const float* fixed_t = entities_.Row(t);
    const float* fixed_r = relations_.Row(r);
    // One fused sweep per shard, sharing the collector: the index base
    // maps slab-relative indices to global EntityIds, shards are swept
    // in row order (offers stay globally index-ordered), and the running
    // threshold carries across shards — so the retrieved set is
    // bit-identical to one contiguous sweep.
    entities_.ForEachSlab(
        0, static_cast<std::size_t>(entities_.rows()),
        [&](int /*shard*/, const float* base, std::size_t global_first,
            std::size_t n) {
          c.set_index_base(global_first);
          scorer_->TopKCandidates(CorruptionSide::kHead, fixed_t, fixed_r,
                                  base,
                                  static_cast<size_t>(entities_.stride()), n,
                                  dim_, &c);
        });
    c.set_index_base(0);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

void KgeModel::TopKTails(EntityId h, RelationId r, std::size_t k,
                         std::vector<TopKEntry>* out,
                         TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (entities_.rows() > 0) {
    const float* fixed_h = entities_.Row(h);
    const float* fixed_r = relations_.Row(r);
    entities_.ForEachSlab(
        0, static_cast<std::size_t>(entities_.rows()),
        [&](int /*shard*/, const float* base, std::size_t global_first,
            std::size_t n) {
          c.set_index_base(global_first);
          scorer_->TopKCandidates(CorruptionSide::kTail, fixed_h, fixed_r,
                                  base,
                                  static_cast<size_t>(entities_.stride()), n,
                                  dim_, &c);
        });
    c.set_index_base(0);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

namespace {

// Shared body of TopKHeadsBatch/TopKTailsBatch: builds the parallel
// fixed-row and collector arrays and drives one TopKCandidatesBatch
// call over the full entity slab. `fixed_rows(q)` returns the
// (entity row, relation row) pair of query q.
template <typename FixedRowsFn>
void TopKBatchImpl(const ScoringFunction& scorer, CorruptionSide side,
                   const ShardedEmbeddingTable& entities, std::size_t nq,
                   FixedRowsFn fixed_rows, std::size_t k, int dim,
                   std::vector<std::vector<TopKEntry>>* out,
                   TopKSweepStats* stats) {
  out->resize(nq);
  if (stats != nullptr) *stats = TopKSweepStats{};
  if (nq == 0) return;
  std::vector<TopKCollector> collectors(nq);
  std::vector<TopKCollector*> collector_ptrs(nq);
  std::vector<const float*> fixed_e(nq);
  std::vector<const float*> fixed_r(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    collectors[q].Reset(k);
    collector_ptrs[q] = &collectors[q];
    const auto rows = fixed_rows(q);
    fixed_e[q] = rows.first;
    fixed_r[q] = rows.second;
  }
  if (entities.rows() > 0) {
    // One batched sweep per shard slab; every query's collector gets the
    // shard's global base so slab indices come out as EntityIds, and the
    // per-query thresholds persist across shards (same merged-collector
    // argument as TopKHeads).
    entities.ForEachSlab(
        0, static_cast<std::size_t>(entities.rows()),
        [&](int /*shard*/, const float* base, std::size_t global_first,
            std::size_t n) {
          for (std::size_t q = 0; q < nq; ++q) {
            collectors[q].set_index_base(global_first);
          }
          scorer.TopKCandidatesBatch(side, fixed_e.data(), fixed_r.data(), nq,
                                     base,
                                     static_cast<size_t>(entities.stride()), n,
                                     dim, collector_ptrs.data());
        });
  }
  for (std::size_t q = 0; q < nq; ++q) {
    collectors[q].set_index_base(0);
    if (stats != nullptr) {
      stats->tiles += collectors[q].stats().tiles;
      stats->pruned_tiles += collectors[q].stats().pruned_tiles;
    }
    collectors[q].ExtractSorted(&(*out)[q]);
  }
}

}  // namespace

void KgeModel::TopKHeadsBatch(
    const std::vector<std::pair<RelationId, EntityId>>& queries, std::size_t k,
    std::vector<std::vector<TopKEntry>>* out, TopKSweepStats* stats) const {
  TopKBatchImpl(
      *scorer_, CorruptionSide::kHead, entities_, queries.size(),
      [&](std::size_t q) {
        return std::make_pair(entities_.Row(queries[q].second),
                              relations_.Row(queries[q].first));
      },
      k, dim_, out, stats);
}

void KgeModel::TopKTailsBatch(
    const std::vector<std::pair<EntityId, RelationId>>& queries, std::size_t k,
    std::vector<std::vector<TopKEntry>>* out, TopKSweepStats* stats) const {
  TopKBatchImpl(
      *scorer_, CorruptionSide::kTail, entities_, queries.size(),
      [&](std::size_t q) {
        return std::make_pair(entities_.Row(queries[q].first),
                              relations_.Row(queries[q].second));
      },
      k, dim_, out, stats);
}

namespace {

// Gathers `candidates`' entity rows into one contiguous slab (the sweep
// calling convention). Only the logical width is copied; sweeps never
// read a row past it, so stale floats between width and stride are fine.
const float* GatherCandidateRows(const ShardedEmbeddingTable& entities,
                                 const std::vector<EntityId>& candidates) {
  AlignedFloatVector& rows = GatherScratch();
  const size_t stride = entities.stride();
  rows.resize(candidates.size() * stride);
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::memcpy(rows.data() + i * stride, entities.Row(candidates[i]),
                entities.width() * sizeof(float));
  }
  return rows.data();
}

}  // namespace

void KgeModel::ScoreHeadCandidates(RelationId r, EntityId t,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  if (n == 0) return;
  if (scorer_->simd_accelerated()) {
    scorer_->ScoreAllCandidates(CorruptionSide::kHead, entities_.Row(t),
                                relations_.Row(r),
                                GatherCandidateRows(entities_, candidates),
                                static_cast<size_t>(entities_.stride()), n,
                                dim_, out->data());
    return;
  }
  // Non-SIMD scorers run the generic ScoreBatch loops either way, so the
  // gather copy would buy nothing — keep the zero-copy pointer-array
  // broadcast for them.
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.assign(n, relations_.Row(r));
  s.t.assign(n, entities_.Row(t));
  for (size_t i = 0; i < n; ++i) s.h[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

void KgeModel::ScoreTailCandidates(EntityId h, RelationId r,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  if (n == 0) return;
  if (scorer_->simd_accelerated()) {
    scorer_->ScoreAllCandidates(CorruptionSide::kTail, entities_.Row(h),
                                relations_.Row(r),
                                GatherCandidateRows(entities_, candidates),
                                static_cast<size_t>(entities_.stride()), n,
                                dim_, out->data());
    return;
  }
  BatchScratch& s = Scratch();
  s.h.assign(n, entities_.Row(h));
  s.r.assign(n, relations_.Row(r));
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) s.t[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

void KgeModel::TopKHeadCandidates(RelationId r, EntityId t,
                                  const std::vector<EntityId>& candidates,
                                  std::size_t k, std::vector<TopKEntry>* out,
                                  TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (!candidates.empty()) {
    scorer_->TopKCandidates(CorruptionSide::kHead, entities_.Row(t),
                            relations_.Row(r),
                            GatherCandidateRows(entities_, candidates),
                            static_cast<size_t>(entities_.stride()),
                            candidates.size(), dim_, &c);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

void KgeModel::TopKTailCandidates(EntityId h, RelationId r,
                                  const std::vector<EntityId>& candidates,
                                  std::size_t k, std::vector<TopKEntry>* out,
                                  TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (!candidates.empty()) {
    scorer_->TopKCandidates(CorruptionSide::kTail, entities_.Row(h),
                            relations_.Row(r),
                            GatherCandidateRows(entities_, candidates),
                            static_cast<size_t>(entities_.stride()),
                            candidates.size(), dim_, &c);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

KgeModel KgeModel::Clone() const {
  // The adopting constructor takes exact table copies, so any layout
  // (including non-default strides) is preserved verbatim.
  return KgeModel(dim_, MakeScoringFunction(scorer_->name()), entities_,
                  relations_);
}

void KgeModel::CopyParametersFrom(const KgeModel& other) {
  CHECK(scorer_->name() == other.scorer().name())
      << "CopyParametersFrom across scorers: " << scorer_->name() << " vs "
      << other.scorer().name();
  CHECK_EQ(dim_, other.dim());
  entities_.CopyLogicalFrom(other.entities_);
  relations_.CopyLogicalFrom(other.relations_);
}

}  // namespace nsc
