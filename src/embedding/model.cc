#include "embedding/model.h"

#include <cstring>

#include "embedding/initializer.h"
#include "util/logging.h"

namespace nsc {

namespace {

// Reused pointer-array scratch for the batched kernels. thread_local so
// parallel evaluation and Hogwild workers don't race; after warm-up the
// candidate-scoring hot path (NSCaching's cache refresh runs it twice
// per trained triple) is allocation-free.
struct BatchScratch {
  std::vector<const float*> h, r, t;
};

BatchScratch& Scratch() {
  static thread_local BatchScratch scratch;
  return scratch;
}

// Contiguous row slab for the candidate-list sweeps (cache refresh):
// candidate rows are gathered here so ScoreAllCandidates streams one
// slab instead of chasing per-candidate pointers. Allocation-free after
// warm-up, like the pointer scratch.
AlignedFloatVector& GatherScratch() {
  static thread_local AlignedFloatVector rows;
  return rows;
}

// Bounded heap reused across top-K retrievals (Reset(k) clears it but
// keeps the capacity); thread_local for the same reason as the rest.
TopKCollector& Collector() {
  static thread_local TopKCollector collector;
  return collector;
}

}  // namespace

KgeModel::KgeModel(int32_t num_entities, int32_t num_relations, int dim,
                   std::unique_ptr<ScoringFunction> scorer,
                   TableLayout layout)
    : dim_(dim), scorer_(std::move(scorer)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  const int pad = layout == TableLayout::kPadded ? simd::kPadLanes : 1;
  entities_ = EmbeddingTable(num_entities, scorer_->entity_width(dim), pad);
  relations_ = EmbeddingTable(num_relations, scorer_->relation_width(dim), pad);
}

KgeModel::KgeModel(int dim, std::unique_ptr<ScoringFunction> scorer,
                   EmbeddingTable entities, EmbeddingTable relations)
    : dim_(dim),
      scorer_(std::move(scorer)),
      entities_(std::move(entities)),
      relations_(std::move(relations)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  CHECK_EQ(entities_.width(), scorer_->entity_width(dim))
      << "entity table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
  CHECK_EQ(relations_.width(), scorer_->relation_width(dim))
      << "relation table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
}

void KgeModel::InitXavier(Rng* rng) {
  XavierUniformInit(&entities_, rng);
  XavierUniformInit(&relations_, rng);
}

double KgeModel::Score(EntityId h, RelationId r, EntityId t) const {
  return scorer_->Score(entities_.Row(h), relations_.Row(r), entities_.Row(t),
                        dim_);
}

void KgeModel::ScoreBatch(const Triple* triples, size_t n, double* out) const {
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.resize(n);
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) {
    s.h[i] = entities_.Row(triples[i].h);
    s.r[i] = relations_.Row(triples[i].r);
    s.t[i] = entities_.Row(triples[i].t);
  }
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n, out);
}

void KgeModel::ScoreBatch(const std::vector<Triple>& triples,
                          std::vector<double>* out) const {
  out->resize(triples.size());
  ScoreBatch(triples.data(), triples.size(), out->data());
}

void KgeModel::ScoreAllHeads(RelationId r, EntityId t, double* out) const {
  if (entities_.rows() == 0) return;
  scorer_->ScoreAllCandidates(CorruptionSide::kHead, entities_.Row(t),
                              relations_.Row(r), entities_.Row(0),
                              static_cast<size_t>(entities_.stride()),
                              static_cast<size_t>(entities_.rows()), dim_, out);
}

void KgeModel::ScoreAllTails(EntityId h, RelationId r, double* out) const {
  if (entities_.rows() == 0) return;
  scorer_->ScoreAllCandidates(CorruptionSide::kTail, entities_.Row(h),
                              relations_.Row(r), entities_.Row(0),
                              static_cast<size_t>(entities_.stride()),
                              static_cast<size_t>(entities_.rows()), dim_, out);
}

void KgeModel::ScoreHeadRange(RelationId r, EntityId t, std::size_t first,
                              std::size_t count, double* out) const {
  if (count == 0) return;
  scorer_->ScoreAllCandidates(
      CorruptionSide::kHead, entities_.Row(t), relations_.Row(r),
      entities_.Row(static_cast<EntityId>(first)),
      static_cast<size_t>(entities_.stride()), count, dim_, out);
}

void KgeModel::ScoreTailRange(EntityId h, RelationId r, std::size_t first,
                              std::size_t count, double* out) const {
  if (count == 0) return;
  scorer_->ScoreAllCandidates(
      CorruptionSide::kTail, entities_.Row(h), relations_.Row(r),
      entities_.Row(static_cast<EntityId>(first)),
      static_cast<size_t>(entities_.stride()), count, dim_, out);
}

void KgeModel::TopKHeads(RelationId r, EntityId t, std::size_t k,
                         std::vector<TopKEntry>* out,
                         TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (entities_.rows() > 0) {
    // Slab indices over Row(0) *are* EntityIds, so no remapping needed.
    scorer_->TopKCandidates(CorruptionSide::kHead, entities_.Row(t),
                            relations_.Row(r), entities_.Row(0),
                            static_cast<size_t>(entities_.stride()),
                            static_cast<size_t>(entities_.rows()), dim_, &c);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

void KgeModel::TopKTails(EntityId h, RelationId r, std::size_t k,
                         std::vector<TopKEntry>* out,
                         TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (entities_.rows() > 0) {
    scorer_->TopKCandidates(CorruptionSide::kTail, entities_.Row(h),
                            relations_.Row(r), entities_.Row(0),
                            static_cast<size_t>(entities_.stride()),
                            static_cast<size_t>(entities_.rows()), dim_, &c);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

namespace {

// Shared body of TopKHeadsBatch/TopKTailsBatch: builds the parallel
// fixed-row and collector arrays and drives one TopKCandidatesBatch
// call over the full entity slab. `fixed_rows(q)` returns the
// (entity row, relation row) pair of query q.
template <typename FixedRowsFn>
void TopKBatchImpl(const ScoringFunction& scorer, CorruptionSide side,
                   const EmbeddingTable& entities, std::size_t nq,
                   FixedRowsFn fixed_rows, std::size_t k, int dim,
                   std::vector<std::vector<TopKEntry>>* out,
                   TopKSweepStats* stats) {
  out->resize(nq);
  if (stats != nullptr) *stats = TopKSweepStats{};
  if (nq == 0) return;
  std::vector<TopKCollector> collectors(nq);
  std::vector<TopKCollector*> collector_ptrs(nq);
  std::vector<const float*> fixed_e(nq);
  std::vector<const float*> fixed_r(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    collectors[q].Reset(k);
    collector_ptrs[q] = &collectors[q];
    const auto rows = fixed_rows(q);
    fixed_e[q] = rows.first;
    fixed_r[q] = rows.second;
  }
  if (entities.rows() > 0) {
    // Slab indices over Row(0) *are* EntityIds, so no remapping needed.
    scorer.TopKCandidatesBatch(side, fixed_e.data(), fixed_r.data(), nq,
                               entities.Row(0),
                               static_cast<size_t>(entities.stride()),
                               static_cast<size_t>(entities.rows()), dim,
                               collector_ptrs.data());
  }
  for (std::size_t q = 0; q < nq; ++q) {
    if (stats != nullptr) {
      stats->tiles += collectors[q].stats().tiles;
      stats->pruned_tiles += collectors[q].stats().pruned_tiles;
    }
    collectors[q].ExtractSorted(&(*out)[q]);
  }
}

}  // namespace

void KgeModel::TopKHeadsBatch(
    const std::vector<std::pair<RelationId, EntityId>>& queries, std::size_t k,
    std::vector<std::vector<TopKEntry>>* out, TopKSweepStats* stats) const {
  TopKBatchImpl(
      *scorer_, CorruptionSide::kHead, entities_, queries.size(),
      [&](std::size_t q) {
        return std::make_pair(entities_.Row(queries[q].second),
                              relations_.Row(queries[q].first));
      },
      k, dim_, out, stats);
}

void KgeModel::TopKTailsBatch(
    const std::vector<std::pair<EntityId, RelationId>>& queries, std::size_t k,
    std::vector<std::vector<TopKEntry>>* out, TopKSweepStats* stats) const {
  TopKBatchImpl(
      *scorer_, CorruptionSide::kTail, entities_, queries.size(),
      [&](std::size_t q) {
        return std::make_pair(entities_.Row(queries[q].first),
                              relations_.Row(queries[q].second));
      },
      k, dim_, out, stats);
}

namespace {

// Gathers `candidates`' entity rows into one contiguous slab (the sweep
// calling convention). Only the logical width is copied; sweeps never
// read a row past it, so stale floats between width and stride are fine.
const float* GatherCandidateRows(const EmbeddingTable& entities,
                                 const std::vector<EntityId>& candidates) {
  AlignedFloatVector& rows = GatherScratch();
  const size_t stride = entities.stride();
  rows.resize(candidates.size() * stride);
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::memcpy(rows.data() + i * stride, entities.Row(candidates[i]),
                entities.width() * sizeof(float));
  }
  return rows.data();
}

}  // namespace

void KgeModel::ScoreHeadCandidates(RelationId r, EntityId t,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  if (n == 0) return;
  if (scorer_->simd_accelerated()) {
    scorer_->ScoreAllCandidates(CorruptionSide::kHead, entities_.Row(t),
                                relations_.Row(r),
                                GatherCandidateRows(entities_, candidates),
                                static_cast<size_t>(entities_.stride()), n,
                                dim_, out->data());
    return;
  }
  // Non-SIMD scorers run the generic ScoreBatch loops either way, so the
  // gather copy would buy nothing — keep the zero-copy pointer-array
  // broadcast for them.
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.assign(n, relations_.Row(r));
  s.t.assign(n, entities_.Row(t));
  for (size_t i = 0; i < n; ++i) s.h[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

void KgeModel::ScoreTailCandidates(EntityId h, RelationId r,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  if (n == 0) return;
  if (scorer_->simd_accelerated()) {
    scorer_->ScoreAllCandidates(CorruptionSide::kTail, entities_.Row(h),
                                relations_.Row(r),
                                GatherCandidateRows(entities_, candidates),
                                static_cast<size_t>(entities_.stride()), n,
                                dim_, out->data());
    return;
  }
  BatchScratch& s = Scratch();
  s.h.assign(n, entities_.Row(h));
  s.r.assign(n, relations_.Row(r));
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) s.t[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

void KgeModel::TopKHeadCandidates(RelationId r, EntityId t,
                                  const std::vector<EntityId>& candidates,
                                  std::size_t k, std::vector<TopKEntry>* out,
                                  TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (!candidates.empty()) {
    scorer_->TopKCandidates(CorruptionSide::kHead, entities_.Row(t),
                            relations_.Row(r),
                            GatherCandidateRows(entities_, candidates),
                            static_cast<size_t>(entities_.stride()),
                            candidates.size(), dim_, &c);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

void KgeModel::TopKTailCandidates(EntityId h, RelationId r,
                                  const std::vector<EntityId>& candidates,
                                  std::size_t k, std::vector<TopKEntry>* out,
                                  TopKSweepStats* stats) const {
  TopKCollector& c = Collector();
  c.Reset(k);
  if (!candidates.empty()) {
    scorer_->TopKCandidates(CorruptionSide::kTail, entities_.Row(h),
                            relations_.Row(r),
                            GatherCandidateRows(entities_, candidates),
                            static_cast<size_t>(entities_.stride()),
                            candidates.size(), dim_, &c);
  }
  if (stats != nullptr) *stats = c.stats();
  c.ExtractSorted(out);
}

KgeModel KgeModel::Clone() const {
  // The adopting constructor takes exact table copies, so any layout
  // (including non-default strides) is preserved verbatim.
  return KgeModel(dim_, MakeScoringFunction(scorer_->name()), entities_,
                  relations_);
}

}  // namespace nsc
