#include "embedding/model.h"

#include <cstring>

#include "embedding/initializer.h"
#include "util/logging.h"

namespace nsc {

namespace {

// Reused pointer-array scratch for the batched kernels. thread_local so
// parallel evaluation and Hogwild workers don't race; after warm-up the
// candidate-scoring hot path (NSCaching's cache refresh runs it twice
// per trained triple) is allocation-free.
struct BatchScratch {
  std::vector<const float*> h, r, t;
};

BatchScratch& Scratch() {
  static thread_local BatchScratch scratch;
  return scratch;
}

// Contiguous row slab for the candidate-list sweeps (cache refresh):
// candidate rows are gathered here so ScoreAllCandidates streams one
// slab instead of chasing per-candidate pointers. Allocation-free after
// warm-up, like the pointer scratch.
AlignedFloatVector& GatherScratch() {
  static thread_local AlignedFloatVector rows;
  return rows;
}

}  // namespace

KgeModel::KgeModel(int32_t num_entities, int32_t num_relations, int dim,
                   std::unique_ptr<ScoringFunction> scorer,
                   TableLayout layout)
    : dim_(dim), scorer_(std::move(scorer)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  const int pad = layout == TableLayout::kPadded ? simd::kPadLanes : 1;
  entities_ = EmbeddingTable(num_entities, scorer_->entity_width(dim), pad);
  relations_ = EmbeddingTable(num_relations, scorer_->relation_width(dim), pad);
}

KgeModel::KgeModel(int dim, std::unique_ptr<ScoringFunction> scorer,
                   EmbeddingTable entities, EmbeddingTable relations)
    : dim_(dim),
      scorer_(std::move(scorer)),
      entities_(std::move(entities)),
      relations_(std::move(relations)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  CHECK_EQ(entities_.width(), scorer_->entity_width(dim))
      << "entity table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
  CHECK_EQ(relations_.width(), scorer_->relation_width(dim))
      << "relation table width does not match what scorer " << scorer_->name()
      << " declares for dim " << dim;
}

void KgeModel::InitXavier(Rng* rng) {
  XavierUniformInit(&entities_, rng);
  XavierUniformInit(&relations_, rng);
}

double KgeModel::Score(EntityId h, RelationId r, EntityId t) const {
  return scorer_->Score(entities_.Row(h), relations_.Row(r), entities_.Row(t),
                        dim_);
}

void KgeModel::ScoreBatch(const Triple* triples, size_t n, double* out) const {
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.resize(n);
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) {
    s.h[i] = entities_.Row(triples[i].h);
    s.r[i] = relations_.Row(triples[i].r);
    s.t[i] = entities_.Row(triples[i].t);
  }
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n, out);
}

void KgeModel::ScoreBatch(const std::vector<Triple>& triples,
                          std::vector<double>* out) const {
  out->resize(triples.size());
  ScoreBatch(triples.data(), triples.size(), out->data());
}

void KgeModel::ScoreAllHeads(RelationId r, EntityId t, double* out) const {
  if (entities_.rows() == 0) return;
  scorer_->ScoreAllCandidates(CorruptionSide::kHead, entities_.Row(t),
                              relations_.Row(r), entities_.Row(0),
                              static_cast<size_t>(entities_.stride()),
                              static_cast<size_t>(entities_.rows()), dim_, out);
}

void KgeModel::ScoreAllTails(EntityId h, RelationId r, double* out) const {
  if (entities_.rows() == 0) return;
  scorer_->ScoreAllCandidates(CorruptionSide::kTail, entities_.Row(h),
                              relations_.Row(r), entities_.Row(0),
                              static_cast<size_t>(entities_.stride()),
                              static_cast<size_t>(entities_.rows()), dim_, out);
}

namespace {

// Gathers `candidates`' entity rows into one contiguous slab (the sweep
// calling convention). Only the logical width is copied; sweeps never
// read a row past it, so stale floats between width and stride are fine.
const float* GatherCandidateRows(const EmbeddingTable& entities,
                                 const std::vector<EntityId>& candidates) {
  AlignedFloatVector& rows = GatherScratch();
  const size_t stride = entities.stride();
  rows.resize(candidates.size() * stride);
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::memcpy(rows.data() + i * stride, entities.Row(candidates[i]),
                entities.width() * sizeof(float));
  }
  return rows.data();
}

}  // namespace

void KgeModel::ScoreHeadCandidates(RelationId r, EntityId t,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  if (n == 0) return;
  if (scorer_->simd_accelerated()) {
    scorer_->ScoreAllCandidates(CorruptionSide::kHead, entities_.Row(t),
                                relations_.Row(r),
                                GatherCandidateRows(entities_, candidates),
                                static_cast<size_t>(entities_.stride()), n,
                                dim_, out->data());
    return;
  }
  // Non-SIMD scorers run the generic ScoreBatch loops either way, so the
  // gather copy would buy nothing — keep the zero-copy pointer-array
  // broadcast for them.
  BatchScratch& s = Scratch();
  s.h.resize(n);
  s.r.assign(n, relations_.Row(r));
  s.t.assign(n, entities_.Row(t));
  for (size_t i = 0; i < n; ++i) s.h[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

void KgeModel::ScoreTailCandidates(EntityId h, RelationId r,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  const size_t n = candidates.size();
  out->resize(n);
  if (n == 0) return;
  if (scorer_->simd_accelerated()) {
    scorer_->ScoreAllCandidates(CorruptionSide::kTail, entities_.Row(h),
                                relations_.Row(r),
                                GatherCandidateRows(entities_, candidates),
                                static_cast<size_t>(entities_.stride()), n,
                                dim_, out->data());
    return;
  }
  BatchScratch& s = Scratch();
  s.h.assign(n, entities_.Row(h));
  s.r.assign(n, relations_.Row(r));
  s.t.resize(n);
  for (size_t i = 0; i < n; ++i) s.t[i] = entities_.Row(candidates[i]);
  scorer_->ScoreBatch(s.h.data(), s.r.data(), s.t.data(), dim_, n,
                      out->data());
}

KgeModel KgeModel::Clone() const {
  // The adopting constructor takes exact table copies, so any layout
  // (including non-default strides) is preserved verbatim.
  return KgeModel(dim_, MakeScoringFunction(scorer_->name()), entities_,
                  relations_);
}

}  // namespace nsc
