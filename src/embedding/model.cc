#include "embedding/model.h"

#include "embedding/initializer.h"
#include "util/logging.h"

namespace nsc {

KgeModel::KgeModel(int32_t num_entities, int32_t num_relations, int dim,
                   std::unique_ptr<ScoringFunction> scorer)
    : dim_(dim), scorer_(std::move(scorer)) {
  CHECK(scorer_ != nullptr);
  CHECK_GT(dim, 0);
  entities_ = EmbeddingTable(num_entities, scorer_->entity_width(dim));
  relations_ = EmbeddingTable(num_relations, scorer_->relation_width(dim));
}

void KgeModel::InitXavier(Rng* rng) {
  XavierUniformInit(&entities_, rng);
  XavierUniformInit(&relations_, rng);
}

double KgeModel::Score(EntityId h, RelationId r, EntityId t) const {
  return scorer_->Score(entities_.Row(h), relations_.Row(r), entities_.Row(t),
                        dim_);
}

void KgeModel::ScoreHeadCandidates(RelationId r, EntityId t,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  out->resize(candidates.size());
  const float* rv = relations_.Row(r);
  const float* tv = entities_.Row(t);
  for (size_t i = 0; i < candidates.size(); ++i) {
    (*out)[i] = scorer_->Score(entities_.Row(candidates[i]), rv, tv, dim_);
  }
}

void KgeModel::ScoreTailCandidates(EntityId h, RelationId r,
                                   const std::vector<EntityId>& candidates,
                                   std::vector<double>* out) const {
  out->resize(candidates.size());
  const float* hv = entities_.Row(h);
  const float* rv = relations_.Row(r);
  for (size_t i = 0; i < candidates.size(); ++i) {
    (*out)[i] = scorer_->Score(hv, rv, entities_.Row(candidates[i]), dim_);
  }
}

KgeModel KgeModel::Clone() const {
  KgeModel copy(entities_.rows(), relations_.rows(), dim_,
                MakeScoringFunction(scorer_->name()));
  copy.entities_.data() = entities_.data();
  copy.relations_.data() = relations_.data();
  return copy;
}

}  // namespace nsc
