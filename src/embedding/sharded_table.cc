#include "embedding/sharded_table.h"

#if defined(NSC_NUMA_ENABLED)
#include <numa.h>
#endif

namespace nsc {

namespace {

// Smallest power of two >= n (n >= 1). Used for the per-shard row block
// so Row(i) resolves with shift/mask instead of a division.
int64_t NextPow2(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

int ShiftFor(int64_t pow2) {
  int shift = 0;
  while ((int64_t{1} << shift) < pow2) ++shift;
  return shift;
}

}  // namespace

ShardPlacementLog& ShardPlacementLog::Instance() {
  static ShardPlacementLog* log = new ShardPlacementLog();
  return *log;
}

ShardedEmbeddingTable::ShardedEmbeddingTable(int32_t rows, int width,
                                             int pad_lanes,
                                             const ShardOptions& options)
    : rows_(rows), width_(width) {
  CHECK_GE(rows, 0);
  CHECK_GT(options.target_shards, 0);
  // Row block: ceil(rows / target_shards) rounded up to a power of two.
  // target_shards > rows degenerates to one row per shard; rows == 0
  // keeps a single empty shard so width/stride stay well-defined.
  const int64_t requested =
      rows == 0 ? 1
                : (int64_t{rows} + options.target_shards - 1) /
                      options.target_shards;
  const int64_t block = NextPow2(requested);
  shard_shift_ = ShiftFor(block);
  shard_mask_ = static_cast<int32_t>(block - 1);
  const int64_t num_shards = rows == 0 ? 1 : (int64_t{rows} + block - 1) / block;
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int64_t s = 0; s < num_shards; ++s) {
    const int64_t first = s * block;
    const int32_t count =
        static_cast<int32_t>(std::min<int64_t>(block, int64_t{rows} - first));
    shards_.emplace_back(count, width, pad_lanes);
  }
  stride_ = shards_.front().stride();
  MaybePlaceShards(options);
}

ShardedEmbeddingTable::ShardedEmbeddingTable(EmbeddingTable slab)
    : rows_(slab.rows()), width_(slab.width()), stride_(slab.stride()) {
  // One shard covering every row: the block must be a power of two >=
  // rows so i >> shift is always 0.
  const int64_t block = NextPow2(std::max<int64_t>(1, rows_));
  shard_shift_ = ShiftFor(block);
  shard_mask_ = static_cast<int32_t>(block - 1);
  shards_.push_back(std::move(slab));
}

ShardedEmbeddingTable ShardedEmbeddingTable::ZerosLike(
    const ShardedEmbeddingTable& shape) {
  ShardedEmbeddingTable zeros;
  zeros.rows_ = shape.rows_;
  zeros.width_ = shape.width_;
  zeros.stride_ = shape.stride_;
  zeros.shard_shift_ = shape.shard_shift_;
  zeros.shard_mask_ = shape.shard_mask_;
  zeros.shards_.reserve(shape.shards_.size());
  for (const EmbeddingTable& s : shape.shards_) {
    // pad_lanes = stride reproduces the stride exactly (ComputeStride
    // rounds width up to a stride multiple, and stride >= width).
    zeros.shards_.emplace_back(s.rows(), s.width(), s.stride());
  }
  return zeros;
}

void ShardedEmbeddingTable::CopyLogicalFrom(const ShardedEmbeddingTable& other) {
  CHECK_EQ(rows_, other.rows_);
  CHECK_EQ(width_, other.width_);
  for (int32_t r = 0; r < rows_; ++r) {
    float* dst = Row(r);
    const float* src = other.Row(r);
    for (int i = 0; i < width_; ++i) dst[i] = src[i];
  }
}

std::vector<float> ShardedEmbeddingTable::LogicalCopy() const {
  std::vector<float> out(logical_size());
  for (int32_t r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    std::copy(src, src + width_, out.begin() + static_cast<std::size_t>(r) * width_);
  }
  return out;
}

bool ShardedEmbeddingTable::NumaAvailable() {
#if defined(NSC_NUMA_ENABLED)
  return numa_available() >= 0;
#else
  return false;
#endif
}

void ShardedEmbeddingTable::MaybePlaceShards(const ShardOptions& options) {
  if (!options.numa_interleave) return;
#if defined(NSC_NUMA_ENABLED)
  if (numa_available() >= 0) {
    const int nodes = std::max(1, numa_num_configured_nodes());
    for (int s = 0; s < num_shards(); ++s) {
      EmbeddingTable& shard_table = shards_[static_cast<std::size_t>(s)];
      const std::size_t bytes = shard_table.size() * sizeof(float);
      const int node = s % nodes;
      if (bytes > 0) {
        numa_tonode_memory(shard_table.data().data(), bytes, node);
      }
      ShardPlacementLog::Instance().Record({s, node, bytes});
    }
    return;
  }
#endif
  // Stub path: placement was requested but this build/machine cannot
  // bind memory — record it so benches can report the degraded mode.
  for (int s = 0; s < num_shards(); ++s) {
    ShardPlacementLog::Instance().Record(
        {s, -1, shards_[static_cast<std::size_t>(s)].size() * sizeof(float)});
  }
}

}  // namespace nsc
