// Scoring-function interface (Table III of the paper) and its registry.
//
// A scoring function f(h, r, t) measures the plausibility of a triple from
// the embedding rows of its head, relation and tail. Throughout this
// library *larger score = more plausible*; translational scorers therefore
// return the negative distance, so that the margin loss of Eq. (1),
// [γ − f(pos) + f(neg)]_+, and NSCaching's "cache the large-score
// negatives" rule read identically for both model families.
#ifndef NSCACHING_EMBEDDING_SCORING_FUNCTION_H_
#define NSCACHING_EMBEDDING_SCORING_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "kg/types.h"
#include "util/topk.h"

namespace nsc {

/// The two families of §II of the paper; the family selects the default
/// loss (margin ranking vs logistic) and entity-norm constraints.
enum class ModelFamily { kTranslationalDistance, kSemanticMatching };

/// Stateless scorer over raw embedding rows. Implementations provide the
/// analytic gradient of the score; correctness is enforced by
/// finite-difference tests (scoring_function_test.cc).
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  /// Lower-case identifier used by the registry ("transe", "complex", ...).
  virtual std::string name() const = 0;

  virtual ModelFamily family() const = 0;

  /// Floats per entity row for embedding dimension `dim` (e.g. 2*dim for
  /// TransD, which stores the entity vector and its projection vector).
  virtual int entity_width(int dim) const { return dim; }

  /// Floats per relation row.
  virtual int relation_width(int dim) const { return dim; }

  /// Plausibility score of (h, r, t); row pointers sized per the widths.
  virtual double Score(const float* h, const float* r, const float* t,
                       int dim) const = 0;

  /// Accumulates coeff * ∂Score/∂{h,r,t} into gh/gr/gt (same widths as the
  /// rows; buffers are += accumulated, callers zero them).
  virtual void Backward(const float* h, const float* r, const float* t,
                        int dim, float coeff, float* gh, float* gr,
                        float* gt) const = 0;

  /// Batched scoring over n triples given per-triple row pointers:
  /// out[i] = Score(h[i], r[i], t[i], dim). Pointer entries may repeat
  /// (e.g. the cache refresh broadcasts one (r, t) against many candidate
  /// heads). The default is a correct generic loop; hot scorers override
  /// it to dispatch into the SIMD kernel layer (util/simd.h) — one
  /// runtime-selected AVX2/NEON/scalar kernel call per batch.
  virtual void ScoreBatch(const float* const* h, const float* const* r,
                          const float* const* t, int dim, size_t n,
                          double* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = Score(h[i], r[i], t[i], dim);
  }

  /// Batched gradient accumulation: for each triple i, accumulates
  /// coeff[i] * ∂Score/∂{h,r,t} into gh[i]/gr[i]/gt[i]. Gradient pointers
  /// may alias across triples (callers fold a shared entity's gradient
  /// into one slot — see the aliasing contract test in
  /// scorer_batch_test.cc), so implementations must process triples in
  /// order. This is the trainer's fused hot path
  /// (TrainConfig::fused_scoring, the default): each worker sub-batch
  /// drives one BackwardBatch call with per-pair loss gradients as the
  /// coefficients; the legacy pair path (fused_scoring = false) calls the
  /// single-triple Backward to stay bit-compatible with the pre-batch
  /// engine.
  virtual void BackwardBatch(const float* const* h, const float* const* r,
                             const float* const* t, int dim, size_t n,
                             const float* coeff, float* const* gh,
                             float* const* gr, float* const* gt) const {
    for (size_t i = 0; i < n; ++i) {
      Backward(h[i], r[i], t[i], dim, coeff[i], gh[i], gr[i], gt[i]);
    }
  }

  /// 1-vs-all sweep: scores one fixed pair against `count` candidate
  /// entity rows laid out contiguously at `base + i * stride` floats (an
  /// EmbeddingTable slab — stride may exceed the entity width under the
  /// padded layout, and only the logical row prefix is read):
  ///   side == kHead: out[i] = Score(base + i*stride, fixed_relation,
  ///                                 fixed_entity)   // fixed (r, t)
  ///   side == kTail: out[i] = Score(fixed_entity, fixed_relation,
  ///                                 base + i*stride) // fixed (h, r)
  /// This is the primitive behind link-prediction ranking (score a test
  /// triple against every entity) and NSCaching's cache-refresh broadcast.
  /// The default tiles through ScoreBatch — correct for every scorer, one
  /// virtual dispatch per tile instead of per candidate; the SIMD
  /// scorers override it with kernels that stream the candidate rows
  /// directly, with no per-candidate pointer arrays at all.
  virtual void ScoreAllCandidates(CorruptionSide side,
                                  const float* fixed_entity,
                                  const float* fixed_relation,
                                  const float* base, std::size_t stride,
                                  std::size_t count, int dim,
                                  double* out) const;

  /// Fused sweep→top-K retrieval: fills `collector` (pre-Reset by the
  /// caller to the wanted K) with the best K of the same `count`
  /// candidate scores a ScoreAllCandidates sweep would produce, without
  /// ever materializing the |count|-double score buffer. Result indices
  /// are slab row positions in [0, count). The retrieved set — order
  /// included — is bit-identical to sorting that sweep's full buffer by
  /// (score desc, index asc): tiles reuse the sweep's exact per-candidate
  /// arithmetic and the collector's strict-threshold heap resolves ties
  /// index-ordered (util/topk.h). The default tiles through
  /// ScoreAllCandidates on kTileSize-candidate tiles and merges each into
  /// the bounded heap; the SIMD scorers override it with fused kernels
  /// that keep the running K-th-best score in a register and skip heap
  /// work on tiles whose SIMD max fails the threshold test.
  virtual void TopKCandidates(CorruptionSide side, const float* fixed_entity,
                              const float* fixed_relation, const float* base,
                              std::size_t stride, std::size_t count, int dim,
                              TopKCollector* collector) const;

  /// Batched fused retrieval: `nq` independent TopKCandidates queries
  /// against the same candidate slab, answered in as few passes over the
  /// slab as the kernel can manage. fixed_entity/fixed_relation/
  /// collectors are parallel arrays, one slot per query; each collector
  /// is pre-Reset by the caller. Contract: query q's result is
  /// bit-identical to a TopKCandidates call with the same fixed rows —
  /// the batching only reorders WHICH (tile, query) pair is scored when,
  /// never any per-query arithmetic. The default loops single-query
  /// calls; the SIMD scorers override it with tile-outer/query-inner
  /// kernels that score each tile for every query while it is
  /// L1-resident, streaming the slab from memory once instead of nq
  /// times.
  virtual void TopKCandidatesBatch(CorruptionSide side,
                                   const float* const* fixed_entity,
                                   const float* const* fixed_relation,
                                   std::size_t nq, const float* base,
                                   std::size_t stride, std::size_t count,
                                   int dim,
                                   TopKCollector* const* collectors) const;

  /// True when this scorer's batched kernels route through the SIMD
  /// dispatch layer (util/simd.h). Scorers reporting false always run
  /// the generic scalar loops, whatever simd::ActivePath() says — used
  /// by the benches to attribute numbers to a kernel variant.
  virtual bool simd_accelerated() const { return false; }

  /// Hard constraint applied to an entity row after each update (e.g.
  /// TransE keeps entity norms ≤ 1). Default: none.
  virtual void ProjectEntityRow(float* row, int dim) const {
    (void)row;
    (void)dim;
  }

  /// Hard constraint applied to a relation row after each update.
  virtual void ProjectRelationRow(float* row, int dim) const {
    (void)row;
    (void)dim;
  }
};

/// Creates a scorer by name; nullptr for unknown names. Known names:
/// "transe", "transh", "transd", "distmult", "complex", "rescal".
std::unique_ptr<ScoringFunction> MakeScoringFunction(const std::string& name);

/// All registered scorer names, in Table III order then extensions.
std::vector<std::string> ListScoringFunctions();

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORING_FUNCTION_H_
