// Dense row-major embedding storage. One table per id space (entities,
// relations); the per-row width is chosen by the scoring function (e.g.
// TransH packs [r | w_r] into a 2d-wide relation row).
#ifndef NSCACHING_EMBEDDING_EMBEDDING_TABLE_H_
#define NSCACHING_EMBEDDING_EMBEDDING_TABLE_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace nsc {

/// Contiguous rows × width float matrix with row views.
class EmbeddingTable {
 public:
  EmbeddingTable() = default;

  /// Allocates a zero-initialised table.
  EmbeddingTable(int32_t rows, int width)
      : rows_(rows), width_(width), data_(static_cast<size_t>(rows) * width) {
    CHECK_GE(rows, 0);
    CHECK_GT(width, 0);
  }

  int32_t rows() const { return rows_; }
  int width() const { return width_; }
  size_t size() const { return data_.size(); }

  float* Row(int32_t i) {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    return data_.data() + static_cast<size_t>(i) * width_;
  }
  const float* Row(int32_t i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    return data_.data() + static_cast<size_t>(i) * width_;
  }

  /// Raw storage (used by optimizers for moment buffers of equal shape).
  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Scales row i so its L2 norm over the first `prefix` floats is at
  /// most `max_norm` (no-op when already inside the ball).
  void ProjectRowToL2Ball(int32_t i, int prefix, float max_norm);

  /// L2 norm of the first `prefix` floats of row i.
  float RowNorm(int32_t i, int prefix) const;

 private:
  int32_t rows_ = 0;
  int width_ = 0;
  std::vector<float> data_;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_EMBEDDING_TABLE_H_
