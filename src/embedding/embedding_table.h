// Dense row-major embedding storage. One table per id space (entities,
// relations); the per-row width is chosen by the scoring function (e.g.
// TransH packs [r | w_r] into a 2d-wide relation row).
//
// Memory layout: rows are stored at a fixed `stride() >= width()` float
// pitch in one 64-byte-aligned allocation. With the default pad_lanes = 1
// the stride equals the logical width (the historical compact layout);
// with pad_lanes = simd::kPadLanes the stride is the width rounded up to
// the SIMD lane multiple, so every row starts 64-byte aligned and SIMD
// kernels never straddle a row boundary. Padding floats are zero on
// allocation and are never read, written, checkpointed, or counted as
// parameters — all consumers must iterate Row(i)[0..width) and step by
// stride (or use Row()), never assume rows are adjacent in data().
#ifndef NSCACHING_EMBEDDING_EMBEDDING_TABLE_H_
#define NSCACHING_EMBEDDING_EMBEDDING_TABLE_H_

#include <cstdint>
#include <new>
#include <vector>

#include "util/logging.h"
#include "util/simd.h"

namespace nsc {

/// Minimal C++17 aligned allocator so embedding storage (and anything
/// shape-compatible with it, like optimizer moment buffers) starts on a
/// cache-line/SIMD-friendly boundary.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::size_t kAlignment = simd::kRowAlignment;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kAlignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 64-byte-aligned float storage shared by tables and moment buffers.
using AlignedFloatVector = std::vector<float, AlignedAllocator<float>>;

/// Contiguous rows × stride float matrix with row views over the logical
/// width.
class EmbeddingTable {
 public:
  EmbeddingTable() = default;

  /// Allocates a zero-initialised table. `pad_lanes` rounds the row
  /// stride up to that many floats (1 = compact legacy layout;
  /// simd::kPadLanes = SIMD-padded layout).
  EmbeddingTable(int32_t rows, int width, int pad_lanes = 1)
      : rows_(rows),
        width_(width),
        stride_(ComputeStride(width, pad_lanes)),
        data_(static_cast<size_t>(rows) * stride_) {
    CHECK_GE(rows, 0);
  }

  int32_t rows() const { return rows_; }
  /// Floats per row that carry model state (the scorer-facing width).
  int width() const { return width_; }
  /// Floats per row actually allocated; stride() - width() are padding.
  int stride() const { return stride_; }
  bool padded() const { return stride_ != width_; }

  /// Raw storage size in floats, rows * stride (includes padding). Use
  /// logical_size() for the trainable-parameter count.
  size_t size() const { return data_.size(); }
  size_t logical_size() const {
    return static_cast<size_t>(rows_) * width_;
  }

  float* Row(int32_t i) {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    return data_.data() + static_cast<size_t>(i) * stride_;
  }
  const float* Row(int32_t i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    return data_.data() + static_cast<size_t>(i) * stride_;
  }

  /// Raw storage (used by optimizers for moment buffers of equal shape
  /// and for whole-table copies between layout-identical tables). Rows
  /// are NOT adjacent when padded() — go through Row() for row access.
  AlignedFloatVector& data() { return data_; }
  const AlignedFloatVector& data() const { return data_; }

  /// Copies another table's logical contents row-by-row. Layout-safe:
  /// the tables may have different strides, but must agree on rows and
  /// logical width (CHECKed). This table's padding is left untouched.
  void CopyLogicalFrom(const EmbeddingTable& other);

  /// Scales row i so its L2 norm over the first `prefix` floats is at
  /// most `max_norm` (no-op when already inside the ball).
  void ProjectRowToL2Ball(int32_t i, int prefix, float max_norm);

  /// L2 norm of the first `prefix` floats of row i.
  float RowNorm(int32_t i, int prefix) const;

 private:
  // Validates shape arguments before the stride/allocation-size
  // arithmetic in the member-init list can misuse them.
  static int ComputeStride(int width, int pad_lanes) {
    CHECK_GT(width, 0);
    CHECK_GE(pad_lanes, 1);
    return (width + pad_lanes - 1) / pad_lanes * pad_lanes;
  }

  int32_t rows_ = 0;
  int width_ = 0;
  int stride_ = 0;
  AlignedFloatVector data_;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_EMBEDDING_TABLE_H_
