#include "embedding/embedding_table.h"

#include <cmath>

#include "util/math.h"

namespace nsc {

void EmbeddingTable::ProjectRowToL2Ball(int32_t i, int prefix, float max_norm) {
  CHECK_LE(prefix, width_);
  float* row = Row(i);
  const float norm = L2Norm(row, prefix);
  if (norm > max_norm && norm > 0.0f) {
    Scale(max_norm / norm, row, prefix);
  }
}

float EmbeddingTable::RowNorm(int32_t i, int prefix) const {
  CHECK_LE(prefix, width_);
  return L2Norm(Row(i), prefix);
}

}  // namespace nsc
