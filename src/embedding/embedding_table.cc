#include "embedding/embedding_table.h"

#include <cmath>

#include "util/math.h"

namespace nsc {

void EmbeddingTable::CopyLogicalFrom(const EmbeddingTable& other) {
  CHECK_EQ(rows_, other.rows());
  CHECK_EQ(width_, other.width());
  for (int32_t r = 0; r < rows_; ++r) {
    const float* src = other.Row(r);
    float* dst = Row(r);
    for (int i = 0; i < width_; ++i) dst[i] = src[i];
  }
}

void EmbeddingTable::ProjectRowToL2Ball(int32_t i, int prefix, float max_norm) {
  CHECK_LE(prefix, width_);
  float* row = Row(i);
  const float norm = L2Norm(row, prefix);
  if (norm > max_norm && norm > 0.0f) {
    Scale(max_norm / norm, row, prefix);
  }
}

float EmbeddingTable::RowNorm(int32_t i, int prefix) const {
  CHECK_LE(prefix, width_);
  return L2Norm(Row(i), prefix);
}

}  // namespace nsc
