// Pairwise training losses of the paper's unified framework (§II-A):
//   Eq. (1) margin ranking, for translational distance models;
//   Eq. (2) logistic, for semantic matching models.
// Both consume a (positive score, negative score) pair and produce the
// loss value plus its derivatives w.r.t. the two scores.
#ifndef NSCACHING_EMBEDDING_LOSS_H_
#define NSCACHING_EMBEDDING_LOSS_H_

#include <memory>
#include <string>

#include "embedding/scoring_function.h"

namespace nsc {

/// Loss value and its gradient w.r.t. the two scores.
struct LossGrad {
  double loss = 0.0;
  double d_pos = 0.0;  // ∂loss/∂f(pos)
  double d_neg = 0.0;  // ∂loss/∂f(neg)
};

/// Pairwise loss interface.
class PairwiseLoss {
 public:
  virtual ~PairwiseLoss() = default;
  virtual std::string name() const = 0;
  virtual LossGrad Compute(double pos_score, double neg_score) const = 0;
};

/// Eq. (1): [γ − f(pos) + f(neg)]₊. Gradient is zero once the pair is
/// separated by the margin — the vanishing-gradient regime NSCaching is
/// designed to escape.
class MarginRankingLoss : public PairwiseLoss {
 public:
  explicit MarginRankingLoss(double margin) : margin_(margin) {}
  std::string name() const override { return "margin"; }
  LossGrad Compute(double pos_score, double neg_score) const override;
  double margin() const { return margin_; }

 private:
  double margin_;
};

/// Eq. (2): ℓ(+1, f(pos)) + ℓ(−1, f(neg)) with ℓ(α, β) = log(1+exp(−αβ)).
class LogisticLoss : public PairwiseLoss {
 public:
  std::string name() const override { return "logistic"; }
  LossGrad Compute(double pos_score, double neg_score) const override;
};

/// The paper's default pairing: margin loss for translational scorers,
/// logistic loss for semantic matching scorers.
std::unique_ptr<PairwiseLoss> MakeDefaultLoss(const ScoringFunction& scorer,
                                              double margin);

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_LOSS_H_
