// Pairwise training losses of the paper's unified framework (§II-A):
//   Eq. (1) margin ranking, for translational distance models;
//   Eq. (2) logistic, for semantic matching models.
//
// The interface is batch-first: the primary contract is ComputeBatch,
// which consumes the score vectors of a whole mini-batch's positives and
// negatives (as produced by ScoringFunction::ScoreBatch) and fills
// per-pair losses and ∂loss/∂score vectors — the shape the fused trainer
// path feeds straight into BackwardBatch. A scalar Compute(pos, neg)
// adapter wraps a one-pair batch so single-pair callers (and the
// bit-for-bit legacy training loop) keep working unchanged; both margin
// and logistic batches apply exactly the per-pair scalar arithmetic, so
// batch and scalar results are bit-identical.
#ifndef NSCACHING_EMBEDDING_LOSS_H_
#define NSCACHING_EMBEDDING_LOSS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "embedding/scoring_function.h"
#include "util/span.h"

namespace nsc {

/// Losses at or below this threshold count as zero for the non-zero-loss
/// ratio (NZL, Figures 7/8). Shared by Trainer::Accumulate and the
/// analysis module's DynamicsTracker so the two NZL measurements can
/// never drift apart.
inline constexpr double kNonzeroLossThreshold = 1e-12;

/// Loss value and its gradient w.r.t. the two scores of one pair.
struct LossGrad {
  double loss = 0.0;
  double d_pos = 0.0;  // ∂loss/∂f(pos)
  double d_neg = 0.0;  // ∂loss/∂f(neg)
};

/// Reusable output buffer of Loss::ComputeBatch: per-pair losses and
/// score gradients, index-aligned with the input score spans. Owns its
/// storage so callers can reuse one instance across batches (capacity is
/// retained; no steady-state allocation).
struct LossBatchGrad {
  std::vector<double> loss;
  std::vector<double> d_pos;  // ∂loss[i]/∂f(pos[i])
  std::vector<double> d_neg;  // ∂loss[i]/∂f(neg[i])

  void Resize(std::size_t n) {
    loss.resize(n);
    d_pos.resize(n);
    d_neg.resize(n);
  }
  std::size_t size() const { return loss.size(); }
};

/// Pairwise loss over (positive, negative) score vectors.
class Loss {
 public:
  virtual ~Loss() = default;
  virtual std::string name() const = 0;

  /// Primary contract: out->loss/d_pos/d_neg[i] are the loss and score
  /// gradients of the pair (pos_scores[i], neg_scores[i]). The spans must
  /// be the same length; `out` is resized to it. Implementations apply
  /// the identical scalar arithmetic per pair, so ComputeBatch over a
  /// one-pair span is bit-identical to Compute.
  virtual void ComputeBatch(Span<const double> pos_scores,
                            Span<const double> neg_scores,
                            LossBatchGrad* out) const = 0;

  /// Scalar adapter over a one-pair batch, for single-pair callers (the
  /// legacy per-pair training loop, probes, tests).
  LossGrad Compute(double pos_score, double neg_score) const;
};

/// Legacy name of the interface, kept for existing call sites.
using PairwiseLoss = Loss;

/// Eq. (1): [γ − f(pos) + f(neg)]₊. Gradient is zero once the pair is
/// separated by the margin — the vanishing-gradient regime NSCaching is
/// designed to escape.
class MarginRankingLoss : public Loss {
 public:
  explicit MarginRankingLoss(double margin) : margin_(margin) {}
  std::string name() const override { return "margin"; }
  void ComputeBatch(Span<const double> pos_scores,
                    Span<const double> neg_scores,
                    LossBatchGrad* out) const override;
  double margin() const { return margin_; }

 private:
  double margin_;
};

/// Eq. (2): ℓ(+1, f(pos)) + ℓ(−1, f(neg)) with ℓ(α, β) = log(1+exp(−αβ)).
class LogisticLoss : public Loss {
 public:
  std::string name() const override { return "logistic"; }
  void ComputeBatch(Span<const double> pos_scores,
                    Span<const double> neg_scores,
                    LossBatchGrad* out) const override;
};

/// The paper's default pairing: margin loss for translational scorers,
/// logistic loss for semantic matching scorers.
std::unique_ptr<Loss> MakeDefaultLoss(const ScoringFunction& scorer,
                                      double margin);

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_LOSS_H_
