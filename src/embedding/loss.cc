#include "embedding/loss.h"

#include "util/logging.h"
#include "util/math.h"

namespace nsc {

LossGrad Loss::Compute(double pos_score, double neg_score) const {
  // One-pair batch over reusable thread-local storage, so the serial
  // per-pair training loop stays allocation-free after warm-up.
  static thread_local LossBatchGrad scratch;
  ComputeBatch(Span<const double>(&pos_score, 1),
               Span<const double>(&neg_score, 1), &scratch);
  return {scratch.loss[0], scratch.d_pos[0], scratch.d_neg[0]};
}

void MarginRankingLoss::ComputeBatch(Span<const double> pos_scores,
                                     Span<const double> neg_scores,
                                     LossBatchGrad* out) const {
  const std::size_t n = pos_scores.size();
  CHECK_EQ(n, neg_scores.size());
  out->Resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double raw = margin_ - pos_scores[i] + neg_scores[i];
    if (raw > 0.0) {
      out->loss[i] = raw;
      out->d_pos[i] = -1.0;
      out->d_neg[i] = 1.0;
    } else {
      out->loss[i] = 0.0;
      out->d_pos[i] = 0.0;
      out->d_neg[i] = 0.0;
    }
  }
}

void LogisticLoss::ComputeBatch(Span<const double> pos_scores,
                                Span<const double> neg_scores,
                                LossBatchGrad* out) const {
  const std::size_t n = pos_scores.size();
  CHECK_EQ(n, neg_scores.size());
  out->Resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // ℓ(+1, s) = log(1+exp(−s)); dℓ/ds = −σ(−s).
    // ℓ(−1, s) = log(1+exp(+s)); dℓ/ds = +σ(+s).
    out->loss[i] = Log1pExp(-pos_scores[i]) + Log1pExp(neg_scores[i]);
    out->d_pos[i] = -Sigmoid(-pos_scores[i]);
    out->d_neg[i] = Sigmoid(neg_scores[i]);
  }
}

std::unique_ptr<Loss> MakeDefaultLoss(const ScoringFunction& scorer,
                                      double margin) {
  if (scorer.family() == ModelFamily::kTranslationalDistance) {
    return std::make_unique<MarginRankingLoss>(margin);
  }
  return std::make_unique<LogisticLoss>();
}

}  // namespace nsc
