#include "embedding/loss.h"

#include "util/math.h"

namespace nsc {

LossGrad MarginRankingLoss::Compute(double pos_score, double neg_score) const {
  LossGrad g;
  const double raw = margin_ - pos_score + neg_score;
  if (raw > 0.0) {
    g.loss = raw;
    g.d_pos = -1.0;
    g.d_neg = 1.0;
  }
  return g;
}

LossGrad LogisticLoss::Compute(double pos_score, double neg_score) const {
  LossGrad g;
  // ℓ(+1, s) = log(1+exp(−s)); dℓ/ds = −σ(−s).
  // ℓ(−1, s) = log(1+exp(+s)); dℓ/ds = +σ(+s).
  g.loss = Log1pExp(-pos_score) + Log1pExp(neg_score);
  g.d_pos = -Sigmoid(-pos_score);
  g.d_neg = Sigmoid(neg_score);
  return g;
}

std::unique_ptr<PairwiseLoss> MakeDefaultLoss(const ScoringFunction& scorer,
                                              double margin) {
  if (scorer.family() == ModelFamily::kTranslationalDistance) {
    return std::make_unique<MarginRankingLoss>(margin);
  }
  return std::make_unique<LogisticLoss>();
}

}  // namespace nsc
