// Sparse first-order optimizers. KG embedding gradients touch only the
// handful of rows involved in each (positive, negative) pair, so updates
// are applied per-row; Adam/Adagrad keep dense moment buffers but only
// read/write the touched rows (standard "sparse Adam" semantics: bias
// correction uses the global step count). The paper trains with Adam [22].
#ifndef NSCACHING_EMBEDDING_OPTIMIZER_H_
#define NSCACHING_EMBEDDING_OPTIMIZER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "embedding/sharded_table.h"

namespace nsc {

/// Per-table optimizer state; Apply performs one descent step on one row.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Increments the global step (call once per mini-batch).
  virtual void BeginStep() {}

  /// Applies a descent update to `table` row `row` given ∂loss/∂row.
  virtual void Apply(ShardedEmbeddingTable* table, int32_t row,
                     const float* grad) = 0;

  /// Batched sparse apply: one update per (rows[i], grads + i*grad_stride)
  /// slot, in slot order, within the current step (callers BeginStep()
  /// once per mini-batch first). This is the shape the fused trainer path
  /// drives straight from a GradAccumulator's flat slot storage. The
  /// default loops Apply; stateful optimizers may override to amortize
  /// per-step work (e.g. Adam's bias-correction terms).
  virtual void ApplyBatch(ShardedEmbeddingTable* table, const int32_t* rows,
                          size_t n, const float* grads, size_t grad_stride) {
    for (size_t s = 0; s < n; ++s) {
      Apply(table, rows[s], grads + s * grad_stride);
    }
  }

  virtual double learning_rate() const = 0;
};

/// Plain SGD: p ← p − lr · g.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr) : lr_(lr) {}
  std::string name() const override { return "sgd"; }
  void Apply(ShardedEmbeddingTable* table, int32_t row,
             const float* grad) override;
  double learning_rate() const override { return lr_; }

 private:
  double lr_;
};

/// Adagrad: per-coordinate accumulated squared gradients.
class AdagradOptimizer : public Optimizer {
 public:
  AdagradOptimizer(double lr, const ShardedEmbeddingTable& shape,
                   double eps = 1e-8);
  std::string name() const override { return "adagrad"; }
  void Apply(ShardedEmbeddingTable* table, int32_t row,
             const float* grad) override;
  double learning_rate() const override { return lr_; }

 private:
  double lr_;
  double eps_;
  // Moment storage mirrors the table geometry exactly — same rows,
  // stride AND shard layout (ZerosLike), so moment rows stay aligned and
  // live in per-shard allocations that follow the table's shard
  // ownership/placement; `grad` stays logical-width.
  ShardedEmbeddingTable accum_;
  int width_;
  int stride_;
};

/// Adam with default β₁=0.9, β₂=0.999 (the paper adopts Adam's defaults
/// except the learning rate).
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(double lr, const ShardedEmbeddingTable& shape,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  std::string name() const override { return "adam"; }
  /// Atomic so Hogwild workers can step concurrently; the count is exact,
  /// and in single-thread mode this matches the plain increment exactly.
  void BeginStep() override {
    step_.fetch_add(1, std::memory_order_relaxed);
  }
  void Apply(ShardedEmbeddingTable* table, int32_t row,
             const float* grad) override;
  double learning_rate() const override { return lr_; }
  int64_t step() const { return step_.load(std::memory_order_relaxed); }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::atomic<int64_t> step_{0};
  ShardedEmbeddingTable m_;  // First moment, same geometry as the table.
  ShardedEmbeddingTable v_;  // Second moment.
  int width_;
  int stride_;
};

/// Factory: "sgd" | "adagrad" | "adam"; `shape` supplies moment
/// geometry (rows, stride and shard layout alike).
std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name, double lr,
                                         const ShardedEmbeddingTable& shape);

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_OPTIMIZER_H_
