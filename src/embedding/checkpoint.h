// Model checkpointing: saves/loads a KgeModel's scorer identity, shape and
// both embedding tables in a small self-describing binary format. Used to
// persist pretrained models (the paper's "+pretrain" regimes), to ship
// trained embeddings to downstream tasks, and — through
// embedding/checkpoint_set.h — as the crash-recoverable unit the serving
// stack's background writer produces.
#ifndef NSCACHING_EMBEDDING_CHECKPOINT_H_
#define NSCACHING_EMBEDDING_CHECKPOINT_H_

#include <string>

#include "embedding/model.h"
#include "util/status.h"

namespace nsc {

/// Writes `model` to `path` in format v2. Overwrites. Layout
/// (little-endian):
///   8-byte magic "NSCKPT02", u32 scorer-name length, scorer name bytes,
///   i32 num_entities, i32 num_relations, i32 dim,
///   entity table floats, relation table floats,
///   u32 CRC-32C over every preceding byte (magic included).
/// The trailer is what makes torn writes DETECTABLE rather than merely
/// improbable: a reader validates length + CRC before trusting a single
/// parsed field, so a file cut short by a crash (or flipped by a bad
/// disk) is rejected instead of loaded as garbage.
///
/// Fault points (util/fault.h): "ckpt.open" fails the open; "ckpt.write"
/// is evaluated once per write call (header fields and each table row) —
/// kError fails the save, kTruncate tears the file mid-write and reports
/// the crash-shaped IOError without cleaning up, exactly what a killed
/// writer leaves behind.
Status SaveModel(const KgeModel& model, const std::string& path);

/// Reads a model written by SaveModel — either format v2 ("NSCKPT02",
/// CRC-validated) or the legacy v1 ("NSCKPT01", no trailer; files from
/// older builds load unchanged). Fails with IOError on unreadable files
/// and InvalidArgument on malformed, truncated, or CRC-mismatching
/// content. The format is layout-independent, so `entity_sharding`
/// restores the same logical model into any shard count (default: one
/// shard).
StatusOr<KgeModel> LoadModel(const std::string& path,
                             const ShardOptions& entity_sharding =
                                 ShardOptions());

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_CHECKPOINT_H_
