// Model checkpointing: saves/loads a KgeModel's scorer identity, shape and
// both embedding tables in a small self-describing binary format. Used to
// persist pretrained models (the paper's "+pretrain" regimes) and to ship
// trained embeddings to downstream tasks.
#ifndef NSCACHING_EMBEDDING_CHECKPOINT_H_
#define NSCACHING_EMBEDDING_CHECKPOINT_H_

#include <string>

#include "embedding/model.h"
#include "util/status.h"

namespace nsc {

/// Writes `model` to `path`. Overwrites. Format (little-endian):
///   8-byte magic "NSCKPT01", u32 scorer-name length, scorer name bytes,
///   i32 num_entities, i32 num_relations, i32 dim,
///   entity table floats, relation table floats.
Status SaveModel(const KgeModel& model, const std::string& path);

/// Reads a model written by SaveModel. Fails with IOError on unreadable
/// files and InvalidArgument on malformed/unknown content. The format is
/// layout-independent, so `entity_sharding` restores the same logical
/// model into any shard count (default: one shard).
StatusOr<KgeModel> LoadModel(const std::string& path,
                             const ShardOptions& entity_sharding =
                                 ShardOptions());

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_CHECKPOINT_H_
