#include "embedding/checkpoint_set.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace nsc {

namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".nsc";
constexpr char kManifestName[] = "MANIFEST";

/// Parses "ckpt-<step>.nsc" into the step; false for any other name.
bool ParseCheckpointName(const std::string& name, int64_t* step) {
  const std::size_t prefix_len = std::strlen(kPrefix);
  const std::size_t suffix_len = std::strlen(kSuffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(digits.c_str(), &end, 10);
  if (errno != 0 || end != digits.c_str() + digits.size() || value < 0) {
    return false;
  }
  *step = value;
  return true;
}

}  // namespace

CheckpointSet::CheckpointSet(std::string dir, CheckpointSetOptions options)
    : dir_(std::move(dir)), options_(options) {
  CHECK_GE(options_.keep, 1);
  CHECK(!dir_.empty());
}

Status CheckpointSet::Init() const {
  if (::mkdir(dir_.c_str(), 0777) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError("cannot create checkpoint directory " + dir_ +
                         ": " + std::strerror(errno));
}

std::string CheckpointSet::CheckpointPath(int64_t step) const {
  return dir_ + "/" + kPrefix + std::to_string(step) + kSuffix;
}

StatusOr<std::vector<int64_t>> CheckpointSet::ListSteps() const {
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) {
    return Status::IOError("cannot list checkpoint directory " + dir_ +
                           ": " + std::strerror(errno));
  }
  std::vector<int64_t> steps;
  for (const dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    int64_t step = 0;
    if (ParseCheckpointName(entry->d_name, &step)) steps.push_back(step);
  }
  ::closedir(dir);
  std::sort(steps.begin(), steps.end());
  return steps;
}

Status CheckpointSet::WriteManifest(const std::vector<int64_t>& steps) const {
  // Advisory only (recovery rescans and validates), but still written
  // crash-safely: a torn manifest would confuse humans and tooling even
  // if it cannot confuse LoadLatestValid.
  const std::string path = dir_ + "/" + kManifestName;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out << "# NSCaching checkpoint set; newest last; recovery validates "
           "files, not this list\n";
    for (const int64_t step : steps) {
      out << step << ' ' << kPrefix << step << kSuffix << '\n';
    }
    out.flush();
    if (!out) return Status::IOError("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status CheckpointSet::Write(const KgeModel& model, int64_t step) const {
  NSC_RETURN_IF_ERROR(Init());
  // SaveModel carries the fault points ("ckpt.open"/"ckpt.write"); a torn
  // file it leaves behind is deliberately kept (see the header comment).
  NSC_RETURN_IF_ERROR(SaveModel(model, CheckpointPath(step)));

  StatusOr<std::vector<int64_t>> listed = ListSteps();
  NSC_RETURN_IF_ERROR(listed.status());
  std::vector<int64_t>& steps = listed.value();

  // Prune oldest-first down to `keep`, but never the file just written —
  // even when an unusual step ordering (restart from an older recovered
  // step) makes it not the newest on disk.
  while (steps.size() > static_cast<std::size_t>(options_.keep)) {
    const int64_t victim = steps.front();
    if (victim == step) break;
    std::remove(CheckpointPath(victim).c_str());
    steps.erase(steps.begin());
  }
  return WriteManifest(steps);
}

StatusOr<LoadedCheckpoint> CheckpointSet::LoadLatestValid(
    const ShardOptions& entity_sharding) const {
  StatusOr<std::vector<int64_t>> listed = ListSteps();
  NSC_RETURN_IF_ERROR(listed.status());
  std::vector<int64_t> steps = std::move(listed.value());

  std::vector<std::string> skipped;
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    const std::string path = CheckpointPath(*it);
    StatusOr<KgeModel> loaded = LoadModel(path, entity_sharding);
    if (loaded.ok()) {
      LoadedCheckpoint result{std::move(loaded).value(), *it,
                              std::move(skipped)};
      return result;
    }
    skipped.push_back(path + ": " + loaded.status().ToString());
  }
  std::string detail;
  for (const std::string& s : skipped) detail += "; " + s;
  return Status::NotFound("no valid checkpoint in " + dir_ + detail);
}

}  // namespace nsc
