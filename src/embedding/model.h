// KgeModel: the trainable state of one KG embedding model — an entity
// table, a relation table and a scoring function that interprets their
// rows. This is the "discriminator" that every negative sampler in the
// library scores candidates against.
#ifndef NSCACHING_EMBEDDING_MODEL_H_
#define NSCACHING_EMBEDDING_MODEL_H_

#include <memory>
#include <utility>
#include <vector>

#include "embedding/embedding_table.h"
#include "embedding/scoring_function.h"
#include "embedding/sharded_table.h"
#include "kg/types.h"
#include "util/rng.h"

namespace nsc {

/// Row layout of a model's embedding tables. kPadded (the default) rounds
/// each row stride up to simd::kPadLanes floats so rows are 64-byte
/// aligned for the SIMD scorer kernels; kCompact is the legacy
/// stride == width layout. Logical contents (and checkpoints, RNG
/// streams, training trajectories) are identical under both.
enum class TableLayout { kPadded, kCompact };

/// Entity/relation embedding tables bound to a scorer.
class KgeModel {
 public:
  /// Allocates tables sized by the scorer's widths; rows start at zero —
  /// call InitXavier (or copy from a pretrained model) before training.
  /// `entity_sharding` partitions the entity table into power-of-two row
  /// blocks (ShardedEmbeddingTable); the relation table stays one shard
  /// (relation counts are tiny). Sharding is pure layout: training,
  /// evaluation and retrieval are bit-identical across shard counts.
  KgeModel(int32_t num_entities, int32_t num_relations, int dim,
           std::unique_ptr<ScoringFunction> scorer,
           TableLayout layout = TableLayout::kPadded,
           const ShardOptions& entity_sharding = ShardOptions());

  /// Adopts externally built tables (checkpoint restore, future mmap
  /// loaders) as single-shard sharded tables. CHECK-fails unless each
  /// table's logical width matches the width the scorer declares for
  /// `dim` — a scorer must never interpret rows of the wrong shape.
  KgeModel(int dim, std::unique_ptr<ScoringFunction> scorer,
           EmbeddingTable entities, EmbeddingTable relations);

  /// Adopts already-sharded tables (Clone, shard-aware loaders). Same
  /// width CHECKs as the slab-adopting constructor.
  KgeModel(int dim, std::unique_ptr<ScoringFunction> scorer,
           ShardedEmbeddingTable entities, ShardedEmbeddingTable relations);

  /// Xavier-uniform initialisation of both tables (paper's "from scratch").
  void InitXavier(Rng* rng);

  /// Plausibility of (h, r, t) under the current parameters.
  double Score(const Triple& x) const {
    return Score(x.h, x.r, x.t);
  }
  double Score(EntityId h, RelationId r, EntityId t) const;

  /// Scores n triples through the scorer's batched kernel (one virtual
  /// dispatch per batch): out[i] = Score(triples[i]). The fused trainer
  /// path scores its mini-batch sides the same way, but builds the row
  /// pointers itself (it reuses them for BackwardBatch).
  void ScoreBatch(const Triple* triples, size_t n, double* out) const;
  void ScoreBatch(const std::vector<Triple>& triples,
                  std::vector<double>* out) const;

  /// Scores every entity as a candidate head for fixed (r, t) in one
  /// 1-vs-all kernel sweep per entity shard (a shard IS a slab):
  /// out[e] = f(e, r, t) for e in [0, num_entities). `out` must hold
  /// num_entities() doubles. This is the link-prediction ranking hot
  /// path: no per-candidate pointer arrays, one virtual dispatch per
  /// shard sweep (ScoringFunction::ScoreAllCandidates); per-candidate
  /// scores are slab-independent, so results are shard-count-invariant.
  void ScoreAllHeads(RelationId r, EntityId t, double* out) const;

  /// Scores every entity as a candidate tail for fixed (h, r).
  void ScoreAllTails(EntityId h, RelationId r, double* out) const;

  /// Sweeps the entity sub-range [first, first + count) as candidate
  /// heads for fixed (r, t): out[i] = f(first + i, r, t). Same kernels
  /// as ScoreAllHeads restricted to a slab slice — per-candidate scores
  /// are range-independent, so out[i] is bit-identical to the full
  /// sweep's entry first + i. This is the tile primitive of the
  /// evaluator's Hits@K early-exit mode.
  void ScoreHeadRange(RelationId r, EntityId t, std::size_t first,
                      std::size_t count, double* out) const;

  /// Tail-side sub-range sweep: out[i] = f(h, r, first + i).
  void ScoreTailRange(EntityId h, RelationId r, std::size_t first,
                      std::size_t count, double* out) const;

  /// Retrieves the k best-scoring candidate heads for fixed (r, t)
  /// without materializing the num_entities() score buffer
  /// (ScoringFunction::TopKCandidates — fused sweep→top-K). `out` is
  /// sorted by (score desc, EntityId asc) and bit-identical to sorting a
  /// full ScoreAllHeads buffer the same way; its entries' `index` fields
  /// are EntityIds. k may exceed num_entities() (all entities returned).
  /// `stats`, when non-null, receives the sweep's tile-pruning counters.
  void TopKHeads(RelationId r, EntityId t, std::size_t k,
                 std::vector<TopKEntry>* out,
                 TopKSweepStats* stats = nullptr) const;

  /// The k best-scoring candidate tails for fixed (h, r).
  void TopKTails(EntityId h, RelationId r, std::size_t k,
                 std::vector<TopKEntry>* out,
                 TopKSweepStats* stats = nullptr) const;

  /// Batched retrieval: answers every (r, t) head query in as few
  /// passes over the entity table as the kernel can manage — the SIMD
  /// scorers score each 256-candidate tile for every query while it is
  /// L1-resident, so the table streams from memory once instead of
  /// queries.size() times (ScoringFunction::TopKCandidatesBatch).
  /// (*out)[q] is bit-identical to TopKHeads(queries[q]..., k) — the
  /// batching reorders which (tile, query) pair is scored when, never
  /// any per-query arithmetic. `stats`, when non-null, receives the
  /// tile counters summed over all queries.
  void TopKHeadsBatch(
      const std::vector<std::pair<RelationId, EntityId>>& queries,
      std::size_t k, std::vector<std::vector<TopKEntry>>* out,
      TopKSweepStats* stats = nullptr) const;

  /// Batched tail-side retrieval over (h, r) queries.
  void TopKTailsBatch(
      const std::vector<std::pair<EntityId, RelationId>>& queries,
      std::size_t k, std::vector<std::vector<TopKEntry>>* out,
      TopKSweepStats* stats = nullptr) const;

  /// Scores every candidate head h̄ for fixed (r, t): out[i] = f(c[i], r, t).
  /// For SIMD-accelerated scorers the candidate rows are gathered into
  /// one contiguous slab and swept through
  /// ScoringFunction::ScoreAllCandidates — this is NSCaching's cache
  /// refresh hot path (the N1+N2 candidate scoring of Algorithm 3), the
  /// second consumer of the 1-vs-all primitive. Scorers on the generic
  /// loops keep the zero-copy pointer-array ScoreBatch broadcast (the
  /// gather would buy them nothing).
  void ScoreHeadCandidates(RelationId r, EntityId t,
                           const std::vector<EntityId>& candidates,
                           std::vector<double>* out) const;

  /// Scores every candidate tail t̄ for fixed (h, r).
  void ScoreTailCandidates(EntityId h, RelationId r,
                           const std::vector<EntityId>& candidates,
                           std::vector<double>* out) const;

  /// Retrieves the k best-scoring heads among `candidates` for fixed
  /// (r, t) — the top-K counterpart of ScoreHeadCandidates, and the
  /// cache updater's kTop refresh primitive. `out` entries' `index`
  /// fields are *positions into `candidates`* (not EntityIds), ordered
  /// (score desc, position asc) — exactly the first k of
  /// util TopK(scores of ScoreHeadCandidates). Candidate rows are
  /// gathered into the thread-local slab for every scorer: the top-K
  /// path has no full score buffer for a pointer-array broadcast to
  /// fill, and candidate pools are small.
  void TopKHeadCandidates(RelationId r, EntityId t,
                          const std::vector<EntityId>& candidates,
                          std::size_t k, std::vector<TopKEntry>* out,
                          TopKSweepStats* stats = nullptr) const;

  /// The k best-scoring tails among `candidates` for fixed (h, r).
  void TopKTailCandidates(EntityId h, RelationId r,
                          const std::vector<EntityId>& candidates,
                          std::size_t k, std::vector<TopKEntry>* out,
                          TopKSweepStats* stats = nullptr) const;

  /// Applies the scorer's hard constraints to one entity / relation row
  /// (called by the trainer after each optimizer step on touched rows).
  void ProjectEntity(EntityId e) {
    scorer_->ProjectEntityRow(entities_.Row(e), dim_);
  }
  void ProjectRelation(RelationId r) {
    scorer_->ProjectRelationRow(relations_.Row(r), dim_);
  }

  ShardedEmbeddingTable& entity_table() { return entities_; }
  const ShardedEmbeddingTable& entity_table() const { return entities_; }
  ShardedEmbeddingTable& relation_table() { return relations_; }
  const ShardedEmbeddingTable& relation_table() const { return relations_; }

  const ScoringFunction& scorer() const { return *scorer_; }
  int dim() const { return dim_; }
  int32_t num_entities() const { return entities_.rows(); }
  int32_t num_relations() const { return relations_.rows(); }

  /// Total trainable floats — the "parameters" column of Table I.
  /// Counts logical widths only; layout padding is not a parameter.
  size_t num_parameters() const {
    return entities_.logical_size() + relations_.logical_size();
  }

  /// Deep copy (used to snapshot the best-validation model); preserves
  /// the table layout.
  KgeModel Clone() const;

  /// Overwrites this model's parameters with `other`'s logical contents —
  /// the serving layer's snapshot copy hook (EmbeddingSnapshot reuses its
  /// buffers across publications instead of reallocating). Layout-safe:
  /// strides and shard layouts may differ, but the scorer name, dim and
  /// both table shapes must match (CHECKed). Padding is left untouched,
  /// so the copy is bit-identical at the logical level regardless of
  /// either side's layout.
  void CopyParametersFrom(const KgeModel& other);

 private:
  int dim_;
  std::unique_ptr<ScoringFunction> scorer_;
  ShardedEmbeddingTable entities_;
  ShardedEmbeddingTable relations_;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_MODEL_H_
