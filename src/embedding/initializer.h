// Embedding initialization schemes. The paper initialises with the Xavier
// uniform initializer [14] when training from scratch.
#ifndef NSCACHING_EMBEDDING_INITIALIZER_H_
#define NSCACHING_EMBEDDING_INITIALIZER_H_

#include "embedding/embedding_table.h"
#include "embedding/sharded_table.h"
#include "util/rng.h"

namespace nsc {

// Every initializer walks global rows in order over the logical width,
// so a given RNG produces identical logical contents regardless of
// layout — padded or compact, one shard or many (the sharded overloads
// consume the exact same RNG stream as the single-slab ones).

/// Fills the table with U(-b, b), b = sqrt(6 / (fan_in + fan_out)) where
/// both fans equal the row width (the convention for embedding lookups).
void XavierUniformInit(EmbeddingTable* table, Rng* rng);
void XavierUniformInit(ShardedEmbeddingTable* table, Rng* rng);

/// Fills the table with N(0, stddev^2).
void GaussianInit(EmbeddingTable* table, double stddev, Rng* rng);
void GaussianInit(ShardedEmbeddingTable* table, double stddev, Rng* rng);

/// Fills the table with U(lo, hi).
void UniformInit(EmbeddingTable* table, double lo, double hi, Rng* rng);
void UniformInit(ShardedEmbeddingTable* table, double lo, double hi, Rng* rng);

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_INITIALIZER_H_
