#include "embedding/scoring_function.h"

#include "embedding/scorers/complex.h"
#include "embedding/scorers/distmult.h"
#include "embedding/scorers/hole.h"
#include "embedding/scorers/rescal.h"
#include "embedding/scorers/transd.h"
#include "embedding/scorers/transe.h"
#include "embedding/scorers/transh.h"
#include "embedding/scorers/transr.h"

namespace nsc {

std::unique_ptr<ScoringFunction> MakeScoringFunction(const std::string& name) {
  if (name == "transe") return std::make_unique<TransE>();
  if (name == "transh") return std::make_unique<TransH>();
  if (name == "transd") return std::make_unique<TransD>();
  if (name == "transr") return std::make_unique<TransR>();
  if (name == "distmult") return std::make_unique<DistMult>();
  if (name == "complex") return std::make_unique<ComplEx>();
  if (name == "rescal") return std::make_unique<Rescal>();
  if (name == "hole") return std::make_unique<HolE>();
  return nullptr;
}

std::vector<std::string> ListScoringFunctions() {
  return {"transe",   "transh",  "transd", "transr",
          "distmult", "complex", "rescal", "hole"};
}

}  // namespace nsc
