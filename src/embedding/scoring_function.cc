#include "embedding/scoring_function.h"

#include <algorithm>

#include "embedding/scorers/complex.h"
#include "embedding/scorers/distmult.h"
#include "embedding/scorers/hole.h"
#include "embedding/scorers/rescal.h"
#include "embedding/scorers/transd.h"
#include "embedding/scorers/transe.h"
#include "embedding/scorers/transh.h"
#include "embedding/scorers/transr.h"

namespace nsc {

void ScoringFunction::ScoreAllCandidates(CorruptionSide side,
                                         const float* fixed_entity,
                                         const float* fixed_relation,
                                         const float* base, std::size_t stride,
                                         std::size_t count, int dim,
                                         double* out) const {
  // Generic fallback: tile the sweep through ScoreBatch with the fixed
  // rows broadcast across each tile. Stack-sized pointer arrays keep the
  // fallback allocation-free.
  constexpr std::size_t kTile = 256;
  const float* cand[kTile];
  const float* fixed_e[kTile];
  const float* fixed_r[kTile];
  for (std::size_t lo = 0; lo < count; lo += kTile) {
    const std::size_t n = std::min(kTile, count - lo);
    for (std::size_t i = 0; i < n; ++i) {
      cand[i] = base + (lo + i) * stride;
      fixed_e[i] = fixed_entity;
      fixed_r[i] = fixed_relation;
    }
    if (side == CorruptionSide::kHead) {
      ScoreBatch(cand, fixed_r, fixed_e, dim, n, out + lo);
    } else {
      ScoreBatch(fixed_e, fixed_r, cand, dim, n, out + lo);
    }
  }
}

std::unique_ptr<ScoringFunction> MakeScoringFunction(const std::string& name) {
  if (name == "transe") return std::make_unique<TransE>();
  if (name == "transh") return std::make_unique<TransH>();
  if (name == "transd") return std::make_unique<TransD>();
  if (name == "transr") return std::make_unique<TransR>();
  if (name == "distmult") return std::make_unique<DistMult>();
  if (name == "complex") return std::make_unique<ComplEx>();
  if (name == "rescal") return std::make_unique<Rescal>();
  if (name == "hole") return std::make_unique<HolE>();
  return nullptr;
}

std::vector<std::string> ListScoringFunctions() {
  return {"transe",   "transh",  "transd", "transr",
          "distmult", "complex", "rescal", "hole"};
}

}  // namespace nsc
