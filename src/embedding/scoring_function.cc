#include "embedding/scoring_function.h"

#include <algorithm>

#include "embedding/scorers/complex.h"
#include "embedding/scorers/distmult.h"
#include "embedding/scorers/hole.h"
#include "embedding/scorers/rescal.h"
#include "embedding/scorers/transd.h"
#include "embedding/scorers/transe.h"
#include "embedding/scorers/transh.h"
#include "embedding/scorers/transr.h"

namespace nsc {

void ScoringFunction::ScoreAllCandidates(CorruptionSide side,
                                         const float* fixed_entity,
                                         const float* fixed_relation,
                                         const float* base, std::size_t stride,
                                         std::size_t count, int dim,
                                         double* out) const {
  // Generic fallback: tile the sweep through ScoreBatch with the fixed
  // rows broadcast across each tile. Stack-sized pointer arrays keep the
  // fallback allocation-free.
  constexpr std::size_t kTile = 256;
  const float* cand[kTile];
  const float* fixed_e[kTile];
  const float* fixed_r[kTile];
  for (std::size_t lo = 0; lo < count; lo += kTile) {
    const std::size_t n = std::min(kTile, count - lo);
    for (std::size_t i = 0; i < n; ++i) {
      cand[i] = base + (lo + i) * stride;
      fixed_e[i] = fixed_entity;
      fixed_r[i] = fixed_relation;
    }
    if (side == CorruptionSide::kHead) {
      ScoreBatch(cand, fixed_r, fixed_e, dim, n, out + lo);
    } else {
      ScoreBatch(fixed_e, fixed_r, cand, dim, n, out + lo);
    }
  }
}

void ScoringFunction::TopKCandidates(CorruptionSide side,
                                     const float* fixed_entity,
                                     const float* fixed_relation,
                                     const float* base, std::size_t stride,
                                     std::size_t count, int dim,
                                     TopKCollector* collector) const {
  // Generic fallback: sweep one L1-resident tile at a time through
  // ScoreAllCandidates (itself virtual — SIMD scorers still run their
  // sweep kernels here) and merge each tile into the bounded heap, which
  // max-prunes tiles against the running K-th-best threshold. Sweep
  // scores are per-candidate independent, so tiling cannot change a
  // candidate's score vs the full-buffer sweep.
  double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    ScoreAllCandidates(side, fixed_entity, fixed_relation, base + lo * stride,
                       stride, n, dim, tile);
    collector->OfferTile(tile, lo, n);
  }
}

void ScoringFunction::TopKCandidatesBatch(CorruptionSide side,
                                          const float* const* fixed_entity,
                                          const float* const* fixed_relation,
                                          std::size_t nq, const float* base,
                                          std::size_t stride,
                                          std::size_t count, int dim,
                                          TopKCollector* const* collectors) const {
  // Generic fallback, tile-outer / query-inner: every query scores the
  // tile while its rows are cache-resident. Per (tile, query) this runs
  // the exact single-query arithmetic, so each query's retrieval is
  // bit-identical to its own TopKCandidates call.
  double tile[TopKCollector::kTileSize];
  for (std::size_t lo = 0; lo < count; lo += TopKCollector::kTileSize) {
    const std::size_t n = std::min(TopKCollector::kTileSize, count - lo);
    for (std::size_t q = 0; q < nq; ++q) {
      ScoreAllCandidates(side, fixed_entity[q], fixed_relation[q],
                         base + lo * stride, stride, n, dim, tile);
      collectors[q]->OfferTile(tile, lo, n);
    }
  }
}

std::unique_ptr<ScoringFunction> MakeScoringFunction(const std::string& name) {
  if (name == "transe") return std::make_unique<TransE>();
  if (name == "transh") return std::make_unique<TransH>();
  if (name == "transd") return std::make_unique<TransD>();
  if (name == "transr") return std::make_unique<TransR>();
  if (name == "distmult") return std::make_unique<DistMult>();
  if (name == "complex") return std::make_unique<ComplEx>();
  if (name == "rescal") return std::make_unique<Rescal>();
  if (name == "hole") return std::make_unique<HolE>();
  return nullptr;
}

std::vector<std::string> ListScoringFunctions() {
  return {"transe",   "transh",  "transd", "transr",
          "distmult", "complex", "rescal", "hole"};
}

}  // namespace nsc
