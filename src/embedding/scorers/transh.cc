#include "embedding/scorers/transh.h"

#include <cmath>
#include <vector>

#include "util/math.h"

namespace nsc {

namespace {
inline float Sign(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }
constexpr float kNormFloor = 1e-12f;
}  // namespace

double TransH::Score(const float* h, const float* r, const float* t,
                     int dim) const {
  const float* rv = r;        // Translation vector.
  const float* w = r + dim;   // Hyperplane normal (unnormalised).
  const float wn = std::max(L2Norm(w, dim), kNormFloor);
  // e = u − (ŵ·u) ŵ + r, with u = h − t.
  float wu = 0.0f;
  for (int i = 0; i < dim; ++i) wu += w[i] * (h[i] - t[i]);
  wu /= wn * wn;  // (ŵ·u)/‖w‖ so that wu * w[i] = (ŵ·u) ŵ_i.
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    s += std::fabs((h[i] - t[i]) - wu * w[i] + rv[i]);
  }
  return -s;
}

void TransH::Backward(const float* h, const float* r, const float* t, int dim,
                      float coeff, float* gh, float* gr, float* gt) const {
  const float* rv = r;
  const float* w = r + dim;
  const float wn = std::max(L2Norm(w, dim), kNormFloor);

  std::vector<float> what(dim), u(dim), e(dim), s(dim);
  for (int i = 0; i < dim; ++i) {
    what[i] = w[i] / wn;
    u[i] = h[i] - t[i];
  }
  const float wu = Dot(what.data(), u.data(), dim);  // ŵ·u
  for (int i = 0; i < dim; ++i) {
    e[i] = u[i] - wu * what[i] + rv[i];
    s[i] = Sign(e[i]);
  }
  // dScore/de = −s; de/dh = I − ŵŵᵀ; de/dt = −(I − ŵŵᵀ); de/dr = I.
  const float sw = Dot(s.data(), what.data(), dim);  // s·ŵ
  for (int i = 0; i < dim; ++i) {
    const float proj = s[i] - sw * what[i];  // (I − ŵŵᵀ)s
    gh[i] += coeff * -proj;
    gt[i] += coeff * proj;
    gr[i] += coeff * -s[i];
  }
  // dScore/dŵ = (s·ŵ)u + (ŵ·u)s  (from e's −(ŵ·u)ŵ term, with dS/de = −s
  // giving the overall + sign); chain through ŵ = w/‖w‖:
  // dScore/dw = (I − ŵŵᵀ)/‖w‖ · dScore/dŵ.
  std::vector<float> gwhat(dim);
  for (int i = 0; i < dim; ++i) gwhat[i] = sw * u[i] + wu * s[i];
  const float gw_dot = Dot(gwhat.data(), what.data(), dim);
  float* gw = gr + dim;
  for (int i = 0; i < dim; ++i) {
    gw[i] += coeff * (gwhat[i] - gw_dot * what[i]) / wn;
  }
}

void TransH::ProjectEntityRow(float* row, int dim) const {
  const float norm = L2Norm(row, dim);
  if (norm > 1.0f) Scale(1.0f / norm, row, dim);
}

}  // namespace nsc
