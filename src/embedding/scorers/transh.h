// TransH [42]: entities are projected onto a relation-specific hyperplane
// with unit normal ŵ before the TransE-style translation:
//   f = −‖(h − ŵᵀh ŵ) + r − (t − ŵᵀt ŵ)‖₁,  ŵ = w/‖w‖.
// The relation row packs [r | w] (width 2·dim). The normalisation of w is
// differentiated exactly (no post-hoc projection needed).
#ifndef NSCACHING_EMBEDDING_SCORERS_TRANSH_H_
#define NSCACHING_EMBEDDING_SCORERS_TRANSH_H_

#include "embedding/scoring_function.h"

namespace nsc {

class TransH : public ScoringFunction {
 public:
  std::string name() const override { return "transh"; }
  ModelFamily family() const override {
    return ModelFamily::kTranslationalDistance;
  }
  int relation_width(int dim) const override { return 2 * dim; }
  double Score(const float* h, const float* r, const float* t,
               int dim) const override;
  void Backward(const float* h, const float* r, const float* t, int dim,
                float coeff, float* gh, float* gr, float* gt) const override;
  void ProjectEntityRow(float* row, int dim) const override;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORERS_TRANSH_H_
