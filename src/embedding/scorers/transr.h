// TransR [26]: entities and relations live in different spaces; a full
// relation-specific matrix M_r projects entities before the translation:
//   f = −‖M_r h + r − M_r t‖₁.
// The relation row packs [r | M_r row-major] (width d + d²). Listed in the
// paper's §IV-A4 survey of translational scorers; included as an extension
// beyond the Table III evaluation set.
#ifndef NSCACHING_EMBEDDING_SCORERS_TRANSR_H_
#define NSCACHING_EMBEDDING_SCORERS_TRANSR_H_

#include "embedding/scoring_function.h"

namespace nsc {

class TransR : public ScoringFunction {
 public:
  std::string name() const override { return "transr"; }
  ModelFamily family() const override {
    return ModelFamily::kTranslationalDistance;
  }
  int relation_width(int dim) const override { return dim + dim * dim; }
  double Score(const float* h, const float* r, const float* t,
               int dim) const override;
  void Backward(const float* h, const float* r, const float* t, int dim,
                float coeff, float* gh, float* gr, float* gt) const override;
  void ProjectEntityRow(float* row, int dim) const override;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORERS_TRANSR_H_
