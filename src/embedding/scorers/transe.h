// TransE [7]: f(h, r, t) = −‖h + r − t‖₁. The seminal translational model:
// a true triple's head, translated by the relation vector, should land on
// the tail.
#ifndef NSCACHING_EMBEDDING_SCORERS_TRANSE_H_
#define NSCACHING_EMBEDDING_SCORERS_TRANSE_H_

#include "embedding/scoring_function.h"

namespace nsc {

class TransE : public ScoringFunction {
 public:
  std::string name() const override { return "transe"; }
  ModelFamily family() const override {
    return ModelFamily::kTranslationalDistance;
  }
  double Score(const float* h, const float* r, const float* t,
               int dim) const override;
  void Backward(const float* h, const float* r, const float* t, int dim,
                float coeff, float* gh, float* gr, float* gt) const override;
  void ScoreBatch(const float* const* h, const float* const* r,
                  const float* const* t, int dim, size_t n,
                  double* out) const override;
  void BackwardBatch(const float* const* h, const float* const* r,
                     const float* const* t, int dim, size_t n,
                     const float* coeff, float* const* gh, float* const* gr,
                     float* const* gt) const override;
  void ScoreAllCandidates(CorruptionSide side, const float* fixed_entity,
                          const float* fixed_relation, const float* base,
                          std::size_t stride, std::size_t count, int dim,
                          double* out) const override;
  void TopKCandidates(CorruptionSide side, const float* fixed_entity,
                      const float* fixed_relation, const float* base,
                      std::size_t stride, std::size_t count, int dim,
                      TopKCollector* collector) const override;
  void TopKCandidatesBatch(CorruptionSide side, const float* const* fixed_entity,
                           const float* const* fixed_relation, std::size_t nq,
                           const float* base, std::size_t stride,
                           std::size_t count, int dim,
                           TopKCollector* const* collectors) const override;
  bool simd_accelerated() const override { return true; }
  /// Entities live on/inside the unit L2 ball, as in [7].
  void ProjectEntityRow(float* row, int dim) const override;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORERS_TRANSE_H_
