#include "embedding/scorers/transd.h"

#include <cmath>
#include <vector>

#include "util/math.h"

namespace nsc {

namespace {
inline float Sign(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }
}  // namespace

double TransD::Score(const float* h, const float* r, const float* t,
                     int dim) const {
  const float* hv = h;
  const float* wh = h + dim;
  const float* tv = t;
  const float* wt = t + dim;
  const float* rv = r;
  const float* wr = r + dim;
  const float whh = Dot(wh, hv, dim);
  const float wtt = Dot(wt, tv, dim);
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    const float e = (hv[i] + whh * wr[i]) + rv[i] - (tv[i] + wtt * wr[i]);
    s += std::fabs(e);
  }
  return -s;
}

void TransD::Backward(const float* h, const float* r, const float* t, int dim,
                      float coeff, float* gh, float* gr, float* gt) const {
  const float* hv = h;
  const float* wh = h + dim;
  const float* tv = t;
  const float* wt = t + dim;
  const float* rv = r;
  const float* wr = r + dim;
  const float whh = Dot(wh, hv, dim);
  const float wtt = Dot(wt, tv, dim);

  std::vector<float> s(dim);
  for (int i = 0; i < dim; ++i) {
    const float e = (hv[i] + whh * wr[i]) + rv[i] - (tv[i] + wtt * wr[i]);
    s[i] = Sign(e);
  }
  const float swr = Dot(s.data(), wr, dim);  // s·w_r
  // dScore/de = −s. Chain rules (see header for the forward form):
  //   dS/dh_j    = −s_j − (w_h)_j (s·w_r)
  //   dS/d(wh)_j = −h_j (s·w_r)
  //   dS/dt_j    = +s_j + (w_t)_j (s·w_r)
  //   dS/d(wt)_j = +t_j (s·w_r)
  //   dS/dr_j    = −s_j
  //   dS/d(wr)_j = −s_j (w_h·h − w_t·t)
  const float diff = whh - wtt;
  for (int i = 0; i < dim; ++i) {
    gh[i] += coeff * (-s[i] - wh[i] * swr);
    gh[dim + i] += coeff * (-hv[i] * swr);
    gt[i] += coeff * (s[i] + wt[i] * swr);
    gt[dim + i] += coeff * (tv[i] * swr);
    gr[i] += coeff * -s[i];
    gr[dim + i] += coeff * (-s[i] * diff);
  }
}

void TransD::ProjectEntityRow(float* row, int dim) const {
  const float norm = L2Norm(row, dim);
  if (norm > 1.0f) Scale(1.0f / norm, row, dim);
}

}  // namespace nsc
