// ComplEx [38]: embeddings in ℂ^d, f = Re(⟨h, r, conj(t)⟩). Rows pack the
// real parts first and the imaginary parts second (width 2·dim). The
// asymmetry from conj(t) lets it model directed relations DistMult cannot.
#ifndef NSCACHING_EMBEDDING_SCORERS_COMPLEX_H_
#define NSCACHING_EMBEDDING_SCORERS_COMPLEX_H_

#include "embedding/scoring_function.h"

namespace nsc {

class ComplEx : public ScoringFunction {
 public:
  std::string name() const override { return "complex"; }
  ModelFamily family() const override { return ModelFamily::kSemanticMatching; }
  int entity_width(int dim) const override { return 2 * dim; }
  int relation_width(int dim) const override { return 2 * dim; }
  double Score(const float* h, const float* r, const float* t,
               int dim) const override;
  void Backward(const float* h, const float* r, const float* t, int dim,
                float coeff, float* gh, float* gr, float* gt) const override;
  void ScoreBatch(const float* const* h, const float* const* r,
                  const float* const* t, int dim, size_t n,
                  double* out) const override;
  void BackwardBatch(const float* const* h, const float* const* r,
                     const float* const* t, int dim, size_t n,
                     const float* coeff, float* const* gh, float* const* gr,
                     float* const* gt) const override;
  void ScoreAllCandidates(CorruptionSide side, const float* fixed_entity,
                          const float* fixed_relation, const float* base,
                          std::size_t stride, std::size_t count, int dim,
                          double* out) const override;
  void TopKCandidates(CorruptionSide side, const float* fixed_entity,
                      const float* fixed_relation, const float* base,
                      std::size_t stride, std::size_t count, int dim,
                      TopKCollector* collector) const override;
  void TopKCandidatesBatch(CorruptionSide side, const float* const* fixed_entity,
                           const float* const* fixed_relation, std::size_t nq,
                           const float* base, std::size_t stride,
                           std::size_t count, int dim,
                           TopKCollector* const* collectors) const override;
  bool simd_accelerated() const override { return true; }
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORERS_COMPLEX_H_
