#include "embedding/scorers/transe.h"

#include <cmath>

#include "util/math.h"
#include "util/simd.h"

namespace nsc {

namespace {
inline float Sign(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }
}  // namespace

double TransE::Score(const float* h, const float* r, const float* t,
                     int dim) const {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    s += std::fabs(h[i] + r[i] - t[i]);
  }
  return -s;
}

void TransE::Backward(const float* h, const float* r, const float* t, int dim,
                      float coeff, float* gh, float* gr, float* gt) const {
  for (int i = 0; i < dim; ++i) {
    const float sg = Sign(h[i] + r[i] - t[i]);
    // dScore/dh_i = -sign(e_i); dScore/dr_i = -sign(e_i); dScore/dt_i = +sign(e_i).
    gh[i] += coeff * -sg;
    gr[i] += coeff * -sg;
    gt[i] += coeff * sg;
  }
}

void TransE::ScoreBatch(const float* const* h, const float* const* r,
                        const float* const* t, int dim, size_t n,
                        double* out) const {
  simd::Kernels().transe_score(h, r, t, dim, n, out);
}

void TransE::BackwardBatch(const float* const* h, const float* const* r,
                           const float* const* t, int dim, size_t n,
                           const float* coeff, float* const* gh,
                           float* const* gr, float* const* gt) const {
  simd::Kernels().transe_backward(h, r, t, dim, n, coeff, gh, gr, gt);
}

void TransE::ScoreAllCandidates(CorruptionSide side, const float* fixed_entity,
                                const float* fixed_relation, const float* base,
                                std::size_t stride, std::size_t count, int dim,
                                double* out) const {
  (side == CorruptionSide::kHead ? simd::Kernels().transe_sweep_head
                                 : simd::Kernels().transe_sweep_tail)(
      fixed_entity, fixed_relation, base, stride, count, dim, out);
}

void TransE::TopKCandidates(CorruptionSide side, const float* fixed_entity,
                            const float* fixed_relation, const float* base,
                            std::size_t stride, std::size_t count, int dim,
                            TopKCollector* collector) const {
  (side == CorruptionSide::kHead ? simd::Kernels().transe_topk_head
                                 : simd::Kernels().transe_topk_tail)(
      fixed_entity, fixed_relation, base, stride, count, dim, collector);
}

void TransE::TopKCandidatesBatch(CorruptionSide side,
                          const float* const* fixed_entity,
                          const float* const* fixed_relation, std::size_t nq,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim,
                          TopKCollector* const* collectors) const {
  (side == CorruptionSide::kHead ? simd::Kernels().transe_topk_batch_head
                                 : simd::Kernels().transe_topk_batch_tail)(
      fixed_entity, fixed_relation, nq, base, stride, count, dim, collectors);
}

void TransE::ProjectEntityRow(float* row, int dim) const {
  const float norm = L2Norm(row, dim);
  if (norm > 1.0f) Scale(1.0f / norm, row, dim);
}

}  // namespace nsc
