#include "embedding/scorers/transe.h"

#include <cmath>

#include "util/math.h"

namespace nsc {

namespace {
inline float Sign(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }
}  // namespace

double TransE::Score(const float* h, const float* r, const float* t,
                     int dim) const {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    s += std::fabs(h[i] + r[i] - t[i]);
  }
  return -s;
}

void TransE::Backward(const float* h, const float* r, const float* t, int dim,
                      float coeff, float* gh, float* gr, float* gt) const {
  for (int i = 0; i < dim; ++i) {
    const float sg = Sign(h[i] + r[i] - t[i]);
    // dScore/dh_i = -sign(e_i); dScore/dr_i = -sign(e_i); dScore/dt_i = +sign(e_i).
    gh[i] += coeff * -sg;
    gr[i] += coeff * -sg;
    gt[i] += coeff * sg;
  }
}

void TransE::ScoreBatch(const float* const* h, const float* const* r,
                        const float* const* t, int dim, size_t n,
                        double* out) const {
  for (size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    double s = 0.0;
    for (int k = 0; k < dim; ++k) s += std::fabs(hv[k] + rv[k] - tv[k]);
    out[i] = -s;
  }
}

void TransE::BackwardBatch(const float* const* h, const float* const* r,
                           const float* const* t, int dim, size_t n,
                           const float* coeff, float* const* gh,
                           float* const* gr, float* const* gt) const {
  for (size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    for (int k = 0; k < dim; ++k) {
      const float sg = c * Sign(hv[k] + rv[k] - tv[k]);
      ghv[k] -= sg;
      grv[k] -= sg;
      gtv[k] += sg;
    }
  }
}

void TransE::ProjectEntityRow(float* row, int dim) const {
  const float norm = L2Norm(row, dim);
  if (norm > 1.0f) Scale(1.0f / norm, row, dim);
}

}  // namespace nsc
