#include "embedding/scorers/distmult.h"

#include "util/simd.h"

namespace nsc {

double DistMult::Score(const float* h, const float* r, const float* t,
                       int dim) const {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) s += double(h[i]) * r[i] * t[i];
  return s;
}

void DistMult::Backward(const float* h, const float* r, const float* t,
                        int dim, float coeff, float* gh, float* gr,
                        float* gt) const {
  for (int i = 0; i < dim; ++i) {
    gh[i] += coeff * r[i] * t[i];
    gr[i] += coeff * h[i] * t[i];
    gt[i] += coeff * h[i] * r[i];
  }
}

void DistMult::ScoreBatch(const float* const* h, const float* const* r,
                          const float* const* t, int dim, size_t n,
                          double* out) const {
  simd::Kernels().distmult_score(h, r, t, dim, n, out);
}

void DistMult::BackwardBatch(const float* const* h, const float* const* r,
                             const float* const* t, int dim, size_t n,
                             const float* coeff, float* const* gh,
                             float* const* gr, float* const* gt) const {
  simd::Kernels().distmult_backward(h, r, t, dim, n, coeff, gh, gr, gt);
}

void DistMult::ScoreAllCandidates(CorruptionSide side,
                                  const float* fixed_entity,
                                  const float* fixed_relation,
                                  const float* base, std::size_t stride,
                                  std::size_t count, int dim,
                                  double* out) const {
  (side == CorruptionSide::kHead ? simd::Kernels().distmult_sweep_head
                                 : simd::Kernels().distmult_sweep_tail)(
      fixed_entity, fixed_relation, base, stride, count, dim, out);
}

void DistMult::TopKCandidates(CorruptionSide side, const float* fixed_entity,
                              const float* fixed_relation, const float* base,
                              std::size_t stride, std::size_t count, int dim,
                              TopKCollector* collector) const {
  (side == CorruptionSide::kHead ? simd::Kernels().distmult_topk_head
                                 : simd::Kernels().distmult_topk_tail)(
      fixed_entity, fixed_relation, base, stride, count, dim, collector);
}

void DistMult::TopKCandidatesBatch(CorruptionSide side,
                          const float* const* fixed_entity,
                          const float* const* fixed_relation, std::size_t nq,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim,
                          TopKCollector* const* collectors) const {
  (side == CorruptionSide::kHead ? simd::Kernels().distmult_topk_batch_head
                                 : simd::Kernels().distmult_topk_batch_tail)(
      fixed_entity, fixed_relation, nq, base, stride, count, dim, collectors);
}

}  // namespace nsc
