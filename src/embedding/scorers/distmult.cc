#include "embedding/scorers/distmult.h"

namespace nsc {

double DistMult::Score(const float* h, const float* r, const float* t,
                       int dim) const {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) s += double(h[i]) * r[i] * t[i];
  return s;
}

void DistMult::Backward(const float* h, const float* r, const float* t,
                        int dim, float coeff, float* gh, float* gr,
                        float* gt) const {
  for (int i = 0; i < dim; ++i) {
    gh[i] += coeff * r[i] * t[i];
    gr[i] += coeff * h[i] * t[i];
    gt[i] += coeff * h[i] * r[i];
  }
}

void DistMult::ScoreBatch(const float* const* h, const float* const* r,
                          const float* const* t, int dim, size_t n,
                          double* out) const {
  for (size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    double s = 0.0;
    for (int k = 0; k < dim; ++k) s += double(hv[k]) * rv[k] * tv[k];
    out[i] = s;
  }
}

void DistMult::BackwardBatch(const float* const* h, const float* const* r,
                             const float* const* t, int dim, size_t n,
                             const float* coeff, float* const* gh,
                             float* const* gr, float* const* gt) const {
  for (size_t i = 0; i < n; ++i) {
    const float* hv = h[i];
    const float* rv = r[i];
    const float* tv = t[i];
    float* ghv = gh[i];
    float* grv = gr[i];
    float* gtv = gt[i];
    const float c = coeff[i];
    for (int k = 0; k < dim; ++k) {
      ghv[k] += c * rv[k] * tv[k];
      grv[k] += c * hv[k] * tv[k];
      gtv[k] += c * hv[k] * rv[k];
    }
  }
}

}  // namespace nsc
