#include "embedding/scorers/rescal.h"

namespace nsc {

double Rescal::Score(const float* h, const float* r, const float* t,
                     int dim) const {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    double row = 0.0;
    const float* m = r + i * dim;
    for (int j = 0; j < dim; ++j) row += double(m[j]) * t[j];
    s += h[i] * row;
  }
  return s;
}

void Rescal::Backward(const float* h, const float* r, const float* t, int dim,
                      float coeff, float* gh, float* gr, float* gt) const {
  for (int i = 0; i < dim; ++i) {
    const float* m = r + i * dim;
    float* gm = gr + i * dim;
    float mt = 0.0f;
    for (int j = 0; j < dim; ++j) {
      mt += m[j] * t[j];
      gm[j] += coeff * h[i] * t[j];
      gt[j] += coeff * h[i] * m[j];
    }
    gh[i] += coeff * mt;
  }
}

}  // namespace nsc
