// TransD [20]: dynamic mapping matrices built from projection vectors.
// Entity rows pack [e | w_e] and relation rows pack [r | w_r] (each of
// width 2·dim), and the projected embeddings are
//   h⊥ = h + (w_h·h) w_r,   t⊥ = t + (w_t·t) w_r,
//   f  = −‖h⊥ + r − t⊥‖₁.
// (This is the equal-dimension specialisation of the paper's
// M_r e = (I + w_r w_eᵀ) e.)
#ifndef NSCACHING_EMBEDDING_SCORERS_TRANSD_H_
#define NSCACHING_EMBEDDING_SCORERS_TRANSD_H_

#include "embedding/scoring_function.h"

namespace nsc {

class TransD : public ScoringFunction {
 public:
  std::string name() const override { return "transd"; }
  ModelFamily family() const override {
    return ModelFamily::kTranslationalDistance;
  }
  int entity_width(int dim) const override { return 2 * dim; }
  int relation_width(int dim) const override { return 2 * dim; }
  double Score(const float* h, const float* r, const float* t,
               int dim) const override;
  void Backward(const float* h, const float* r, const float* t, int dim,
                float coeff, float* gh, float* gr, float* gt) const override;
  /// Base entity vectors kept on/inside the unit ball (per [20]).
  void ProjectEntityRow(float* row, int dim) const override;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORERS_TRANSD_H_
