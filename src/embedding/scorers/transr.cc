#include "embedding/scorers/transr.h"

#include <cmath>
#include <vector>

#include "util/math.h"

namespace nsc {

namespace {
inline float Sign(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }
}  // namespace

double TransR::Score(const float* h, const float* r, const float* t,
                     int dim) const {
  const float* rv = r;
  const float* m = r + dim;  // Row-major d×d.
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    const float* row = m + i * dim;
    float e = rv[i];
    for (int j = 0; j < dim; ++j) e += row[j] * (h[j] - t[j]);
    s += std::fabs(e);
  }
  return -s;
}

void TransR::Backward(const float* h, const float* r, const float* t, int dim,
                      float coeff, float* gh, float* gr, float* gt) const {
  const float* rv = r;
  const float* m = r + dim;
  std::vector<float> s(dim);
  std::vector<float> u(dim);  // h - t.
  for (int j = 0; j < dim; ++j) u[j] = h[j] - t[j];
  for (int i = 0; i < dim; ++i) {
    const float* row = m + i * dim;
    float e = rv[i];
    for (int j = 0; j < dim; ++j) e += row[j] * u[j];
    s[i] = Sign(e);
  }
  // dS/de = −s;  e_i = r_i + Σ_j M_ij (h_j − t_j).
  float* gm = gr + dim;
  for (int i = 0; i < dim; ++i) {
    gr[i] += coeff * -s[i];
    const float* row = m + i * dim;
    float* gm_row = gm + i * dim;
    for (int j = 0; j < dim; ++j) {
      gh[j] += coeff * -s[i] * row[j];
      gt[j] += coeff * s[i] * row[j];
      gm_row[j] += coeff * -s[i] * u[j];
    }
  }
}

void TransR::ProjectEntityRow(float* row, int dim) const {
  const float norm = L2Norm(row, dim);
  if (norm > 1.0f) Scale(1.0f / norm, row, dim);
}

}  // namespace nsc
