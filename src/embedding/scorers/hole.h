// HolE [31]: holographic embeddings. The head/tail pair is compressed by
// circular correlation and matched against the relation vector:
//   f = r · (h ⋆ t),   (h ⋆ t)_k = Σ_i h_i · t_{(i+k) mod d}.
// Compositional like RESCAL but with O(d) relation parameters; asymmetric
// in h and t. Listed in §IV-A4 of the paper; an extension beyond Table III.
// (This implementation is the direct O(d²) correlation — exact, and fast
// enough at embedding dimensions used here; an FFT path is a further
// optimisation, not a semantic change.)
#ifndef NSCACHING_EMBEDDING_SCORERS_HOLE_H_
#define NSCACHING_EMBEDDING_SCORERS_HOLE_H_

#include "embedding/scoring_function.h"

namespace nsc {

class HolE : public ScoringFunction {
 public:
  std::string name() const override { return "hole"; }
  ModelFamily family() const override { return ModelFamily::kSemanticMatching; }
  double Score(const float* h, const float* r, const float* t,
               int dim) const override;
  void Backward(const float* h, const float* r, const float* t, int dim,
                float coeff, float* gh, float* gr, float* gt) const override;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORERS_HOLE_H_
