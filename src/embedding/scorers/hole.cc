#include "embedding/scorers/hole.h"

namespace nsc {

// f = Σ_k r_k Σ_i h_i t_{(i+k) mod d}.

double HolE::Score(const float* h, const float* r, const float* t,
                   int dim) const {
  double s = 0.0;
  for (int k = 0; k < dim; ++k) {
    double corr = 0.0;
    for (int i = 0; i < dim; ++i) {
      corr += double(h[i]) * t[(i + k) % dim];
    }
    s += r[k] * corr;
  }
  return s;
}

void HolE::Backward(const float* h, const float* r, const float* t, int dim,
                    float coeff, float* gh, float* gr, float* gt) const {
  for (int k = 0; k < dim; ++k) {
    float corr = 0.0f;
    for (int i = 0; i < dim; ++i) {
      const int j = (i + k) % dim;
      corr += h[i] * t[j];
      // ∂f/∂h_i += r_k t_{(i+k)%d};  ∂f/∂t_j += r_k h_i.
      gh[i] += coeff * r[k] * t[j];
      gt[j] += coeff * r[k] * h[i];
    }
    gr[k] += coeff * corr;
  }
}

}  // namespace nsc
