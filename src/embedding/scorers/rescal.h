// RESCAL [32]: f(h, r, t) = hᵀ M_r t with a full d×d relation matrix
// (row-major in the relation row; width dim²). The original semantic
// matching model — included as an extension beyond the paper's Table III
// evaluation set (the paper discusses it in §II-C).
#ifndef NSCACHING_EMBEDDING_SCORERS_RESCAL_H_
#define NSCACHING_EMBEDDING_SCORERS_RESCAL_H_

#include "embedding/scoring_function.h"

namespace nsc {

class Rescal : public ScoringFunction {
 public:
  std::string name() const override { return "rescal"; }
  ModelFamily family() const override { return ModelFamily::kSemanticMatching; }
  int relation_width(int dim) const override { return dim * dim; }
  double Score(const float* h, const float* r, const float* t,
               int dim) const override;
  void Backward(const float* h, const float* r, const float* t, int dim,
                float coeff, float* gh, float* gr, float* gt) const override;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SCORERS_RESCAL_H_
