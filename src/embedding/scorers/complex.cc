#include "embedding/scorers/complex.h"

#include "util/simd.h"

namespace nsc {

// Layout: row[0..dim) = real part, row[dim..2*dim) = imaginary part.
// Re(<h, r, conj(t)>) = Σ hr·rr·tr + hi·rr·ti + hr·ri·ti − hi·ri·tr.

double ComplEx::Score(const float* h, const float* r, const float* t,
                      int dim) const {
  const float* hr = h;
  const float* hi = h + dim;
  const float* rr = r;
  const float* ri = r + dim;
  const float* tr = t;
  const float* ti = t + dim;
  double s = 0.0;
  for (int k = 0; k < dim; ++k) {
    s += double(hr[k]) * rr[k] * tr[k] + double(hi[k]) * rr[k] * ti[k] +
         double(hr[k]) * ri[k] * ti[k] - double(hi[k]) * ri[k] * tr[k];
  }
  return s;
}

void ComplEx::Backward(const float* h, const float* r, const float* t, int dim,
                       float coeff, float* gh, float* gr, float* gt) const {
  const float* hr = h;
  const float* hi = h + dim;
  const float* rr = r;
  const float* ri = r + dim;
  const float* tr = t;
  const float* ti = t + dim;
  for (int k = 0; k < dim; ++k) {
    gh[k] += coeff * (rr[k] * tr[k] + ri[k] * ti[k]);
    gh[dim + k] += coeff * (rr[k] * ti[k] - ri[k] * tr[k]);
    gr[k] += coeff * (hr[k] * tr[k] + hi[k] * ti[k]);
    gr[dim + k] += coeff * (hr[k] * ti[k] - hi[k] * tr[k]);
    gt[k] += coeff * (hr[k] * rr[k] - hi[k] * ri[k]);
    gt[dim + k] += coeff * (hi[k] * rr[k] + hr[k] * ri[k]);
  }
}

void ComplEx::ScoreBatch(const float* const* h, const float* const* r,
                         const float* const* t, int dim, size_t n,
                         double* out) const {
  simd::Kernels().complex_score(h, r, t, dim, n, out);
}

void ComplEx::BackwardBatch(const float* const* h, const float* const* r,
                            const float* const* t, int dim, size_t n,
                            const float* coeff, float* const* gh,
                            float* const* gr, float* const* gt) const {
  simd::Kernels().complex_backward(h, r, t, dim, n, coeff, gh, gr, gt);
}

void ComplEx::ScoreAllCandidates(CorruptionSide side, const float* fixed_entity,
                                 const float* fixed_relation,
                                 const float* base, std::size_t stride,
                                 std::size_t count, int dim,
                                 double* out) const {
  (side == CorruptionSide::kHead ? simd::Kernels().complex_sweep_head
                                 : simd::Kernels().complex_sweep_tail)(
      fixed_entity, fixed_relation, base, stride, count, dim, out);
}

void ComplEx::TopKCandidates(CorruptionSide side, const float* fixed_entity,
                             const float* fixed_relation, const float* base,
                             std::size_t stride, std::size_t count, int dim,
                             TopKCollector* collector) const {
  (side == CorruptionSide::kHead ? simd::Kernels().complex_topk_head
                                 : simd::Kernels().complex_topk_tail)(
      fixed_entity, fixed_relation, base, stride, count, dim, collector);
}

void ComplEx::TopKCandidatesBatch(CorruptionSide side,
                          const float* const* fixed_entity,
                          const float* const* fixed_relation, std::size_t nq,
                          const float* base, std::size_t stride,
                          std::size_t count, int dim,
                          TopKCollector* const* collectors) const {
  (side == CorruptionSide::kHead ? simd::Kernels().complex_topk_batch_head
                                 : simd::Kernels().complex_topk_batch_tail)(
      fixed_entity, fixed_relation, nq, base, stride, count, dim, collectors);
}

}  // namespace nsc
