// Sharded embedding storage: entity rows partitioned into fixed-size
// power-of-two row blocks, each block an independent EmbeddingTable — so
// a shard IS a slab under the PR 5 sweep convention (base + stride +
// count) and every sweep / top-K kernel composes over shards with zero
// new kernel work.
//
// Why shards: one contiguous allocation stops working past one socket's
// local memory — and even before that, every Hogwild worker and the
// optimizer's moment rows share one cache-coherence domain. Per-shard
// 64-byte-aligned allocations give each block its own pages, so shard
// memory can be placed on the socket that sweeps it (first-touch, or
// explicitly via the NSC_NUMA build knob below) and optimizer moment
// buffers mirror the same shard geometry (ZerosLike).
//
// Layout invariants:
//   - rows_per_shard() is a power of two, so Row(i) resolves with one
//     shift + one mask — no division on the hot path.
//   - Every shard has the same width and stride; only the last shard may
//     hold fewer than rows_per_shard() rows.
//   - Logical contents are layout-independent: checkpoints, RNG init
//     streams and training trajectories are bit-identical across shard
//     counts (pinned by tests/embedding/sharded_table_test.cc).
//
// NUMA: configure with -DNSC_NUMA=ON to bind shard allocations
// round-robin across NUMA nodes (numa_tonode_memory). Without the knob
// (or without libnuma at configure time) placement is a no-op stub and
// NumaAvailable() reports false — the layout is identical either way.
#ifndef NSCACHING_EMBEDDING_SHARDED_TABLE_H_
#define NSCACHING_EMBEDDING_SHARDED_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "embedding/embedding_table.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nsc {

/// Sharding configuration for a ShardedEmbeddingTable.
struct ShardOptions {
  /// Requested number of shards (>= 1). The table rounds the per-shard
  /// row block up to a power of two, so the realized num_shards() may be
  /// smaller than the target (never larger).
  int target_shards = 1;

  /// Bind each shard's rows round-robin across NUMA nodes. Only
  /// effective in NSC_NUMA builds on machines where numa_available()
  /// succeeds; otherwise a recorded no-op.
  bool numa_interleave = false;
};

/// Process-wide record of shard→NUMA-node placements, for bench
/// reporting and tests. Guarded state in the PR 7 style: the clang
/// -Wthread-safety CI job enforces that every access holds mu_.
class ShardPlacementLog {
 public:
  struct Entry {
    int shard = 0;
    int node = -1;  ///< -1: placement requested but NUMA unavailable.
    std::size_t bytes = 0;
  };

  static ShardPlacementLog& Instance();

  void Record(const Entry& entry) NSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    entries_.push_back(entry);
  }
  std::vector<Entry> Snapshot() const NSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return entries_;
  }
  void Clear() NSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    entries_.clear();
  }

 private:
  mutable Mutex mu_;
  std::vector<Entry> entries_ NSC_GUARDED_BY(mu_);
};

/// Entity/relation storage partitioned into per-shard EmbeddingTable
/// slabs. Mirrors the EmbeddingTable row API (Row/rows/width/stride/...)
/// so row-wise consumers are layout-agnostic; slab consumers (sweep and
/// top-K kernels) iterate shards via ForEachSlab()/shard().
class ShardedEmbeddingTable {
 public:
  ShardedEmbeddingTable() = default;

  /// Allocates `rows` zero-initialised rows split into
  /// ceil(rows / rows_per_shard) shards, where rows_per_shard is
  /// ceil(rows / target_shards) rounded up to a power of two.
  ShardedEmbeddingTable(int32_t rows, int width, int pad_lanes = 1,
                        const ShardOptions& options = ShardOptions());

  /// Adopts an externally built single slab as a one-shard table
  /// (checkpoint restore, future mmap loaders). Zero-copy.
  explicit ShardedEmbeddingTable(EmbeddingTable slab);

  /// A zero-filled table with exactly `shape`'s geometry (rows, width,
  /// stride, shard layout) — how optimizer moment buffers follow shard
  /// ownership.
  static ShardedEmbeddingTable ZerosLike(const ShardedEmbeddingTable& shape);

  int32_t rows() const { return rows_; }
  int width() const { return width_; }
  int stride() const { return stride_; }
  bool padded() const { return stride_ != width_; }

  /// Raw storage in floats summed over shards (includes padding).
  std::size_t size() const {
    std::size_t total = 0;
    for (const EmbeddingTable& s : shards_) total += s.size();
    return total;
  }
  std::size_t logical_size() const {
    return static_cast<std::size_t>(rows_) * width_;
  }

  float* Row(int32_t i) {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    return shards_[i >> shard_shift_].Row(i & shard_mask_);
  }
  const float* Row(int32_t i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    return shards_[i >> shard_shift_].Row(i & shard_mask_);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Power-of-two row-block size; shard s covers global rows
  /// [s * rows_per_shard(), ...) (the last shard may be short).
  int64_t rows_per_shard() const { return int64_t{1} << shard_shift_; }
  int32_t shard_first_row(int s) const {
    return static_cast<int32_t>(int64_t{s} << shard_shift_);
  }
  EmbeddingTable& shard(int s) { return shards_[s]; }
  const EmbeddingTable& shard(int s) const { return shards_[s]; }

  /// Invokes fn(shard_index, base, global_first, count) for each maximal
  /// per-shard slab covering global rows [first, first + count): the
  /// bridge from a row range to the sweep kernels' (base, stride, count)
  /// convention. Slabs are visited in increasing row order, which is
  /// what keeps per-shard top-K offers index-ordered.
  template <typename Fn>
  void ForEachSlab(std::size_t first, std::size_t count, Fn&& fn) const {
    CHECK_LE(first + count, static_cast<std::size_t>(rows_));
    while (count > 0) {
      const int s = static_cast<int>(first >> shard_shift_);
      const std::size_t local = first & static_cast<std::size_t>(shard_mask_);
      const std::size_t take =
          std::min(count, static_cast<std::size_t>(shards_[s].rows()) - local);
      fn(s, shards_[s].Row(static_cast<int32_t>(local)), first, take);
      first += take;
      count -= take;
    }
  }

  /// Copies another table's logical contents row-by-row. Layout-safe:
  /// strides and shard layouts may differ, but rows and logical width
  /// must agree (CHECKed). Padding is left untouched.
  void CopyLogicalFrom(const ShardedEmbeddingTable& other);

  /// The logical contents as one compact rows × width buffer — the
  /// layout-independent image tests compare across shard counts.
  std::vector<float> LogicalCopy() const;

  /// Scales row i so its L2 norm over the first `prefix` floats is at
  /// most `max_norm` (no-op when already inside the ball).
  void ProjectRowToL2Ball(int32_t i, int prefix, float max_norm) {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    shards_[i >> shard_shift_].ProjectRowToL2Ball(i & shard_mask_, prefix,
                                                  max_norm);
  }

  /// L2 norm of the first `prefix` floats of row i.
  float RowNorm(int32_t i, int prefix) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, rows_);
    return shards_[i >> shard_shift_].RowNorm(i & shard_mask_, prefix);
  }

  /// Whether this build can actually bind shard memory to NUMA nodes
  /// (NSC_NUMA configured in AND libnuma reports a NUMA machine).
  static bool NumaAvailable();

 private:
  void MaybePlaceShards(const ShardOptions& options);

  int32_t rows_ = 0;
  int width_ = 0;
  int stride_ = 0;
  int shard_shift_ = 0;     ///< log2(rows_per_shard()).
  int32_t shard_mask_ = 0;  ///< rows_per_shard() - 1.
  std::vector<EmbeddingTable> shards_;
};

}  // namespace nsc

#endif  // NSCACHING_EMBEDDING_SHARDED_TABLE_H_
