#include "embedding/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace nsc {

namespace {
constexpr char kMagic[8] = {'N', 'S', 'C', 'K', 'P', 'T', '0', '1'};

// Tables are serialised row-by-row over the logical width, so the on-disk
// format is the compact layout regardless of the in-memory row stride OR
// shard count (padding is neither written nor read; rows resolve through
// the shard layout; files from pre-padding/pre-sharding builds load
// unchanged and a model saved with N shards reloads into any M).
void WriteTable(std::ofstream& out, const ShardedEmbeddingTable& table) {
  for (int32_t r = 0; r < table.rows(); ++r) {
    out.write(reinterpret_cast<const char*>(table.Row(r)),
              static_cast<std::streamsize>(table.width() * sizeof(float)));
  }
}

void ReadTable(std::ifstream& in, ShardedEmbeddingTable* table) {
  for (int32_t r = 0; r < table->rows(); ++r) {
    in.read(reinterpret_cast<char*>(table->Row(r)),
            static_cast<std::streamsize>(table->width() * sizeof(float)));
  }
}
}  // namespace

Status SaveModel(const KgeModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  out.write(kMagic, sizeof(kMagic));
  const std::string scorer = model.scorer().name();
  const uint32_t name_len = static_cast<uint32_t>(scorer.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(scorer.data(), name_len);
  const int32_t shape[3] = {model.num_entities(), model.num_relations(),
                            model.dim()};
  out.write(reinterpret_cast<const char*>(shape), sizeof(shape));
  WriteTable(out, model.entity_table());
  WriteTable(out, model.relation_table());
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<KgeModel> LoadModel(const std::string& path,
                             const ShardOptions& entity_sharding) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an NSCaching checkpoint");
  }
  uint32_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  if (!in || name_len > 64) {
    return Status::InvalidArgument(path + ": corrupt scorer name length");
  }
  std::string scorer_name(name_len, '\0');
  in.read(scorer_name.data(), name_len);
  int32_t shape[3];
  in.read(reinterpret_cast<char*>(shape), sizeof(shape));
  if (!in) return Status::InvalidArgument(path + ": truncated header");
  if (shape[0] <= 0 || shape[1] <= 0 || shape[2] <= 0) {
    return Status::InvalidArgument(path + ": non-positive shape");
  }

  auto scorer = MakeScoringFunction(scorer_name);
  if (scorer == nullptr) {
    return Status::InvalidArgument(path + ": unknown scorer " + scorer_name);
  }
  KgeModel model(shape[0], shape[1], shape[2], std::move(scorer),
                 TableLayout::kPadded, entity_sharding);
  ReadTable(in, &model.entity_table());
  ReadTable(in, &model.relation_table());
  if (!in) return Status::InvalidArgument(path + ": truncated tables");
  // The file must end exactly here.
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) {
    return Status::InvalidArgument(path + ": trailing bytes");
  }
  return model;
}

}  // namespace nsc
