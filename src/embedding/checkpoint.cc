#include "embedding/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/crc32c.h"
#include "util/fault.h"

namespace nsc {

namespace {
constexpr char kMagicV1[8] = {'N', 'S', 'C', 'K', 'P', 'T', '0', '1'};
constexpr char kMagicV2[8] = {'N', 'S', 'C', 'K', 'P', 'T', '0', '2'};
constexpr std::size_t kMagicSize = sizeof(kMagicV2);
constexpr std::size_t kTrailerSize = sizeof(uint32_t);

// Fault-aware, CRC-accumulating file sink. Every chunk handed to Write
// evaluates the "ckpt.write" fault point, so a test can fail or tear the
// file at ANY write boundary (header fields, any table row):
//   - kError: the write is skipped and the save fails cleanly.
//   - kTruncate: only hit.truncate_at bytes of the chunk land, every
//     later write is dropped, and the save reports a crash-shaped error
//     WITHOUT deleting the torn file — the on-disk state a killed writer
//     leaves behind, which LoadModel must reject and CheckpointSet must
//     recover past.
class CheckpointSink {
 public:
  explicit CheckpointSink(const std::string& path)
      : path_(path), out_(path, std::ios::binary) {
    if (NSC_FAULT_POINT("ckpt.open").error()) {
      status_ = Status::IOError("injected ckpt.open failure for " + path);
      out_.close();
      return;
    }
    if (!out_) {
      status_ = Status::IOError("cannot open " + path + " for writing");
    }
  }

  void Write(const void* data, std::size_t size) {
    if (!status_.ok() || crashed_) return;
    const FaultHit hit = NSC_FAULT_POINT("ckpt.write");
    if (hit.error()) {
      status_ = Status::IOError("injected ckpt.write failure for " + path_);
      return;
    }
    if (hit.truncated()) {
      const std::size_t keep =
          std::min(static_cast<std::size_t>(hit.truncate_at), size);
      out_.write(static_cast<const char*>(data),
                 static_cast<std::streamsize>(keep));
      out_.flush();
      crashed_ = true;
      status_ = Status::IOError("injected crash tore the write of " + path_);
      return;
    }
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    crc_ = Crc32c(crc_, data, size);
  }

  uint32_t crc() const { return crc_; }

  /// The final verdict: any earlier injected/real failure, then the
  /// stream state after flush.
  Status Close() {
    if (!status_.ok()) return status_;
    out_.flush();
    if (!out_) return Status::IOError("write failed for " + path_);
    return Status::OK();
  }

 private:
  const std::string path_;
  std::ofstream out_;
  Status status_;
  uint32_t crc_ = 0;
  bool crashed_ = false;
};

// Tables are serialised row-by-row over the logical width, so the on-disk
// format is the compact layout regardless of the in-memory row stride OR
// shard count (padding is neither written nor read; rows resolve through
// the shard layout; files from pre-padding/pre-sharding builds load
// unchanged and a model saved with N shards reloads into any M).
void WriteTable(CheckpointSink* sink, const ShardedEmbeddingTable& table) {
  for (int32_t r = 0; r < table.rows(); ++r) {
    sink->Write(table.Row(r), table.width() * sizeof(float));
  }
}

/// Bounded memory reader over the checkpoint body; Read() fails sticky
/// on overrun so one trailing check covers every field.
class BodyReader {
 public:
  BodyReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool Read(void* out, std::size_t size) {
    if (failed_ || size > size_ - pos_) {
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  bool failed() const { return failed_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

bool ReadTable(BodyReader* in, ShardedEmbeddingTable* table) {
  for (int32_t r = 0; r < table->rows(); ++r) {
    if (!in->Read(table->Row(r), table->width() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

/// Parses the shared body (everything between magic and trailer —
/// byte-identical across v1 and v2).
StatusOr<KgeModel> ParseBody(const std::string& path, const char* data,
                             std::size_t size,
                             const ShardOptions& entity_sharding) {
  BodyReader in(data, size);
  uint32_t name_len = 0;
  if (!in.Read(&name_len, sizeof(name_len)) || name_len > 64) {
    return Status::InvalidArgument(path + ": corrupt scorer name length");
  }
  std::string scorer_name(name_len, '\0');
  int32_t shape[3];
  if (!in.Read(scorer_name.data(), name_len) ||
      !in.Read(shape, sizeof(shape))) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  if (shape[0] <= 0 || shape[1] <= 0 || shape[2] <= 0) {
    return Status::InvalidArgument(path + ": non-positive shape");
  }

  auto scorer = MakeScoringFunction(scorer_name);
  if (scorer == nullptr) {
    return Status::InvalidArgument(path + ": unknown scorer " + scorer_name);
  }
  KgeModel model(shape[0], shape[1], shape[2], std::move(scorer),
                 TableLayout::kPadded, entity_sharding);
  if (!ReadTable(&in, &model.entity_table()) ||
      !ReadTable(&in, &model.relation_table())) {
    return Status::InvalidArgument(path + ": truncated tables");
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument(path + ": trailing bytes");
  }
  return model;
}

}  // namespace

Status SaveModel(const KgeModel& model, const std::string& path) {
  CheckpointSink sink(path);
  sink.Write(kMagicV2, kMagicSize);
  const std::string scorer = model.scorer().name();
  const uint32_t name_len = static_cast<uint32_t>(scorer.size());
  sink.Write(&name_len, sizeof(name_len));
  sink.Write(scorer.data(), name_len);
  const int32_t shape[3] = {model.num_entities(), model.num_relations(),
                            model.dim()};
  sink.Write(shape, sizeof(shape));
  WriteTable(&sink, model.entity_table());
  WriteTable(&sink, model.relation_table());
  // The trailer pins every byte above; it goes through the same sink, so
  // an injected tear can also cut the file between body and CRC.
  const uint32_t crc = sink.crc();
  sink.Write(&crc, sizeof(crc));
  return sink.Close();
}

StatusOr<KgeModel> LoadModel(const std::string& path,
                             const ShardOptions& entity_sharding) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  // Whole-file read: integrity is checked over the complete byte range
  // before any field is trusted, which needs the bytes anyway.
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in && !in.eof()) return Status::IOError("cannot read " + path);

  if (bytes.size() < kMagicSize) {
    return Status::InvalidArgument(path + ": not an NSCaching checkpoint");
  }
  if (std::memcmp(bytes.data(), kMagicV2, kMagicSize) == 0) {
    if (bytes.size() < kMagicSize + kTrailerSize) {
      return Status::InvalidArgument(path + ": truncated header");
    }
    const std::size_t body_end = bytes.size() - kTrailerSize;
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + body_end, kTrailerSize);
    const uint32_t actual_crc = Crc32c(0, bytes.data(), body_end);
    if (stored_crc != actual_crc) {
      return Status::InvalidArgument(
          path + ": CRC mismatch (torn or corrupt checkpoint)");
    }
    return ParseBody(path, bytes.data() + kMagicSize,
                     body_end - kMagicSize, entity_sharding);
  }
  if (std::memcmp(bytes.data(), kMagicV1, kMagicSize) == 0) {
    // Legacy v1: no trailer, integrity rests on the exact-length check
    // inside ParseBody. Still written by nothing, still read forever.
    return ParseBody(path, bytes.data() + kMagicSize,
                     bytes.size() - kMagicSize, entity_sharding);
  }
  return Status::InvalidArgument(path + ": not an NSCaching checkpoint");
}

}  // namespace nsc
