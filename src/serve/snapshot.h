// Snapshot publication: the bridge between the training thread and the
// serving layer.
//
// A production KGE system answers queries while the model keeps training.
// The two sides must never share mutable rows: a reader that observes a
// half-updated embedding produces a score that corresponds to no model
// state at all. The contract here is the classic double-buffered
// atomic-pointer publication scheme:
//
//   - EmbeddingSnapshot is an IMMUTABLE deep copy of the model at one
//     training step. Readers only ever touch snapshots.
//   - SnapshotPublisher keeps the latest snapshot behind an atomically
//     published shared_ptr. The train thread calls Publish() at a
//     configurable cadence (Trainer::EnableSnapshots ticks it at
//     mini-batch boundaries — the workers are parked at the ThreadPool
//     barrier, so the copy races with nothing); readers call Acquire(),
//     which pins the snapshot via refcount — publication never blocks a
//     reader, and a reader mid-query never blocks publication.
//   - Double buffering: the snapshot displaced by a publish is retired to
//     a spare slot and its buffers are reused for the NEXT publish once
//     every reader has drained (use_count() == 1 — the refcount gate), so
//     steady-state publication does two table copies and zero large
//     allocations.
//
// The same snapshot doubles as the crash-safe async checkpoint source:
// when SnapshotPublisherOptions::checkpoint_path is set, a background
// writer thread serializes the freshest published snapshot through
// SaveModel (write-to-temp + atomic rename), absorbing checkpoint I/O
// that previously stalled the training loop. Snapshot checkpoints are
// byte-identical to a serial SaveModel at the same step (pinned by
// tests/serve/snapshot_test.cc): the checkpoint format serializes logical
// rows only, and a snapshot is a logical copy.
#ifndef NSCACHING_SERVE_SNAPSHOT_H_
#define NSCACHING_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "embedding/model.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nsc {

/// An immutable copy of one model state, tagged with the training step
/// (completed mini-batches) it was taken at. Readers hold snapshots via
/// shared_ptr (see SnapshotPublisher::Acquire) and may score against
/// model() freely from any number of threads — nothing mutates a
/// published snapshot.
class EmbeddingSnapshot {
 public:
  /// Deep-copies `model` (tables and scorer). Publisher-only entry point;
  /// readers receive snapshots, they never build them.
  EmbeddingSnapshot(const KgeModel& model, int64_t step)
      : model_(model.Clone()), step_(step) {}

  /// Overwrites this snapshot in place from `model` — the double-buffer
  /// reuse path. MUST only be called by the publisher while it is the
  /// sole owner (use_count() == 1): with no readers pinning the buffer,
  /// the mutation is invisible to everyone but the publisher.
  void CopyFrom(const KgeModel& model, int64_t step) {
    model_.CopyParametersFrom(model);
    step_ = step;
  }

  const KgeModel& model() const { return model_; }

  /// Completed training steps (mini-batches) at capture time; 0 for a
  /// pre-training snapshot of the initialized model.
  int64_t step() const { return step_; }

  /// Serializes the snapshot through SaveModel, crash-safely: the bytes
  /// go to `path`.tmp first and are atomically renamed over `path`, so a
  /// crash mid-write never leaves a torn checkpoint at `path`. Safe to
  /// call from any thread — the snapshot is immutable. Byte-identical to
  /// SaveModel(model_at_step, path) because the checkpoint format is
  /// layout-independent (logical rows only).
  Status SaveCheckpoint(const std::string& path) const;

 private:
  KgeModel model_;
  int64_t step_;
};

/// Configuration of a SnapshotPublisher.
struct SnapshotPublisherOptions {
  /// When non-empty, every `checkpoint_every`-th publish also enqueues
  /// the snapshot for the background checkpoint writer thread, which
  /// writes it to this path (write-to-temp + rename).
  std::string checkpoint_path;

  /// Write every Nth published snapshot (>= 1). Only the freshest pending
  /// snapshot is ever written: if publishes outpace the writer, stale
  /// pending checkpoints are superseded, never queued up.
  int checkpoint_every = 1;
};

/// Double-buffered, atomically published snapshot slot. One writer (the
/// train thread, via Publish), any number of readers (via Acquire).
class SnapshotPublisher {
 public:
  explicit SnapshotPublisher(SnapshotPublisherOptions options =
                                 SnapshotPublisherOptions());

  /// Joins the checkpoint writer after flushing any pending snapshot, so
  /// the freshest enqueued checkpoint is on disk when the dtor returns.
  ~SnapshotPublisher();

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Captures `model` at `step` and publishes it as the current snapshot.
  /// Single-writer: only one thread (the train thread) may call Publish.
  /// Reuses the retired buffer when its readers have drained; otherwise
  /// allocates a fresh copy. Readers pinning older snapshots are
  /// unaffected — their snapshots stay alive until released.
  void Publish(const KgeModel& model, int64_t step) NSC_EXCLUDES(mu_);

  /// The current snapshot, pinned (refcounted) — or nullptr before the
  /// first Publish. Lock-free with respect to Publish: a reader holding
  /// the returned pointer never blocks (and is never blocked by) a
  /// concurrent publication.
  std::shared_ptr<const EmbeddingSnapshot> Acquire() const;

  /// Step of the currently published snapshot; -1 before the first
  /// Publish.
  int64_t published_step() const {
    return published_step_.load(std::memory_order_acquire);
  }

  /// Status of the most recently completed background checkpoint write
  /// (OK before any write has been attempted).
  Status last_checkpoint_status() const NSC_EXCLUDES(mu_);

  /// Step of the most recently completed background checkpoint write;
  /// -1 before the first write completes.
  int64_t last_checkpoint_step() const NSC_EXCLUDES(mu_);

  /// Blocks until a checkpoint at step >= `step` has been written (or
  /// `timeout_us` elapses). Returns true when the condition was reached.
  /// Test/shutdown hook — production code never waits on the writer.
  bool WaitForCheckpoint(int64_t step, int64_t timeout_us)
      NSC_EXCLUDES(mu_);

 private:
  void CheckpointLoop() NSC_EXCLUDES(mu_);

  const SnapshotPublisherOptions options_;

  // The published slot. Accessed ONLY through std::atomic_load /
  // atomic_exchange (the C++17 shared_ptr atomic-access free functions),
  // never under mu_ — that is what keeps Acquire() wait-free with
  // respect to the mutex-using checkpoint machinery below.
  std::shared_ptr<const EmbeddingSnapshot> current_;

  std::atomic<int64_t> published_step_{-1};

  mutable Mutex mu_;
  /// The snapshot displaced by the last publish. Reused as the next
  /// publish target iff use_count() == 1 (publisher is the sole owner —
  /// the refcount gate that makes in-place CopyFrom safe).
  std::shared_ptr<const EmbeddingSnapshot> spare_ NSC_GUARDED_BY(mu_);
  /// Freshest snapshot awaiting the background writer (latest-wins).
  std::shared_ptr<const EmbeddingSnapshot> pending_checkpoint_
      NSC_GUARDED_BY(mu_);
  Status checkpoint_status_ NSC_GUARDED_BY(mu_);
  int64_t checkpoint_step_ NSC_GUARDED_BY(mu_) = -1;
  int64_t publish_count_ NSC_GUARDED_BY(mu_) = 0;
  bool shutdown_ NSC_GUARDED_BY(mu_) = false;
  CondVar checkpoint_ready_;  ///< pending_checkpoint_ set, or shutdown.
  CondVar checkpoint_done_;   ///< A checkpoint write completed.

  // Started only when options_.checkpoint_path is non-empty; joined by
  // the destructor.
  std::thread checkpoint_thread_;
};

}  // namespace nsc

#endif  // NSCACHING_SERVE_SNAPSHOT_H_
