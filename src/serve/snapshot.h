// Snapshot publication: the bridge between the training thread and the
// serving layer.
//
// A production KGE system answers queries while the model keeps training.
// The two sides must never share mutable rows: a reader that observes a
// half-updated embedding produces a score that corresponds to no model
// state at all. The contract here is the classic double-buffered
// atomic-pointer publication scheme:
//
//   - EmbeddingSnapshot is an IMMUTABLE deep copy of the model at one
//     training step. Readers only ever touch snapshots.
//   - SnapshotPublisher keeps the latest snapshot behind an atomically
//     published shared_ptr. The train thread calls Publish() at a
//     configurable cadence (Trainer::EnableSnapshots ticks it at
//     mini-batch boundaries — the workers are parked at the ThreadPool
//     barrier, so the copy races with nothing); readers call Acquire(),
//     which pins the snapshot via refcount — publication never blocks a
//     reader, and a reader mid-query never blocks publication.
//   - Double buffering: the snapshot displaced by a publish is retired to
//     a spare slot and its buffers are reused for the NEXT publish once
//     every reader has drained (use_count() == 1 — the refcount gate), so
//     steady-state publication does two table copies and zero large
//     allocations.
//
// The same snapshot doubles as the crash-safe async checkpoint source:
// when SnapshotPublisherOptions::checkpoint_path (single file, temp +
// rename) or checkpoint_dir (a retained CheckpointSet —
// embedding/checkpoint_set.h) is set, a background writer thread
// serializes the freshest published snapshot, absorbing checkpoint I/O
// that previously stalled the training loop. Snapshot checkpoints are
// byte-identical to a serial SaveModel at the same step (pinned by
// tests/serve/snapshot_test.cc): the checkpoint format serializes logical
// rows only, and a snapshot is a logical copy.
//
// Hardening (README "Fault tolerance"): every checkpoint write runs
// under RetryWithBackoff (util/backoff.h) with shutdown-interruptible
// sleeps, its outcome counters surface through checkpoint_stats(), and
// IsStale() reports when the published snapshot has gone stale (the
// "publisher.stall" fault point, or age beyond stale_after_us) so the
// serving layer can degrade gracefully — answer from the stale snapshot
// and say so — instead of lying about freshness.
#ifndef NSCACHING_SERVE_SNAPSHOT_H_
#define NSCACHING_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "embedding/checkpoint_set.h"
#include "embedding/model.h"
#include "util/backoff.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nsc {

/// An immutable copy of one model state, tagged with the training step
/// (completed mini-batches) it was taken at. Readers hold snapshots via
/// shared_ptr (see SnapshotPublisher::Acquire) and may score against
/// model() freely from any number of threads — nothing mutates a
/// published snapshot.
class EmbeddingSnapshot {
 public:
  /// Deep-copies `model` (tables and scorer). Publisher-only entry point;
  /// readers receive snapshots, they never build them.
  EmbeddingSnapshot(const KgeModel& model, int64_t step)
      : model_(model.Clone()), step_(step) {}

  /// Overwrites this snapshot in place from `model` — the double-buffer
  /// reuse path. MUST only be called by the publisher while it is the
  /// sole owner (use_count() == 1): with no readers pinning the buffer,
  /// the mutation is invisible to everyone but the publisher.
  void CopyFrom(const KgeModel& model, int64_t step) {
    model_.CopyParametersFrom(model);
    step_ = step;
  }

  const KgeModel& model() const { return model_; }

  /// Completed training steps (mini-batches) at capture time; 0 for a
  /// pre-training snapshot of the initialized model.
  int64_t step() const { return step_; }

  /// Serializes the snapshot through SaveModel, crash-safely: the bytes
  /// go to `path`.tmp first and are atomically renamed over `path`, so a
  /// crash mid-write never leaves a torn checkpoint at `path`. Safe to
  /// call from any thread — the snapshot is immutable. Byte-identical to
  /// SaveModel(model_at_step, path) because the checkpoint format is
  /// layout-independent (logical rows only).
  Status SaveCheckpoint(const std::string& path) const;

 private:
  KgeModel model_;
  int64_t step_;
};

/// Configuration of a SnapshotPublisher.
struct SnapshotPublisherOptions {
  /// When non-empty, every `checkpoint_every`-th publish also enqueues
  /// the snapshot for the background checkpoint writer thread, which
  /// writes it to this path (write-to-temp + rename).
  std::string checkpoint_path;

  /// When non-empty, the writer thread instead maintains this directory
  /// as a CheckpointSet: one ckpt-<step>.nsc per written snapshot, the
  /// newest `checkpoint_keep` retained, manifest rewritten after each
  /// write. Crash-recoverable: a restart loads
  /// CheckpointSet::LoadLatestValid. Takes precedence over
  /// checkpoint_path when both are set.
  std::string checkpoint_dir;

  /// Checkpoints retained in checkpoint_dir mode (>= 1).
  int checkpoint_keep = 3;

  /// Write every Nth published snapshot (>= 1). Only the freshest pending
  /// snapshot is ever written: if publishes outpace the writer, stale
  /// pending checkpoints are superseded, never queued up.
  int checkpoint_every = 1;

  /// Retry policy for failed checkpoint writes. Transient failures
  /// (kIOError, kUnavailable) are retried with capped jittered
  /// exponential backoff; shutdown interrupts a backoff sleep
  /// immediately. After max_attempts the snapshot is given up on (the
  /// give-up is counted and last_checkpoint_status() carries the error)
  /// — a later publish enqueues fresher state anyway.
  BackoffOptions checkpoint_backoff;

  /// When > 0, IsStale() reports true once the newest publish is older
  /// than this many microseconds — the serving layer's signal to flag
  /// degraded answers with stale=1. 0 disables age-based staleness.
  int64_t stale_after_us = 0;
};

/// Counters of the background checkpoint writer, surfaced so operators
/// (and the robustness tests) can see retries and give-ups that would
/// otherwise be invisible: the writer never crashes the process over a
/// failed write.
struct CheckpointWriterStats {
  int64_t attempts = 0;    ///< Write attempts started, retries included.
  int64_t successes = 0;   ///< Snapshots durably checkpointed.
  int64_t failures = 0;    ///< Attempts that failed (each retry that
                           ///< fails counts again).
  int64_t retries = 0;     ///< Attempts beyond the first for a snapshot.
  int64_t give_ups = 0;    ///< Snapshots abandoned after exhausting
                           ///< max_attempts (or shutdown mid-retry).
  int64_t last_success_step = -1;  ///< Step of the newest durable write.
  Status last_status;      ///< Outcome of the last resolved snapshot.
};

/// Double-buffered, atomically published snapshot slot. One writer (the
/// train thread, via Publish), any number of readers (via Acquire).
class SnapshotPublisher {
 public:
  explicit SnapshotPublisher(SnapshotPublisherOptions options =
                                 SnapshotPublisherOptions());

  /// Joins the checkpoint writer after flushing any pending snapshot, so
  /// the freshest enqueued checkpoint is on disk when the dtor returns.
  ~SnapshotPublisher();

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Captures `model` at `step` and publishes it as the current snapshot.
  /// Single-writer: only one thread (the train thread) may call Publish.
  /// Reuses the retired buffer when its readers have drained; otherwise
  /// allocates a fresh copy. Readers pinning older snapshots are
  /// unaffected — their snapshots stay alive until released.
  void Publish(const KgeModel& model, int64_t step) NSC_EXCLUDES(mu_);

  /// The current snapshot, pinned (refcounted) — or nullptr before the
  /// first Publish. Lock-free with respect to Publish: a reader holding
  /// the returned pointer never blocks (and is never blocked by) a
  /// concurrent publication.
  std::shared_ptr<const EmbeddingSnapshot> Acquire() const;

  /// Step of the currently published snapshot; -1 before the first
  /// Publish.
  int64_t published_step() const {
    return published_step_.load(std::memory_order_acquire);
  }

  /// Status of the most recently completed background checkpoint write
  /// (OK before any write has been attempted).
  Status last_checkpoint_status() const NSC_EXCLUDES(mu_);

  /// Step of the most recent SUCCESSFUL background checkpoint write; -1
  /// before the first success (a failed write does not advance it — the
  /// step on disk is the step reported).
  int64_t last_checkpoint_step() const NSC_EXCLUDES(mu_);

  /// Blocks until a checkpoint at step >= `step` has been written (or
  /// `timeout_us` elapses). Returns true when the condition was reached.
  /// Test/shutdown hook — production code never waits on the writer.
  bool WaitForCheckpoint(int64_t step, int64_t timeout_us)
      NSC_EXCLUDES(mu_);

  /// Blocks until the writer has RESOLVED (written or given up on) at
  /// least `count` snapshots, or `timeout_us` elapses. The failure-path
  /// counterpart of WaitForCheckpoint, which never returns when every
  /// attempt fails.
  bool WaitForCheckpointOutcomes(int64_t count, int64_t timeout_us)
      NSC_EXCLUDES(mu_);

  /// True when this publisher runs a background checkpoint writer
  /// (checkpoint_path or checkpoint_dir configured).
  bool checkpointing_enabled() const {
    return !options_.checkpoint_path.empty() ||
           !options_.checkpoint_dir.empty();
  }

  /// Writer counters since construction (see CheckpointWriterStats).
  CheckpointWriterStats checkpoint_stats() const NSC_EXCLUDES(mu_);

  /// True when the published snapshot should be served as DEGRADED:
  /// either the "publisher.stall" fault point is armed (deterministic
  /// stall simulation) or stale_after_us > 0 and the newest publish is
  /// older than that. Callers keep answering from the stale snapshot —
  /// correctness is unaffected, only freshness — but must say so
  /// (stale=1 in serving responses).
  bool IsStale() const;

 private:
  void CheckpointLoop() NSC_EXCLUDES(mu_);

  /// One checkpoint write (CheckpointSet or single-file mode).
  Status WriteSnapshot(const EmbeddingSnapshot& snap) const;

  /// Backoff sleep that shutdown interrupts: returns false (canceling
  /// remaining retries) the moment shutdown_ is observed.
  bool BackoffSleep(int64_t sleep_us) NSC_EXCLUDES(mu_);

  const SnapshotPublisherOptions options_;

  // The published slot. Accessed ONLY through std::atomic_load /
  // atomic_exchange (the C++17 shared_ptr atomic-access free functions),
  // never under mu_ — that is what keeps Acquire() wait-free with
  // respect to the mutex-using checkpoint machinery below.
  std::shared_ptr<const EmbeddingSnapshot> current_;

  std::atomic<int64_t> published_step_{-1};

  /// Steady-clock microseconds of the newest publish; -1 before the
  /// first. Feeds IsStale()'s age check without taking mu_.
  std::atomic<int64_t> last_publish_us_{-1};

  /// The writer's target in checkpoint_dir mode; null otherwise.
  std::unique_ptr<CheckpointSet> checkpoint_set_;

  mutable Mutex mu_;
  /// The snapshot displaced by the last publish. Reused as the next
  /// publish target iff use_count() == 1 (publisher is the sole owner —
  /// the refcount gate that makes in-place CopyFrom safe).
  std::shared_ptr<const EmbeddingSnapshot> spare_ NSC_GUARDED_BY(mu_);
  /// Freshest snapshot awaiting the background writer (latest-wins).
  std::shared_ptr<const EmbeddingSnapshot> pending_checkpoint_
      NSC_GUARDED_BY(mu_);
  Status checkpoint_status_ NSC_GUARDED_BY(mu_);
  int64_t checkpoint_step_ NSC_GUARDED_BY(mu_) = -1;
  int64_t publish_count_ NSC_GUARDED_BY(mu_) = 0;
  CheckpointWriterStats writer_stats_ NSC_GUARDED_BY(mu_);
  bool shutdown_ NSC_GUARDED_BY(mu_) = false;
  CondVar checkpoint_ready_;  ///< pending_checkpoint_ set, or shutdown
                              ///< (also interrupts backoff sleeps).
  CondVar checkpoint_done_;   ///< A snapshot resolved (written/given up).

  // Started only when checkpointing_enabled(); joined by the destructor.
  std::thread checkpoint_thread_;
};

}  // namespace nsc

#endif  // NSCACHING_SERVE_SNAPSHOT_H_
