#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "util/logging.h"

namespace nsc {

namespace {

// A connection feeding us an unbounded "line" is either broken or
// hostile; bound its buffer instead of the process heap.
constexpr std::size_t kMaxInputBuffer = 1 << 20;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeServer::ServeServer(const SnapshotPublisher* publisher,
                         ServeServerOptions options)
    : publisher_(publisher), options_(std::move(options)) {
  CHECK(publisher != nullptr);
}

ServeServer::~ServeServer() { Shutdown(); }

Status ServeServer::Start() {
  CHECK(!started_.load()) << "Start() called twice";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket(): out of descriptors");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("cannot bind " + options_.host + ":" +
                           std::to_string(options_.port));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0 || !SetNonBlocking(wake_pipe_[0]) ||
      !SetNonBlocking(wake_pipe_[1]) || !SetNonBlocking(listen_fd_)) {
    Shutdown();
    return Status::IOError("cannot set up the event loop descriptors");
  }

  engine_ = std::make_unique<QueryEngine>(publisher_, options_.engine);
  started_.store(true);
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void ServeServer::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  // Engine teardown drains in-flight callbacks; Connections and the wake
  // pipe must still be alive here (see the member-order comment).
  engine_.reset();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ServeServer::WakeLoop() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 'w';
  // EAGAIN means a wakeup is already pending — exactly what we need.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

ServerStatsSnapshot ServeServer::stats() const {
  ServerStatsSnapshot snapshot;
  snapshot.accepted = counters_.accepted.load(std::memory_order_relaxed);
  snapshot.closed = counters_.closed.load(std::memory_order_relaxed);
  snapshot.idle_closed = counters_.idle_closed.load(std::memory_order_relaxed);
  snapshot.poll_interrupts =
      counters_.poll_interrupts.load(std::memory_order_relaxed);
  snapshot.poll_errors = counters_.poll_errors.load(std::memory_order_relaxed);
  snapshot.requests = counters_.requests.load(std::memory_order_relaxed);
  snapshot.overflowed = counters_.overflowed.load(std::memory_order_relaxed);
  return snapshot;
}

void ServeServer::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error: poll again.
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    // Response lines are small; Nagle would serialize request/response
    // round trips at full RTT granularity.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    conn->last_active_us = SteadyNowUs();
    connections_.emplace(fd, std::move(conn));
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeServer::HandleLine(const std::shared_ptr<Connection>& conn,
                             const std::string& line) {
  if (line.find_first_not_of(" \t") == std::string::npos) return;
  const uint64_t seq = conn->next_seq++;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  if (IsQuitRequest(line)) {
    QueueResponse(conn, seq, "BYE\n", /*close_after=*/true);
    return;
  }
  if (IsInfoRequest(line)) {
    const std::shared_ptr<const EmbeddingSnapshot> snap =
        publisher_->Acquire();
    InfoExtras extras;
    extras.stale = publisher_->IsStale();
    if (publisher_->checkpointing_enabled()) {
      const CheckpointWriterStats ckpt = publisher_->checkpoint_stats();
      extras.show_checkpoint = true;
      extras.ckpt_ok = ckpt.successes;
      extras.ckpt_fail = ckpt.give_ups;
      extras.ckpt_retries = ckpt.retries;
      extras.ckpt_step = ckpt.last_success_step;
    }
    QueueResponse(conn, seq, FormatInfoResponse(snap.get(), extras));
    return;
  }
  StatusOr<Query> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    QueueResponse(conn, seq, FormatError(parsed.status().message()));
    return;
  }
  // The completion callback runs on an engine worker; it only touches the
  // shared_ptr Connection and the wake pipe, both of which outlive the
  // engine (member destruction order in server.h).
  engine_->Submit(parsed.value(), [this, conn, seq](QueryResult result) {
    QueueResponse(conn, seq, FormatResponse(result));
  });
}

bool ServeServer::ReadAndDispatch(const std::shared_ptr<Connection>& conn) {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->last_active_us = SteadyNowUs();
      conn->in.append(buffer, static_cast<std::size_t>(n));
      if (conn->in.size() > kMaxInputBuffer) {
        counters_.overflowed.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      continue;
    }
    if (n == 0) return false;  // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // Dispatch every complete line; the tail stays buffered until its
  // newline arrives (partial-delivery tolerance, pinned by server_test).
  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = conn->in.find('\n', start);
    if (newline == std::string::npos) break;
    std::size_t end = newline;
    if (end > start && conn->in[end - 1] == '\r') --end;
    HandleLine(conn, conn->in.substr(start, end - start));
    start = newline + 1;
  }
  conn->in.erase(0, start);
  return true;
}

void ServeServer::QueueResponse(const std::shared_ptr<Connection>& conn,
                                uint64_t seq, std::string response,
                                bool close_after) {
  {
    MutexLock lock(&conn->mu);
    conn->reorder.emplace(seq,
                          std::make_pair(std::move(response), close_after));
    // Migrate every response that is now next in request order. The
    // engine's workers complete in any order; the socket sees request
    // order — the protocol's per-connection ordering promise.
    for (auto it = conn->reorder.find(conn->next_out_seq);
         it != conn->reorder.end();
         it = conn->reorder.find(++conn->next_out_seq)) {
      conn->out += it->second.first;
      if (it->second.second) conn->close_after_flush = true;
      conn->reorder.erase(it);
    }
  }
  WakeLoop();
}

bool ServeServer::FlushConnection(const std::shared_ptr<Connection>& conn) {
  std::string pending;
  bool close_after = false;
  {
    MutexLock lock(&conn->mu);
    pending.swap(conn->out);
    close_after = conn->close_after_flush;
  }
  if (pending.empty()) return !close_after;
  conn->last_active_us = SteadyNowUs();

  std::size_t written = 0;
  while (written < pending.size()) {
    const ssize_t n = ::write(conn->fd, pending.data() + written,
                              pending.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // Socket died.
  }
  if (written < pending.size()) {
    // Partial write: the remainder must precede anything a worker
    // appended while we were writing.
    MutexLock lock(&conn->mu);
    conn->out.insert(0, pending, written, pending.size() - written);
    return true;
  }
  return !close_after;
}

int ServeServer::PollTimeoutMs(int64_t now_us) const {
  if (options_.idle_timeout_ms <= 0 || connections_.empty()) return -1;
  const int64_t timeout_us = options_.idle_timeout_ms * 1000;
  int64_t nearest_us = timeout_us;
  for (const auto& entry : connections_) {
    const int64_t remaining =
        entry.second->last_active_us + timeout_us - now_us;
    if (remaining < nearest_us) nearest_us = remaining;
  }
  if (nearest_us <= 0) return 0;
  // Round UP to whole ms: rounding down would spin sub-ms wakeups while
  // a deadline is imminent but not reached.
  return static_cast<int>((nearest_us + 999) / 1000);
}

void ServeServer::ReapIdleConnections(int64_t now_us) {
  if (options_.idle_timeout_ms <= 0) return;
  const int64_t timeout_us = options_.idle_timeout_ms * 1000;
  for (auto it = connections_.begin(); it != connections_.end();) {
    const std::shared_ptr<Connection>& conn = it->second;
    bool idle = now_us - conn->last_active_us >= timeout_us;
    if (idle) {
      // Never reap a connection with responses still owed: a request
      // executing longer than the idle timeout must get its answer.
      MutexLock lock(&conn->mu);
      idle = conn->out.empty() && conn->reorder.empty() &&
             conn->next_out_seq == conn->next_seq;
    }
    if (idle) {
      ::close(conn->fd);
      it = connections_.erase(it);
      counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
      counters_.closed.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

void ServeServer::LoopThread() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  while (!shutdown_.load(std::memory_order_acquire)) {
    fds.clear();
    polled.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const auto& entry : connections_) {
      short events = POLLIN;
      {
        MutexLock lock(&entry.second->mu);
        if (!entry.second->out.empty() || entry.second->close_after_flush) {
          events |= POLLOUT;
        }
      }
      fds.push_back(pollfd{entry.first, events, 0});
      polled.push_back(entry.second);
    }

    const int ready =
        ::poll(fds.data(), fds.size(), PollTimeoutMs(SteadyNowUs()));
    if (ready < 0) {
      if (errno == EINTR) {
        // Interrupted by a signal: retry, counted (a server pinned at
        // 100% interrupts is diagnosable from stats()).
        counters_.poll_interrupts.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      counters_.poll_errors.fetch_add(1, std::memory_order_relaxed);
      if (errno == ENOMEM || errno == EAGAIN) {
        // Transient kernel pressure: back off briefly and retry rather
        // than tearing down every connection.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      LOG_ERROR << "serve loop poll() failed: " << std::strerror(errno)
                << "; shutting the event loop down";
      break;  // Programming error (EBADF/EFAULT/EINVAL): unrecoverable.
    }
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) != 0) AcceptNew();

    for (std::size_t i = 2; i < fds.size(); ++i) {
      const std::shared_ptr<Connection>& conn = polled[i - 2];
      bool alive = true;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        alive = ReadAndDispatch(conn);
      }
      // Flush unconditionally: completions queued since the last poll may
      // not have POLLOUT armed yet, and this is also where a drained QUIT
      // connection closes.
      if (alive) alive = FlushConnection(conn);
      if (!alive) {
        ::close(conn->fd);
        connections_.erase(conn->fd);
        counters_.closed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ReapIdleConnections(SteadyNowUs());
  }
  for (const auto& entry : connections_) ::close(entry.first);
  connections_.clear();
}

}  // namespace nsc
