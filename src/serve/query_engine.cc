#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "util/fault.h"
#include "util/logging.h"

namespace nsc {

namespace {

bool IsTopK(QueryKind kind) {
  return kind == QueryKind::kTopKHeads || kind == QueryKind::kTopKTails;
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Expired(int64_t deadline_at_us) {
  return deadline_at_us > 0 && SteadyNowUs() > deadline_at_us;
}

Status DeadlineShedStatus(int64_t deadline_us) {
  return Status::DeadlineExceeded("deadline of " +
                                  std::to_string(deadline_us) +
                                  " us expired before execution");
}

int HistBucket(std::size_t batch_size) {
  // 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65+.
  if (batch_size <= 1) return 0;
  int bucket = 1;
  std::size_t upper = 2;
  while (bucket < BatchStatsSnapshot::kBuckets - 1 && batch_size > upper) {
    ++bucket;
    upper *= 2;
  }
  return bucket;
}

}  // namespace

QueryEngine::QueryEngine(const SnapshotPublisher* publisher,
                         QueryEngineOptions options)
    : publisher_(publisher), options_(options) {
  CHECK(publisher != nullptr);
  CHECK_GE(options_.num_workers, 1);
  CHECK_GE(options_.max_batch, std::size_t{1});
  CHECK_GE(options_.max_wait_us, 0);
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void QueryEngine::Submit(const Query& query, QueryCallback done) {
  CHECK(done != nullptr);
  // The deadline budget starts NOW: time spent queued counts against it,
  // which is the whole point — a backlogged engine sheds instead of
  // answering late.
  const int64_t deadline_at_us =
      query.deadline_us > 0 ? SteadyNowUs() + query.deadline_us : 0;
  bool rejected = false;
  std::size_t depth = 0;
  {
    MutexLock lock(&mu_);
    // Accepting after shutdown would leak the callback (workers are
    // draining); the single in-process producer patterns (server loop,
    // LocalClient) all stop submitting before destroying the engine.
    CHECK(!shutdown_) << "Submit after QueryEngine shutdown";
    depth = queue_.size();
    rejected = (options_.max_queue > 0 && depth >= options_.max_queue) ||
               NSC_FAULT_POINT("serve.overload").error();
    if (rejected) {
      ++stats_.overload_rejected;
    } else {
      queue_.push_back(Pending{query, std::move(done), deadline_at_us});
    }
  }
  if (rejected) {
    // Admission control: refuse at the door with an explicit error — the
    // cheap failure point — rather than queue unboundedly. Callback runs
    // with no engine lock held, like every completion.
    QueryResult result;
    result.kind = query.kind;
    result.status = Status::Unavailable(
        "overloaded: " + std::to_string(depth) + " requests queued, limit " +
        std::to_string(options_.max_queue));
    done(std::move(result));
    return;
  }
  // NotifyAll, not NotifyOne: a lingering batcher may be the one woken,
  // and it only takes same-group requests — an idle worker must also wake
  // to pick up a non-matching request.
  work_ready_.NotifyAll();
}

BatchStatsSnapshot QueryEngine::batch_stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void QueryEngine::CollectTopKGroupLocked(const Query& head,
                                         std::vector<Pending>* batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch->size() < options_.max_batch;) {
    if (it->query.kind == head.kind && it->query.k == head.k) {
      batch->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryEngine::WorkerLoop() {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutdown_) work_ready_.Wait(&mu_);
      if (queue_.empty()) return;  // Shutdown with nothing left to drain.
      Pending first = std::move(queue_.front());
      queue_.pop_front();
      const Query head = first.query;
      batch.push_back(std::move(first));
      if (IsTopK(head.kind) && options_.max_batch > 1) {
        // Linger for coalescible requests: collect whatever is already
        // queued, then wait out the remaining linger budget as long as
        // the batch has room. Non-matching requests are left queued for
        // the other workers (Submit wakes them all).
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.max_wait_us);
        for (;;) {
          CollectTopKGroupLocked(head, &batch);
          if (batch.size() >= options_.max_batch || shutdown_) break;
          const auto now = std::chrono::steady_clock::now();
          if (now >= deadline) break;
          const int64_t remaining_us =
              std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                    now)
                  .count();
          work_ready_.WaitFor(&mu_, remaining_us);
        }
      }
    }
    if (IsTopK(batch[0].query.kind)) {
      ExecuteTopKBatch(&batch);
    } else {
      ExecuteSingle(&batch[0]);
    }
  }
}

Status QueryEngine::Validate(const Query& query,
                             const EmbeddingSnapshot& snap) {
  const int32_t num_entities = snap.model().num_entities();
  const int32_t num_relations = snap.model().num_relations();
  if (query.r < 0 || query.r >= num_relations) {
    return Status::InvalidArgument("relation id out of range");
  }
  const bool needs_h = query.kind != QueryKind::kTopKHeads;
  const bool needs_t = query.kind != QueryKind::kTopKTails;
  if (needs_h && (query.h < 0 || query.h >= num_entities)) {
    return Status::InvalidArgument("head entity id out of range");
  }
  if (needs_t && (query.t < 0 || query.t >= num_entities)) {
    return Status::InvalidArgument("tail entity id out of range");
  }
  return Status::OK();
}

void QueryEngine::ExecuteSingle(Pending* pending) {
  QueryResult result;
  result.kind = pending->query.kind;
  // kLatency on "serve.execute" sleeps HERE, before the deadline check —
  // armed latency pushes queued requests past their deadlines exactly the
  // way a slow kernel would, so shedding is deterministically testable.
  NSC_FAULT_POINT("serve.execute");
  if (Expired(pending->deadline_at_us)) {
    result.status = DeadlineShedStatus(pending->query.deadline_us);
    {
      MutexLock lock(&mu_);
      ++stats_.deadline_shed;
    }
    pending->done(std::move(result));
    return;
  }
  std::shared_ptr<const EmbeddingSnapshot> snap = publisher_->Acquire();
  if (snap == nullptr) {
    result.status = Status::FailedPrecondition("no snapshot published yet");
    pending->done(std::move(result));
    return;
  }
  result.step = snap->step();
  result.snapshot = snap;
  result.stale = publisher_->IsStale();
  result.status = Validate(pending->query, *snap);
  if (result.status.ok()) {
    const Query& q = pending->query;
    const KgeModel& model = snap->model();
    if (q.kind == QueryKind::kScore) {
      result.score = model.Score(q.h, q.r, q.t);
    } else {
      // Rank = 1 + #(candidates scoring strictly higher), over the full
      // entity sweep. The scratch slab is thread_local in the repo's
      // hot-path idiom: allocation-free per worker once warm.
      static thread_local std::vector<double> scratch;
      scratch.resize(static_cast<std::size_t>(model.num_entities()));
      const EntityId target = q.kind == QueryKind::kRankHead ? q.h : q.t;
      if (q.kind == QueryKind::kRankHead) {
        model.ScoreAllHeads(q.r, q.t, scratch.data());
      } else {
        model.ScoreAllTails(q.h, q.r, scratch.data());
      }
      const double reference = scratch[static_cast<std::size_t>(target)];
      int64_t higher = 0;
      for (const double s : scratch) {
        if (s > reference) ++higher;
      }
      result.rank = 1 + higher;
      result.score = reference;
    }
  }
  {
    MutexLock lock(&mu_);
    ++stats_.single_requests;
  }
  pending->done(std::move(result));
}

void QueryEngine::ExecuteTopKBatch(std::vector<Pending>* batch) {
  const QueryKind kind = (*batch)[0].query.kind;
  const std::size_t k = (*batch)[0].query.k;
  std::vector<QueryResult> results(batch->size());
  // One latency fault per batched kernel call, matching where real
  // execution cost lands (see ExecuteSingle).
  NSC_FAULT_POINT("serve.execute");
  std::shared_ptr<const EmbeddingSnapshot> snap = publisher_->Acquire();
  const bool stale = publisher_->IsStale();

  // Shed expired members, validate the rest; only live, valid requests
  // reach the kernel.
  std::vector<std::size_t> valid;
  std::size_t shed = 0;
  valid.reserve(batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    QueryResult& result = results[i];
    result.kind = kind;
    if (Expired((*batch)[i].deadline_at_us)) {
      result.status = DeadlineShedStatus((*batch)[i].query.deadline_us);
      ++shed;
      continue;
    }
    if (snap == nullptr) {
      result.status = Status::FailedPrecondition("no snapshot published yet");
      continue;
    }
    result.step = snap->step();
    result.snapshot = snap;
    result.stale = stale;
    result.status = Validate((*batch)[i].query, *snap);
    if (result.status.ok()) valid.push_back(i);
  }

  if (!valid.empty()) {
    const KgeModel& model = snap->model();
    std::vector<std::vector<TopKEntry>> answers;
    if (kind == QueryKind::kTopKTails) {
      std::vector<std::pair<EntityId, RelationId>> queries;
      queries.reserve(valid.size());
      for (const std::size_t i : valid) {
        queries.emplace_back((*batch)[i].query.h, (*batch)[i].query.r);
      }
      model.TopKTailsBatch(queries, k, &answers);
    } else {
      std::vector<std::pair<RelationId, EntityId>> queries;
      queries.reserve(valid.size());
      for (const std::size_t i : valid) {
        queries.emplace_back((*batch)[i].query.r, (*batch)[i].query.t);
      }
      model.TopKHeadsBatch(queries, k, &answers);
    }
    for (std::size_t j = 0; j < valid.size(); ++j) {
      results[valid[j]].topk = std::move(answers[j]);
    }
  }

  {
    MutexLock lock(&mu_);
    stats_.topk_requests += batch->size();
    ++stats_.topk_batches;
    if (batch->size() >= 2) stats_.coalesced_requests += batch->size();
    ++stats_.hist[HistBucket(batch->size())];
    stats_.deadline_shed += shed;
  }
  for (std::size_t i = 0; i < batch->size(); ++i) {
    (*batch)[i].done(std::move(results[i]));
  }
}

}  // namespace nsc
