#include "serve/local_client.h"

#include <future>
#include <utility>

namespace nsc {

QueryResult LocalClient::Call(const Query& query) {
  // One promise per call keeps the client stateless and thread-safe; the
  // engine guarantees exactly one callback invocation per Submit.
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  engine_->Submit(query, [&promise](QueryResult result) {
    promise.set_value(std::move(result));
  });
  return future.get();
}

}  // namespace nsc
