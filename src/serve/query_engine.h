// The online query engine of the serving subsystem: concurrent
// score / rank / top-K requests answered from pinned snapshots, with
// cross-request batching of top-K retrievals.
//
// Why batching: the PR 6 kernels answer a BATCH of top-K queries in one
// tile-outer/query-inner pass over the entity table — the table streams
// from memory once instead of once per query. Under concurrent serving
// traffic, the queries that could share a pass arrive on DIFFERENT
// connections; coalescing them is a server-side job. The engine keeps one
// pending-request queue; a worker that dequeues a top-K request lingers up
// to max_wait_us for more requests of the same (side, k) group (bounded by
// max_batch) before answering the whole group through
// KgeModel::TopK{Heads,Tails}Batch. Batching is invisible in the results:
// the batched kernels are bit-identical to per-query retrieval (the PR 6
// parity contract), and every response reports the snapshot step it was
// answered from.
//
// Snapshot pinning: each executed request (or batch) acquires the current
// snapshot once and answers entirely from it. Publication never blocks a
// reader; a request in flight keeps its snapshot alive via refcount. The
// pinned snapshot is returned in QueryResult::snapshot so in-process
// callers (tests, LocalClient users) can verify answers against the exact
// model state that produced them — the concurrent-correctness contract of
// tests/serve/stress_test.cc.
//
// Lock protocol (machine-checked by -Wthread-safety): the pending queue,
// batching counters and shutdown flag are NSC_GUARDED_BY(mu_); request
// execution (the expensive part) runs OUTSIDE the lock; public entry
// points are NSC_EXCLUDES(mu_). Callbacks are invoked with no engine lock
// held, so a callback may re-enter Submit().
//
// Hardening (README "Fault tolerance"): requests may carry a deadline
// (Query::deadline_us) — work still queued when it expires is SHED with
// kDeadlineExceeded instead of executed, so a backlogged engine fails
// requests explicitly rather than answering them uselessly late. A
// bounded queue (QueryEngineOptions::max_queue) rejects submissions
// beyond the bound with kUnavailable ("overloaded") at Submit time —
// admission control, the cheap place to fail. Every answer reports
// whether its snapshot was stale (QueryResult::stale, from
// SnapshotPublisher::IsStale) so degraded freshness is visible, never
// silent. Fault points: "serve.execute" (kLatency delays execution —
// deterministic deadline pressure), "serve.overload" (forces the
// admission check to reject).
#ifndef NSCACHING_SERVE_QUERY_ENGINE_H_
#define NSCACHING_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "kg/types.h"
#include "serve/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/topk.h"

namespace nsc {

/// Knobs of the query engine.
struct QueryEngineOptions {
  /// Worker threads executing requests. 1 is valid (batching still
  /// coalesces whatever queues up behind the single worker).
  int num_workers = 2;

  /// Most top-K requests coalesced into one batched kernel call. 1
  /// disables cross-request batching (the unbatched baseline of
  /// bench_serving).
  std::size_t max_batch = 64;

  /// Longest a worker lingers for additional same-group top-K requests
  /// after dequeuing the first, in microseconds. 0 = no linger: only
  /// requests already queued when the worker looks are coalesced.
  int64_t max_wait_us = 200;

  /// Admission control: most requests allowed in the pending queue.
  /// A Submit beyond the bound is rejected immediately with
  /// kUnavailable ("overloaded ...") instead of queued — bounded latency
  /// beats unbounded memory. 0 = unbounded (the default; in-process
  /// callers are trusted).
  std::size_t max_queue = 0;
};

/// What a request asks of the engine.
enum class QueryKind {
  kScore,      ///< Plausibility of one (h, r, t).
  kRankHead,   ///< Rank of h among all candidate heads for (r, t).
  kRankTail,   ///< Rank of t among all candidate tails for (h, r).
  kTopKHeads,  ///< Best-k candidate heads for (r, t).
  kTopKTails,  ///< Best-k candidate tails for (h, r).
};

/// One request. Field use by kind: kScore/kRank* use (h, r, t);
/// kTopKHeads uses (r, t, k); kTopKTails uses (h, r, k).
struct Query {
  QueryKind kind = QueryKind::kScore;
  EntityId h = 0;
  RelationId r = 0;
  EntityId t = 0;
  std::size_t k = 0;
  /// Relative deadline from Submit, microseconds; 0 = none. A request
  /// still waiting when it expires is answered kDeadlineExceeded
  /// WITHOUT being executed (shed). Declared last so existing positional
  /// aggregate initializers stay valid.
  int64_t deadline_us = 0;
};

/// One answer. `status` is non-OK for malformed requests (out-of-range
/// ids) or when no snapshot has been published yet; the payload fields
/// are only meaningful when ok. `rank` is optimistic/raw: 1 + the number
/// of candidates scoring strictly higher than the queried entity, over
/// ALL entities (no filtering) — recomputable bit-identically as a
/// ScoreAll sweep + count against `snapshot`.
struct QueryResult {
  Status status;
  QueryKind kind = QueryKind::kScore;
  int64_t step = -1;  ///< Snapshot step that answered the request.
  double score = 0.0;
  int64_t rank = 0;
  std::vector<TopKEntry> topk;  ///< index fields are EntityIds.
  /// The pinned snapshot the answer was computed from (null on error
  /// before a snapshot was acquired). In-process verification hook.
  std::shared_ptr<const EmbeddingSnapshot> snapshot;
  /// True when the publisher reported the snapshot stale at answer time
  /// (SnapshotPublisher::IsStale): the answer is still exact against
  /// `snapshot`, only its freshness is degraded. Wire responses carry
  /// this as " stale=1".
  bool stale = false;
};

/// Completion callback; invoked exactly once per Submit, on a worker
/// thread, with no engine lock held.
using QueryCallback = std::function<void(QueryResult)>;

/// Counters of the cross-request batcher, for bench reporting and tests.
/// Histogram buckets by realized batch size: 1, 2, 3-4, 5-8, 9-16,
/// 17-32, 33-64, 65+.
struct BatchStatsSnapshot {
  static constexpr int kBuckets = 8;
  uint64_t topk_requests = 0;   ///< Top-K requests executed.
  uint64_t topk_batches = 0;    ///< Batched kernel calls issued for them.
  uint64_t coalesced_requests = 0;  ///< Requests served in batches >= 2.
  uint64_t single_requests = 0;     ///< Score/rank requests executed.
  uint64_t hist[kBuckets] = {0, 0, 0, 0, 0, 0, 0, 0};
  uint64_t overload_rejected = 0;  ///< Submits refused by admission
                                   ///< control (kUnavailable).
  uint64_t deadline_shed = 0;  ///< Requests expired before execution
                               ///< (kDeadlineExceeded, never run).

  /// Mean realized top-K batch size (1.0 when batching never coalesced).
  double mean_batch() const {
    return topk_batches > 0
               ? static_cast<double>(topk_requests) /
                     static_cast<double>(topk_batches)
               : 0.0;
  }
};

/// Concurrent query front-end over a SnapshotPublisher. Thread-safe:
/// Submit may be called from any number of threads (the TCP server's
/// event loop, LocalClient callers, tests).
class QueryEngine {
 public:
  /// `publisher` is borrowed and must outlive the engine.
  explicit QueryEngine(const SnapshotPublisher* publisher,
                       QueryEngineOptions options = QueryEngineOptions());

  /// Drains the queue (every accepted request is answered), then joins
  /// the workers.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enqueues a request; `done` fires exactly once with the result.
  void Submit(const Query& query, QueryCallback done) NSC_EXCLUDES(mu_);

  /// Point-in-time copy of the batching counters.
  BatchStatsSnapshot batch_stats() const NSC_EXCLUDES(mu_);

  const QueryEngineOptions& options() const { return options_; }

 private:
  struct Pending {
    Query query;
    QueryCallback done;
    /// Absolute steady-clock expiry in microseconds; 0 = no deadline.
    /// Fixed at Submit so queueing time counts against the budget.
    int64_t deadline_at_us = 0;
  };

  void WorkerLoop() NSC_EXCLUDES(mu_);

  /// Moves every queued request matching `head`'s (kind, k) group into
  /// `batch`, preserving arrival order of both the batch and the
  /// remaining queue, until `batch` reaches max_batch.
  void CollectTopKGroupLocked(const Query& head, std::vector<Pending>* batch)
      NSC_REQUIRES(mu_);

  /// Executes a score/rank request on the calling worker thread.
  void ExecuteSingle(Pending* pending);

  /// Executes a same-(kind, k) group of top-K requests through the
  /// batched retrieval kernels.
  void ExecuteTopKBatch(std::vector<Pending>* batch);

  /// Validates `query` against `snapshot`'s id spaces.
  static Status Validate(const Query& query, const EmbeddingSnapshot& snap);

  const SnapshotPublisher* publisher_;
  const QueryEngineOptions options_;

  mutable Mutex mu_;
  std::deque<Pending> queue_ NSC_GUARDED_BY(mu_);
  BatchStatsSnapshot stats_ NSC_GUARDED_BY(mu_);
  bool shutdown_ NSC_GUARDED_BY(mu_) = false;
  CondVar work_ready_;

  std::vector<std::thread> workers_;
};

}  // namespace nsc

#endif  // NSCACHING_SERVE_QUERY_ENGINE_H_
