// The nsc_serve wire protocol: line-delimited ASCII over TCP, version 1.
//
// One request per '\n'-terminated line (a trailing '\r' is stripped, so
// `nc`/telnet work), one response line per request, answered in request
// order per connection. Ids are decimal; scores are printed with %.17g,
// which round-trips an IEEE double exactly — a client parsing the text
// recovers the bit-identical score the kernel computed.
//
//   request                          response
//   SCORE <h> <r> <t>                SCORE <step> <score>
//   RANK HEAD <h> <r> <t>            RANK <step> <rank>
//   RANK TAIL <h> <r> <t>            RANK <step> <rank>
//   TOPK HEADS <r> <t> <k>           TOPK <step> <n> <id>:<score> ...
//   TOPK TAILS <h> <r> <k>           TOPK <step> <n> <id>:<score> ...
//   INFO                             INFO <step> <entities> <relations>
//                                         <dim> <scorer> [extras]
//   QUIT                             BYE   (then the server closes)
//   (anything else / bad ids)        ERR <message>
//
// Robustness extensions (README "Fault tolerance"):
//
//   - Any SCORE/RANK/TOPK request may be prefixed `DEADLINE <us> `
//     (e.g. `DEADLINE 5000 SCORE 1 0 2`): the engine sheds the request
//     with `ERR deadline ...` if it is still queued when the budget
//     expires — an explicit failure instead of a uselessly late answer.
//   - An engine over its admission bound answers `ERR overloaded ...`.
//   - A response answered from a snapshot the publisher reports STALE
//     carries a trailing ` stale=1` (the answer is still exact against
//     its <step>; only freshness is degraded).
//   - INFO [extras]: ` ckpt_ok=<n> ckpt_fail=<n> ckpt_retries=<n>
//     ckpt_step=<n>` when background checkpointing is configured, and
//     ` stale=1` when the snapshot is stale. A plain server emits the
//     bare 6-field line, unchanged from protocol version 1.
//
// <step> is the training step of the snapshot that answered the request —
// the staleness handle: a client comparing steps across responses observes
// exactly when a new snapshot was published. INFO and QUIT are handled by
// the server itself; everything else round-trips through the QueryEngine
// (so TOPK requests from different connections coalesce into batched
// kernel calls).
#ifndef NSCACHING_SERVE_PROTOCOL_H_
#define NSCACHING_SERVE_PROTOCOL_H_

#include <string>

#include "serve/query_engine.h"
#include "util/status.h"

namespace nsc {

/// Parses one request line (no trailing newline) into a Query. INFO/QUIT
/// are NOT queries — test with IsInfoRequest/IsQuitRequest first.
StatusOr<Query> ParseRequestLine(const std::string& line);

bool IsInfoRequest(const std::string& line);
bool IsQuitRequest(const std::string& line);

/// Formats the response line (with trailing '\n') for a completed query.
/// A result answered from a stale snapshot gets a trailing " stale=1".
std::string FormatResponse(const QueryResult& result);

/// Optional INFO fields (see the header comment). Defaults produce the
/// bare protocol-v1 INFO line.
struct InfoExtras {
  /// Append the ckpt_* fields (set when checkpointing is configured).
  bool show_checkpoint = false;
  int64_t ckpt_ok = 0;       ///< Checkpoints durably written.
  int64_t ckpt_fail = 0;     ///< Snapshots given up on.
  int64_t ckpt_retries = 0;  ///< Write attempts beyond the first.
  int64_t ckpt_step = -1;    ///< Step of the newest durable checkpoint.
  bool stale = false;        ///< Append " stale=1".
};

/// Formats the INFO response for the given snapshot (or the ERR line when
/// `snapshot` is null — nothing published yet).
std::string FormatInfoResponse(const EmbeddingSnapshot* snapshot,
                               const InfoExtras& extras = InfoExtras());

/// Formats an ERR response line (with trailing '\n').
std::string FormatError(const std::string& message);

}  // namespace nsc

#endif  // NSCACHING_SERVE_PROTOCOL_H_
