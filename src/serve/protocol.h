// The nsc_serve wire protocol: line-delimited ASCII over TCP, version 1.
//
// One request per '\n'-terminated line (a trailing '\r' is stripped, so
// `nc`/telnet work), one response line per request, answered in request
// order per connection. Ids are decimal; scores are printed with %.17g,
// which round-trips an IEEE double exactly — a client parsing the text
// recovers the bit-identical score the kernel computed.
//
//   request                          response
//   SCORE <h> <r> <t>                SCORE <step> <score>
//   RANK HEAD <h> <r> <t>            RANK <step> <rank>
//   RANK TAIL <h> <r> <t>            RANK <step> <rank>
//   TOPK HEADS <r> <t> <k>           TOPK <step> <n> <id>:<score> ...
//   TOPK TAILS <h> <r> <k>           TOPK <step> <n> <id>:<score> ...
//   INFO                             INFO <step> <entities> <relations>
//                                         <dim> <scorer>
//   QUIT                             BYE   (then the server closes)
//   (anything else / bad ids)        ERR <message>
//
// <step> is the training step of the snapshot that answered the request —
// the staleness handle: a client comparing steps across responses observes
// exactly when a new snapshot was published. INFO and QUIT are handled by
// the server itself; everything else round-trips through the QueryEngine
// (so TOPK requests from different connections coalesce into batched
// kernel calls).
#ifndef NSCACHING_SERVE_PROTOCOL_H_
#define NSCACHING_SERVE_PROTOCOL_H_

#include <string>

#include "serve/query_engine.h"
#include "util/status.h"

namespace nsc {

/// Parses one request line (no trailing newline) into a Query. INFO/QUIT
/// are NOT queries — test with IsInfoRequest/IsQuitRequest first.
StatusOr<Query> ParseRequestLine(const std::string& line);

bool IsInfoRequest(const std::string& line);
bool IsQuitRequest(const std::string& line);

/// Formats the response line (with trailing '\n') for a completed query.
std::string FormatResponse(const QueryResult& result);

/// Formats the INFO response for the given snapshot (or the ERR line when
/// `snapshot` is null — nothing published yet).
std::string FormatInfoResponse(const EmbeddingSnapshot* snapshot);

/// Formats an ERR response line (with trailing '\n').
std::string FormatError(const std::string& message);

}  // namespace nsc

#endif  // NSCACHING_SERVE_PROTOCOL_H_
