// nsc_serve's TCP front-end: a poll(2)-based event loop speaking the
// line-delimited protocol of serve/protocol.h, with request execution
// delegated to the QueryEngine worker pool.
//
// Threading model — exactly two kinds of thread touch a connection:
//
//   - The EVENT LOOP thread (one per server) owns every fd: it accepts,
//     reads, assembles request lines, and is the ONLY thread that ever
//     write(2)s to a socket or closes it. Per-connection input state
//     (Connection::in) is loop-private and needs no lock.
//   - ENGINE WORKER threads complete requests: the completion callback
//     hands the response line to the connection's reorder buffer (under
//     Connection::mu — the one lock of the protocol, machine-checked by
//     -Wthread-safety) and wakes the loop through a self-pipe. The loop
//     drains output buffers into the sockets, handling partial writes via
//     POLLOUT. The loop assigns every request a per-connection sequence
//     number at dispatch; completions landing ahead of an earlier
//     still-in-flight request park in the reorder buffer until the gap
//     closes, so responses hit the socket strictly in request order —
//     the protocol's ordering promise — even though the worker pool (and
//     the cross-connection batcher) completes them in any order. QUIT's
//     BYE takes a sequence number like everything else, so it drains
//     after every earlier response and only then closes the connection.
//
// Connections are shared_ptr-owned: a worker completing a request after
// the peer hung up appends to a buffer that will simply never be flushed
// (the loop has already dropped the fd) — no use-after-free, no write to
// a recycled descriptor, because only the loop writes to fds.
//
// No external dependencies: plain POSIX sockets + poll, loopback-friendly,
// ephemeral-port capable (port 0 + port() for tests).
#ifndef NSCACHING_SERVE_SERVER_H_
#define NSCACHING_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nsc {

/// Configuration of a ServeServer.
struct ServeServerOptions {
  /// Bind address. Default loopback: nsc_serve is a backend, not an
  /// internet-facing listener.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (resolved port via port() after Start()).
  int port = 0;
  /// Engine knobs (worker pool, cross-request batching, admission
  /// control, deadlines).
  QueryEngineOptions engine;
  /// Close a connection with no traffic and no in-flight requests for
  /// this long. 0 = never (the default): an idle client holding an fd
  /// is only a problem for long-lived deployments, which opt in.
  int64_t idle_timeout_ms = 0;
};

/// Point-in-time counters of the TCP front-end (ServeServer::stats) —
/// the observability half of the hardening work: a served failure that
/// no counter records might as well not have happened.
struct ServerStatsSnapshot {
  uint64_t accepted = 0;         ///< Connections accepted.
  uint64_t closed = 0;           ///< Connections closed, any reason.
  uint64_t idle_closed = 0;      ///< ... of which reaped by idle timeout.
  uint64_t poll_interrupts = 0;  ///< poll() EINTR retries.
  uint64_t poll_errors = 0;      ///< poll() failures other than EINTR.
  uint64_t requests = 0;         ///< Request lines dispatched.
  uint64_t overflowed = 0;       ///< Connections dropped for an
                                 ///< over-limit input buffer.
};

/// The server. Lifecycle: construct → Start() → [serve] → Shutdown()
/// (idempotent; also run by the destructor).
class ServeServer {
 public:
  /// One accepted connection. Public for the thread-safety negative
  /// compile test (tests/static/thread_safety_negative.cc violates the
  /// `out` protocol on purpose); not part of the stable API.
  struct Connection {
    explicit Connection(int fd_in) : fd(fd_in) {}

    const int fd;

    /// Input byte buffer. Loop-thread-private: bytes land here from
    /// read(2) and leave as parsed request lines, all on the event loop.
    std::string in;

    /// Next request sequence number. Loop-thread-private: assigned at
    /// dispatch, one per request line (including INFO/ERR/BYE).
    uint64_t next_seq = 0;

    /// Steady-clock microseconds of the last read or flushed write.
    /// Loop-thread-private; feeds the idle-timeout reaper.
    int64_t last_active_us = 0;

    /// The output protocol: completed responses enter `reorder` under mu
    /// keyed by their request sequence, migrate into `out` the moment
    /// they are next in request order, and are drained into the socket by
    /// the event loop only.
    Mutex mu;
    std::string out NSC_GUARDED_BY(mu);
    /// Out-of-order completions parked until the sequence gap closes;
    /// the bool is QUIT's close-after-this marker.
    std::map<uint64_t, std::pair<std::string, bool>> reorder
        NSC_GUARDED_BY(mu);
    /// Sequence number the next `out`-bound response must carry.
    uint64_t next_out_seq NSC_GUARDED_BY(mu) = 0;
    /// Close the socket once `out` has fully drained (QUIT's BYE moved
    /// into `out`).
    bool close_after_flush NSC_GUARDED_BY(mu) = false;
  };

  /// `publisher` is borrowed and must outlive the server.
  ServeServer(const SnapshotPublisher* publisher, ServeServerOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens and starts the event loop thread. Fails with IOError
  /// when the address cannot be bound.
  Status Start();

  /// The bound port (resolved when options.port == 0). Valid after a
  /// successful Start().
  int port() const { return port_; }

  /// Stops accepting, closes every connection, drains the engine and
  /// joins the loop. Idempotent.
  void Shutdown();

  /// The engine, for in-process clients (LocalClient) sharing the
  /// server's batcher with TCP traffic. Valid between Start() and
  /// Shutdown().
  QueryEngine* engine() { return engine_.get(); }

  /// Front-end counters (accepts, closes, poll retries/failures, ...).
  /// Callable from any thread.
  ServerStatsSnapshot stats() const;

 private:
  void LoopThread();
  void AcceptNew();
  /// Closes connections idle (no traffic, nothing queued or in flight)
  /// past options.idle_timeout_ms. No-op when the timeout is 0.
  void ReapIdleConnections(int64_t now_us);
  /// poll() timeout honoring the nearest idle deadline; -1 (block
  /// forever) when idle reaping is off or there are no connections.
  int PollTimeoutMs(int64_t now_us) const;
  /// Reads from `conn`, splits complete lines, dispatches them. Returns
  /// false when the connection reached EOF/error and must be dropped.
  bool ReadAndDispatch(const std::shared_ptr<Connection>& conn);
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line);
  /// Delivers the completed response for request `seq`, migrates every
  /// now-in-order response into the output buffer, and wakes the loop.
  /// Callable from any thread.
  void QueueResponse(const std::shared_ptr<Connection>& conn, uint64_t seq,
                     std::string response, bool close_after = false);
  /// Flushes pending output. Returns false when the socket died or the
  /// connection completed a close_after_flush drain.
  bool FlushConnection(const std::shared_ptr<Connection>& conn);
  void WakeLoop();

  const SnapshotPublisher* publisher_;
  const ServeServerOptions options_;
  int port_ = 0;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> started_{false};

  // Loop-thread-private (created before the loop starts, cleared after it
  // joins).
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  // Monotonic counters behind stats(); atomics, so the loop and workers
  // bump them without a lock and stats() reads from any thread.
  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> closed{0};
    std::atomic<uint64_t> idle_closed{0};
    std::atomic<uint64_t> poll_interrupts{0};
    std::atomic<uint64_t> poll_errors{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> overflowed{0};
  };
  Counters counters_;

  std::thread loop_;

  // Declared last so it is destroyed FIRST: engine teardown drains worker
  // callbacks, which touch shared_ptr Connections and the wake pipe —
  // both still alive at that point.
  std::unique_ptr<QueryEngine> engine_;
};

}  // namespace nsc

#endif  // NSCACHING_SERVE_SERVER_H_
