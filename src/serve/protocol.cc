#include "serve/protocol.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace nsc {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Strict decimal parse into [0, INT32_MAX]; the engine does the
/// model-shape range check, this only rejects non-numeric garbage.
bool ParseId(const std::string& token, int32_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  if (value < 0 || value > INT32_MAX) return false;
  *out = static_cast<int32_t>(value);
  return true;
}

bool ParseK(const std::string& token, std::size_t* out) {
  int32_t value = 0;
  if (!ParseId(token, &value)) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

std::string FormatScore(double score) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", score);
  return buffer;
}

}  // namespace

bool IsInfoRequest(const std::string& line) {
  return Tokenize(line) == std::vector<std::string>{"INFO"};
}

bool IsQuitRequest(const std::string& line) {
  return Tokenize(line) == std::vector<std::string>{"QUIT"};
}

StatusOr<Query> ParseRequestLine(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty request");
  Query query;
  // Optional `DEADLINE <us>` prefix ahead of any query command.
  if (tokens[0] == "DEADLINE") {
    int32_t deadline_us = 0;
    if (tokens.size() < 3 || !ParseId(tokens[1], &deadline_us) ||
        deadline_us <= 0) {
      return Status::InvalidArgument("usage: DEADLINE <us> <request...>");
    }
    query.deadline_us = deadline_us;
    tokens.erase(tokens.begin(), tokens.begin() + 2);
  }
  if (tokens[0] == "SCORE") {
    if (tokens.size() != 4 || !ParseId(tokens[1], &query.h) ||
        !ParseId(tokens[2], &query.r) || !ParseId(tokens[3], &query.t)) {
      return Status::InvalidArgument("usage: SCORE <h> <r> <t>");
    }
    query.kind = QueryKind::kScore;
    return query;
  }
  if (tokens[0] == "RANK") {
    if (tokens.size() != 5 || (tokens[1] != "HEAD" && tokens[1] != "TAIL") ||
        !ParseId(tokens[2], &query.h) || !ParseId(tokens[3], &query.r) ||
        !ParseId(tokens[4], &query.t)) {
      return Status::InvalidArgument("usage: RANK HEAD|TAIL <h> <r> <t>");
    }
    query.kind = tokens[1] == "HEAD" ? QueryKind::kRankHead
                                     : QueryKind::kRankTail;
    return query;
  }
  if (tokens[0] == "TOPK") {
    if (tokens.size() != 5 || (tokens[1] != "HEADS" && tokens[1] != "TAILS")) {
      return Status::InvalidArgument(
          "usage: TOPK HEADS <r> <t> <k> | TOPK TAILS <h> <r> <k>");
    }
    if (tokens[1] == "HEADS") {
      if (!ParseId(tokens[2], &query.r) || !ParseId(tokens[3], &query.t) ||
          !ParseK(tokens[4], &query.k)) {
        return Status::InvalidArgument("usage: TOPK HEADS <r> <t> <k>");
      }
      query.kind = QueryKind::kTopKHeads;
    } else {
      if (!ParseId(tokens[2], &query.h) || !ParseId(tokens[3], &query.r) ||
          !ParseK(tokens[4], &query.k)) {
        return Status::InvalidArgument("usage: TOPK TAILS <h> <r> <k>");
      }
      query.kind = QueryKind::kTopKTails;
    }
    return query;
  }
  return Status::InvalidArgument("unknown command " + tokens[0]);
}

std::string FormatResponse(const QueryResult& result) {
  if (!result.status.ok()) return FormatError(result.status.message());
  std::ostringstream out;
  switch (result.kind) {
    case QueryKind::kScore:
      out << "SCORE " << result.step << ' ' << FormatScore(result.score);
      break;
    case QueryKind::kRankHead:
    case QueryKind::kRankTail:
      out << "RANK " << result.step << ' ' << result.rank;
      break;
    case QueryKind::kTopKHeads:
    case QueryKind::kTopKTails:
      out << "TOPK " << result.step << ' ' << result.topk.size();
      for (const TopKEntry& entry : result.topk) {
        out << ' ' << entry.index << ':' << FormatScore(entry.score);
      }
      break;
  }
  if (result.stale) out << " stale=1";
  out << '\n';
  return out.str();
}

std::string FormatInfoResponse(const EmbeddingSnapshot* snapshot,
                               const InfoExtras& extras) {
  if (snapshot == nullptr) return FormatError("no snapshot published yet");
  std::ostringstream out;
  out << "INFO " << snapshot->step() << ' '
      << snapshot->model().num_entities() << ' '
      << snapshot->model().num_relations() << ' ' << snapshot->model().dim()
      << ' ' << snapshot->model().scorer().name();
  // Extras only when configured: the bare 6-field line is pinned by
  // protocol-v1 clients (and server_test).
  if (extras.show_checkpoint) {
    out << " ckpt_ok=" << extras.ckpt_ok << " ckpt_fail=" << extras.ckpt_fail
        << " ckpt_retries=" << extras.ckpt_retries
        << " ckpt_step=" << extras.ckpt_step;
  }
  if (extras.stale) out << " stale=1";
  out << '\n';
  return out.str();
}

std::string FormatError(const std::string& message) {
  std::string out = "ERR ";
  // Responses are line-delimited; a multi-line message would desynchronize
  // the stream, so newlines are flattened.
  for (const char c : message) out += (c == '\n' || c == '\r') ? ' ' : c;
  out += '\n';
  return out;
}

}  // namespace nsc
