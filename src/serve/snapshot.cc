#include "serve/snapshot.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "embedding/checkpoint.h"
#include "util/fault.h"
#include "util/logging.h"

namespace nsc {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status EmbeddingSnapshot::SaveCheckpoint(const std::string& path) const {
  // Write-to-temp + rename: either the old checkpoint or the complete new
  // one exists at `path`, never a torn prefix.
  const std::string tmp = path + ".tmp";
  NSC_RETURN_IF_ERROR(SaveModel(model_, tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

SnapshotPublisher::SnapshotPublisher(SnapshotPublisherOptions options)
    : options_(std::move(options)) {
  CHECK_GE(options_.checkpoint_every, 1);
  if (!options_.checkpoint_dir.empty()) {
    CheckpointSetOptions set_options;
    set_options.keep = options_.checkpoint_keep;
    checkpoint_set_ =
        std::make_unique<CheckpointSet>(options_.checkpoint_dir, set_options);
  }
  if (checkpointing_enabled()) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
}

SnapshotPublisher::~SnapshotPublisher() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  checkpoint_ready_.NotifyAll();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
}

void SnapshotPublisher::Publish(const KgeModel& model, int64_t step) {
  // Reclaim the retired buffer if every reader has drained; the copy
  // itself happens OUTSIDE the lock (it is the expensive part, and only
  // the single writer ever touches an unshared buffer).
  std::shared_ptr<EmbeddingSnapshot> next;
  bool enqueue_checkpoint = false;
  {
    MutexLock lock(&mu_);
    if (spare_ != nullptr && spare_.use_count() == 1) {
      // Sole owner: no reader can observe the in-place overwrite below.
      next = std::const_pointer_cast<EmbeddingSnapshot>(spare_);
    }
    spare_.reset();
    ++publish_count_;
    enqueue_checkpoint = checkpointing_enabled() &&
                         (publish_count_ % options_.checkpoint_every) == 0;
  }
  if (next != nullptr) {
    next->CopyFrom(model, step);
  } else {
    next = std::make_shared<EmbeddingSnapshot>(model, step);
  }

  std::shared_ptr<const EmbeddingSnapshot> published = std::move(next);
  std::shared_ptr<const EmbeddingSnapshot> retired =
      std::atomic_exchange(&current_, published);
  published_step_.store(step, std::memory_order_release);
  last_publish_us_.store(SteadyNowUs(), std::memory_order_release);

  {
    MutexLock lock(&mu_);
    spare_ = std::move(retired);
    if (enqueue_checkpoint) {
      // Latest-wins: a still-pending older snapshot is superseded, so the
      // writer never falls behind by more than one write.
      pending_checkpoint_ = published;
    }
  }
  if (enqueue_checkpoint) checkpoint_ready_.NotifyOne();
}

std::shared_ptr<const EmbeddingSnapshot> SnapshotPublisher::Acquire() const {
  return std::atomic_load(&current_);
}

Status SnapshotPublisher::last_checkpoint_status() const {
  MutexLock lock(&mu_);
  return checkpoint_status_;
}

int64_t SnapshotPublisher::last_checkpoint_step() const {
  MutexLock lock(&mu_);
  return checkpoint_step_;
}

bool SnapshotPublisher::WaitForCheckpoint(int64_t step, int64_t timeout_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  MutexLock lock(&mu_);
  while (checkpoint_step_ < step) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int64_t remaining_us =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count();
    checkpoint_done_.WaitFor(&mu_, remaining_us);
  }
  return true;
}

bool SnapshotPublisher::WaitForCheckpointOutcomes(int64_t count,
                                                  int64_t timeout_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  MutexLock lock(&mu_);
  while (writer_stats_.successes + writer_stats_.give_ups < count) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int64_t remaining_us =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count();
    checkpoint_done_.WaitFor(&mu_, remaining_us);
  }
  return true;
}

CheckpointWriterStats SnapshotPublisher::checkpoint_stats() const {
  MutexLock lock(&mu_);
  return writer_stats_;
}

bool SnapshotPublisher::IsStale() const {
  if (NSC_FAULT_POINT("publisher.stall").error()) return true;
  if (options_.stale_after_us <= 0) return false;
  const int64_t last = last_publish_us_.load(std::memory_order_acquire);
  if (last < 0) return false;  // Nothing published, nothing to be stale.
  return SteadyNowUs() - last > options_.stale_after_us;
}

Status SnapshotPublisher::WriteSnapshot(const EmbeddingSnapshot& snap) const {
  if (checkpoint_set_ != nullptr) {
    return checkpoint_set_->Write(snap.model(), snap.step());
  }
  return snap.SaveCheckpoint(options_.checkpoint_path);
}

bool SnapshotPublisher::BackoffSleep(int64_t sleep_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(sleep_us);
  MutexLock lock(&mu_);
  while (!shutdown_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return true;
    const int64_t remaining_us =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count();
    // checkpoint_ready_ doubles as the shutdown signal; a wake-up for a
    // new pending snapshot just re-checks the deadline and sleeps on.
    checkpoint_ready_.WaitFor(&mu_, remaining_us);
  }
  return false;  // Shutdown: cancel the remaining retries.
}

void SnapshotPublisher::CheckpointLoop() {
  for (;;) {
    std::shared_ptr<const EmbeddingSnapshot> snap;
    {
      MutexLock lock(&mu_);
      while (pending_checkpoint_ == nullptr && !shutdown_) {
        checkpoint_ready_.Wait(&mu_);
      }
      if (pending_checkpoint_ == nullptr) return;  // Shutdown, queue drained.
      snap = std::move(pending_checkpoint_);
      pending_checkpoint_.reset();
    }
    // Retry transient failures with capped jittered backoff. The sleep
    // waits on checkpoint_ready_ so shutdown interrupts it immediately;
    // a give-up is counted, never fatal — the next publish brings
    // fresher state than any retry could.
    int attempt_index = 0;
    const Status status = RetryWithBackoff(
        options_.checkpoint_backoff,
        [&] {
          {
            MutexLock lock(&mu_);
            ++writer_stats_.attempts;
            if (attempt_index > 0) ++writer_stats_.retries;
          }
          ++attempt_index;
          return WriteSnapshot(*snap);
        },
        [this](int64_t sleep_us) { return BackoffSleep(sleep_us); },
        [this](const Status& failure, int attempt) {
          MutexLock lock(&mu_);
          ++writer_stats_.failures;
          LOG_WARNING << "checkpoint write attempt " << attempt
                      << " failed: " << failure.ToString();
        });
    {
      MutexLock lock(&mu_);
      checkpoint_status_ = status;
      writer_stats_.last_status = status;
      if (status.ok()) {
        checkpoint_step_ = snap->step();
        ++writer_stats_.successes;
        writer_stats_.last_success_step = snap->step();
      } else {
        ++writer_stats_.give_ups;
      }
    }
    checkpoint_done_.NotifyAll();
    // Loop: on shutdown with a snapshot enqueued after this write began,
    // the next iteration flushes it before returning.
  }
}

}  // namespace nsc
