// nsc_serve: the online link-prediction server. Trains a KGE model on a
// synthetic KG (or keeps serving a finished one) while answering
// line-protocol queries over TCP from snapshot-published model states —
// the end-to-end binary of the serving subsystem.
//
//   nsc_serve --port=7471 --scorer=transe --epochs=50
//   echo "TOPK TAILS 3 1 10" | nc 127.0.0.1 7471
//
// Flags (all optional):
//   --host=<addr>         bind address            (default 127.0.0.1)
//   --port=<n>            TCP port, 0 = ephemeral (default 7471)
//   --entities=<n>        synthetic KG entities   (default 2000)
//   --relations=<n>       synthetic KG relations  (default 12)
//   --triples=<n>         synthetic KG triples    (default 12000)
//   --dim=<n>             embedding dimension     (default 32)
//   --scorer=<name>       transe|distmult|complex (default transe)
//   --epochs=<n>          training epochs         (default 50)
//   --threads=<n>         training worker threads (default 1)
//   --seed=<n>            RNG seed                (default 7)
//   --publish-every=<n>   publish cadence in mini-batches (default 4)
//   --checkpoint=<path>   async single-file checkpoint target (default off)
//   --checkpoint-dir=<d>  crash-recoverable checkpoint DIRECTORY (keeps
//                         the newest --checkpoint-keep checkpoints; on
//                         startup the newest valid one is restored and
//                         training resumes from its step) (default off)
//   --checkpoint-keep=<n> checkpoints retained in the directory (default 3)
//   --workers=<n>         query engine workers    (default 2)
//   --max-batch=<n>       top-K coalescing bound  (default 64)
//   --max-wait-us=<n>     batching linger         (default 200)
//   --max-queue=<n>       admission bound; beyond it requests get
//                         "ERR overloaded" (default 0 = unbounded)
//   --idle-timeout-ms=<n> close idle connections  (default 0 = never)
//   --stale-after-us=<n>  flag answers stale=1 when the newest publish
//                         is older than this     (default 0 = never)
//   --smoke               run the self-test (LocalClient bit-identity +
//                         a TCP round trip) against the live server and
//                         exit 0/1 instead of serving forever
//
// After training completes the server keeps serving the final snapshot
// until interrupted.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "embedding/checkpoint_set.h"
#include "embedding/model.h"
#include "embedding/scoring_function.h"
#include "kg/synthetic.h"
#include "sampler/uniform_sampler.h"
#include "serve/local_client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "train/train_config.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace nsc {
namespace {

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7471;
  int entities = 2000;
  int relations = 12;
  int triples = 12000;
  int dim = 32;
  std::string scorer = "transe";
  int epochs = 50;
  int threads = 1;
  uint64_t seed = 7;
  int publish_every = 4;
  std::string checkpoint;
  std::string checkpoint_dir;
  int checkpoint_keep = 3;
  int workers = 2;
  int max_batch = 64;
  int max_wait_us = 200;
  int max_queue = 0;
  int idle_timeout_ms = 0;
  int stale_after_us = 0;
  bool smoke = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseFlag(const std::string& arg, const std::string& name, int* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::atoi(text.c_str());
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string text;
    if (arg == "--smoke") {
      f.smoke = true;
    } else if (ParseFlag(arg, "host", &f.host) ||
               ParseFlag(arg, "port", &f.port) ||
               ParseFlag(arg, "entities", &f.entities) ||
               ParseFlag(arg, "relations", &f.relations) ||
               ParseFlag(arg, "triples", &f.triples) ||
               ParseFlag(arg, "dim", &f.dim) ||
               ParseFlag(arg, "scorer", &f.scorer) ||
               ParseFlag(arg, "epochs", &f.epochs) ||
               ParseFlag(arg, "threads", &f.threads) ||
               ParseFlag(arg, "publish-every", &f.publish_every) ||
               ParseFlag(arg, "checkpoint", &f.checkpoint) ||
               ParseFlag(arg, "checkpoint-dir", &f.checkpoint_dir) ||
               ParseFlag(arg, "checkpoint-keep", &f.checkpoint_keep) ||
               ParseFlag(arg, "workers", &f.workers) ||
               ParseFlag(arg, "max-batch", &f.max_batch) ||
               ParseFlag(arg, "max-wait-us", &f.max_wait_us) ||
               ParseFlag(arg, "max-queue", &f.max_queue) ||
               ParseFlag(arg, "idle-timeout-ms", &f.idle_timeout_ms) ||
               ParseFlag(arg, "stale-after-us", &f.stale_after_us)) {
      // Parsed.
    } else if (ParseFlag(arg, "seed", &text)) {
      f.seed = std::strtoull(text.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "nsc_serve: unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return f;
}

/// Blocking loopback TCP client for the smoke test: sends `request` and
/// returns the first response line (without the newline), or "" on error.
class SmokeTcpClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  ~SmokeTcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string RoundTrip(const std::string& request) {
    const std::string line = request + "\n";
    if (::write(fd_, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      return "";
    }
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t newline = buffer_.find('\n');
    std::string response = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return response;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.compare(0, prefix.size(), prefix) == 0;
}

/// The smoke self-test the CI main job runs: LocalClient answers must be
/// bit-identical to direct recomputation against the pinned snapshot, and
/// a real TCP round trip must speak the protocol.
int RunSmoke(ServeServer* server, const Flags& flags) {
  LocalClient client(server->engine());

  const QueryResult score = client.Score(1, 0, 2);
  if (!score.status.ok() || score.snapshot == nullptr) {
    std::fprintf(stderr, "smoke: SCORE failed: %s\n",
                 score.status.message().c_str());
    return 1;
  }
  const double expect = score.snapshot->model().Score(1, 0, 2);
  if (std::memcmp(&score.score, &expect, sizeof(double)) != 0) {
    std::fprintf(stderr, "smoke: SCORE not bit-identical to snapshot\n");
    return 1;
  }

  const QueryResult topk = client.TopKTails(1, 0, 5);
  if (!topk.status.ok() || topk.topk.size() != 5) {
    std::fprintf(stderr, "smoke: TOPK failed\n");
    return 1;
  }
  std::vector<TopKEntry> direct;
  topk.snapshot->model().TopKTails(1, 0, 5, &direct, nullptr);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    if (topk.topk[i].index != direct[i].index ||
        std::memcmp(&topk.topk[i].score, &direct[i].score, sizeof(double)) !=
            0) {
      std::fprintf(stderr, "smoke: TOPK not bit-identical to snapshot\n");
      return 1;
    }
  }

  SmokeTcpClient tcp;
  if (!tcp.Connect(server->port())) {
    std::fprintf(stderr, "smoke: cannot connect to 127.0.0.1:%d\n",
                 server->port());
    return 1;
  }
  const std::string info = tcp.RoundTrip("INFO");
  const std::string tcp_score = tcp.RoundTrip("SCORE 1 0 2");
  // A generous deadline must not change the answer path; it only arms
  // shedding, which cannot fire in 10 s.
  const std::string deadlined = tcp.RoundTrip("DEADLINE 10000000 SCORE 1 0 2");
  const std::string bad = tcp.RoundTrip("FROBNICATE");
  const std::string bye = tcp.RoundTrip("QUIT");
  if (!StartsWith(info, "INFO ") || !StartsWith(tcp_score, "SCORE ") ||
      !StartsWith(deadlined, "SCORE ") || !StartsWith(bad, "ERR ") ||
      bye != "BYE") {
    std::fprintf(stderr,
                 "smoke: TCP protocol mismatch: '%s' / '%s' / '%s' / '%s' / "
                 "'%s'\n",
                 info.c_str(), tcp_score.c_str(), deadlined.c_str(),
                 bad.c_str(), bye.c_str());
    return 1;
  }

  std::printf("nsc_serve smoke OK (port %d, scorer %s, step %lld)\n",
              server->port(), flags.scorer.c_str(),
              static_cast<long long>(score.snapshot->step()));
  return 0;
}

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  SyntheticKgConfig kg_config;
  kg_config.num_entities = flags.entities;
  kg_config.num_relations = flags.relations;
  kg_config.num_triples = flags.triples;
  kg_config.seed = flags.seed;
  const Dataset data = GenerateSyntheticKg(kg_config);

  KgeModel model(data.num_entities(), data.num_relations(), flags.dim,
                 MakeScoringFunction(flags.scorer));
  Rng rng(flags.seed);
  model.InitXavier(&rng);

  // Crash restart: resume from the newest VALID checkpoint in the
  // directory (torn or corrupt files from a killed writer are skipped by
  // validation). A shape/scorer mismatch means the flags changed — start
  // fresh rather than serve the wrong model.
  int64_t resume_step = 0;
  if (!flags.checkpoint_dir.empty()) {
    CheckpointSetOptions set_options;
    set_options.keep = flags.checkpoint_keep;
    const CheckpointSet ckpt_set(flags.checkpoint_dir, set_options);
    StatusOr<LoadedCheckpoint> restored = ckpt_set.LoadLatestValid();
    if (restored.ok()) {
      const KgeModel& loaded = restored.value().model;
      if (loaded.num_entities() == model.num_entities() &&
          loaded.num_relations() == model.num_relations() &&
          loaded.dim() == model.dim() &&
          loaded.scorer().name() == model.scorer().name()) {
        model.CopyParametersFrom(loaded);
        resume_step = restored.value().step;
        std::printf("resumed from %s at step %lld (%zu invalid file(s) "
                    "skipped)\n",
                    flags.checkpoint_dir.c_str(),
                    static_cast<long long>(resume_step),
                    restored.value().skipped.size());
      } else {
        std::fprintf(stderr,
                     "nsc_serve: checkpoint in %s does not match the "
                     "configured model shape/scorer; starting fresh\n",
                     flags.checkpoint_dir.c_str());
      }
    } else {
      std::printf("no valid checkpoint in %s (%s); starting fresh\n",
                  flags.checkpoint_dir.c_str(),
                  restored.status().message().c_str());
    }
  }

  SnapshotPublisherOptions pub_options;
  pub_options.checkpoint_path = flags.checkpoint;
  pub_options.checkpoint_dir = flags.checkpoint_dir;
  pub_options.checkpoint_keep = flags.checkpoint_keep;
  pub_options.stale_after_us = flags.stale_after_us;
  SnapshotPublisher publisher(pub_options);
  // Publish the starting model (initialized, or the recovered state) so
  // the server is answerable from the first accepted connection.
  publisher.Publish(model, resume_step);

  ServeServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = flags.port;
  server_options.engine.num_workers = flags.workers;
  server_options.engine.max_batch = static_cast<std::size_t>(flags.max_batch);
  server_options.engine.max_wait_us = flags.max_wait_us;
  server_options.engine.max_queue = static_cast<std::size_t>(flags.max_queue);
  server_options.idle_timeout_ms = flags.idle_timeout_ms;
  ServeServer server(&publisher, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "nsc_serve: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("nsc_serve listening on %s:%d (%s, dim %d, |E| %d)\n",
              flags.host.c_str(), server.port(), flags.scorer.c_str(),
              flags.dim, data.num_entities());
  std::fflush(stdout);

  UniformSampler sampler(data.num_entities());
  TrainConfig train_config;
  train_config.dim = flags.dim;
  train_config.epochs = flags.epochs;
  train_config.num_threads = flags.threads;
  train_config.seed = flags.seed;
  Trainer trainer(&model, &data.train, &sampler, train_config);
  trainer.EnableSnapshots(&publisher, flags.publish_every);

  // Queries are answered from published snapshots while this thread
  // mutates the live tables.
  std::thread train_thread([&] {
    for (int epoch = 0; epoch < flags.epochs; ++epoch) {
      const EpochStats stats = trainer.RunEpoch();
      std::printf("epoch %d: loss %.4f (%.2fs, step %lld)\n", stats.epoch,
                  stats.mean_loss, stats.seconds,
                  static_cast<long long>(trainer.global_step()));
      std::fflush(stdout);
    }
  });

  int exit_code = 0;
  if (flags.smoke) {
    exit_code = RunSmoke(&server, flags);
    train_thread.join();
  } else {
    train_thread.join();
    std::printf("training done at step %lld; serving final snapshot\n",
                static_cast<long long>(trainer.global_step()));
    std::fflush(stdout);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }
  server.Shutdown();
  return exit_code;
}

}  // namespace
}  // namespace nsc

int main(int argc, char** argv) { return nsc::Main(argc, argv); }
