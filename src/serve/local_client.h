// In-process blocking client over a QueryEngine — the serving façade used
// by tests, bench_serving's load generators and nsc_serve's smoke mode.
// Each call submits one request and blocks until its callback fires, so
// results carry the full QueryResult (including the pinned snapshot, the
// in-process verification hook the TCP protocol cannot ship).
#ifndef NSCACHING_SERVE_LOCAL_CLIENT_H_
#define NSCACHING_SERVE_LOCAL_CLIENT_H_

#include <cstddef>

#include "serve/query_engine.h"

namespace nsc {

/// Thread-safe: any number of threads may share one LocalClient (each
/// call carries its own completion state) — bench_serving's closed-loop
/// connections do exactly that.
class LocalClient {
 public:
  /// `engine` is borrowed and must outlive the client.
  explicit LocalClient(QueryEngine* engine) : engine_(engine) {}

  QueryResult Score(EntityId h, RelationId r, EntityId t) {
    return Call({QueryKind::kScore, h, r, t, 0});
  }
  QueryResult RankHead(EntityId h, RelationId r, EntityId t) {
    return Call({QueryKind::kRankHead, h, r, t, 0});
  }
  QueryResult RankTail(EntityId h, RelationId r, EntityId t) {
    return Call({QueryKind::kRankTail, h, r, t, 0});
  }
  QueryResult TopKHeads(RelationId r, EntityId t, std::size_t k) {
    return Call({QueryKind::kTopKHeads, 0, r, t, k});
  }
  QueryResult TopKTails(EntityId h, RelationId r, std::size_t k) {
    return Call({QueryKind::kTopKTails, h, r, 0, k});
  }

  /// Generic entry point (the bench load generators drive this).
  QueryResult Call(const Query& query);

 private:
  QueryEngine* engine_;
};

}  // namespace nsc

#endif  // NSCACHING_SERVE_LOCAL_CLIENT_H_
