// Strategies for sampling one negative entity *from* the cache (step 6 of
// Algorithm 2). The paper chooses uniform sampling: it is unbiased, costs
// O(1), and — because everything in the cache already has a large score —
// still avoids vanishing gradients. The ablations of §IV-C1 compare it
// against score-proportional ("IS sampling", more exploitation, biased by
// stale scores and false negatives) and argmax ("top sampling", worst:
// repeats the same few, often false-negative, entities).
#ifndef NSCACHING_CORE_CACHE_SELECT_H_
#define NSCACHING_CORE_CACHE_SELECT_H_

#include <string>
#include <vector>

#include "embedding/model.h"
#include "kg/types.h"
#include "util/rng.h"

namespace nsc {

/// How the negative entity is drawn from a cache entry.
enum class CacheSelectStrategy {
  kUniform,             // Paper's choice.
  kImportanceSampling,  // ∝ exp(score) over the entry.
  kTop,                 // Argmax score.
};

std::string CacheSelectStrategyName(CacheSelectStrategy s);

/// Samples entities out of cache entries under a strategy.
///
/// Stateless w.r.t. the cache: entry vectors are passed in by the caller,
/// who is responsible for holding the entry's shard lock across the call
/// (NSCachingSampler does this via NSC_REQUIRES-annotated helpers on a
/// TripletCache::LockedEntry — see nscaching_sampler.h).
class CacheSelector {
 public:
  /// `model` is borrowed; only consulted for the non-uniform strategies.
  CacheSelector(const KgeModel* model, CacheSelectStrategy strategy)
      : model_(model), strategy_(strategy) {}

  /// Picks a candidate head h̄ from a head-cache entry for (r, t).
  EntityId SelectHead(const std::vector<EntityId>& entry, RelationId r,
                      EntityId t, Rng* rng) const;

  /// Picks a candidate tail t̄ from a tail-cache entry for (h, r).
  EntityId SelectTail(const std::vector<EntityId>& entry, EntityId h,
                      RelationId r, Rng* rng) const;

  CacheSelectStrategy strategy() const { return strategy_; }

 private:
  EntityId Pick(const std::vector<EntityId>& entry,
                const std::vector<double>& scores, Rng* rng) const;

  const KgeModel* model_;
  CacheSelectStrategy strategy_;
};

}  // namespace nsc

#endif  // NSCACHING_CORE_CACHE_SELECT_H_
