#include "core/cache_update.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/math.h"

namespace nsc {

std::string CacheUpdateStrategyName(CacheUpdateStrategy s) {
  switch (s) {
    case CacheUpdateStrategy::kImportanceSampling:
      return "is";
    case CacheUpdateStrategy::kTop:
      return "top";
    case CacheUpdateStrategy::kUniform:
      return "uniform";
  }
  return "?";
}

int CacheUpdater::BuildPool(const std::vector<EntityId>& entry, Rng* rng,
                            const std::function<bool(EntityId)>& is_known,
                            std::vector<EntityId>* pool) const {
  pool->clear();
  pool->reserve(entry.size() + n2_);
  const uint64_t num_entities = static_cast<uint64_t>(model_->num_entities());
  const bool filter = filter_index_ != nullptr;
  int true_admissions = 0;
  auto draw_fresh = [&]() {
    EntityId e = static_cast<EntityId>(rng->UniformInt(num_entities));
    if (filter) {
      bool known = is_known(e);
      for (int retry = 0; retry < 10 && known; ++retry) {
        e = static_cast<EntityId>(rng->UniformInt(num_entities));
        known = is_known(e);
      }
      // Out of retries: the candidate space for this key is dominated by
      // true triples, and a known-true entity enters the pool anyway.
      // Count it so the filter's failure is observable.
      if (known) ++true_admissions;
    }
    return e;
  };
  // Stale entry members that have since been recognised as true triples
  // are evicted in favour of fresh random candidates.
  for (EntityId e : entry) {
    pool->push_back(filter && is_known(e) ? draw_fresh() : e);
  }
  for (int i = 0; i < n2_; ++i) pool->push_back(draw_fresh());
  return true_admissions;
}

int CacheUpdater::Update(std::vector<EntityId>* entry, Rng* rng,
                         const std::vector<double>& scores,
                         const std::vector<EntityId>& pool) const {
  const int n1 = static_cast<int>(entry->size());
  std::vector<int> picked;
  switch (strategy_) {
    case CacheUpdateStrategy::kImportanceSampling:
      // Eq. (6): survivors ∝ exp(score), without replacement — realised
      // exactly by the Gumbel-top-k trick on the raw scores.
      picked = GumbelTopK(scores, n1, rng);
      break;
    case CacheUpdateStrategy::kTop:
      picked = TopK(scores, n1);
      break;
    case CacheUpdateStrategy::kUniform: {
      // Uniform without replacement: Gumbel-top-k over constant logits.
      std::vector<double> flat(scores.size(), 0.0);
      picked = GumbelTopK(flat, n1, rng);
      break;
    }
  }

  std::unordered_set<EntityId> before(entry->begin(), entry->end());
  int changed = 0;
  for (int i = 0; i < n1; ++i) {
    const EntityId e = pool[picked[i]];
    if (before.count(e) == 0) ++changed;
    (*entry)[i] = e;
  }
  return changed;
}

int CacheUpdater::ApplyTopK(std::vector<EntityId>* entry,
                            const std::vector<TopKEntry>& picked,
                            const std::vector<EntityId>& pool) const {
  const size_t n1 = entry->size();
  CHECK_EQ(picked.size(), n1);
  std::unordered_set<EntityId> before(entry->begin(), entry->end());
  int changed = 0;
  for (size_t i = 0; i < n1; ++i) {
    const EntityId e = pool[picked[i].index];
    if (before.count(e) == 0) ++changed;
    (*entry)[i] = e;
  }
  return changed;
}

namespace {

// Reused pool/score buffers for the per-refresh candidate broadcast.
// thread_local because NSCaching refreshes run inside the Hogwild
// workers (PR 2); after warm-up a refresh allocates nothing on the
// candidate-scoring side — the scoring itself is one 1-vs-all sweep
// (KgeModel::Score{Head,Tail}Candidates gathers the pool rows and
// broadcasts the fixed pair through ScoringFunction::ScoreAllCandidates).
struct RefreshScratch {
  std::vector<EntityId> pool;
  std::vector<double> scores;
  // kTop's retrieval output — N1 entries instead of N1+N2 scores. The
  // candidate-row gather reuses the same thread-local slab as the
  // scoring path (KgeModel's GatherScratch), so switching a refresh to
  // the top-K primitive allocates nothing new after warm-up.
  std::vector<TopKEntry> topk;
};

RefreshScratch& Scratch() {
  static thread_local RefreshScratch scratch;
  return scratch;
}

}  // namespace

CacheRefreshResult CacheUpdater::UpdateHeadEntry(std::vector<EntityId>* entry,
                                                 RelationId r, EntityId t,
                                                 Rng* rng) const {
  RefreshScratch& s = Scratch();
  auto is_known = [&](EntityId h_bar) {
    return filter_index_ != nullptr && filter_index_->Contains({h_bar, r, t});
  };
  CacheRefreshResult result;
  result.true_admissions = BuildPool(*entry, rng, is_known, &s.pool);
  if (strategy_ == CacheUpdateStrategy::kTop) {
    TopKSweepStats stats;
    model_->TopKHeadCandidates(r, t, s.pool, entry->size(), &s.topk, &stats);
    result.changed = ApplyTopK(entry, s.topk, s.pool);
    result.topk_tiles = stats.tiles;
    result.topk_pruned_tiles = stats.pruned_tiles;
    return result;
  }
  model_->ScoreHeadCandidates(r, t, s.pool, &s.scores);
  result.changed = Update(entry, rng, s.scores, s.pool);
  return result;
}

CacheRefreshResult CacheUpdater::UpdateTailEntry(std::vector<EntityId>* entry,
                                                 EntityId h, RelationId r,
                                                 Rng* rng) const {
  RefreshScratch& s = Scratch();
  auto is_known = [&](EntityId t_bar) {
    return filter_index_ != nullptr && filter_index_->Contains({h, r, t_bar});
  };
  CacheRefreshResult result;
  result.true_admissions = BuildPool(*entry, rng, is_known, &s.pool);
  if (strategy_ == CacheUpdateStrategy::kTop) {
    TopKSweepStats stats;
    model_->TopKTailCandidates(h, r, s.pool, entry->size(), &s.topk, &stats);
    result.changed = ApplyTopK(entry, s.topk, s.pool);
    result.topk_tiles = stats.tiles;
    result.topk_pruned_tiles = stats.pruned_tiles;
    return result;
  }
  model_->ScoreTailCandidates(h, r, s.pool, &s.scores);
  result.changed = Update(entry, rng, s.scores, s.pool);
  return result;
}

}  // namespace nsc
