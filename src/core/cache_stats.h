// Per-epoch counters exposed by the NSCaching sampler for the
// exploration/exploitation analysis of the paper:
//   CE  — changed cache elements per update (Figure 8);
//   cache size / touch counts — the §III-B3 space discussion.
// (RR and NZL are computed in analysis/dynamics.h from the trainer's view,
// since they depend on the sampled negatives and loss values.)
#ifndef NSCACHING_CORE_CACHE_STATS_H_
#define NSCACHING_CORE_CACHE_STATS_H_

#include <atomic>
#include <cstdint>

namespace nsc {

/// A snapshot of accumulated cache statistics; reset at epoch boundaries.
///
/// Counter semantics:
///   updates          — entry refreshes (two per Sample() when updates are
///                      enabled: the head entry and the tail entry).
///   changed_elements — sum of CE over refreshes.
///   selections       — negatives drawn *from* the cache. Every Sample()
///                      draws BOTH a head candidate h̄ and a tail candidate
///                      t̄ (step 6 of Algorithm 2) before choosing a side,
///                      so this advances by 2 per positive triple, not 1.
///   true_admissions  — known-true triples admitted into a refresh pool
///                      because the false-negative filter exhausted its
///                      redraw budget (see CacheUpdater::BuildPool). A
///                      nonzero rate means filter_true_triples is being
///                      silently defeated for some keys.
///   topk_tiles / topk_pruned_tiles
///                    — candidate tiles scored by kTop refreshes' fused
///                      top-K sweeps, and how many the bounded heap's
///                      threshold test pruned without heap work. Both 0
///                      under the other update strategies.
struct CacheStats {
  int64_t updates = 0;
  int64_t changed_elements = 0;
  int64_t selections = 0;
  int64_t true_admissions = 0;
  int64_t topk_tiles = 0;
  int64_t topk_pruned_tiles = 0;

  void Reset() { *this = CacheStats(); }

  /// Mean changed elements per refresh (the CE series of Figure 8).
  double MeanChangedElements() const {
    return updates == 0
               ? 0.0
               : static_cast<double>(changed_elements) / static_cast<double>(updates);
  }
};

/// The live counters behind CacheStats. Atomic so Hogwild workers can
/// account concurrently from NSCachingSampler::Sample without locking;
/// readers take a Snapshot() (each field is individually consistent —
/// cross-field exactness only holds while no worker is sampling, which is
/// when the trainer reads them).
class AtomicCacheStats {
 public:
  void AddSelections(int64_t n) {
    selections_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Accounts one entry refresh. The tile counters are nonzero only for
  /// kTop refreshes (CacheRefreshResult::topk_*).
  void AddRefresh(int64_t changed_elements, int64_t true_admissions,
                  int64_t topk_tiles = 0, int64_t topk_pruned_tiles = 0) {
    updates_.fetch_add(1, std::memory_order_relaxed);
    changed_elements_.fetch_add(changed_elements, std::memory_order_relaxed);
    true_admissions_.fetch_add(true_admissions, std::memory_order_relaxed);
    if (topk_tiles != 0) {
      topk_tiles_.fetch_add(topk_tiles, std::memory_order_relaxed);
    }
    if (topk_pruned_tiles != 0) {
      topk_pruned_tiles_.fetch_add(topk_pruned_tiles,
                                   std::memory_order_relaxed);
    }
  }

  void Reset();
  CacheStats Snapshot() const;

 private:
  std::atomic<int64_t> updates_{0};
  std::atomic<int64_t> changed_elements_{0};
  std::atomic<int64_t> selections_{0};
  std::atomic<int64_t> true_admissions_{0};
  std::atomic<int64_t> topk_tiles_{0};
  std::atomic<int64_t> topk_pruned_tiles_{0};
};

}  // namespace nsc

#endif  // NSCACHING_CORE_CACHE_STATS_H_
