// Per-epoch counters exposed by the NSCaching sampler for the
// exploration/exploitation analysis of the paper:
//   CE  — changed cache elements per update (Figure 8);
//   cache size / touch counts — the §III-B3 space discussion.
// (RR and NZL are computed in analysis/dynamics.h from the trainer's view,
// since they depend on the sampled negatives and loss values.)
#ifndef NSCACHING_CORE_CACHE_STATS_H_
#define NSCACHING_CORE_CACHE_STATS_H_

#include <cstdint>

namespace nsc {

/// Accumulated cache-update statistics; reset at epoch boundaries.
struct CacheStats {
  int64_t updates = 0;           // Number of entry refreshes.
  int64_t changed_elements = 0;  // Sum of CE over refreshes.
  int64_t selections = 0;        // Negatives drawn from the cache.

  void Reset() { *this = CacheStats(); }

  /// Mean changed elements per refresh (the CE series of Figure 8).
  double MeanChangedElements() const {
    return updates == 0
               ? 0.0
               : static_cast<double>(changed_elements) / static_cast<double>(updates);
  }
};

}  // namespace nsc

#endif  // NSCACHING_CORE_CACHE_STATS_H_
