#include "core/triplet_cache.h"

#include "util/logging.h"

namespace nsc {

TripletCache::TripletCache(int capacity, int32_t num_entities,
                           size_t max_entries, int num_shards)
    : capacity_(capacity),
      num_entities_(num_entities),
      max_entries_(max_entries) {
  CHECK_GT(capacity, 0);
  CHECK_GT(num_entities, 0);
  CHECK_GT(num_shards, 0);
  shard_max_entries_ =
      max_entries == 0
          ? 0
          : (max_entries + static_cast<size_t>(num_shards) - 1) /
                static_cast<size_t>(num_shards);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TripletCache::Shard& TripletCache::ShardFor(uint64_t key) const {
  if (shards_.size() == 1) return *shards_[0];
  // splitmix64 finalizer: cache keys are packed id pairs whose low bits
  // carry little entropy, so mix before striping.
  uint64_t k = key;
  k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ULL;
  k = (k ^ (k >> 27)) * 0x94D049BB133111EBULL;
  k ^= k >> 31;
  return *shards_[k % shards_.size()];
}

void TripletCache::Touch(Shard* shard, uint64_t key, Entry* entry) {
  if (shard_max_entries_ == 0) return;
  shard->lru.erase(entry->lru_pos);
  shard->lru.push_front(key);
  entry->lru_pos = shard->lru.begin();
}

std::vector<EntityId>* TripletCache::GetOrInitLocked(Shard* shard,
                                                     uint64_t key, Rng* rng) {
  auto it = shard->entries.find(key);
  if (it != shard->entries.end()) {
    Touch(shard, key, &it->second);
    return &it->second.candidates;
  }

  if (shard_max_entries_ > 0 && shard->entries.size() >= shard_max_entries_) {
    // Evict the least-recently-touched key to stay within the bound.
    const uint64_t victim = shard->lru.back();
    shard->lru.pop_back();
    shard->entries.erase(victim);
    ++shard->evictions;
  }

  Entry entry;
  entry.candidates.resize(capacity_);
  for (int i = 0; i < capacity_; ++i) {
    entry.candidates[i] = static_cast<EntityId>(
        rng->UniformInt(static_cast<uint64_t>(num_entities_)));
  }
  if (shard_max_entries_ > 0) {
    shard->lru.push_front(key);
    entry.lru_pos = shard->lru.begin();
  }
  return &shard->entries.emplace(key, std::move(entry)).first->second.candidates;
}

TripletCache::LockedEntry::LockedEntry(TripletCache* cache, Shard* shard,
                                       uint64_t key, Rng* rng)
    : mu_(&shard->mu) {
  shard->mu.Lock();
  candidates_ = cache->GetOrInitLocked(shard, key, rng);
}

// The shard is chosen dynamically from the key, which is the one hop the
// static analysis cannot express — the returned LockedEntry carries the
// capability out, and callers re-enter the analysis via AssertHeld().
// Everything this function delegates to (the LockedEntry constructor and
// GetOrInitLocked) is fully analyzed.
TripletCache::LockedEntry TripletCache::Acquire(uint64_t key, Rng* rng)
    NSC_NO_THREAD_SAFETY_ANALYSIS {
  return LockedEntry(this, &ShardFor(key), key, rng);
}

std::vector<EntityId>& TripletCache::GetOrInit(uint64_t key, Rng* rng) {
  Shard* shard = &ShardFor(key);
  MutexLock lock(&shard->mu);
  return *GetOrInitLocked(shard, key, rng);
}

const std::vector<EntityId>* TripletCache::Find(uint64_t key) const {
  const Shard* shard = &ShardFor(key);
  MutexLock lock(&shard->mu);
  auto it = shard->entries.find(key);
  return it == shard->entries.end() ? nullptr : &it->second.candidates;
}

size_t TripletCache::num_entries() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    MutexLock lock(&shard->mu);
    total += shard->entries.size();
  }
  return total;
}

size_t TripletCache::evictions() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    MutexLock lock(&shard->mu);
    total += shard->evictions;
  }
  return total;
}

void TripletCache::Clear() {
  for (const auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    MutexLock lock(&shard->mu);
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace nsc
