#include "core/triplet_cache.h"

#include "util/logging.h"

namespace nsc {

TripletCache::TripletCache(int capacity, int32_t num_entities,
                           size_t max_entries)
    : capacity_(capacity),
      num_entities_(num_entities),
      max_entries_(max_entries) {
  CHECK_GT(capacity, 0);
  CHECK_GT(num_entities, 0);
}

void TripletCache::Touch(uint64_t key, Entry* entry) {
  if (max_entries_ == 0) return;
  lru_.erase(entry->lru_pos);
  lru_.push_front(key);
  entry->lru_pos = lru_.begin();
}

std::vector<EntityId>& TripletCache::GetOrInit(uint64_t key, Rng* rng) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Touch(key, &it->second);
    return it->second.candidates;
  }

  if (max_entries_ > 0 && entries_.size() >= max_entries_) {
    // Evict the least-recently-touched key to stay within the bound.
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }

  Entry entry;
  entry.candidates.resize(capacity_);
  for (int i = 0; i < capacity_; ++i) {
    entry.candidates[i] = static_cast<EntityId>(
        rng->UniformInt(static_cast<uint64_t>(num_entities_)));
  }
  if (max_entries_ > 0) {
    lru_.push_front(key);
    entry.lru_pos = lru_.begin();
  }
  return entries_.emplace(key, std::move(entry)).first->second.candidates;
}

const std::vector<EntityId>* TripletCache::Find(uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.candidates;
}

}  // namespace nsc
