// NSCaching (Algorithm 2 of the paper): the cache-based negative sampler.
//
// For a positive (h, r, t):
//   step 5  — index the head cache H by (r, t) and tail cache T by (h, r);
//   step 6  — sample h̄ from H(r,t) and t̄ from T(h,r)  (CacheSelector);
//   step 7  — pick (h̄, r, t) or (h, r, t̄)             (SideChooser);
//   step 8  — refresh both cache entries                (CacheUpdater).
// The refresh may be applied lazily — only in 1 out of every n+1 epochs —
// reducing the amortised cost to O((N1+N2)d/(n+1)) per triple (Table I).
#ifndef NSCACHING_CORE_NSCACHING_SAMPLER_H_
#define NSCACHING_CORE_NSCACHING_SAMPLER_H_

#include <cstdint>
#include <string>

#include "core/cache_select.h"
#include "core/cache_stats.h"
#include "core/cache_update.h"
#include "core/triplet_cache.h"
#include "embedding/model.h"
#include "sampler/negative_sampler.h"
#include "util/thread_annotations.h"

namespace nsc {

/// Hyper-parameters of NSCaching. Defaults follow §IV-B1 of the paper:
/// N1 = N2 = 50, immediate updates (n = 0), uniform selection, IS update.
struct NSCachingConfig {
  int n1 = 50;  // Cache size per (r,t) / (h,r) key.
  int n2 = 50;  // Random candidates per refresh.
  CacheSelectStrategy select_strategy = CacheSelectStrategy::kUniform;
  CacheUpdateStrategy update_strategy =
      CacheUpdateStrategy::kImportanceSampling;
  /// Lazy-update period: the cache is refreshed only in epochs where
  /// epoch % (lazy_update_epochs + 1) == 0.
  int lazy_update_epochs = 0;
  /// Replace known-true triples with fresh random candidates during cache
  /// refresh. The paper does not filter (false negatives are rare at
  /// |E| >= 15k); at this repo's scaled-down entity counts filtering
  /// preserves the paper's low false-negative operating regime. Requires
  /// the sampler's KgIndex to be non-null.
  bool filter_true_triples = true;
  /// Memory bound per cache (head and tail each): maximum number of keys,
  /// LRU-evicted on overflow. 0 = unbounded (the paper's setting). This is
  /// the conclusion's "millions-scale KG" future-work knob — see
  /// TripletCache.
  size_t max_cache_entries = 0;
  /// Lock-striping factor of each TripletCache, so Sample() can run
  /// concurrently inside Hogwild workers. 0 = auto: 16 shards when the
  /// cache is unbounded; 1 shard when max_cache_entries > 0 (a single
  /// shard preserves the exact global-LRU eviction order — with more, the
  /// bound and LRU order are maintained per shard). The shard count never
  /// affects cache *content* for unbounded caches (lazy init consumes the
  /// caller's Rng identically), only contention.
  int cache_shards = 0;

  /// cache_shards with the auto rule applied.
  int ResolvedCacheShards() const {
    if (cache_shards > 0) return cache_shards;
    return max_cache_entries == 0 ? 16 : 1;
  }
};

class NSCachingSampler : public NegativeSampler {
 public:
  /// `model` scores candidates (borrowed; the trainer updates it in
  /// place). `index` (borrowed, may be null) supplies Bernoulli side
  /// statistics; null falls back to a fair coin.
  NSCachingSampler(const KgeModel* model, const KgIndex* index,
                   const NSCachingConfig& config);

  std::string name() const override { return "nscaching"; }

  /// Thread-safe: may be called concurrently from Hogwild workers with
  /// per-worker Rng streams. Each cache side (select + refresh) runs under
  /// its entry's shard lock; stats are accounted atomically.
  NegativeSample Sample(const Triple& pos, Rng* rng) override;

  /// NSCaching opts into in-worker sampling (see NegativeSampler): the
  /// caches are sharded and the counters atomic, so the trainer routes it
  /// through the full-Hogwild path instead of a serial per-batch pre-pass.
  bool thread_safe_sampling() const override { return true; }

  /// Not thread-safe; call only between batches/epochs (the trainer does).
  void BeginEpoch(int epoch) override;

  /// Read access for analysis / the Table VI cache-evolution experiment.
  const TripletCache& head_cache() const { return head_cache_; }
  const TripletCache& tail_cache() const { return tail_cache_; }

  /// Snapshot of the counters since the last ResetStats() (CE of
  /// Figure 8, etc.). Exact whenever no worker is mid-Sample.
  CacheStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  const NSCachingConfig& config() const { return config_; }
  bool updates_enabled() const { return updates_enabled_; }

 private:
  /// Steps 6 + 8 of Algorithm 2 for the head side, on an entry whose
  /// shard lock is held: select h̄ from the candidates, then (when
  /// updates are enabled) refresh them against the current model scores.
  /// NSC_REQUIRES(entry) makes the lock assumption machine-checked: these
  /// helpers cannot be called with a candidates vector that outlived its
  /// LockedEntry.
  EntityId SelectAndRefreshHead(TripletCache::LockedEntry& entry,
                                const Triple& pos, Rng* rng)
      NSC_REQUIRES(entry);
  /// Tail-side counterpart: selects t̄ from and refreshes a (h, r) entry.
  EntityId SelectAndRefreshTail(TripletCache::LockedEntry& entry,
                                const Triple& pos, Rng* rng)
      NSC_REQUIRES(entry);

  NSCachingConfig config_;
  const KgeModel* model_;
  TripletCache head_cache_;
  TripletCache tail_cache_;
  CacheSelector selector_;
  CacheUpdater updater_;
  SideChooser side_chooser_;
  AtomicCacheStats stats_;
  // Written by BeginEpoch (between batches), read by workers; the thread
  // pool's task handoff orders those accesses.
  bool updates_enabled_ = true;
};

}  // namespace nsc

#endif  // NSCACHING_CORE_NSCACHING_SAMPLER_H_
